// Table 2 (Appendix B, Theorem 7): the heuristic repair is a
// d·Deg(Σ)-factor approximation of the optimal θ-tolerant repair, with
// per-class bounds d|R| (linear DCs / constant CFDs) and 2d|R| (binary
// DCs / variable CFDs / FDs). This bench measures the *empirical* ratio
// Δ(I, I') / Δ(I, I*) on small random instances where I* is computed by
// exhaustive search, and checks it against the Theorem 7 bound.
#include <random>

#include "bench_util.h"
#include "repair/exact.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

struct CaseResult {
  double worst_ratio = 0.0;
  double mean_ratio = 0.0;
  int instances = 0;
  double bound = 0.0;
};

Relation RandomInstance(std::mt19937_64* rng, int rows) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("X", AttrType::kInt);
  schema.AddAttribute("Y", AttrType::kInt);
  Relation rel(schema);
  std::uniform_int_distribution<int> cat(0, 2);
  std::uniform_int_distribution<int> num(0, 6);
  for (int i = 0; i < rows; ++i) {
    rel.AddRow({Value::String("a" + std::to_string(cat(*rng))),
                Value::String("b" + std::to_string(cat(*rng))),
                Value::Int(num(*rng)), Value::Int(num(*rng))});
  }
  return rel;
}

CaseResult Measure(const ConstraintSet& sigma, int rows, int trials,
                   uint64_t seed) {
  CaseResult out;
  CostModel cost;
  // d = max dist(a, fv) / min dist(a, b) = 1.1 under the count model.
  double d = cost.fresh_cost / 1.0;
  out.bound = d * Degree(sigma);
  std::mt19937_64 rng(seed);
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    Relation rel = RandomInstance(&rng, rows);
    std::optional<RepairResult> exact = ExactMinimumRepair(rel, sigma);
    if (!exact || exact->stats.repair_cost <= 0.0) continue;
    RepairResult heuristic = VfreeRepair(rel, sigma);
    double ratio = heuristic.stats.repair_cost / exact->stats.repair_cost;
    out.worst_ratio = std::max(out.worst_ratio, ratio);
    sum += ratio;
    ++out.instances;
  }
  out.mean_ratio = out.instances ? sum / out.instances : 0.0;
  return out;
}

}  // namespace

int main() {
  ExperimentTable table(
      "Table 2 — empirical approximation factors vs the Theorem 7 bound",
      {"constraint class", "instances", "mean ratio", "worst ratio",
       "bound d*Deg"});

  auto add = [&](const char* name, const ConstraintSet& sigma, int rows,
                 int trials, uint64_t seed) {
    CaseResult r = Measure(sigma, rows, trials, seed);
    table.BeginRow();
    table.Add(name);
    table.Add(r.instances);
    table.Add(r.mean_ratio);
    table.Add(r.worst_ratio);
    table.Add(r.bound, 1);
    if (r.worst_ratio > r.bound) {
      table.Add("BOUND VIOLATED");
    }
  };

  // Linear DC (single tuple): not(t0.X > 4).
  ConstraintSet linear = {DenialConstraint(
      {Predicate::WithConstant(0, 2, Op::kGt, Value::Int(4))}, "linear")};
  add("linear DC (ell=1)", linear, 8, 40, 11);

  // Constant CFD-style: not(t0.A = 'a0' & t0.X > 3).
  ConstraintSet ccfd = {DenialConstraint(
      {Predicate::WithConstant(0, 0, Op::kEq, Value::String("a0")),
       Predicate::WithConstant(0, 2, Op::kGt, Value::Int(3))},
      "constant_cfd")};
  add("constant CFD (ell=1)", ccfd, 8, 40, 23);

  // FD: A -> B (binary DC).
  ConstraintSet fd = {DenialConstraint::FromFd({0}, 1, "fd")};
  add("FD / binary DC (ell=2)", fd, 5, 40, 37);

  // Order DC: not(X> & Y<).
  ConstraintSet order = {DenialConstraint(
      {Predicate::TwoCell(0, 2, Op::kGt, 1, 2),
       Predicate::TwoCell(0, 3, Op::kLt, 1, 3)},
      "order")};
  add("order DC (ell=2)", order, 5, 30, 41);

  table.Print();
  return 0;
}
