// Microbench for the shared evaluation index (dc/eval_index.h): times
// CVTolerantRepair on a variant-heavy HOSP workload with the index on and
// off, at 1 and 4 threads, and appends the points to
// BENCH_variant_reuse.json (mode encoded in the bench name:
// "variant_reuse/shared" vs "variant_reuse/unshared"). The paired runs
// also print the work counters so the speedup can be traced to the saved
// partition builds and predicate evaluations.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 24;
  config.measures_per_hospital = 16;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);

  auto run = [&](bool reuse_index, int threads) {
    CVTolerantOptions options = HospCvOptions(hosp, 1.0);
    options.reuse_index = reuse_index;
    options.threads = threads;
    options.max_datarepair_calls = 8;
    return CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, options);
  };

  // Deterministic work-counter snapshot for the perf-regression CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_variant_reuse.json):
  // one serial shared-index repair.
  WriteWorkMetrics("micro_variant_reuse.metrics.json", [&] {
    RepairResult repair = run(true, 1);
    PublishRepairStats(repair.stats);
  });
  if (MetricsOnly()) return 0;

  // Counter comparison (one warm-up run per mode, serial).
  {
    RepairResult shared = run(true, 1);
    RepairResult unshared = run(false, 1);
    std::cout << "variants=" << shared.stats.variants_enumerated << "\n"
              << "shared:   builds=" << shared.stats.index_partition_builds
              << " reuses=" << shared.stats.index_partition_reuses
              << " predicate_evals=" << shared.stats.index_predicate_evals
              << " memo_hits=" << shared.stats.index_memo_hits << "\n"
              << "unshared: builds=" << unshared.stats.index_partition_builds
              << " predicate_evals=" << unshared.stats.index_predicate_evals
              << "\n";
  }

  BenchJsonWriter json("BENCH_variant_reuse.json");
  TimeAcrossThreads("variant_reuse/shared", {1, 4}, &json,
                    [&](int threads) { run(true, threads); });
  TimeAcrossThreads("variant_reuse/unshared", {1, 4}, &json,
                    [&](int threads) { run(false, threads); });
  return 0;
}
