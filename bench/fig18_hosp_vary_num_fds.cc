// Figure 18 (Appendix D.4): varying the number of FDs (HOSP). CVtolerant
// benefits from additional constraints (more noise gets caught); Relative
// hardly improves (it repairs toward its fixed τ regardless).
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);

  ExperimentTable table(
      "Figure 18 — varying number of FDs (HOSP, error 5%)",
      {"#FDs", "algorithm", "f-measure", "time(s)"});
  for (size_t k = 1; k <= hosp.given_oversimplified.size(); ++k) {
    ConstraintSet given(hosp.given_oversimplified.begin(),
                        hosp.given_oversimplified.begin() + k);
    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(static_cast<int>(k));
      table.Add(name);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
    };
    add("Vrepair", VrepairRepair(noisy.dirty, given));
    RelativeOptions relative;
    relative.excluded_attrs = HospBaselineExclusions();
    relative.max_added_attrs = 1;
    relative.max_candidates = 3000;
    relative.tau = 0.25 * hosp.clean.num_rows();
    add("Relative", RelativeRepair(noisy.dirty, given, relative));
    add("CVtolerant",
        CVTolerantRepair(noisy.dirty, given, HospCvOptions(hosp, 1.0)));
  }
  table.Print();
  return 0;
}
