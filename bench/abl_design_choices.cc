// Ablations for the design choices called out in DESIGN.md: result
// sharing (Section 4.2), bound pruning (Section 3.2), θ-maximality
// pruning (Section 3.1), and the cover heuristic.
#include "bench_util.h"
#include "variation/variant_generator.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  const ConstraintSet& given = hosp.given_oversimplified;

  ExperimentTable table("Ablations — CVtolerant machinery (HOSP, theta=1)",
                        {"configuration", "f-measure", "time(s)",
                         "datarepair_calls", "solver_calls", "cache_hits"});
  auto add = [&](const char* name, const CVTolerantOptions& options) {
    RepairResult r = CVTolerantRepair(noisy.dirty, given, options);
    RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
    table.BeginRow();
    table.Add(name);
    table.Add(run.accuracy.f_measure);
    table.Add(run.stats.elapsed_seconds, 4);
    table.Add(run.stats.datarepair_calls);
    table.Add(run.stats.solver_calls);
    table.Add(run.stats.cache_hits);
  };

  CVTolerantOptions base = HospCvOptions(hosp, 1.0);
  add("full (sharing + bound pruning)", base);

  CVTolerantOptions no_sharing = base;
  no_sharing.enable_sharing = false;
  add("no sharing", no_sharing);

  CVTolerantOptions no_bounds = base;
  no_bounds.enable_bound_pruning = false;
  add("no bound pruning", no_bounds);

  CVTolerantOptions local_ratio = base;
  local_ratio.vfree.cover = CoverHeuristic::kLocalRatio;
  add("local-ratio cover", local_ratio);

  table.Print();

  // θ-maximality pruning: candidate-set sizes with and without.
  ExperimentTable gen_table(
      "Ablation — theta-maximality pruning (Section 3.1)",
      {"theta", "variants(pruned)", "variants(unpruned)"});
  for (double theta : {0.5, 1.0, 1.5, 2.0}) {
    VariantGenOptions with = HospCvOptions(hosp, theta).variants;
    with.data = &noisy.dirty;
    VariantGenOptions without = with;
    without.prune_nonmaximal = false;
    gen_table.BeginRow();
    gen_table.Add(theta, 1);
    gen_table.Add(static_cast<int>(
        GenerateSigmaVariants(given, noisy.dirty.schema(), with).size()));
    gen_table.Add(static_cast<int>(
        GenerateSigmaVariants(given, noisy.dirty.schema(), without).size()));
  }
  gen_table.Print();
  return 0;
}
