// Microbench for the repair-as-a-service subsystem (serve/server.h):
// hosts a HOSP replay behind a RepairServer session whose ShardedSession
// hash-partitions detection across 4 shards, then drives the same stream
// through a backpressured (watermark 2) session with the closed-loop
// submit/pump retry discipline the load generator uses. Appends latency
// percentiles and throughput to BENCH_serve.json.
//
// The acceptance claims live in the serve.* counters: sharding must keep
// most conflict components shard-local (serve.shard_local_components > 0,
// with the cross-shard merges counted separately), and admission control
// must reject deterministically at the watermark
// (serve.batches_rejected). The checked-in baseline pins both for the
// serve_smoke CI gate. A FATAL guard re-runs the stream through a
// single-session StreamingRepairer and requires the sharded final
// instance to match cell for cell — the correctness contract sharding
// must not bend.
#include "bench_util.h"

#include "repair/streaming.h"
#include "serve/server.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

constexpr int kBatches = 8;
constexpr int kBatchSize = 16;
constexpr int kShards = 4;

/// Cell-for-cell equality, fresh ids included — the bench-side mirror of
/// the serve tests' bit-identity expectation.
bool SameRelation(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows() ||
      a.num_attributes() != b.num_attributes()) {
    return false;
  }
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId c = 0; c < a.num_attributes(); ++c) {
      if (!(a.Get(r, c) == b.Get(r, c))) return false;
    }
  }
  return true;
}

/// One closed-loop replay against a server-hosted session: submit every
/// batch in order, pumping the queue until a rejected batch is admitted
/// (the retry discipline rejected clients follow), then flush the tail.
/// Returns the final repaired instance.
Relation DriveClosedLoop(RepairServer* server, const std::string& name,
                         const Relation& base, const ConstraintSet& sigma,
                         const ServeOptions& options,
                         const std::vector<std::vector<RowEdit>>& batches,
                         std::vector<double>* batch_seconds = nullptr) {
  ServeSession* session = server->Open(name, base, sigma, options);
  if (session == nullptr) {
    std::cerr << "FATAL: session name collision for " << name << "\n";
    std::exit(1);
  }
  for (const std::vector<RowEdit>& batch : batches) {
    while (!session->Submit(batch).admitted) session->Pump();
  }
  session->Flush();
  if (batch_seconds != nullptr) *batch_seconds = session->batch_seconds();
  std::optional<Relation> final_instance = server->Close(name);
  if (!final_instance) {
    std::cerr << "FATAL: Close lost session " << name << "\n";
    std::exit(1);
  }
  return *std::move(final_instance);
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 24;
  config.measures_per_hospital = 16;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  const ConstraintSet& sigma = hosp.given_oversimplified;
  ReplayWorkload replay =
      MakeReplayWorkload(noisy.dirty, kBatches, kBatchSize);

  BenchJsonWriter json("BENCH_serve.json");

  ServeOptions serve_options;
  serve_options.session.repair = HospCvOptions(hosp, 1.0);
  serve_options.session.repair.max_datarepair_calls = 8;
  serve_options.session.num_shards = kShards;

  // Deterministic work-counter snapshot for the serve_smoke CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_serve.json). Two
  // scenarios, one registry snapshot: (A) a 4-shard replay behind a
  // generous watermark — every batch admitted, sharding does the work, the
  // baseline pins the shard-local/cross-shard component split; (B) the
  // same stream against a watermark-2 queue with the closed-loop retry
  // discipline — with 8 batches and a synchronous drain, batches 2..7 are
  // each rejected exactly once, so serve.batches_rejected pins admission
  // control as actually engaged.
  Relation sharded_final;
  MetricsSnapshot snapshot =
      WriteWorkMetrics("micro_serve.metrics.json", [&] {
        ServeOptions options = serve_options;
        options.session.repair.threads = 1;
        options.admission.queue_watermark = kBatches;  // scenario A
        RepairServer server;
        sharded_final = DriveClosedLoop(&server, "hosp_sharded", replay.base,
                                        sigma, options, replay.batches);
        ServeOptions pressured = options;  // scenario B
        pressured.admission.queue_watermark = 2;
        Relation pressured_final =
            DriveClosedLoop(&server, "hosp_backpressure", replay.base, sigma,
                            pressured, replay.batches);
        if (!SameRelation(sharded_final, pressured_final)) {
          std::cerr << "FATAL: backpressure changed the repaired instance "
                       "(admission must only delay batches, not reorder "
                       "or drop them)\n";
          std::exit(1);
        }
      });

  const int64_t shard_local = snapshot.at("serve.shard_local_components");
  const int64_t cross_shard = snapshot.at("serve.cross_shard_components");
  const int64_t rejected = snapshot.at("serve.batches_rejected");
  std::cout << "serve components: " << shard_local << " shard-local vs "
            << cross_shard << " cross-shard merges; " << rejected
            << " backpressure rejections\n";
  json.RecordCounters(
      "serve/detection",
      {{"shards", kShards},
       {"batches_admitted", snapshot.at("serve.batches_admitted")},
       {"batches_rejected", rejected},
       {"batches_applied", snapshot.at("serve.batches_applied")},
       {"shard_local_components", shard_local},
       {"cross_shard_components", cross_shard},
       {"rows_migrated", snapshot.at("serve.rows_migrated")},
       {"cells_changed", snapshot.at("serve.cells_changed")}});
  if (shard_local <= 0) {
    std::cerr << "FATAL: sharding localized no conflict components — the "
                 "shard plan silently disengaged\n";
    return 1;
  }
  if (rejected <= 0) {
    std::cerr << "FATAL: the watermark-2 scenario rejected nothing — "
                 "admission control silently disengaged\n";
    return 1;
  }

  // Correctness guard, enforced even in metrics-only CI runs: the sharded
  // final instance must match a single-session StreamingRepairer replay of
  // the same stream cell for cell, fresh ids included.
  {
    StreamingOptions stream_options;
    stream_options.repair = serve_options.session.repair;
    stream_options.repair.threads = 1;
    StreamingRepairer streamer(replay.base, sigma, stream_options);
    for (const std::vector<RowEdit>& batch : replay.batches) {
      streamer.ApplyBatch(batch);
    }
    if (!SameRelation(sharded_final, streamer.current())) {
      std::cerr << "FATAL: sharded replay diverged from the single-session "
                   "StreamingRepairer result\n";
      return 1;
    }
    std::cout << "equivalence: sharded == single-session ("
              << sharded_final.num_rows() << " rows)\n";
  }
  if (MetricsOnly()) return 0;

  // ---- Wall clock: closed-loop replay latency at 1 and 4 engine
  // threads, best-of-one (the histogram already smooths over 8 batches).
  // p50/p99 come from the per-batch latency sample the session records;
  // edits/sec is the sustained apply throughput over the busy time.
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    ServeOptions options = serve_options;
    options.session.repair.threads = threads;
    options.admission.queue_watermark = kBatches;
    RepairServer server;
    std::vector<double> batch_seconds;
    DriveClosedLoop(&server, "hosp_timed", replay.base, sigma, options,
                    replay.batches, &batch_seconds);
    LatencyHistogram latency;
    latency.RecordAll(batch_seconds);
    const double busy = latency.TotalSeconds();
    const double edits_per_sec =
        busy > 0.0 ? kBatches * kBatchSize / busy : 0.0;
    std::cout << "serve/replay  threads=" << threads
              << "  p50_ms=" << latency.p50() * 1e3
              << "  p99_ms=" << latency.p99() * 1e3
              << "  edits_per_sec=" << edits_per_sec << "\n";
    json.Record("serve/p50", threads, latency.p50() * 1e3);
    json.Record("serve/p99", threads, latency.p99() * 1e3);
    json.Record("serve/edits_per_sec", threads, edits_per_sec);
  }
  ThreadPool::SetNumThreads(1);
  return 0;
}
