// Figure 19 (Appendix D.4): varying the number of attributes (HOSP).
// Accuracy is largely unaffected — all constraint-repair approaches have
// mechanisms that keep irrelevant attributes out of the constraints.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  ExperimentTable table(
      "Figure 19 — varying number of attributes (HOSP, error 5%)",
      {"#attrs", "algorithm", "f-measure", "time(s)"});
  for (int attrs : {8, 10, 12, 14}) {
    HospConfig config;
    config.num_hospitals = 40;
    config.num_attributes = attrs;
    HospData hosp = MakeHosp(config);
    NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
    const ConstraintSet& given = hosp.given_oversimplified;
    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(attrs);
      table.Add(name);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
    };
    add("Vrepair", VrepairRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));
    RelativeOptions relative;
    relative.max_added_attrs = 1;
    relative.max_candidates = 3000;
    relative.tau = 0.25 * hosp.clean.num_rows();
    relative.excluded_attrs = {HospAttrs::kSample};
    if (attrs > HospAttrs::kScore) {
      relative.excluded_attrs.push_back(HospAttrs::kScore);
    }
    add("Relative", RelativeRepair(noisy.dirty, given, relative));
    add("CVtolerant",
        CVTolerantRepair(noisy.dirty, given, HospCvOptions(hosp, 1.0)));
  }
  table.Print();
  return 0;
}
