// Figure 7: Vfree vs. Holistic with and without constraint-variance
// tolerance over CENSUS (numeric DCs), varying error rates. Accuracy is
// the relative accuracy of Appendix D.1; MNAD lower is better.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  CensusConfig config;
  config.num_rows = 300;
  CensusData census = MakeCensus(config);

  ExperimentTable table(
      "Figure 7 — Vfree vs Holistic +/- CVtolerant (CENSUS, theta=1)",
      {"error%", "algorithm", "rel.accuracy", "MNAD", "time(s)", "changed"});

  for (double rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    NoisyData noisy = MakeDirtyCensus(census, rate);
    const ConstraintSet& given = census.given;

    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run = Evaluate(census.clean, noisy.dirty, r,
                               census.noise_attrs);
      table.BeginRow();
      table.Add(rate * 100, 0);
      table.Add(name);
      table.Add(run.relative_accuracy);
      table.Add(run.mnad, 4);
      table.Add(run.stats.elapsed_seconds, 4);
      table.Add(run.stats.changed_cells);
    };

    add("Vfree", VfreeRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));

    CVTolerantOptions cv;
    cv.variants.theta = 1.0;
    cv.variants.space = census.space;
    add("CVtolerant+Vfree", CVTolerantRepair(noisy.dirty, given, cv));

    CVTolerantOptions cvh = cv;
    cvh.use_vfree = false;
    cvh.max_datarepair_calls = 12;
    add("CVtolerant+Holistic", CVTolerantRepair(noisy.dirty, given, cvh));
  }
  table.Print();
  return 0;
}
