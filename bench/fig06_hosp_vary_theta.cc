// Figure 6: varying the constraint-variance tolerance level θ over HOSP
// (error rate 7%): precision / recall / f-measure / changed cells.
// Expected shape: accuracy peaks at a moderate θ; large θ overfits
// (few repaired cells), θ=0 over-repairs.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.07);

  ExperimentTable table(
      "Figure 6 — varying tolerance level theta (HOSP, error 7%)",
      {"theta", "precision", "recall", "f-measure", "changed", "variants",
       "time(s)"});
  for (double theta : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    CVTolerantOptions options = HospCvOptions(hosp, theta);
    RepairResult r =
        CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, options);
    RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
    table.BeginRow();
    table.Add(theta, 1);
    table.Add(run.accuracy.precision);
    table.Add(run.accuracy.recall);
    table.Add(run.accuracy.f_measure);
    table.Add(run.stats.changed_cells);
    table.Add(run.stats.variants_enumerated);
    table.Add(run.stats.elapsed_seconds, 4);
  }
  table.Print();
  return 0;
}
