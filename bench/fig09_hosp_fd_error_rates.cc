// Figure 9: comparison under FD constraints with various data error rates
// (HOSP): Vrepair, Holistic, Unified, Relative, CVtolerant with unit and
// with weighted (Eq. 2) predicate costs. f-measure and time.
#include "bench_util.h"
#include "variation/predicate_weights.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);

  ExperimentTable table(
      "Figure 9 — FD-based comparison over error rates (HOSP)",
      {"error%", "algorithm", "precision", "recall", "f-measure", "time(s)"});

  for (double rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    NoisyData noisy = MakeDirtyHosp(hosp, rate);
    const ConstraintSet& given = hosp.given_oversimplified;

    auto add = [&](const std::string& name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(rate * 100, 0);
      table.Add(name);
      table.Add(run.accuracy.precision);
      table.Add(run.accuracy.recall);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
    };

    add("Vrepair", VrepairRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));

    UnifiedOptions unified;
    unified.excluded_attrs = HospBaselineExclusions();
    // DL-style constraint-repair price scales with the data (pattern
    // count), like Chiang & Miller's model.
    unified.constraint_repair_weight = 0.1 * hosp.clean.num_rows();
    add("Unified", UnifiedRepair(noisy.dirty, given, unified));

    RelativeOptions relative;
    relative.excluded_attrs = HospBaselineExclusions();
    relative.max_added_attrs = 2;
    relative.max_candidates = 10000;
    relative.tau = 0.25 * hosp.clean.num_rows();
    add("Relative", RelativeRepair(noisy.dirty, given, relative));

    add("CVtolerant(unit)",
        CVTolerantRepair(noisy.dirty, given, HospCvOptions(hosp, 1.0)));

    PredicateWeights weights(noisy.dirty, /*max_pairs=*/8000);
    CVTolerantOptions weighted = HospCvOptions(hosp, 1.0);
    weighted.variants.cost_model.weights = &weights;
    // Weighted costs rescale edits; tolerance stays at one "average"
    // insertion worth of budget.
    add("CVtolerant(weighted)",
        CVTolerantRepair(noisy.dirty, given, weighted));
  }
  table.Print();
  return 0;
}
