// Figure 12: comparison under DC constraints with various data error
// rates (CENSUS): Greedy, Holistic, CVtolerant — MNAD (lower is better)
// and relative accuracy (higher is better).
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  CensusConfig config;
  config.num_rows = 300;
  CensusData census = MakeCensus(config);

  ExperimentTable table(
      "Figure 12 — DC-based comparison over error rates (CENSUS)",
      {"error%", "algorithm", "MNAD", "rel.accuracy", "changed", "time(s)"});
  for (double rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    NoisyData noisy = MakeDirtyCensus(census, rate);
    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run =
          Evaluate(census.clean, noisy.dirty, r, census.noise_attrs);
      table.BeginRow();
      table.Add(rate * 100, 0);
      table.Add(name);
      table.Add(run.mnad, 4);
      table.Add(run.relative_accuracy);
      table.Add(run.stats.changed_cells);
      table.Add(run.stats.elapsed_seconds, 4);
    };
    add("Greedy", GreedyRepair(noisy.dirty, census.given));
    add("Holistic", HolisticRepair(noisy.dirty, census.given));
    CVTolerantOptions cv;
    cv.variants.theta = 1.0;
    cv.variants.space = census.space;
    add("CVtolerant", CVTolerantRepair(noisy.dirty, census.given, cv));
  }
  table.Print();
  return 0;
}
