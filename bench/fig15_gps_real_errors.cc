// Figure 15: GPS data with (simulated) naturally-embedded errors: ~10% of
// the readings jump off the trajectory. The given DCs are overrefined
// (step bounds guarded by Quality = 0); deleting the guards (negative θ)
// lets CVtolerant repair all jumps, beating Holistic on the given rules.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  GpsConfig config;
  config.num_points = 800;
  GpsData gps = MakeGps(config);

  ExperimentTable table(
      "Figure 15 — GPS trajectory with embedded jumps",
      {"algorithm", "MNAD", "rel.accuracy", "changed", "time(s)"});
  auto add = [&](const std::string& name, const RepairResult& r) {
    table.BeginRow();
    table.Add(name);
    table.Add(Mnad(gps.clean, r.repaired, gps.eval_attrs), 4);
    table.Add(RelativeAccuracy(gps.clean, gps.dirty, r.repaired,
                               gps.eval_attrs));
    table.Add(r.stats.changed_cells);
    table.Add(r.stats.elapsed_seconds, 4);
  };

  add("Greedy(given)", GreedyRepair(gps.dirty, gps.given));
  add("Holistic(given)", HolisticRepair(gps.dirty, gps.given));
  add("Holistic(precise)", HolisticRepair(gps.dirty, gps.precise));
  for (double theta : {-0.5, -1.0, -2.0}) {
    CVTolerantOptions cv;
    cv.variants.theta = theta;
    cv.variants.max_changed_constraints = 4;
    add("CVtolerant(theta=" + std::to_string(theta).substr(0, 4) + ")",
        CVTolerantRepair(gps.dirty, gps.given, cv));
  }
  table.Print();
  return 0;
}
