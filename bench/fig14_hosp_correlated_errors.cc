// Figure 14: correlated errors appearing together in the same tuples
// (HOSP, Section 5.4). Accuracy drops slightly as more errors pack into
// one tuple, but CVtolerant stays ahead of the no-tolerance baselines.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);

  ExperimentTable table(
      "Figure 14 — correlated errors per dirty tuple (HOSP, error 5%)",
      {"errors/tuple", "algorithm", "precision", "recall", "f-measure",
       "time(s)"});
  for (int per_tuple : {1, 2, 3, 4}) {
    NoisyData noisy = MakeDirtyHosp(hosp, 0.05, per_tuple);
    const ConstraintSet& given = hosp.given_oversimplified;
    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(per_tuple);
      table.Add(name);
      table.Add(run.accuracy.precision);
      table.Add(run.accuracy.recall);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
    };
    add("Vrepair", VrepairRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));
    add("CVtolerant",
        CVTolerantRepair(noisy.dirty, given, HospCvOptions(hosp, 1.0)));
  }
  table.Print();
  return 0;
}
