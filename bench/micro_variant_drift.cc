// Microbench for the unfrozen cross-batch variant search
// (repair/streaming.h VariantTracker): streams a drifting HOSP edit
// workload — update values drawn from a window sliding over the instance,
// so per-attribute value frequencies and with them the per-variant repair
// bounds skew over time — and compares three regimes:
//
//   frozen    PR-5 behaviour, the initial Σ' held for the whole stream
//   unfrozen  reopen_variants: delta-maintained bounds re-open the search
//   scratch   per-batch full re-evaluation (ScanVariantFacts + the full
//             candidate loop on the accumulated dirty instance)
//
// The acceptance claims: the unfrozen stream ends on the variant the
// from-scratch search would choose for the final instance (the frozen
// baseline diverges from it), and the bound maintenance gets there on
// measurably less detection work than per-batch full re-evaluation — the
// checked-in baseline pins stream.variant_reopens nonzero and the eval
// counters exact for the perf-regression CI gate. Appends wall-clock and
// counter records to BENCH_variant_drift.json.
#include "bench_util.h"

#include <optional>

#include "relation/encoded.h"
#include "repair/streaming.h"
#include "variation/variant_generator.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

constexpr int kBatches = 6;
constexpr int kBatchSize = 10;
constexpr uint64_t kSeed = 29;

void ApplyEditsToRelation(const std::vector<RowEdit>& edits, Relation* D) {
  for (const RowEdit& e : edits) {
    if (e.insert) {
      D->AddRow(e.values);
    } else {
      D->SetValue(e.row, e.attr, e.value);
    }
  }
}

struct ScratchStream {
  VariantSearchResult final_result;         ///< the last batch's search
  std::vector<ConstraintSet> per_batch;     ///< chosen Σ' after each batch
};

/// One per-batch full re-evaluation pass over the whole stream: raw edits
/// accumulate into D, and every batch pays full detection scans plus the
/// full candidate loop.
ScratchStream RunScratchPerBatch(const ReplayWorkload& replay,
                                 const ConstraintSet& sigma,
                                 const std::vector<SigmaVariant>& family,
                                 const CVTolerantOptions& options) {
  Relation D = replay.base;
  ScratchStream out;
  int64_t fresh = 1000000;
  for (const std::vector<RowEdit>& batch : replay.batches) {
    ApplyEditsToRelation(batch, &D);
    std::optional<EncodedRelation> E;
    if (options.use_encoded) E.emplace(D);
    std::map<DenialConstraint, VariantFacts> facts =
        ScanVariantFacts(D, sigma, family, options, E ? &*E : nullptr);
    out.final_result = CVTolerantSearchWithFacts(
        D, sigma, family,
        [&facts](const DenialConstraint& c) -> const VariantFacts& {
          return facts.at(c);
        },
        options, &fresh, E ? &*E : nullptr);
    out.per_batch.push_back(out.final_result.variant);
  }
  return out;
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 6;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.06);
  const ConstraintSet& sigma = hosp.given_oversimplified;
  ReplayWorkload replay =
      MakeDriftWorkload(noisy.dirty, kBatches, kBatchSize, kSeed);

  BenchJsonWriter json("BENCH_variant_drift.json");

  StreamingOptions unfrozen_options;
  unfrozen_options.repair = HospCvOptions(hosp, 1.0);
  unfrozen_options.reopen_variants = true;

  // Deterministic work-counter snapshot for the perf-regression CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_variant_drift.json):
  // one serial unfrozen streamed replay. The baseline pins
  // stream.variant_reopens nonzero — the trigger going silent would mean
  // the drift no longer re-opens the search and the bench is vacuous — and
  // the eval.* detection counters exact.
  std::optional<StreamingRepairer> unfrozen;
  MetricsSnapshot snapshot =
      WriteWorkMetrics("micro_variant_drift.metrics.json", [&] {
        StreamingOptions options = unfrozen_options;
        options.repair.threads = 1;
        unfrozen.emplace(replay.base, sigma, options);
        for (const std::vector<RowEdit>& batch : replay.batches) {
          unfrozen->ApplyBatch(batch);
        }
        PublishRepairStats(unfrozen->initial_stats());
      });
  const int64_t streamed_evals = snapshot.at("eval.code_predicate_evals");
  const int64_t reopens = snapshot.at("stream.variant_reopens");

  // The same family the tracker enumerated, for the scratch twins.
  const std::vector<SigmaVariant>& family = unfrozen->tracker()->variants();

  // Per-batch full re-evaluation: same edits, same family, but full
  // detection scans and a full candidate loop every batch. Counted with
  // the same registry (reset first; the CI metrics file is already
  // written) so the two regimes' detection work is directly comparable.
  CVTolerantOptions scratch_options = unfrozen_options.repair;
  scratch_options.threads = 1;
  MetricsRegistry::Global().ResetAll();
  ScratchStream scratch = RunScratchPerBatch(replay, sigma, family,
                                             scratch_options);
  const VariantSearchResult& scratch_final = scratch.final_result;
  const int64_t scratch_evals =
      MetricsRegistry::Global().SnapshotWork().at("eval.code_predicate_evals");

  // Frozen baseline: the PR-5 stream that never re-opens.
  StreamingOptions frozen_options = unfrozen_options;
  frozen_options.reopen_variants = false;
  frozen_options.repair.threads = 1;
  StreamingRepairer frozen(replay.base, sigma, frozen_options);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    frozen.ApplyBatch(batch);
  }

  const bool unfrozen_optimal =
      scratch_final.have_result &&
      unfrozen->variant() == scratch_final.variant;
  // Batches where the frozen incumbent was NOT the scratch-optimal choice
  // — the divergence an unfrozen stream exists to repair. (The drift can
  // swing back: the final optimum may coincide with the initial choice
  // again, so divergence is counted per batch, not at the end.)
  int64_t frozen_divergences = 0;
  for (const ConstraintSet& optimal : scratch.per_batch) {
    if (!(frozen.variant() == optimal)) ++frozen_divergences;
  }
  std::cout << "variant_drift: reopens " << reopens << ", switches "
            << unfrozen->totals().variant_switches << ", bound updates "
            << snapshot.at("stream.bound_updates") << "\n"
            << "variant_drift: unfrozen ends scratch-optimal: "
            << (unfrozen_optimal ? "yes" : "NO")
            << ", frozen diverged on " << frozen_divergences << "/"
            << scratch.per_batch.size() << " batches\n"
            << "variant_drift: detection work " << streamed_evals
            << " code predicate evals streamed vs " << scratch_evals
            << " for per-batch full re-evaluation\n";
  json.RecordCounters(
      "variant_drift/tracking",
      {{"variants", static_cast<int64_t>(family.size())},
       {"batches", snapshot.at("stream.batches")},
       {"variant_reopens", reopens},
       {"variant_switches", unfrozen->totals().variant_switches},
       {"bound_updates", snapshot.at("stream.bound_updates")},
       {"cache_invalidations", snapshot.at("stream.cache_invalidations")},
       {"streamed_code_evals", streamed_evals},
       {"scratch_code_evals", scratch_evals},
       {"unfrozen_scratch_optimal", unfrozen_optimal ? 1 : 0},
       {"frozen_divergences", frozen_divergences}});
  if (reopens == 0) {
    std::cerr << "FATAL: the drift stream never re-opened the search\n";
    return 1;
  }
  if (unfrozen->totals().variant_switches == 0) {
    std::cerr << "FATAL: the drift stream never switched variants\n";
    return 1;
  }
  if (!unfrozen_optimal) {
    std::cerr << "FATAL: unfrozen stream did not end on the scratch-optimal "
                 "variant\n";
    return 1;
  }
  if (frozen_divergences == 0) {
    std::cerr << "FATAL: frozen baseline never diverged from the "
                 "scratch-optimal variant — the drift workload no longer "
                 "exercises a switch\n";
    return 1;
  }
  if (streamed_evals * 2 > scratch_evals) {
    std::cerr << "FATAL: streamed detection work did not stay under half of "
                 "per-batch full re-evaluation\n";
    return 1;
  }
  if (MetricsOnly()) return 0;

  // ---- Wall clock: frozen vs unfrozen vs per-batch full re-evaluation,
  // best of three, at 1 and 4 threads. The initial whole-instance repair
  // (identical across regimes) runs outside the timed region only for the
  // scratch loop, which has none; the streamed regimes' constructors are
  // excluded explicitly.
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    double best_frozen = 0.0, best_unfrozen = 0.0, best_scratch = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      StreamingOptions options = frozen_options;
      options.repair.threads = threads;
      StreamingRepairer f(replay.base, sigma, options);
      WallTimer timer;
      for (const std::vector<RowEdit>& batch : replay.batches) {
        f.ApplyBatch(batch);
      }
      double ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_frozen) best_frozen = ms;

      options.reopen_variants = true;
      StreamingRepairer u(replay.base, sigma, options);
      timer.Reset();
      for (const std::vector<RowEdit>& batch : replay.batches) {
        u.ApplyBatch(batch);
      }
      ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_unfrozen) best_unfrozen = ms;

      CVTolerantOptions so = options.repair;
      timer.Reset();
      RunScratchPerBatch(replay, sigma, family, so);
      ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_scratch) best_scratch = ms;
    }
    std::cout << "variant_drift/frozen    threads=" << threads
              << "  ms=" << best_frozen << "\n"
              << "variant_drift/unfrozen  threads=" << threads
              << "  ms=" << best_unfrozen << "\n"
              << "variant_drift/scratch   threads=" << threads
              << "  ms=" << best_scratch << "\n";
    json.Record("variant_drift/frozen", threads, best_frozen);
    json.Record("variant_drift/unfrozen", threads, best_unfrozen);
    json.Record("variant_drift/scratch", threads, best_scratch);
  }
  ThreadPool::SetNumThreads(1);
  return 0;
}
