// Microbench for the topology-aware decomposition of giant conflict
// components (graph/decompose.h + the vfree split/stitch path; DESIGN.md
// §12). The DENSE generator builds adversarial high-error ramps whose
// repair context collapses into giant banded components; this bench
// FATAL-guards the tentpole claims:
//   1. the largest component splits into >= 4 sub-components,
//   2. the CSP solver work counter for the giant-component path drops
//      (solve.oversized_solver_cells: every cell solved through the
//      serial oversized path with decompose off, zero with it on), while
//      total solve.csp_atom_evals stays bounded — the per-variable domain
//      filtering dominates it and is split-invariant, and sub-components
//      small enough for the exact search trade a few extra evals for
//      exact solutions,
//   3. the decomposed repair is still violation-free at equal-or-lower
//      realized cost than the undecomposed path.
// Appends wall-clock and counter records to BENCH_dense_errors.json.
#include "bench_util.h"

#include "data/dense.h"
#include "dc/violation.h"
#include "graph/conflict_hypergraph.h"
#include "graph/decompose.h"
#include "graph/vertex_cover.h"
#include "solver/components.h"
#include "solver/repair_context.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

constexpr int kMaxComponent = 24;

DenseConfig BenchConfig() {
  DenseConfig config;
  config.num_tracks = 2;
  config.rows_per_track = 240;
  config.error_rate = 0.4;  // adversarial: past the 0.3 floor of the claim
  return config;
}

VfreeOptions DenseVfreeOptions(bool decompose) {
  VfreeOptions options;
  options.decompose = decompose;
  options.max_component = kMaxComponent;
  return options;
}

}  // namespace

int main() {
  DenseData dense = MakeDense(BenchConfig());
  std::cout << "dense workload: " << dense.dirty.num_rows() << " rows, "
            << dense.num_errors << " injected errors\n";

  // ---- The pipeline, reconstructed step by step, to look at the giant
  // component directly (the repair engines run the same stages).
  std::vector<Violation> violations =
      FindViolations(dense.dirty, dense.sigma);
  DomainStats stats(dense.dirty);
  ConflictHypergraph g =
      ConflictHypergraph::Build(dense.dirty, dense.sigma, violations);
  VertexCover cover = ApproximateVertexCover(
      g, CoverHeuristic::kGreedyDegree, &stats);
  std::vector<Cell> changing = cover.Cells(g);
  CellSet changing_set(changing.begin(), changing.end());
  std::vector<Violation> suspects =
      FindSuspects(dense.dirty, dense.sigma, changing_set);
  RepairContext rc =
      RepairContext::Build(dense.dirty, dense.sigma, changing, suspects);
  std::vector<Component> components = DecomposeComponents(rc);

  size_t largest = 0;
  int over_threshold = 0;
  for (size_t ci = 0; ci < components.size(); ++ci) {
    if (components[ci].cells.size() > components[largest].cells.size()) {
      largest = ci;
    }
    if (static_cast<int>(components[ci].cells.size()) > kMaxComponent) {
      ++over_threshold;
    }
  }
  const Component& giant = components[largest];
  std::cout << "components: " << components.size() << " total, "
            << over_threshold << " over " << kMaxComponent
            << " cells; largest has " << giant.cells.size() << " cells, "
            << giant.atoms.size() << " atoms\n";
  if (static_cast<int>(giant.cells.size()) <= kMaxComponent) {
    std::cerr << "FATAL: dense workload produced no giant component "
                 "(largest " << giant.cells.size() << " cells <= "
              << kMaxComponent << ")\n";
    return 1;
  }

  DecomposeOptions dopts;
  dopts.max_component = kMaxComponent;
  SplitPlan plan = SplitComponent(giant, dopts);
  std::cout << "largest component splits into " << plan.parts.size()
            << " parts (" << plan.boundary.size() << " boundary cells, "
            << plan.cross_atoms.size() << " cross atoms)\n";
  if (plan.parts.size() < 4) {
    std::cerr << "FATAL: expected the giant component to split into >= 4 "
                 "sub-components, got " << plan.parts.size() << "\n";
    return 1;
  }

  BenchJsonWriter json("BENCH_dense_errors.json");

  // ---- Deterministic counters, decompose on vs off. The decompose-on
  // snapshot backs the perf-regression CI gate
  // (bench/baselines/micro_dense_errors.json pins
  // solve.components_split != 0).
  RepairResult on_result;
  MetricsSnapshot on =
      WriteWorkMetrics("micro_dense_errors.metrics.json", [&] {
        on_result =
            VfreeRepair(dense.dirty, dense.sigma, DenseVfreeOptions(true));
        PublishRepairStats(on_result.stats);
      });

  RepairResult off_result;
  ThreadPool::SetNumThreads(1);
  MetricsRegistry::Global().ResetAll();
  off_result = VfreeRepair(dense.dirty, dense.sigma, DenseVfreeOptions(false));
  PublishRepairStats(off_result.stats);
  MetricsSnapshot off = MetricsRegistry::Global().SnapshotWork();

  auto counter = [](const MetricsSnapshot& snapshot, const char* name) {
    auto it = snapshot.find(name);
    return it == snapshot.end() ? int64_t{0} : it->second;
  };
  const int64_t on_evals = counter(on, "solve.csp_atom_evals");
  const int64_t off_evals = counter(off, "solve.csp_atom_evals");
  const int64_t on_oversized = counter(on, "solve.oversized_solver_cells");
  const int64_t off_oversized = counter(off, "solve.oversized_solver_cells");
  std::cout << "decompose on:  split=" << counter(on, "solve.components_split")
            << " stitch=" << counter(on, "solve.stitch_merges")
            << " giant_cells=" << counter(on, "solve.giant_component_cells")
            << " oversized_cells=" << on_oversized
            << " atom_evals=" << on_evals
            << " cost=" << on_result.stats.repair_cost << "\n";
  std::cout << "decompose off: oversized_cells=" << off_oversized
            << " atom_evals=" << off_evals
            << " cost=" << off_result.stats.repair_cost << "\n";
  json.RecordCounters(
      "dense_errors/decompose",
      {{"rows", dense.dirty.num_rows()},
       {"violations", static_cast<int64_t>(violations.size())},
       {"largest_component_cells", static_cast<int64_t>(giant.cells.size())},
       {"split_parts", static_cast<int64_t>(plan.parts.size())},
       {"components_split", counter(on, "solve.components_split")},
       {"stitch_merges", counter(on, "solve.stitch_merges")},
       {"giant_component_cells", counter(on, "solve.giant_component_cells")},
       {"oversized_cells_on", on_oversized},
       {"oversized_cells_off", off_oversized},
       {"atom_evals_on", on_evals},
       {"atom_evals_off", off_evals}});

  if (counter(on, "solve.components_split") < 1) {
    std::cerr << "FATAL: decompose-on repair split no component\n";
    return 1;
  }
  if (off_oversized == 0 || on_oversized >= off_oversized) {
    std::cerr << "FATAL: oversized solver cells did not drop ("
              << off_oversized << " -> " << on_oversized << ")\n";
    return 1;
  }
  if (on_evals * 4 > off_evals * 5) {  // exact-search upgrade stays bounded
    std::cerr << "FATAL: CSP atom evals regressed past 1.25x (" << off_evals
              << " -> " << on_evals << ")\n";
    return 1;
  }
  if (!Satisfies(on_result.repaired, dense.sigma)) {
    std::cerr << "FATAL: decomposed repair is not violation-free\n";
    return 1;
  }
  if (on_result.stats.repair_cost > off_result.stats.repair_cost) {
    std::cerr << "FATAL: decomposed repair cost "
              << on_result.stats.repair_cost
              << " exceeds the undecomposed cost "
              << off_result.stats.repair_cost << "\n";
    return 1;
  }
  if (MetricsOnly()) return 0;

  // ---- Wall clock: the undecomposed giant-component solve is a serial
  // bottleneck; decomposition restores thread-pool parallelism.
  for (int threads : {1, 4}) {
    for (bool decompose : {false, true}) {
      ThreadPool::SetNumThreads(threads);
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        VfreeOptions options = DenseVfreeOptions(decompose);
        options.threads = threads;
        WallTimer timer;
        VfreeRepair(dense.dirty, dense.sigma, options);
        double ms = timer.ElapsedMs();
        if (rep == 0 || ms < best) best = ms;
      }
      const char* mode = decompose ? "decomposed" : "monolithic";
      std::cout << "dense_errors/" << mode << "  threads=" << threads
                << "  ms=" << best << "\n";
      json.Record(std::string("dense_errors/") + mode, threads, best);
    }
  }
  ThreadPool::SetNumThreads(1);
  return 0;
}
