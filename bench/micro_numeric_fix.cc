// Microbench for the numeric interval-propagation solver (solver/interval.h
// + the CspSolver hooks; DESIGN.md §14.3). The workload is a measure ledger
// whose numeric column is key-like (all values distinct) and range-bounded:
//   measure_unique:  not(t0.Tax = t1.Tax)
//   tax_nonnegative: not(t0.Tax < 0)
//   tax_capped:      not(t0.Tax > 1000)
// Corrupting a cell onto its neighbor's value makes a duplicate whose fix
// cannot come from the active domain — every remaining value is taken by
// another row, and the overwritten one is gone — so the paper's Section
// 4.1.3 solver can only answer with a fresh variable, while interval
// propagation narrows to [0, 1000], punctures the taken values, and picks
// a concrete off-domain number. This bench FATAL-guards the tentpole
// claims:
//   1. the propagation path engages (solve.interval_narrowings > 0) and no
//      component falls back to a fresh variable
//      (solve.fresh_fallbacks == 0) — the pair the numeric_smoke CI gate
//      pins via bench/baselines/micro_numeric_fix.json,
//   2. the delete strategy on the same workload tombstones at least one
//      row and never more than one per initial violation (the max_ratio
//      pin of the same baseline),
//   3. with use_interval off, the same instance must mint fresh variables
//      — proving the gate watches the interval path, not an easy domain.
// Appends wall-clock records to BENCH_numeric_fix.json.
#include "bench_util.h"

#include "dc/violation.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

constexpr int kRows = 120;
constexpr double kStep = 5.0;
constexpr double kCap = 1000.0;

struct NumericWorkload {
  Relation dirty;
  ConstraintSet sigma;
  int corrupted = 0;
};

NumericWorkload MakeLedger() {
  Schema schema;
  schema.AddAttribute("Entry", AttrType::kString);
  schema.AddAttribute("Tax", AttrType::kDouble);
  NumericWorkload w{Relation(schema), {}, 0};
  for (int i = 0; i < kRows; ++i) {
    w.dirty.AddRow({Value::String("e" + std::to_string(i)),
                    Value::Double(kStep * i)});
  }
  // Corrupt every 6th Tax onto its predecessor's value: one duplicate pair
  // per corruption, and the overwritten value leaves the active domain.
  for (int i = 6; i < kRows; i += 6) {
    w.dirty.SetValue(i, 1, Value::Double(kStep * (i - 1)));
    ++w.corrupted;
  }
  w.sigma.push_back(DenialConstraint(
      {Predicate::TwoCell(0, 1, Op::kEq, 1, 1)}, "measure_unique"));
  w.sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, 1, Op::kLt, Value::Double(0.0))},
      "tax_nonnegative"));
  w.sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, 1, Op::kGt, Value::Double(kCap))},
      "tax_capped"));
  return w;
}

int64_t Counter(const MetricsSnapshot& snapshot, const char* name) {
  auto it = snapshot.find(name);
  return it == snapshot.end() ? int64_t{0} : it->second;
}

}  // namespace

int main() {
  NumericWorkload w = MakeLedger();
  std::vector<Violation> violations = FindViolations(w.dirty, w.sigma);
  std::cout << "ledger workload: " << w.dirty.num_rows() << " rows, "
            << w.corrupted << " corrupted cells, " << violations.size()
            << " violations\n";
  if (violations.empty()) {
    std::cerr << "FATAL: numeric corruption produced no violations\n";
    return 1;
  }

  // ---- Deterministic counters: the update-strategy repair (interval
  // propagation solves every component off-domain; no fresh fallback) and
  // the delete-strategy repair (cover tombstones, bounded by the violation
  // count) share one snapshot — the numeric_smoke CI gate compares it
  // against bench/baselines/micro_numeric_fix.json.
  RepairResult update_result;
  RepairResult delete_result;
  MetricsSnapshot metrics =
      WriteWorkMetrics("micro_numeric_fix.metrics.json", [&] {
        update_result = VfreeRepair(w.dirty, w.sigma, VfreeOptions{});
        PublishRepairStats(update_result.stats);
        VfreeOptions delete_options;
        delete_options.strategy = RepairStrategy::kDelete;
        delete_result = VfreeRepair(w.dirty, w.sigma, delete_options);
        PublishRepairStats(delete_result.stats);
      });

  const int64_t narrowings = Counter(metrics, "solve.interval_narrowings");
  const int64_t fallbacks = Counter(metrics, "solve.fresh_fallbacks");
  std::cout << "update strategy: cost=" << update_result.stats.repair_cost
            << " changed_cells=" << update_result.stats.changed_cells
            << " interval_narrowings=" << narrowings
            << " fresh_fallbacks=" << fallbacks << "\n";
  std::cout << "delete strategy: cost=" << delete_result.stats.repair_cost
            << " rows_deleted=" << delete_result.stats.rows_deleted << "\n";
  if (!Satisfies(update_result.repaired, w.sigma)) {
    std::cerr << "FATAL: update-strategy repair is not violation-free\n";
    return 1;
  }
  if (narrowings <= 0) {
    std::cerr << "FATAL: interval propagation never engaged "
                 "(solve.interval_narrowings = " << narrowings << ")\n";
    return 1;
  }
  if (fallbacks != 0 || update_result.stats.fresh_assignments != 0) {
    std::cerr << "FATAL: propagation-solvable workload minted fresh "
                 "variables (solve.fresh_fallbacks = " << fallbacks
              << ", fresh_assignments = "
              << update_result.stats.fresh_assignments << ")\n";
    return 1;
  }
  if (!Satisfies(delete_result.repaired, w.sigma)) {
    std::cerr << "FATAL: delete-strategy repair is not violation-free\n";
    return 1;
  }
  if (delete_result.stats.rows_deleted <= 0 ||
      delete_result.stats.rows_deleted >
          delete_result.stats.initial_violations) {
    std::cerr << "FATAL: delete strategy tombstoned "
              << delete_result.stats.rows_deleted << " rows against "
              << delete_result.stats.initial_violations << " violations\n";
    return 1;
  }

  // ---- The ablation claim: the gate watches a real solver capability.
  // With use_interval off the same instance has no concrete answer — the
  // Section 4.1.3 fallback must mint fresh variables.
  VfreeOptions without_interval;
  without_interval.solver.use_interval = false;
  RepairResult off = VfreeRepair(w.dirty, w.sigma, without_interval);
  std::cout << "interval off: fresh=" << off.stats.fresh_assignments << "\n";
  if (off.stats.fresh_assignments == 0) {
    std::cerr << "FATAL: the fresh-variable fallback was expected with "
                 "use_interval off on the duplicate-measure workload\n";
    return 1;
  }
  if (MetricsOnly()) return 0;

  // ---- Wall clock: interval picks skip the candidate-pool search on the
  // infeasible components, so the propagation path should not be slower.
  BenchJsonWriter json("BENCH_numeric_fix.json");
  for (bool use_interval : {false, true}) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      VfreeOptions options;
      options.solver.use_interval = use_interval;
      WallTimer timer;
      VfreeRepair(w.dirty, w.sigma, options);
      double ms = timer.ElapsedMs();
      if (rep == 0 || ms < best) best = ms;
    }
    const char* mode = use_interval ? "interval" : "fresh_fallback";
    std::cout << "numeric_fix/" << mode << "  ms=" << best << "\n";
    json.Record(std::string("numeric_fix/") + mode, 1, best);
  }
  return 0;
}
