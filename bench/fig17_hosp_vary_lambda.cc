// Figure 17 (Appendix D.3): varying the predicate-deletion weight λ from
// 0 to -1 (fixed θ). λ close to -1 makes substitutions nearly free and
// the constraints drift overrefined (few repaired cells, low accuracy) —
// the paper's argument for λ = -0.5.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);

  ExperimentTable table(
      "Figure 17 — varying deletion weight lambda (HOSP, theta=1)",
      {"lambda", "precision", "recall", "f-measure", "changed", "variants"});
  for (double lambda : {0.0, -0.3, -0.5, -0.7, -1.0}) {
    CVTolerantOptions options = HospCvOptions(hosp, 1.0);
    options.variants.cost_model.lambda = lambda;
    RepairResult r =
        CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, options);
    RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
    table.BeginRow();
    table.Add(lambda, 1);
    table.Add(run.accuracy.precision);
    table.Add(run.accuracy.recall);
    table.Add(run.accuracy.f_measure);
    table.Add(run.stats.changed_cells);
    table.Add(run.stats.variants_enumerated);
  }
  table.Print();
  return 0;
}
