// Microbenchmarks (google-benchmark) for the core operations: violation
// detection, vertex-cover heuristics (the cover ablation of DESIGN.md),
// variant enumeration, suspect detection, and component solving — plus a
// serial-vs-parallel scaling section appended to BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "data/census.h"
#include "dc/incremental.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "graph/bounds.h"
#include "solver/components.h"
#include "solver/csp_solver.h"
#include "solver/repair_context.h"
#include "variation/variant_generator.h"

namespace cvrepair {
namespace {

struct HospEnv {
  HospData hosp;
  NoisyData noisy;
  HospEnv() {
    HospConfig config;
    config.num_hospitals = 40;
    hosp = MakeHosp(config);
    NoiseConfig noise;
    noise.error_rate = 0.05;
    noise.target_attrs = hosp.noise_attrs;
    noisy = InjectNoise(hosp.clean, noise);
  }
};

HospEnv& Env() {
  static HospEnv* env = new HospEnv();
  return *env;
}

void BM_FindViolationsFd(benchmark::State& state) {
  HospEnv& env = Env();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FindViolations(env.noisy.dirty, env.hosp.given_oversimplified));
  }
}
BENCHMARK(BM_FindViolationsFd);

void BM_FindViolationsOrderDc(benchmark::State& state) {
  CensusConfig config;
  config.num_rows = static_cast<int>(state.range(0));
  CensusData census = MakeCensus(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindViolations(census.clean, census.given));
  }
}
BENCHMARK(BM_FindViolationsOrderDc)->Arg(100)->Arg(200)->Arg(400);

void BM_VertexCover(benchmark::State& state) {
  HospEnv& env = Env();
  std::vector<Violation> violations =
      FindViolations(env.noisy.dirty, env.hosp.given_oversimplified);
  ConflictHypergraph g = ConflictHypergraph::Build(
      env.noisy.dirty, env.hosp.given_oversimplified, violations);
  CoverHeuristic heuristic = state.range(0) == 0
                                 ? CoverHeuristic::kLocalRatio
                                 : CoverHeuristic::kGreedyDegree;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproximateVertexCover(g, heuristic));
  }
}
BENCHMARK(BM_VertexCover)->Arg(0)->Arg(1);  // 0 = local ratio, 1 = greedy

void BM_SuspectsAndContext(benchmark::State& state) {
  HospEnv& env = Env();
  RepairCostBounds bounds =
      ComputeBounds(env.noisy.dirty, env.hosp.given_oversimplified);
  CellSet changing(bounds.cover_cells.begin(), bounds.cover_cells.end());
  for (auto _ : state) {
    std::vector<Violation> suspects =
        FindSuspects(env.noisy.dirty, env.hosp.given_oversimplified, changing);
    benchmark::DoNotOptimize(
        RepairContext::Build(env.noisy.dirty, env.hosp.given_oversimplified,
                             bounds.cover_cells, suspects));
  }
}
BENCHMARK(BM_SuspectsAndContext);

void BM_ComponentSolve(benchmark::State& state) {
  HospEnv& env = Env();
  RepairCostBounds bounds =
      ComputeBounds(env.noisy.dirty, env.hosp.given_oversimplified);
  CellSet changing(bounds.cover_cells.begin(), bounds.cover_cells.end());
  std::vector<Violation> suspects =
      FindSuspects(env.noisy.dirty, env.hosp.given_oversimplified, changing);
  RepairContext rc =
      RepairContext::Build(env.noisy.dirty, env.hosp.given_oversimplified,
                           bounds.cover_cells, suspects);
  std::vector<Component> components = DecomposeComponents(rc);
  DomainStats stats(env.noisy.dirty);
  for (auto _ : state) {
    int64_t fresh = 1;
    CspSolver solver(env.noisy.dirty, stats, CostModel{}, &fresh);
    double total = 0;
    for (const Component& comp : components) total += solver.Solve(comp).cost;
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_ComponentSolve);

void BM_IncrementalVsFullDetection(benchmark::State& state) {
  // One repair-round's worth of cell changes, violations refreshed either
  // incrementally or from scratch.
  HospEnv& env = Env();
  const ConstraintSet& sigma = env.hosp.given_oversimplified;
  bool incremental = state.range(0) == 1;
  for (auto _ : state) {
    if (incremental) {
      ViolationIndex index(env.noisy.dirty, sigma);
      state.PauseTiming();  // exclude the initial build
      state.ResumeTiming();
      for (int i = 0; i < 20; ++i) {
        index.ApplyChange({i * 7 % env.noisy.dirty.num_rows(),
                           HospAttrs::kPhone},
                          Value::String("p" + std::to_string(i)));
      }
      benchmark::DoNotOptimize(index.CurrentViolations());
    } else {
      Relation current = env.noisy.dirty;
      for (int i = 0; i < 20; ++i) {
        current.SetValue(i * 7 % current.num_rows(), HospAttrs::kPhone,
                         Value::String("p" + std::to_string(i)));
        benchmark::DoNotOptimize(FindViolations(current, sigma));
      }
    }
  }
}
BENCHMARK(BM_IncrementalVsFullDetection)->Arg(0)->Arg(1);

void BM_VariantEnumeration(benchmark::State& state) {
  HospEnv& env = Env();
  VariantGenOptions options;
  options.theta = static_cast<double>(state.range(0));
  options.space = env.hosp.space;
  options.data = &env.noisy.dirty;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateSigmaVariants(
        env.hosp.given_oversimplified, env.noisy.dirty.schema(), options));
  }
}
BENCHMARK(BM_VariantEnumeration)->Arg(1)->Arg(2);

// Deterministic work-counter section for the perf-regression CI gate:
// one serial violation scan per detector family plus a full Vfree repair,
// snapshotted into micro_core_ops.metrics.json (compared against
// bench/baselines/micro_core_ops.json by tools/check_metrics.py).
void WriteCoreOpsMetrics() {
  bench::WriteWorkMetrics("micro_core_ops.metrics.json", [] {
    HospEnv& env = Env();
    FindViolations(env.noisy.dirty, env.hosp.given_oversimplified);
    CensusConfig config;
    config.num_rows = 200;
    CensusData census = MakeCensus(config);
    FindViolations(census.clean, census.given);
    VfreeOptions options;
    options.threads = 1;
    RepairResult repair =
        VfreeRepair(env.noisy.dirty, env.hosp.given_oversimplified, options);
    PublishRepairStats(repair.stats);
  });
}

// Serial-vs-parallel wall-clock points for the three parallelized hot
// paths, appended to BENCH_parallel.json as JSON lines.
void ReportParallelScaling() {
  using bench::BenchJsonWriter;
  using bench::TimeAcrossThreads;

  std::cout << "\nthread scaling:\n";
  BenchJsonWriter json("BENCH_parallel.json");

  // O(n^2) order-DC scan (the no-join row-range shards).
  CensusConfig census_config;
  census_config.num_rows = 1500;
  CensusData census = MakeCensus(census_config);
  TimeAcrossThreads("micro_violations_order_dc", {1, 2, 4}, &json,
                    [&](int) {
                      benchmark::DoNotOptimize(
                          FindViolations(census.clean, census.given));
                    });

  // Full violation-free repair (parallel per-component solving).
  HospEnv& env = Env();
  TimeAcrossThreads("micro_vfree_repair", {1, 2, 4}, &json,
                    [&](int threads) {
                      VfreeOptions options;
                      options.threads = threads;
                      benchmark::DoNotOptimize(VfreeRepair(
                          env.noisy.dirty, env.hosp.given_oversimplified,
                          options));
                    });
}

}  // namespace
}  // namespace cvrepair

int main(int argc, char** argv) {
  cvrepair::WriteCoreOpsMetrics();
  if (cvrepair::bench::MetricsOnly()) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  cvrepair::ReportParallelScaling();
  return 0;
}
