// Figure 13: scalability on the number of tuples (CENSUS, DC-based):
// MNAD, relative accuracy, time, changed cells. All approaches scale;
// approaches without variance tolerance change many correct cells.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  ExperimentTable table(
      "Figure 13 — scalability on number of tuples (CENSUS)",
      {"tuples", "algorithm", "MNAD", "rel.accuracy", "time(s)", "changed"});
  for (int rows : {150, 300, 600, 1000}) {
    CensusConfig config;
    config.num_rows = rows;
    CensusData census = MakeCensus(config);
    NoisyData noisy = MakeDirtyCensus(census, 0.05);
    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run =
          Evaluate(census.clean, noisy.dirty, r, census.noise_attrs);
      table.BeginRow();
      table.Add(rows);
      table.Add(name);
      table.Add(run.mnad, 4);
      table.Add(run.relative_accuracy);
      table.Add(run.stats.elapsed_seconds, 4);
      table.Add(run.stats.changed_cells);
    };
    add("Greedy", GreedyRepair(noisy.dirty, census.given));
    add("Holistic", HolisticRepair(noisy.dirty, census.given));
    CVTolerantOptions cv;
    cv.variants.theta = 1.0;
    cv.variants.space = census.space;
    cv.max_datarepair_calls = 24;
    add("CVtolerant", CVTolerantRepair(noisy.dirty, census.given, cv));
  }
  table.Print();
  return 0;
}
