// Microbench for the dictionary-encoded columnar scan backend
// (relation/encoded.h): counts the per-predicate evaluation work of
// violation detection on HOSP (24 hospitals) with boxed Values versus
// integer codes, then times the end-to-end CVTolerantRepair with the
// backend on and off at 1 and 4 threads. Appends everything to
// BENCH_encoded_scan.json — counter records carry the comparison mix
// (boxed vs coded evals), timing records the wall clock.
//
// The acceptance claim lives in the counter records: the encoded scan
// must cut boxed-Value predicate evaluations by at least 2x (it keeps
// only the cross-attribute fallbacks), shifting the rest to integer
// code comparisons.
#include "bench_util.h"

#include "dc/eval_index.h"
#include "dc/violation.h"
#include "relation/encoded.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 24;
  config.measures_per_hospital = 16;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  const ConstraintSet& sigma = hosp.given_oversimplified;

  BenchJsonWriter json("BENCH_encoded_scan.json");

  auto run = [&](bool use_encoded, int threads) {
    CVTolerantOptions options = HospCvOptions(hosp, 1.0);
    options.use_encoded = use_encoded;
    options.threads = threads;
    options.max_datarepair_calls = 8;
    return CVTolerantRepair(noisy.dirty, sigma, options);
  };

  // Deterministic work-counter snapshot for the perf-regression CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_encoded_scan.json):
  // one serial encoded repair. The baseline pins eval.predicate_evals to
  // zero — boxed Value evaluations reappearing on this path is exactly the
  // regression the encoded backend exists to prevent.
  WriteWorkMetrics("micro_encoded_scan.metrics.json", [&] {
    RepairResult repair = run(true, 1);
    PublishRepairStats(repair.stats);
  });
  if (MetricsOnly()) return 0;

  // ---- Detection work counters: one full violation scan per backend.
  EncodedRelation encoded(noisy.dirty);
  eval_counters::Reset();
  std::vector<Violation> boxed_violations = FindViolations(noisy.dirty, sigma);
  EvalCounters boxed = eval_counters::Snapshot();
  eval_counters::Reset();
  std::vector<Violation> coded_violations = FindViolations(encoded, sigma);
  EvalCounters coded = eval_counters::Snapshot();
  eval_counters::Reset();
  if (boxed_violations != coded_violations) {
    std::cerr << "FATAL: encoded scan diverged from boxed scan\n";
    return 1;
  }

  std::cout << "detection (" << noisy.dirty.num_rows() << " rows, "
            << boxed_violations.size() << " violations)\n"
            << "  boxed backend:   " << boxed.predicate_evals
            << " Value evals, " << boxed.code_predicate_evals
            << " code evals\n"
            << "  encoded backend: " << coded.predicate_evals
            << " Value evals, " << coded.code_predicate_evals
            << " code evals\n";
  json.RecordCounters("encoded_scan/detect/boxed",
                      {{"value_evals", boxed.predicate_evals},
                       {"code_evals", boxed.code_predicate_evals},
                       {"violations",
                        static_cast<int64_t>(boxed_violations.size())}});
  json.RecordCounters("encoded_scan/detect/encoded",
                      {{"value_evals", coded.predicate_evals},
                       {"code_evals", coded.code_predicate_evals},
                       {"violations",
                        static_cast<int64_t>(coded_violations.size())}});

  // ---- End-to-end repair work counters (index + detection together).
  {
    RepairResult with = run(true, 1);
    RepairResult without = run(false, 1);
    std::cout << "cvtolerant repair (variants="
              << with.stats.variants_enumerated << ")\n"
              << "  boxed backend:   " << without.stats.index_predicate_evals
              << " Value evals, " << without.stats.index_code_evals
              << " code evals\n"
              << "  encoded backend: " << with.stats.index_predicate_evals
              << " Value evals, " << with.stats.index_code_evals
              << " code evals\n";
    json.RecordCounters("encoded_scan/repair/boxed",
                        {{"value_evals", without.stats.index_predicate_evals},
                         {"code_evals", without.stats.index_code_evals}});
    json.RecordCounters("encoded_scan/repair/encoded",
                        {{"value_evals", with.stats.index_predicate_evals},
                         {"code_evals", with.stats.index_code_evals}});

    // The acceptance floor: >= 2x fewer boxed Value evaluations.
    if (coded.predicate_evals * 2 > boxed.predicate_evals ||
        with.stats.index_predicate_evals * 2 >
            without.stats.index_predicate_evals) {
      std::cerr << "FATAL: encoded backend did not halve boxed evals\n";
      return 1;
    }
  }

  // ---- Wall clock, best of three, at 1 and 4 threads.
  TimeAcrossThreads("encoded_scan/repair/encoded", {1, 4}, &json,
                    [&](int threads) { run(true, threads); });
  TimeAcrossThreads("encoded_scan/repair/boxed", {1, 4}, &json,
                    [&](int threads) { run(false, threads); });
  return 0;
}
