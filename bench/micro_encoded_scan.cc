// Microbench for the dictionary-encoded columnar scan backend
// (relation/encoded.h): counts the per-predicate evaluation work of
// violation detection on HOSP (24 hospitals) with boxed Values versus
// integer codes, then times the end-to-end CVTolerantRepair with the
// backend on and off at 1 and 4 threads. Appends everything to
// BENCH_encoded_scan.json — counter records carry the comparison mix
// (boxed vs coded evals), timing records the wall clock.
//
// The acceptance claim lives in the counter records: the encoded scan
// must cut boxed-Value predicate evaluations by at least 2x (it keeps
// only the cross-attribute fallbacks), shifting the rest to integer
// code comparisons.
//
// A second section exercises the block-kernel backend (dc/scan_kernels.h)
// on an Income-sorted CENSUS instance: selective order predicates and
// capped scans, row-at-a-time vs block kernels with zone-map pruning.
// The block path must produce identical violations while skipping blocks
// (eval.blocks_skipped > 0, pinned in the CI baseline) and doing strictly
// fewer code-predicate evaluations.
#include "bench_util.h"

#include <algorithm>
#include <numeric>

#include "dc/eval_index.h"
#include "dc/scan_kernels.h"
#include "dc/violation.h"
#include "relation/encoded.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

// Returns `I` with its rows stably reordered by `attr` (Value total
// order), so dictionary ranks are clustered per 1024-row column block and
// selective order predicates can prune whole blocks through the zone
// maps. Sorting is the bench's stand-in for the natural clustering of
// real ingest orders (log time, id ranges).
Relation SortedBy(const Relation& I, AttrId attr) {
  std::vector<int> order(I.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return I.Get(a, attr) < I.Get(b, attr);
  });
  Relation sorted(I.schema());
  for (int i : order) sorted.AddRow(I.row(i));
  return sorted;
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 24;
  config.measures_per_hospital = 16;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  const ConstraintSet& sigma = hosp.given_oversimplified;

  // Zone-map workload: an Income-sorted CENSUS instance spanning several
  // column blocks (4500 rows = 4 full blocks + a partial tail) plus two
  // selective constraints anchored at the 95th income percentile — a
  // single-tuple order predicate and a guarded progressive-tax pair
  // constraint. On sorted data their rank ranges miss most blocks, which
  // is exactly what the zone maps are supposed to exploit.
  CensusConfig census_config;
  census_config.num_rows = 4500;
  CensusData census = MakeCensus(census_config);
  NoisyData census_noisy = MakeDirtyCensus(census, 0.05);
  Relation census_sorted = SortedBy(census_noisy.dirty, CensusAttrs::kIncome);
  int p95_row = static_cast<int>(census_sorted.num_rows() * 0.95);
  while (p95_row < census_sorted.num_rows() &&
         !census_sorted.Get(p95_row, CensusAttrs::kIncome).is_numeric()) {
    ++p95_row;
  }
  Value income_p95 = census_sorted.Get(p95_row, CensusAttrs::kIncome);
  ConstraintSet zone_sigma;
  zone_sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, CensusAttrs::kIncome, Op::kGeq, income_p95)},
      "z1_income_p95"));
  zone_sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, CensusAttrs::kIncome, Op::kGeq, income_p95),
       Predicate::TwoCell(0, CensusAttrs::kIncome, Op::kGt, 1,
                          CensusAttrs::kIncome),
       Predicate::TwoCell(0, CensusAttrs::kTax, Op::kLt, 1,
                          CensusAttrs::kTax)},
      "z2_progressive_p95"));
  EncodedRelation census_encoded(census_sorted);

  BenchJsonWriter json("BENCH_encoded_scan.json");

  auto run = [&](bool use_encoded, int threads) {
    CVTolerantOptions options = HospCvOptions(hosp, 1.0);
    options.use_encoded = use_encoded;
    options.threads = threads;
    options.max_datarepair_calls = 8;
    return CVTolerantRepair(noisy.dirty, sigma, options);
  };

  // Deterministic work-counter snapshot for the perf-regression CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_encoded_scan.json):
  // one serial encoded repair plus the zone-map detection workload. The
  // baseline pins eval.predicate_evals to zero — boxed Value evaluations
  // reappearing on this path is exactly the regression the encoded
  // backend exists to prevent — and eval.blocks_skipped to nonzero, so
  // the zone maps disengaging is equally a gate failure.
  WriteWorkMetrics("micro_encoded_scan.metrics.json", [&] {
    RepairResult repair = run(true, 1);
    PublishRepairStats(repair.stats);
    FindViolations(census_encoded, zone_sigma);
  });
  if (MetricsOnly()) return 0;

  // ---- Detection work counters: one full violation scan per backend.
  EncodedRelation encoded(noisy.dirty);
  eval_counters::Reset();
  std::vector<Violation> boxed_violations = FindViolations(noisy.dirty, sigma);
  EvalCounters boxed = eval_counters::Snapshot();
  eval_counters::Reset();
  std::vector<Violation> coded_violations = FindViolations(encoded, sigma);
  EvalCounters coded = eval_counters::Snapshot();
  eval_counters::Reset();
  if (boxed_violations != coded_violations) {
    std::cerr << "FATAL: encoded scan diverged from boxed scan\n";
    return 1;
  }

  std::cout << "detection (" << noisy.dirty.num_rows() << " rows, "
            << boxed_violations.size() << " violations)\n"
            << "  boxed backend:   " << boxed.predicate_evals
            << " Value evals, " << boxed.code_predicate_evals
            << " code evals\n"
            << "  encoded backend: " << coded.predicate_evals
            << " Value evals, " << coded.code_predicate_evals
            << " code evals\n";
  json.RecordCounters("encoded_scan/detect/boxed",
                      {{"value_evals", boxed.predicate_evals},
                       {"code_evals", boxed.code_predicate_evals},
                       {"violations",
                        static_cast<int64_t>(boxed_violations.size())}});
  json.RecordCounters("encoded_scan/detect/encoded",
                      {{"value_evals", coded.predicate_evals},
                       {"code_evals", coded.code_predicate_evals},
                       {"violations",
                        static_cast<int64_t>(coded_violations.size())}});

  // ---- Zone-map pruning: row-at-a-time vs block kernels on the sorted
  // CENSUS workload, full scans and capped scans. Violations (and the
  // capped prefix + truncated flag) must be identical; the block path
  // must skip blocks and do strictly fewer code-predicate evaluations.
  {
    auto scan = [&](bool block_scan) {
      scan_kernels::SetBlockScanEnabled(block_scan);
      eval_counters::Reset();
      std::vector<Violation> v = FindViolations(census_encoded, zone_sigma);
      EvalCounters c = eval_counters::Snapshot();
      eval_counters::Reset();
      scan_kernels::SetBlockScanEnabled(true);
      return std::make_pair(v, c);
    };
    auto [row_v, row_c] = scan(false);
    auto [blk_v, blk_c] = scan(true);
    if (row_v != blk_v) {
      std::cerr << "FATAL: block-kernel scan diverged from row-at-a-time\n";
      return 1;
    }
    if (blk_c.blocks_skipped == 0) {
      std::cerr << "FATAL: zone maps skipped no blocks on sorted census\n";
      return 1;
    }
    if (blk_c.code_predicate_evals >= row_c.code_predicate_evals) {
      std::cerr << "FATAL: block kernels did not cut code evals ("
                << blk_c.code_predicate_evals << " vs "
                << row_c.code_predicate_evals << ")\n";
      return 1;
    }
    std::cout << "zone maps (" << census_sorted.num_rows() << " rows, "
              << row_v.size() << " violations)\n"
              << "  row-at-a-time:   " << row_c.code_predicate_evals
              << " code evals\n"
              << "  block kernels:   " << blk_c.code_predicate_evals
              << " code evals, " << blk_c.blocks_scanned
              << " blocks scanned, " << blk_c.blocks_skipped
              << " blocks skipped\n";
    json.RecordCounters("encoded_scan/zonemap/row",
                        {{"code_evals", row_c.code_predicate_evals},
                         {"violations", static_cast<int64_t>(row_v.size())}});
    json.RecordCounters("encoded_scan/zonemap/block",
                        {{"code_evals", blk_c.code_predicate_evals},
                         {"blocks_scanned", blk_c.blocks_scanned},
                         {"blocks_skipped", blk_c.blocks_skipped},
                         {"violations", static_cast<int64_t>(blk_v.size())}});

    // Capped scan: the exact-cap in-order-merge contract must survive the
    // block path — same prefix, same truncated flag.
    auto capped = [&](bool block_scan, int64_t cap) {
      scan_kernels::SetBlockScanEnabled(block_scan);
      eval_counters::Reset();
      bool truncated = false;
      std::vector<Violation> v = FindViolationsOfCapped(
          census_encoded, zone_sigma[1], 1, cap, &truncated);
      EvalCounters c = eval_counters::Snapshot();
      eval_counters::Reset();
      scan_kernels::SetBlockScanEnabled(true);
      return std::make_tuple(v, truncated, c);
    };
    constexpr int64_t kCap = 32;
    auto [row_cap_v, row_trunc, row_cap_c] = capped(false, kCap);
    auto [blk_cap_v, blk_trunc, blk_cap_c] = capped(true, kCap);
    if (row_cap_v != blk_cap_v || row_trunc != blk_trunc) {
      std::cerr << "FATAL: capped block scan diverged (truncated "
                << row_trunc << " vs " << blk_trunc << ")\n";
      return 1;
    }
    std::cout << "  capped (cap=" << kCap << ", truncated=" << blk_trunc
              << "): row " << row_cap_c.code_predicate_evals
              << " code evals, block " << blk_cap_c.code_predicate_evals
              << " code evals\n";
    json.RecordCounters("encoded_scan/zonemap/capped_row",
                        {{"code_evals", row_cap_c.code_predicate_evals},
                         {"truncated", row_trunc ? 1 : 0}});
    json.RecordCounters("encoded_scan/zonemap/capped_block",
                        {{"code_evals", blk_cap_c.code_predicate_evals},
                         {"blocks_skipped", blk_cap_c.blocks_skipped},
                         {"truncated", blk_trunc ? 1 : 0}});
  }

  // ---- End-to-end repair work counters (index + detection together).
  {
    RepairResult with = run(true, 1);
    RepairResult without = run(false, 1);
    std::cout << "cvtolerant repair (variants="
              << with.stats.variants_enumerated << ")\n"
              << "  boxed backend:   " << without.stats.index_predicate_evals
              << " Value evals, " << without.stats.index_code_evals
              << " code evals\n"
              << "  encoded backend: " << with.stats.index_predicate_evals
              << " Value evals, " << with.stats.index_code_evals
              << " code evals\n";
    json.RecordCounters("encoded_scan/repair/boxed",
                        {{"value_evals", without.stats.index_predicate_evals},
                         {"code_evals", without.stats.index_code_evals}});
    json.RecordCounters("encoded_scan/repair/encoded",
                        {{"value_evals", with.stats.index_predicate_evals},
                         {"code_evals", with.stats.index_code_evals}});

    // The acceptance floor: >= 2x fewer boxed Value evaluations.
    if (coded.predicate_evals * 2 > boxed.predicate_evals ||
        with.stats.index_predicate_evals * 2 >
            without.stats.index_predicate_evals) {
      std::cerr << "FATAL: encoded backend did not halve boxed evals\n";
      return 1;
    }
  }

  // ---- Wall clock, best of three, at 1 and 4 threads.
  TimeAcrossThreads("encoded_scan/repair/encoded", {1, 4}, &json,
                    [&](int threads) { run(true, threads); });
  TimeAcrossThreads("encoded_scan/repair/boxed", {1, 4}, &json,
                    [&](int threads) { run(false, threads); });
  return 0;
}
