// Figure 10: scalability in the number of tuples (HOSP, FD comparison).
// Relative is stopped beyond ~600 tuples, mirroring the paper stopping it
// at 1000 because of its extreme time costs; CVtolerant grows roughly
// linearly and stays comparable to Holistic.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  ExperimentTable table(
      "Figure 10 — scalability on number of tuples (HOSP)",
      {"tuples", "algorithm", "f-measure", "time(s)", "changed"});

  for (int hospitals : {20, 40, 80, 160, 250}) {
    HospConfig config;
    config.num_hospitals = hospitals;
    HospData hosp = MakeHosp(config);
    NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
    const ConstraintSet& given = hosp.given_oversimplified;
    int tuples = hosp.clean.num_rows();

    auto add = [&](const std::string& name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(tuples);
      table.Add(name);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
      table.Add(run.stats.changed_cells);
    };

    add("Vrepair", VrepairRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));

    UnifiedOptions unified;
    unified.excluded_attrs = HospBaselineExclusions();
    // DL-style constraint-repair price scales with the data (pattern
    // count), like Chiang & Miller's model.
    unified.constraint_repair_weight = 0.1 * hosp.clean.num_rows();
    add("Unified", UnifiedRepair(noisy.dirty, given, unified));

    if (tuples <= 700) {
      RelativeOptions relative;
      relative.excluded_attrs = HospBaselineExclusions();
      relative.max_added_attrs = 2;
      relative.max_candidates = 10000;
      relative.tau = 0.25 * tuples;
      add("Relative", RelativeRepair(noisy.dirty, given, relative));
    } else {
      table.BeginRow();
      table.Add(tuples);
      table.Add("Relative");
      table.Add("(stopped: too slow)");
      table.Add("-");
      table.Add("-");
    }

    CVTolerantOptions cv = HospCvOptions(hosp, 1.0);
    cv.max_datarepair_calls = 32;
    add("CVtolerant", CVTolerantRepair(noisy.dirty, given, cv));
  }
  table.Print();

  // Serial-vs-parallel CVtolerant on the largest instance of the sweep;
  // points are appended to BENCH_parallel.json (delete it for a fresh
  // run). --threads 1 is the exact legacy serial path.
  std::cout << "\nthread scaling (CVtolerant, HOSP x250):\n";
  HospConfig config;
  config.num_hospitals = 250;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  BenchJsonWriter json("BENCH_parallel.json");
  TimeAcrossThreads(
      "fig10_hosp_fd_cvtolerant", {1, 2, 4}, &json,
      [&](int threads) {
        CVTolerantOptions cv = HospCvOptions(hosp, 1.0);
        cv.max_datarepair_calls = 32;
        cv.threads = threads;
        (void)CVTolerantRepair(noisy.dirty, hosp.given_oversimplified, cv);
      },
      /*repeats=*/2);
  return 0;
}
