// Figure 5: Vfree vs. Holistic data repairing, with and without
// constraint-variance tolerance, over HOSP at varying error rates.
// Series (a) precision, (b) recall, (c) f-measure, (d) time,
// (e) changed cells, (f) solver calls — here as table columns, one block
// per algorithm.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);

  ExperimentTable table(
      "Figure 5 — Vfree vs Holistic +/- CVtolerant (HOSP, theta=1)",
      {"error%", "algorithm", "precision", "recall", "f-measure", "time(s)",
       "changed", "solver_calls"});

  for (double rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    NoisyData noisy = MakeDirtyHosp(hosp, rate);
    const ConstraintSet& given = hosp.given_oversimplified;

    auto add = [&](const char* name, const RepairResult& r) {
      RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
      table.BeginRow();
      table.Add(rate * 100, 0);
      table.Add(name);
      table.Add(run.accuracy.precision);
      table.Add(run.accuracy.recall);
      table.Add(run.accuracy.f_measure);
      table.Add(run.stats.elapsed_seconds, 4);
      table.Add(run.stats.changed_cells);
      table.Add(run.stats.solver_calls);
    };

    add("Vfree", VfreeRepair(noisy.dirty, given));
    add("Holistic", HolisticRepair(noisy.dirty, given));

    CVTolerantOptions cv = HospCvOptions(hosp, 1.0);
    add("CVtolerant+Vfree", CVTolerantRepair(noisy.dirty, given, cv));

    CVTolerantOptions cvh = HospCvOptions(hosp, 1.0);
    cvh.use_vfree = false;
    cvh.max_datarepair_calls = 24;  // Holistic engine has no sharing
    add("CVtolerant+Holistic", CVTolerantRepair(noisy.dirty, given, cvh));
  }
  table.Print();
  return 0;
}
