// Figure 16 (Appendix D.2): predicate deletion. The given HOSP rules are
// overrefined with excessive predicates; sweeping θ downward deletes
// them. Expected: recall grows until a moderate negative θ (all three
// excessive predicates deleted), then precision collapses once needed
// predicates start being deleted (θ = -2).
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);

  ExperimentTable table(
      "Figure 16 — varying theta with predicate removal (HOSP, error 5%)",
      {"theta", "precision", "recall", "f-measure", "changed", "time(s)"});
  for (double theta : {0.0, -0.5, -1.0, -1.5, -2.0}) {
    CVTolerantOptions options = HospCvOptions(hosp, theta);
    options.variants.max_changed_constraints = 4;
    // Keep even drastically oversimplified variants evaluable: the θ=-2
    // point of the figure IS the over-deletion crash.
    options.max_violations_per_tuple = 1000.0;
    RepairResult r =
        CVTolerantRepair(noisy.dirty, hosp.given_overrefined, options);
    RunResult run = Evaluate(hosp.clean, noisy.dirty, r);
    table.BeginRow();
    table.Add(theta, 1);
    table.Add(run.accuracy.precision);
    table.Add(run.accuracy.recall);
    table.Add(run.accuracy.f_measure);
    table.Add(run.stats.changed_cells);
    table.Add(run.stats.elapsed_seconds, 4);
  }
  table.Print();
  return 0;
}
