// Figure 11: changed cells (HOSP) over error rates and tuple counts.
// Expected shapes: methods without constraint repair change far more
// cells than the injected errors; Unified drops sharply once constraint
// repair becomes cheaper than data repair in its unified cost model.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);

  ExperimentTable by_rate(
      "Figure 11(a) — changed cells vs error rate (HOSP)",
      {"error%", "injected", "Vrepair", "Holistic", "Unified", "CVtolerant"});
  for (double rate : {0.02, 0.04, 0.06, 0.08, 0.10}) {
    NoisyData noisy = MakeDirtyHosp(hosp, rate);
    const ConstraintSet& given = hosp.given_oversimplified;
    UnifiedOptions unified_opts;
    unified_opts.excluded_attrs = HospBaselineExclusions();
    unified_opts.constraint_repair_weight = 0.1 * hosp.clean.num_rows();
    by_rate.BeginRow();
    by_rate.Add(rate * 100, 0);
    by_rate.Add(static_cast<int>(noisy.dirty_cells.size()));
    by_rate.Add(VrepairRepair(noisy.dirty, given).stats.changed_cells);
    by_rate.Add(HolisticRepair(noisy.dirty, given).stats.changed_cells);
    by_rate.Add(
        UnifiedRepair(noisy.dirty, given, unified_opts).stats.changed_cells);
    by_rate.Add(CVTolerantRepair(noisy.dirty, given, HospCvOptions(hosp, 1.0))
                    .stats.changed_cells);
  }
  by_rate.Print();

  // Sweep the Unified model's constraint-repair weight to expose the
  // sharp drop of Figure 11(b): once data repair costs more than the
  // model's price for widening the FD, Unified flips to constraint repair
  // and its changed-cell count collapses.
  NoisyData noisy = MakeDirtyHosp(hosp, 0.06);
  ExperimentTable unified_cliff(
      "Figure 11(b) — Unified's changed-cell cliff (HOSP, error 6%)",
      {"constraint_repair_weight", "changed_cells"});
  for (double w : {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
    UnifiedOptions opts;
    opts.excluded_attrs = HospBaselineExclusions();
    opts.constraint_repair_weight = w;
    unified_cliff.BeginRow();
    unified_cliff.Add(w, 0);
    unified_cliff.Add(UnifiedRepair(noisy.dirty, hosp.given_oversimplified,
                                    opts)
                          .stats.changed_cells);
  }
  unified_cliff.Print();

  // CVtolerant under each repair strategy (DESIGN.md §14): the update
  // model changes cells in place; subset repair trades changed cells for
  // tombstoned tuples; hybrid deletes only the tuples whose update cost
  // exceeds their deletion weight.
  ExperimentTable by_strategy(
      "Figure 11(c) — CVtolerant by --strategy (HOSP, error 6%)",
      {"strategy", "changed_cells", "rows_deleted", "cost"});
  for (RepairStrategy strategy :
       {RepairStrategy::kUpdate, RepairStrategy::kDelete,
        RepairStrategy::kHybrid}) {
    CVTolerantOptions options = HospCvOptions(hosp, 1.0);
    options.vfree.strategy = strategy;
    RepairResult r = CVTolerantRepair(noisy.dirty, hosp.given_oversimplified,
                                      options);
    by_strategy.BeginRow();
    by_strategy.Add(RepairStrategyToString(strategy));
    by_strategy.Add(r.stats.changed_cells);
    by_strategy.Add(r.stats.rows_deleted);
    by_strategy.Add(r.stats.repair_cost, 1);
  }
  by_strategy.Print();
  return 0;
}
