#ifndef CVREPAIR_BENCH_BENCH_UTIL_H_
#define CVREPAIR_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benches. Each bench binary
// regenerates the series of one figure of the paper's evaluation and
// prints them as an aligned table (same x-axis, one row per point).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/census.h"
#include "data/gps.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/greedy.h"
#include "repair/holistic.h"
#include "repair/relative.h"
#include "repair/unified.h"
#include "repair/vfree.h"
#include "repair/vrepair.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace bench {

/// Wall-clock stopwatch for the serial-vs-parallel timing sections.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable timing records, one JSON object per line:
///   {"bench": "...", "threads": N, "ms": M}
/// Opened in append mode so every bench binary can contribute to the same
/// BENCH_parallel.json (delete the file first for a fresh run).
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& path)
      : out_(path, std::ios::app) {}

  void Record(const std::string& bench, int threads, double ms) {
    out_ << "{\"bench\": \"" << bench << "\", \"threads\": " << threads
         << ", \"ms\": " << ms << "}\n";
    out_.flush();
  }

  /// Work-counter record: one JSON object with arbitrary integer fields,
  /// for benches whose claim is about operation counts rather than time.
  void RecordCounters(
      const std::string& bench,
      const std::vector<std::pair<std::string, int64_t>>& fields) {
    out_ << "{\"bench\": \"" << bench << "\"";
    for (const auto& [key, value] : fields) {
      out_ << ", \"" << key << "\": " << value;
    }
    out_ << "}\n";
    out_.flush();
  }

 private:
  std::ofstream out_;
};

/// Times `fn(threads)` at each thread budget (best of `repeats` runs to
/// damp scheduler noise), prints the point, and appends it to `json`.
inline void TimeAcrossThreads(const std::string& bench,
                              const std::vector<int>& thread_counts,
                              BenchJsonWriter* json,
                              const std::function<void(int)>& fn,
                              int repeats = 3) {
  for (int threads : thread_counts) {
    ThreadPool::SetNumThreads(threads);
    double best_ms = 0.0;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      fn(threads);
      double ms = timer.ElapsedMs();
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    std::cout << bench << "  threads=" << threads << "  ms=" << best_ms
              << "\n";
    if (json) json->Record(bench, threads, best_ms);
  }
  ThreadPool::SetNumThreads(1);
}

/// Per-batch latency sample with nearest-rank percentile reads — shared by
/// the serve load generator (tools/cvrepair_cli --serve-bench) and
/// bench/micro_serve, which report p50/p99 batch latency and sustained
/// edits/sec from the same recorded timings.
class LatencyHistogram {
 public:
  void Record(double seconds) { samples_.push_back(seconds); }
  void RecordAll(const std::vector<double>& seconds) {
    samples_.insert(samples_.end(), seconds.begin(), seconds.end());
  }

  size_t count() const { return samples_.size(); }

  double TotalSeconds() const {
    double total = 0.0;
    for (double s : samples_) total += s;
    return total;
  }

  /// Nearest-rank percentile over the recorded samples: the
  /// ceil(p/100 * n)-th smallest (p in (0, 100]); 0 when empty. With 100
  /// samples, Percentile(50) is the 50th smallest and Percentile(99) the
  /// 99th — the fixed-sample unit test pins exactly this.
  double Percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
    if (rank < 1) rank = 1;
    if (rank > sorted.size()) rank = sorted.size();
    return sorted[rank - 1];
  }

  double p50() const { return Percentile(50.0); }
  double p99() const { return Percentile(99.0); }

 private:
  std::vector<double> samples_;
};

/// True when CVREPAIR_METRICS_ONLY asks a bench binary to emit only its
/// deterministic metrics section. The perf-regression CI job sets it so
/// the wall-clock parts (meaningless on shared runners) are skipped.
inline bool MetricsOnly() {
  const char* v = std::getenv("CVREPAIR_METRICS_ONLY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Deterministic work-counter section backing the perf-regression CI gate:
/// resets the registry, runs `workload` serially, and writes the kWork
/// snapshot to `path`. tools/check_metrics.py compares the file against
/// the checked-in bench/baselines/ copy. Returns the snapshot so benches
/// can assert on individual counters.
inline MetricsSnapshot WriteWorkMetrics(const std::string& path,
                                        const std::function<void()>& workload) {
  int saved_threads = ThreadPool::num_threads();
  ThreadPool::SetNumThreads(1);
  MetricsRegistry::Global().ResetAll();
  workload();
  MetricsSnapshot snapshot = MetricsRegistry::Global().SnapshotWork();
  ThreadPool::SetNumThreads(saved_threads);
  if (!WriteMetricsJsonFile(path, snapshot)) {
    std::cerr << "FATAL: cannot write metrics file " << path << "\n";
    std::exit(1);
  }
  std::cout << "metrics: " << path << " (" << snapshot.size()
            << " counters)\n";
  return snapshot;
}

/// Everything a figure series needs about one algorithm run.
struct RunResult {
  AccuracyResult accuracy;
  double mnad = 0.0;
  double relative_accuracy = 0.0;
  RepairStats stats;
};

inline RunResult Evaluate(const Relation& clean, const Relation& dirty,
                          const RepairResult& r,
                          const std::vector<AttrId>& numeric_attrs = {}) {
  RunResult out;
  out.accuracy = CellAccuracy(clean, dirty, r.repaired);
  if (!numeric_attrs.empty()) {
    out.mnad = Mnad(clean, r.repaired, numeric_attrs);
    out.relative_accuracy =
        RelativeAccuracy(clean, dirty, r.repaired, numeric_attrs);
  }
  out.stats = r.stats;
  return out;
}

/// Standard CVtolerant options for a HOSP workload.
inline CVTolerantOptions HospCvOptions(const HospData& hosp, double theta) {
  CVTolerantOptions options;
  options.variants.theta = theta;
  options.variants.space = hosp.space;
  return options;
}

/// Standard noisy-HOSP construction.
inline NoisyData MakeDirtyHosp(const HospData& hosp, double error_rate,
                               int errors_per_tuple = 1, uint64_t seed = 42) {
  NoiseConfig noise;
  noise.error_rate = error_rate;
  noise.target_attrs = hosp.noise_attrs;
  noise.errors_per_tuple = errors_per_tuple;
  noise.seed = seed;
  return InjectNoise(hosp.clean, noise);
}

inline NoisyData MakeDirtyCensus(const CensusData& census, double error_rate,
                                 uint64_t seed = 42) {
  NoiseConfig noise;
  noise.error_rate = error_rate;
  noise.target_attrs = census.noise_attrs;
  noise.seed = seed;
  return InjectNoise(census.clean, noise);
}

/// Attribute exclusions granted to the FD baselines on HOSP: only the
/// per-row numeric measure values. The published Unified/Relative models
/// have no data-driven meaningful-predicate test, so key-like categorical
/// extensions (e.g. MeasureCode) remain available to them and their DL/τ
/// objectives often prefer those vacuous refinements — the behaviour
/// behind their mediocre accuracy in the paper's Figures 9-11.
inline std::vector<AttrId> HospBaselineExclusions() {
  return {HospAttrs::kSample, HospAttrs::kScore};
}

}  // namespace bench
}  // namespace cvrepair

#endif  // CVREPAIR_BENCH_BENCH_UTIL_H_
