// Extension experiment: CFD-shaped rules with constants on the TAX
// workload (Section 6 of the paper: DCs subsume CFDs via constant
// predicates, which FD-based repair models cannot express). The given
// rules are overrefined; the θ sweep shows the deletion recovery, with a
// *constant* predicate (Dependents = 0) among the deletions.
#include "bench_util.h"
#include "data/tax.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  TaxData tax = MakeTax(TaxConfig{});

  ExperimentTable table(
      "Extension — CFD rules with constants (TAX, error on Rate/Tax)",
      {"error%", "algorithm", "precision", "recall", "f-measure", "changed",
       "time(s)"});
  for (double rate : {0.04, 0.08}) {
    NoiseConfig noise;
    noise.error_rate = rate;
    noise.target_attrs = {TaxAttrs::kRate, TaxAttrs::kTax};
    NoisyData dirty = InjectNoise(tax.clean, noise);

    auto add = [&](const std::string& name, const RepairResult& r) {
      AccuracyResult acc = CellAccuracy(tax.clean, dirty.dirty, r.repaired);
      table.BeginRow();
      table.Add(rate * 100, 0);
      table.Add(name);
      table.Add(acc.precision);
      table.Add(acc.recall);
      table.Add(acc.f_measure);
      table.Add(r.stats.changed_cells);
      table.Add(r.stats.elapsed_seconds, 4);
    };

    add("Vfree(given)", VfreeRepair(dirty.dirty, tax.given));
    add("Holistic(given)", HolisticRepair(dirty.dirty, tax.given));
    add("Vfree(precise)", VfreeRepair(dirty.dirty, tax.precise));
    for (double theta : {-0.5, -1.0}) {
      CVTolerantOptions options;
      options.variants.theta = theta;
      options.variants.space = tax.space;
      options.variants.max_changed_constraints = 2;
      add("CVtolerant(theta=" + std::to_string(theta).substr(0, 4) + ")",
          CVTolerantRepair(dirty.dirty, tax.given, options));
    }
  }
  table.Print();
  return 0;
}
