// Figure 8: varying θ over CENSUS (error 7%): relative accuracy, MNAD,
// and changed cells. A moderate θ (the operator substitutions cost 0.5
// each) is best; larger θ inserts overfitting predicates.
#include "bench_util.h"

using namespace cvrepair;
using namespace cvrepair::bench;

int main() {
  CensusConfig config;
  config.num_rows = 300;
  CensusData census = MakeCensus(config);
  NoisyData noisy = MakeDirtyCensus(census, 0.07);

  ExperimentTable table(
      "Figure 8 — varying tolerance level theta (CENSUS, error 7%)",
      {"theta", "rel.accuracy", "MNAD", "changed", "variants", "time(s)"});
  for (double theta : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    CVTolerantOptions options;
    options.variants.theta = theta;
    options.variants.space = census.space;
    RepairResult r = CVTolerantRepair(noisy.dirty, census.given, options);
    RunResult run =
        Evaluate(census.clean, noisy.dirty, r, census.noise_attrs);
    table.BeginRow();
    table.Add(theta, 1);
    table.Add(run.relative_accuracy);
    table.Add(run.mnad, 4);
    table.Add(run.stats.changed_cells);
    table.Add(run.stats.variants_enumerated);
    table.Add(run.stats.elapsed_seconds, 4);
  }
  table.Print();
  return 0;
}
