// Microbench for the streaming batch-repair subsystem
// (repair/streaming.h): replays held-out HOSP rows plus synthetic edits
// as batches through a StreamingRepairer and compares the detection work
// and wall clock against the from-scratch alternative (full re-detection
// of the accumulated instance every batch, same scoped solve). Appends
// everything to BENCH_stream_repair.json.
//
// The acceptance claim lives in the stream.* counters: delta detection
// must re-check far fewer (constraint, row) pairs than one full scan per
// batch — stream.rows_rechecked << batches * rows * |sigma| — which the
// checked-in baseline pins for the perf-regression CI gate.
#include "bench_util.h"

#include "dc/violation.h"
#include "relation/encoded.h"
#include "repair/streaming.h"

using namespace cvrepair;
using namespace cvrepair::bench;

namespace {

constexpr int kBatches = 8;
constexpr int kBatchSize = 16;

void ApplyEditsToRelation(const std::vector<RowEdit>& edits, Relation* W) {
  for (const RowEdit& e : edits) {
    if (e.insert) {
      W->AddRow(e.values);
    } else {
      W->SetValue(e.row, e.attr, e.value);
    }
  }
}

}  // namespace

int main() {
  HospConfig config;
  config.num_hospitals = 24;
  config.measures_per_hospital = 16;
  HospData hosp = MakeHosp(config);
  NoisyData noisy = MakeDirtyHosp(hosp, 0.05);
  const ConstraintSet& sigma = hosp.given_oversimplified;
  ReplayWorkload replay =
      MakeReplayWorkload(noisy.dirty, kBatches, kBatchSize);

  BenchJsonWriter json("BENCH_stream_repair.json");

  StreamingOptions stream_options;
  stream_options.repair = HospCvOptions(hosp, 1.0);
  stream_options.repair.max_datarepair_calls = 8;

  // Deterministic work-counter snapshot for the perf-regression CI gate
  // (tools/check_metrics.py vs bench/baselines/micro_stream_repair.json):
  // one serial streamed replay. The baseline pins stream.rows_rechecked —
  // detection work ballooning back toward full rescans is exactly the
  // regression dirty-component localization exists to prevent.
  int64_t final_rows = 0;
  MetricsSnapshot snapshot =
      WriteWorkMetrics("micro_stream_repair.metrics.json", [&] {
        StreamingOptions options = stream_options;
        options.repair.threads = 1;
        StreamingRepairer streamer(replay.base, sigma, options);
        for (const std::vector<RowEdit>& batch : replay.batches) {
          streamer.ApplyBatch(batch);
        }
        final_rows = streamer.current().num_rows();
        PublishRepairStats(streamer.initial_stats());
      });

  // The localization floor, enforced even in metrics-only CI runs: a full
  // re-detection per batch would scan rows * |sigma| pairs each time.
  const int64_t full_rescans =
      static_cast<int64_t>(kBatches) * final_rows *
      static_cast<int64_t>(sigma.size());
  const int64_t rechecked = snapshot.at("stream.rows_rechecked");
  std::cout << "stream detection: " << rechecked << " row rechecks vs "
            << full_rescans << " for per-batch full scans\n";
  json.RecordCounters(
      "stream_repair/detection",
      {{"rows", final_rows},
       {"batches", snapshot.at("stream.batches")},
       {"edits", snapshot.at("stream.edits")},
       {"rows_ingested", snapshot.at("stream.rows_ingested")},
       {"rows_rechecked", rechecked},
       {"full_rescan_equivalent", full_rescans},
       {"components_resolved", snapshot.at("stream.components_resolved")},
       {"cells_changed", snapshot.at("stream.cells_changed")}});
  if (rechecked * 4 > full_rescans) {
    std::cerr << "FATAL: streamed detection did not stay under 1/4 of "
                 "per-batch full rescans\n";
    return 1;
  }
  if (MetricsOnly()) return 0;

  // ---- Wall clock: streamed replay vs from-scratch per-batch repair
  // (full re-detection on the accumulated instance, same scoped solve),
  // best of three, at 1 and 4 threads. The initial whole-instance repair
  // is identical in both modes and runs outside the timed region.
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    double best_streamed = 0.0;
    double best_scratch = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      StreamingOptions options = stream_options;
      options.repair.threads = threads;
      StreamingRepairer streamer(replay.base, sigma, options);
      WallTimer timer;
      for (const std::vector<RowEdit>& batch : replay.batches) {
        streamer.ApplyBatch(batch);
      }
      double ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_streamed) best_streamed = ms;

      CVTolerantOptions scratch_options = options.repair;
      RepairResult initial =
          CVTolerantRepair(replay.base, sigma, scratch_options);
      Relation W = initial.repaired;
      int64_t fresh = 1000000;
      timer.Reset();
      for (const std::vector<RowEdit>& batch : replay.batches) {
        ApplyEditsToRelation(batch, &W);
        EncodedRelation E(W);  // rebuilt per batch, like the detection
        std::vector<Violation> violations =
            FindViolations(E, initial.satisfied_constraints);
        DomainStats stats_of_W(W);
        RepairStats stats;
        MaterializedCache cold;
        std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
            W, stats_of_W, initial.satisfied_constraints,
            std::move(violations), scratch_options, &cold, &stats, &fresh,
            &E);
        for (auto& [cell, value] : fix->assignments) {
          W.SetValue(cell, std::move(value));
        }
      }
      ms = timer.ElapsedMs();
      if (rep == 0 || ms < best_scratch) best_scratch = ms;
    }
    std::cout << "stream_repair/streamed  threads=" << threads
              << "  ms=" << best_streamed << "\n"
              << "stream_repair/scratch   threads=" << threads
              << "  ms=" << best_scratch << "\n";
    json.Record("stream_repair/streamed", threads, best_streamed);
    json.Record("stream_repair/scratch", threads, best_scratch);
  }
  ThreadPool::SetNumThreads(1);
  return 0;
}
