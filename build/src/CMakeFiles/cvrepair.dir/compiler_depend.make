# Empty compiler generated dependencies file for cvrepair.
# This may be replaced when dependencies are built.
