
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/census.cc" "src/CMakeFiles/cvrepair.dir/data/census.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/data/census.cc.o.d"
  "/root/repo/src/data/gps.cc" "src/CMakeFiles/cvrepair.dir/data/gps.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/data/gps.cc.o.d"
  "/root/repo/src/data/hosp.cc" "src/CMakeFiles/cvrepair.dir/data/hosp.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/data/hosp.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/CMakeFiles/cvrepair.dir/data/noise.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/data/noise.cc.o.d"
  "/root/repo/src/data/tax.cc" "src/CMakeFiles/cvrepair.dir/data/tax.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/data/tax.cc.o.d"
  "/root/repo/src/dc/constraint.cc" "src/CMakeFiles/cvrepair.dir/dc/constraint.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/constraint.cc.o.d"
  "/root/repo/src/dc/incremental.cc" "src/CMakeFiles/cvrepair.dir/dc/incremental.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/incremental.cc.o.d"
  "/root/repo/src/dc/op.cc" "src/CMakeFiles/cvrepair.dir/dc/op.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/op.cc.o.d"
  "/root/repo/src/dc/parser.cc" "src/CMakeFiles/cvrepair.dir/dc/parser.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/parser.cc.o.d"
  "/root/repo/src/dc/predicate.cc" "src/CMakeFiles/cvrepair.dir/dc/predicate.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/predicate.cc.o.d"
  "/root/repo/src/dc/predicate_space.cc" "src/CMakeFiles/cvrepair.dir/dc/predicate_space.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/predicate_space.cc.o.d"
  "/root/repo/src/dc/violation.cc" "src/CMakeFiles/cvrepair.dir/dc/violation.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/dc/violation.cc.o.d"
  "/root/repo/src/discovery/dc_discovery.cc" "src/CMakeFiles/cvrepair.dir/discovery/dc_discovery.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/discovery/dc_discovery.cc.o.d"
  "/root/repo/src/discovery/fd_discovery.cc" "src/CMakeFiles/cvrepair.dir/discovery/fd_discovery.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/discovery/fd_discovery.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/cvrepair.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/explanation.cc" "src/CMakeFiles/cvrepair.dir/eval/explanation.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/eval/explanation.cc.o.d"
  "/root/repo/src/eval/json_report.cc" "src/CMakeFiles/cvrepair.dir/eval/json_report.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/eval/json_report.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/cvrepair.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/eval/metrics.cc.o.d"
  "/root/repo/src/graph/bounds.cc" "src/CMakeFiles/cvrepair.dir/graph/bounds.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/graph/bounds.cc.o.d"
  "/root/repo/src/graph/conflict_hypergraph.cc" "src/CMakeFiles/cvrepair.dir/graph/conflict_hypergraph.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/graph/conflict_hypergraph.cc.o.d"
  "/root/repo/src/graph/vertex_cover.cc" "src/CMakeFiles/cvrepair.dir/graph/vertex_cover.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/graph/vertex_cover.cc.o.d"
  "/root/repo/src/relation/csv.cc" "src/CMakeFiles/cvrepair.dir/relation/csv.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/csv.cc.o.d"
  "/root/repo/src/relation/domain_stats.cc" "src/CMakeFiles/cvrepair.dir/relation/domain_stats.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/domain_stats.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/cvrepair.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/cvrepair.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/schema.cc.o.d"
  "/root/repo/src/relation/schema_parser.cc" "src/CMakeFiles/cvrepair.dir/relation/schema_parser.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/schema_parser.cc.o.d"
  "/root/repo/src/relation/value.cc" "src/CMakeFiles/cvrepair.dir/relation/value.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/relation/value.cc.o.d"
  "/root/repo/src/repair/cell_weights.cc" "src/CMakeFiles/cvrepair.dir/repair/cell_weights.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/cell_weights.cc.o.d"
  "/root/repo/src/repair/costs.cc" "src/CMakeFiles/cvrepair.dir/repair/costs.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/costs.cc.o.d"
  "/root/repo/src/repair/cvtolerant.cc" "src/CMakeFiles/cvrepair.dir/repair/cvtolerant.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/cvtolerant.cc.o.d"
  "/root/repo/src/repair/exact.cc" "src/CMakeFiles/cvrepair.dir/repair/exact.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/exact.cc.o.d"
  "/root/repo/src/repair/greedy.cc" "src/CMakeFiles/cvrepair.dir/repair/greedy.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/greedy.cc.o.d"
  "/root/repo/src/repair/holistic.cc" "src/CMakeFiles/cvrepair.dir/repair/holistic.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/holistic.cc.o.d"
  "/root/repo/src/repair/relative.cc" "src/CMakeFiles/cvrepair.dir/repair/relative.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/relative.cc.o.d"
  "/root/repo/src/repair/repair_result.cc" "src/CMakeFiles/cvrepair.dir/repair/repair_result.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/repair_result.cc.o.d"
  "/root/repo/src/repair/unified.cc" "src/CMakeFiles/cvrepair.dir/repair/unified.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/unified.cc.o.d"
  "/root/repo/src/repair/vfree.cc" "src/CMakeFiles/cvrepair.dir/repair/vfree.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/vfree.cc.o.d"
  "/root/repo/src/repair/vrepair.cc" "src/CMakeFiles/cvrepair.dir/repair/vrepair.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/repair/vrepair.cc.o.d"
  "/root/repo/src/solver/components.cc" "src/CMakeFiles/cvrepair.dir/solver/components.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/solver/components.cc.o.d"
  "/root/repo/src/solver/csp_solver.cc" "src/CMakeFiles/cvrepair.dir/solver/csp_solver.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/solver/csp_solver.cc.o.d"
  "/root/repo/src/solver/materialized_cache.cc" "src/CMakeFiles/cvrepair.dir/solver/materialized_cache.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/solver/materialized_cache.cc.o.d"
  "/root/repo/src/solver/repair_context.cc" "src/CMakeFiles/cvrepair.dir/solver/repair_context.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/solver/repair_context.cc.o.d"
  "/root/repo/src/variation/edit_cost.cc" "src/CMakeFiles/cvrepair.dir/variation/edit_cost.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/variation/edit_cost.cc.o.d"
  "/root/repo/src/variation/predicate_weights.cc" "src/CMakeFiles/cvrepair.dir/variation/predicate_weights.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/variation/predicate_weights.cc.o.d"
  "/root/repo/src/variation/variant_generator.cc" "src/CMakeFiles/cvrepair.dir/variation/variant_generator.cc.o" "gcc" "src/CMakeFiles/cvrepair.dir/variation/variant_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
