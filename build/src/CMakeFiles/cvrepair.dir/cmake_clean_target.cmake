file(REMOVE_RECURSE
  "libcvrepair.a"
)
