# Empty compiler generated dependencies file for fig16_hosp_negative_theta.
# This may be replaced when dependencies are built.
