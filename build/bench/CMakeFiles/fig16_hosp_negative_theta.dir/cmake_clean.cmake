file(REMOVE_RECURSE
  "CMakeFiles/fig16_hosp_negative_theta.dir/fig16_hosp_negative_theta.cc.o"
  "CMakeFiles/fig16_hosp_negative_theta.dir/fig16_hosp_negative_theta.cc.o.d"
  "fig16_hosp_negative_theta"
  "fig16_hosp_negative_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_hosp_negative_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
