# Empty dependencies file for fig13_census_dc_scalability.
# This may be replaced when dependencies are built.
