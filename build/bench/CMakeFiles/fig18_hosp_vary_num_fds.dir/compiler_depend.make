# Empty compiler generated dependencies file for fig18_hosp_vary_num_fds.
# This may be replaced when dependencies are built.
