file(REMOVE_RECURSE
  "CMakeFiles/fig18_hosp_vary_num_fds.dir/fig18_hosp_vary_num_fds.cc.o"
  "CMakeFiles/fig18_hosp_vary_num_fds.dir/fig18_hosp_vary_num_fds.cc.o.d"
  "fig18_hosp_vary_num_fds"
  "fig18_hosp_vary_num_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_hosp_vary_num_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
