# Empty dependencies file for fig08_census_vary_theta.
# This may be replaced when dependencies are built.
