file(REMOVE_RECURSE
  "CMakeFiles/fig08_census_vary_theta.dir/fig08_census_vary_theta.cc.o"
  "CMakeFiles/fig08_census_vary_theta.dir/fig08_census_vary_theta.cc.o.d"
  "fig08_census_vary_theta"
  "fig08_census_vary_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_census_vary_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
