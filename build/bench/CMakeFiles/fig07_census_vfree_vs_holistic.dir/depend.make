# Empty dependencies file for fig07_census_vfree_vs_holistic.
# This may be replaced when dependencies are built.
