file(REMOVE_RECURSE
  "CMakeFiles/fig07_census_vfree_vs_holistic.dir/fig07_census_vfree_vs_holistic.cc.o"
  "CMakeFiles/fig07_census_vfree_vs_holistic.dir/fig07_census_vfree_vs_holistic.cc.o.d"
  "fig07_census_vfree_vs_holistic"
  "fig07_census_vfree_vs_holistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_census_vfree_vs_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
