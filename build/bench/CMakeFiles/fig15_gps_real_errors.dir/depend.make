# Empty dependencies file for fig15_gps_real_errors.
# This may be replaced when dependencies are built.
