file(REMOVE_RECURSE
  "CMakeFiles/fig15_gps_real_errors.dir/fig15_gps_real_errors.cc.o"
  "CMakeFiles/fig15_gps_real_errors.dir/fig15_gps_real_errors.cc.o.d"
  "fig15_gps_real_errors"
  "fig15_gps_real_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_gps_real_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
