# Empty dependencies file for tab02_approximation_factors.
# This may be replaced when dependencies are built.
