file(REMOVE_RECURSE
  "CMakeFiles/tab02_approximation_factors.dir/tab02_approximation_factors.cc.o"
  "CMakeFiles/tab02_approximation_factors.dir/tab02_approximation_factors.cc.o.d"
  "tab02_approximation_factors"
  "tab02_approximation_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_approximation_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
