# Empty compiler generated dependencies file for fig17_hosp_vary_lambda.
# This may be replaced when dependencies are built.
