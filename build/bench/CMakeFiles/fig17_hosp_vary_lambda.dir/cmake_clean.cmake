file(REMOVE_RECURSE
  "CMakeFiles/fig17_hosp_vary_lambda.dir/fig17_hosp_vary_lambda.cc.o"
  "CMakeFiles/fig17_hosp_vary_lambda.dir/fig17_hosp_vary_lambda.cc.o.d"
  "fig17_hosp_vary_lambda"
  "fig17_hosp_vary_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_hosp_vary_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
