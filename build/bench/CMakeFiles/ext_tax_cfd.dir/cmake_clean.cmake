file(REMOVE_RECURSE
  "CMakeFiles/ext_tax_cfd.dir/ext_tax_cfd.cc.o"
  "CMakeFiles/ext_tax_cfd.dir/ext_tax_cfd.cc.o.d"
  "ext_tax_cfd"
  "ext_tax_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tax_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
