# Empty compiler generated dependencies file for ext_tax_cfd.
# This may be replaced when dependencies are built.
