file(REMOVE_RECURSE
  "CMakeFiles/fig19_hosp_vary_num_attrs.dir/fig19_hosp_vary_num_attrs.cc.o"
  "CMakeFiles/fig19_hosp_vary_num_attrs.dir/fig19_hosp_vary_num_attrs.cc.o.d"
  "fig19_hosp_vary_num_attrs"
  "fig19_hosp_vary_num_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_hosp_vary_num_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
