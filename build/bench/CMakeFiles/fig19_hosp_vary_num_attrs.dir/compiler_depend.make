# Empty compiler generated dependencies file for fig19_hosp_vary_num_attrs.
# This may be replaced when dependencies are built.
