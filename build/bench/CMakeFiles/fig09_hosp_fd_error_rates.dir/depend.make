# Empty dependencies file for fig09_hosp_fd_error_rates.
# This may be replaced when dependencies are built.
