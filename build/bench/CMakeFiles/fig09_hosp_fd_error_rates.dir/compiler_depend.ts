# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig09_hosp_fd_error_rates.
