file(REMOVE_RECURSE
  "CMakeFiles/fig09_hosp_fd_error_rates.dir/fig09_hosp_fd_error_rates.cc.o"
  "CMakeFiles/fig09_hosp_fd_error_rates.dir/fig09_hosp_fd_error_rates.cc.o.d"
  "fig09_hosp_fd_error_rates"
  "fig09_hosp_fd_error_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hosp_fd_error_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
