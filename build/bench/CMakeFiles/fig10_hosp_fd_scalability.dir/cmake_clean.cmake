file(REMOVE_RECURSE
  "CMakeFiles/fig10_hosp_fd_scalability.dir/fig10_hosp_fd_scalability.cc.o"
  "CMakeFiles/fig10_hosp_fd_scalability.dir/fig10_hosp_fd_scalability.cc.o.d"
  "fig10_hosp_fd_scalability"
  "fig10_hosp_fd_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hosp_fd_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
