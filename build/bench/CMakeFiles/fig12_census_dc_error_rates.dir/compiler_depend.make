# Empty compiler generated dependencies file for fig12_census_dc_error_rates.
# This may be replaced when dependencies are built.
