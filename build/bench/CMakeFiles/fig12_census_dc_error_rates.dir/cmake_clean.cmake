file(REMOVE_RECURSE
  "CMakeFiles/fig12_census_dc_error_rates.dir/fig12_census_dc_error_rates.cc.o"
  "CMakeFiles/fig12_census_dc_error_rates.dir/fig12_census_dc_error_rates.cc.o.d"
  "fig12_census_dc_error_rates"
  "fig12_census_dc_error_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_census_dc_error_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
