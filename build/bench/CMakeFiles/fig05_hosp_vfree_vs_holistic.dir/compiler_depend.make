# Empty compiler generated dependencies file for fig05_hosp_vfree_vs_holistic.
# This may be replaced when dependencies are built.
