file(REMOVE_RECURSE
  "CMakeFiles/fig05_hosp_vfree_vs_holistic.dir/fig05_hosp_vfree_vs_holistic.cc.o"
  "CMakeFiles/fig05_hosp_vfree_vs_holistic.dir/fig05_hosp_vfree_vs_holistic.cc.o.d"
  "fig05_hosp_vfree_vs_holistic"
  "fig05_hosp_vfree_vs_holistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_hosp_vfree_vs_holistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
