# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_hosp_vfree_vs_holistic.
