# Empty compiler generated dependencies file for fig06_hosp_vary_theta.
# This may be replaced when dependencies are built.
