# Empty compiler generated dependencies file for fig14_hosp_correlated_errors.
# This may be replaced when dependencies are built.
