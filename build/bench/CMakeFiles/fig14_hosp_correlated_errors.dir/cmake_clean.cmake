file(REMOVE_RECURSE
  "CMakeFiles/fig14_hosp_correlated_errors.dir/fig14_hosp_correlated_errors.cc.o"
  "CMakeFiles/fig14_hosp_correlated_errors.dir/fig14_hosp_correlated_errors.cc.o.d"
  "fig14_hosp_correlated_errors"
  "fig14_hosp_correlated_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hosp_correlated_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
