file(REMOVE_RECURSE
  "CMakeFiles/fig11_hosp_changed_cells.dir/fig11_hosp_changed_cells.cc.o"
  "CMakeFiles/fig11_hosp_changed_cells.dir/fig11_hosp_changed_cells.cc.o.d"
  "fig11_hosp_changed_cells"
  "fig11_hosp_changed_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hosp_changed_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
