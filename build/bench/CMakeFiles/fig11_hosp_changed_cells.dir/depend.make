# Empty dependencies file for fig11_hosp_changed_cells.
# This may be replaced when dependencies are built.
