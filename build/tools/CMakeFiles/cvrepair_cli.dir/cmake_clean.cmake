file(REMOVE_RECURSE
  "CMakeFiles/cvrepair_cli.dir/cvrepair_cli.cc.o"
  "CMakeFiles/cvrepair_cli.dir/cvrepair_cli.cc.o.d"
  "cvrepair_cli"
  "cvrepair_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvrepair_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
