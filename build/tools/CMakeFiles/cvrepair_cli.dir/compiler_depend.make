# Empty compiler generated dependencies file for cvrepair_cli.
# This may be replaced when dependencies are built.
