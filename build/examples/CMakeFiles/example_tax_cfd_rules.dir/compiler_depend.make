# Empty compiler generated dependencies file for example_tax_cfd_rules.
# This may be replaced when dependencies are built.
