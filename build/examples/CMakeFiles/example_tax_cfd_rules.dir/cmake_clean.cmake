file(REMOVE_RECURSE
  "CMakeFiles/example_tax_cfd_rules.dir/tax_cfd_rules.cpp.o"
  "CMakeFiles/example_tax_cfd_rules.dir/tax_cfd_rules.cpp.o.d"
  "example_tax_cfd_rules"
  "example_tax_cfd_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tax_cfd_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
