file(REMOVE_RECURSE
  "CMakeFiles/example_discovery_workflow.dir/discovery_workflow.cpp.o"
  "CMakeFiles/example_discovery_workflow.dir/discovery_workflow.cpp.o.d"
  "example_discovery_workflow"
  "example_discovery_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_discovery_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
