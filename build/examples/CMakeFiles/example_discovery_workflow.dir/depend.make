# Empty dependencies file for example_discovery_workflow.
# This may be replaced when dependencies are built.
