# Empty compiler generated dependencies file for example_theta_tuning.
# This may be replaced when dependencies are built.
