file(REMOVE_RECURSE
  "CMakeFiles/example_theta_tuning.dir/theta_tuning.cpp.o"
  "CMakeFiles/example_theta_tuning.dir/theta_tuning.cpp.o.d"
  "example_theta_tuning"
  "example_theta_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_theta_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
