# Empty dependencies file for example_census_numeric.
# This may be replaced when dependencies are built.
