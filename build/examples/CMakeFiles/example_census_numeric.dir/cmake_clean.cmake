file(REMOVE_RECURSE
  "CMakeFiles/example_census_numeric.dir/census_numeric.cpp.o"
  "CMakeFiles/example_census_numeric.dir/census_numeric.cpp.o.d"
  "example_census_numeric"
  "example_census_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_census_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
