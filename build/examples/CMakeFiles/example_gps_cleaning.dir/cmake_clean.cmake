file(REMOVE_RECURSE
  "CMakeFiles/example_gps_cleaning.dir/gps_cleaning.cpp.o"
  "CMakeFiles/example_gps_cleaning.dir/gps_cleaning.cpp.o.d"
  "example_gps_cleaning"
  "example_gps_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gps_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
