# Empty compiler generated dependencies file for example_gps_cleaning.
# This may be replaced when dependencies are built.
