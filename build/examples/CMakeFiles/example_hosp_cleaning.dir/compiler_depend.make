# Empty compiler generated dependencies file for example_hosp_cleaning.
# This may be replaced when dependencies are built.
