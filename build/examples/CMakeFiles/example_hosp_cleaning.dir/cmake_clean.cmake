file(REMOVE_RECURSE
  "CMakeFiles/example_hosp_cleaning.dir/hosp_cleaning.cpp.o"
  "CMakeFiles/example_hosp_cleaning.dir/hosp_cleaning.cpp.o.d"
  "example_hosp_cleaning"
  "example_hosp_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hosp_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
