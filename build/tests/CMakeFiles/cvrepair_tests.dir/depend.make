# Empty dependencies file for cvrepair_tests.
# This may be replaced when dependencies are built.
