
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/constraint_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/constraint_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/constraint_test.cc.o.d"
  "/root/repo/tests/costs_weights_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/costs_weights_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/costs_weights_test.cc.o.d"
  "/root/repo/tests/cvtolerant_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/cvtolerant_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/cvtolerant_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/discovery_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/discovery_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/discovery_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/exact_repair_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/exact_repair_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/exact_repair_test.cc.o.d"
  "/root/repo/tests/explanation_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/explanation_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/explanation_test.cc.o.d"
  "/root/repo/tests/fuzz_equivalence_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/fuzz_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/fuzz_equivalence_test.cc.o.d"
  "/root/repo/tests/hypergraph_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/hypergraph_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/hypergraph_test.cc.o.d"
  "/root/repo/tests/incremental_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/incremental_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/incremental_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/json_report_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/json_report_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/json_report_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/op_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/op_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/op_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/relation_csv_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/relation_csv_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/relation_csv_test.cc.o.d"
  "/root/repo/tests/repair_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/repair_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/repair_test.cc.o.d"
  "/root/repo/tests/reporting_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/reporting_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/reporting_test.cc.o.d"
  "/root/repo/tests/schema_parser_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/schema_parser_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/schema_parser_test.cc.o.d"
  "/root/repo/tests/solver_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/solver_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/solver_test.cc.o.d"
  "/root/repo/tests/tax_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/tax_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/tax_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/variation_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/variation_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/variation_test.cc.o.d"
  "/root/repo/tests/violation_test.cc" "tests/CMakeFiles/cvrepair_tests.dir/violation_test.cc.o" "gcc" "tests/CMakeFiles/cvrepair_tests.dir/violation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cvrepair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
