#!/usr/bin/env bash
# clang-format over every tracked C++ source, using the repo .clang-format.
#
#   tools/format.sh           # rewrite files in place
#   tools/format.sh --check   # exit 1 (with a diff) on any drift — CI mode
#
# Honors $CLANG_FORMAT for pinning a specific binary (the CI format job
# pins one so local/CI disagreement between clang-format releases cannot
# flap the gate).
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set \$CLANG_FORMAT or install it)" >&2
  exit 2
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
if [[ "${1:-}" == "--check" ]]; then
  failed=0
  for f in "${files[@]}"; do
    if ! diff -u "$f" <("$CLANG_FORMAT" --style=file "$f") >/dev/null; then
      echo "needs formatting: $f"
      diff -u "$f" <("$CLANG_FORMAT" --style=file "$f") | head -40 || true
      failed=1
    fi
  done
  if [[ "$failed" -ne 0 ]]; then
    echo "format drift detected — run tools/format.sh" >&2
    exit 1
  fi
  echo "format clean (${#files[@]} files)."
else
  "$CLANG_FORMAT" --style=file -i "${files[@]}"
  echo "formatted ${#files[@]} files."
fi
