#!/usr/bin/env bash
# Builds the test suite under ThreadSanitizer (-DCVREPAIR_SANITIZE=thread)
# and runs the parallel-execution tests — the determinism suite in
# tests/parallel_equivalence_test.cc plus the thread-pool contract tests.
# Any data race aborts the run (halt_on_error=1).
#
#   tools/run_tsan.sh [extra gtest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DCVREPAIR_SANITIZE=thread
cmake --build build-tsan -j"$(nproc)" --target cvrepair_tests

TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  ./build-tsan/tests/cvrepair_tests \
  --gtest_filter='ParallelEquivalence*:ThreadPoolTest*' "$@"
echo "TSan run clean."
