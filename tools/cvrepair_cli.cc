// cvrepair — command-line data repairing.
//
// Repairs a CSV file against a set of denial constraints / FDs, optionally
// tolerating constraint variance (the θ-tolerant model), and writes the
// repaired CSV plus a human-readable report.
//
//   cvrepair_cli --schema s.txt --data d.csv --constraints c.txt
//                [--algorithm cvtolerant] [--theta 1.0] [--lambda -0.5]
//                [--output repaired.csv] [--show-constraints]
//   cvrepair_cli --schema s.txt --data d.csv --discover [--confidence 0.95]
//
// Schema file:      one "<Name>:<type>[:key]" per line (see
//                   relation/schema_parser.h).
// Constraint file:  one constraint per line — "not(...)" DCs or FD sugar
//                   "A,B -> C" (see dc/parser.h). '#' comments allowed.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "data/census.h"
#include "data/dense.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "data/tax.h"
#include "dc/parser.h"
#include "eval/explanation.h"
#include "eval/json_report.h"
#include "discovery/dc_discovery.h"
#include "discovery/fd_discovery.h"
#include "relation/csv.h"
#include "relation/schema_parser.h"
#include "bench/bench_util.h"
#include "repair/cvtolerant.h"
#include "repair/greedy.h"
#include "repair/streaming.h"
#include "serve/server.h"
#include "repair/holistic.h"
#include "repair/relative.h"
#include "repair/unified.h"
#include "repair/vfree.h"
#include "repair/vrepair.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace {

using namespace cvrepair;

struct CliOptions {
  std::string schema_path;
  std::string data_path;
  std::string constraints_path;
  std::string output_path;
  std::string metrics_out;
  std::string trace_out;
  std::string generate;  ///< hosp | census | tax | dense: built-in workload
  std::string algorithm = "cvtolerant";
  RepairStrategy strategy = RepairStrategy::kUpdate;
  std::string repr_attr;  ///< grouping attribute for deletion weights
  double theta = 1.0;
  double lambda = -0.5;
  double confidence = 1.0;
  double error_rate = 0.05;
  int size = 0;  ///< generator scale knob; 0 = the generator's default
  int stream_batches = 0;  ///< >0 = streaming replay mode
  int batch_size = 32;
  bool serve_bench = false;  ///< closed-loop load generator mode
  int clients = 4;           ///< simulated closed-loop clients
  int shards = 4;            ///< hash shards of the served session
  int queue_watermark = 8;   ///< admission-control queue bound
  bool reopen_variants = false;
  bool cross_batch_cache = true;
  bool drift = false;  ///< drifting replay (sliding value-source window)
  int threads = 1;
  bool reuse_index = true;
  bool encoded = true;
  bool decompose = false;
  int max_component = 24;
  bool discover = false;
  bool show_constraints = false;
  bool explain = false;
  bool json = false;
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --schema FILE --data FILE (--constraints FILE | --discover)\n"
      << "  --algorithm NAME   cvtolerant | vfree | holistic | greedy |\n"
      << "                     vrepair | unified | relative  (default: "
         "cvtolerant)\n"
      << "  --strategy NAME    how violations are resolved:\n"
         "                     update = cell updates (the paper's model,\n"
         "                     default); delete = subset repair, tombstone\n"
         "                     whole tuples via a weighted vertex cover of\n"
         "                     the conflict hypergraph's tuple projection;\n"
         "                     hybrid = update first, then delete any tuple\n"
         "                     whose summed update cost exceeds its\n"
         "                     deletion weight\n"
      << "  --repr-attr NAME   group tuples by this attribute for the\n"
         "                     representation-cost deletion weights: rows\n"
         "                     of rare groups cost more to delete (needs\n"
         "                     --strategy delete|hybrid)\n"
      << "  --theta X          constraint-variance tolerance (default 1.0;\n"
      << "                     negative values force predicate deletion)\n"
      << "  --lambda X         deletion weight in [-1, 0] (default -0.5)\n"
      << "  --threads N        thread budget for the repair engine\n"
      << "                     (0 = all hardware threads, 1 = serial;\n"
      << "                     default 1 — results are identical either "
         "way)\n"
      << "  --reuse-index 0|1  share one evaluation index across all\n"
         "                     constraint variants (default 1; results are\n"
         "                     identical either way — 0 only disables the\n"
         "                     reuse, for timing comparisons)\n"
      << "  --encoded 0|1      evaluate predicates on dictionary-encoded\n"
         "                     integer columns (default 1; results are\n"
         "                     identical either way — 0 falls back to\n"
         "                     boxed-Value scans, for timing comparisons)\n"
      << "  --decompose 0|1    split conflict components larger than\n"
         "                     --max-component cells at low-density\n"
         "                     articulation vertices, solve the parts\n"
         "                     independently, and re-verify the boundary\n"
         "                     with a stitching pass (default 0; the\n"
         "                     repair stays violation-free either way)\n"
      << "  --max-component N  decomposition size threshold in cells\n"
         "                     (default 24; needs --decompose 1)\n"
      << "  --output FILE      write the repaired CSV here\n"
      << "  --metrics-out FILE write the run's deterministic work counters\n"
         "                     as flat JSON (byte-identical across runs and\n"
         "                     thread counts for the same workload)\n"
      << "  --trace-out FILE   write a Chrome trace-event timeline of the\n"
         "                     repair phases (chrome://tracing / Perfetto)\n"
      << "  --generate NAME    repair a built-in synthetic workload instead\n"
         "                     of --schema/--data/--constraints:\n"
         "                     hosp | census | tax | dense (adversarial\n"
         "                     high-error ramps whose conflicts form giant\n"
         "                     banded components; pair with --error-rate\n"
         "                     0.3+ and --decompose 1)\n"
      << "  --size N           generator scale (hosp: hospitals; census/\n"
         "                     tax: rows; dense: rows per track; 0 =\n"
         "                     generator default)\n"
      << "  --stream-batches N streaming replay: repair a prefix of the\n"
         "                     instance, then stream the held-out rows and\n"
         "                     synthetic edits back in as N batches, re-\n"
         "                     solving only the dirty components per batch\n"
         "                     (cvtolerant only)\n"
      << "  --batch-size K     edits per streamed batch (default 32)\n"
      << "  --serve-bench      closed-loop load generator against a\n"
         "                     server-hosted sharded session: the replay\n"
         "                     batches are dealt round-robin to --clients\n"
         "                     closed-loop clients, each retrying rejected\n"
         "                     submissions after a drain; reports p50/p99\n"
         "                     batch latency, edits/sec, and the\n"
         "                     shard-local vs cross-shard component split,\n"
         "                     appending them to BENCH_serve.json\n"
         "                     (cvtolerant only; uses --stream-batches and\n"
         "                     --batch-size for the stream shape)\n"
      << "  --clients N        simulated closed-loop clients (default 4)\n"
      << "  --shards N         hash shards of the served session\n"
         "                     (default 4; 1 = unsharded)\n"
      << "  --queue-watermark N\n"
         "                     admission control rejects submissions while\n"
         "                     this many batches are pending (default 8)\n"
      << "  --reopen-variants 0|1\n"
         "                     unfreeze the streamed variant: track per-\n"
         "                     variant cost bounds across batches and re-\n"
         "                     open the Σ' search when a rival's bound\n"
         "                     reaches the incumbent's realized cost\n"
         "                     (default 0: frozen incumbent)\n"
      << "  --cross-batch-cache 0|1\n"
         "                     reuse materialized component solutions\n"
         "                     across batches (default 1; epoch stamps and\n"
         "                     staleness eviction keep results bit-\n"
         "                     identical to 0, which solves each batch\n"
         "                     cold)\n"
      << "  --drift            make the streamed update edits draw values\n"
         "                     from a window sliding over the instance, so\n"
         "                     attribute frequencies skew over the stream\n"
      << "  --error-rate X     generator noise rate (default 0.05)\n"
      << "  --show-constraints print the constraint set the repair "
         "satisfies\n"
      << "  --explain          print per-cell repair provenance\n"
      << "  --json             emit the run report as JSON\n"
      << "  --discover         discover FDs/order-DCs instead of repairing\n"
      << "  --confidence X     discovery confidence threshold (default 1.0)\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--schema" && next(&value)) {
      options->schema_path = value;
    } else if (arg == "--data" && next(&value)) {
      options->data_path = value;
    } else if (arg == "--constraints" && next(&value)) {
      options->constraints_path = value;
    } else if (arg == "--output" && next(&value)) {
      options->output_path = value;
    } else if (arg == "--metrics-out" && next(&value)) {
      options->metrics_out = value;
    } else if (arg == "--trace-out" && next(&value)) {
      options->trace_out = value;
    } else if (arg == "--generate" && next(&value)) {
      if (value != "hosp" && value != "census" && value != "tax" &&
          value != "dense") {
        std::cerr << "--generate must be hosp, census, tax, or dense\n";
        return false;
      }
      options->generate = value;
    } else if (arg == "--size" && next(&value)) {
      options->size = std::atoi(value.c_str());
      if (options->size < 0) {
        std::cerr << "--size must be >= 0\n";
        return false;
      }
    } else if (arg == "--stream-batches" && next(&value)) {
      options->stream_batches = std::atoi(value.c_str());
      if (options->stream_batches < 0) {
        std::cerr << "--stream-batches must be >= 0\n";
        return false;
      }
    } else if (arg == "--batch-size" && next(&value)) {
      options->batch_size = std::atoi(value.c_str());
      if (options->batch_size <= 0) {
        std::cerr << "--batch-size must be > 0\n";
        return false;
      }
    } else if (arg == "--serve-bench") {
      options->serve_bench = true;
    } else if (arg == "--clients" && next(&value)) {
      options->clients = std::atoi(value.c_str());
      if (options->clients <= 0) {
        std::cerr << "--clients must be > 0\n";
        return false;
      }
    } else if (arg == "--shards" && next(&value)) {
      options->shards = std::atoi(value.c_str());
      if (options->shards <= 0) {
        std::cerr << "--shards must be > 0\n";
        return false;
      }
    } else if (arg == "--queue-watermark" && next(&value)) {
      options->queue_watermark = std::atoi(value.c_str());
      if (options->queue_watermark <= 0) {
        std::cerr << "--queue-watermark must be > 0\n";
        return false;
      }
    } else if (arg == "--error-rate" && next(&value)) {
      options->error_rate = std::atof(value.c_str());
      if (options->error_rate < 0.0 || options->error_rate > 1.0) {
        std::cerr << "--error-rate must be in [0, 1]\n";
        return false;
      }
    } else if (arg == "--algorithm" && next(&value)) {
      options->algorithm = value;
    } else if (arg == "--strategy" && next(&value)) {
      if (!ParseRepairStrategy(value, &options->strategy)) {
        std::cerr << "--strategy must be update, delete, or hybrid\n";
        return false;
      }
    } else if (arg == "--repr-attr" && next(&value)) {
      options->repr_attr = value;
    } else if (arg == "--theta" && next(&value)) {
      options->theta = std::atof(value.c_str());
    } else if (arg == "--lambda" && next(&value)) {
      options->lambda = std::atof(value.c_str());
    } else if (arg == "--confidence" && next(&value)) {
      options->confidence = std::atof(value.c_str());
    } else if (arg == "--threads" && next(&value)) {
      options->threads = std::atoi(value.c_str());
      if (options->threads < 0) {
        std::cerr << "--threads must be >= 0\n";
        return false;
      }
    } else if (arg == "--reuse-index" && next(&value)) {
      if (value != "0" && value != "1") {
        std::cerr << "--reuse-index must be 0 or 1\n";
        return false;
      }
      options->reuse_index = (value == "1");
    } else if (arg == "--encoded" && next(&value)) {
      if (value != "0" && value != "1") {
        std::cerr << "--encoded must be 0 or 1\n";
        return false;
      }
      options->encoded = (value == "1");
    } else if (arg == "--decompose" && next(&value)) {
      if (value != "0" && value != "1") {
        std::cerr << "--decompose must be 0 or 1\n";
        return false;
      }
      options->decompose = (value == "1");
    } else if (arg == "--max-component" && next(&value)) {
      options->max_component = std::atoi(value.c_str());
      if (options->max_component <= 0) {
        std::cerr << "--max-component must be > 0\n";
        return false;
      }
    } else if (arg == "--reopen-variants" && next(&value)) {
      if (value != "0" && value != "1") {
        std::cerr << "--reopen-variants must be 0 or 1\n";
        return false;
      }
      options->reopen_variants = (value == "1");
    } else if (arg == "--cross-batch-cache" && next(&value)) {
      if (value != "0" && value != "1") {
        std::cerr << "--cross-batch-cache must be 0 or 1\n";
        return false;
      }
      options->cross_batch_cache = (value == "1");
    } else if (arg == "--drift") {
      options->drift = true;
    } else if (arg == "--discover") {
      options->discover = true;
    } else if (arg == "--show-constraints") {
      options->show_constraints = true;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (arg == "--json") {
      options->json = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return false;
    }
  }
  if (!options->generate.empty()) {
    // Generated workloads bring their own schema, data, and constraints.
    return options->schema_path.empty() && options->data_path.empty() &&
           options->constraints_path.empty() && !options->discover;
  }
  return !options->schema_path.empty() && !options->data_path.empty() &&
         (options->discover || !options->constraints_path.empty());
}

/// Resolves --strategy / --repr-attr into the vfree options. Returns false
/// (after printing a message) when --repr-attr names no schema attribute.
bool ApplyStrategyOptions(const CliOptions& options, const Schema& schema,
                          VfreeOptions* vfree) {
  vfree->strategy = options.strategy;
  if (!options.repr_attr.empty()) {
    std::optional<AttrId> attr = schema.Find(options.repr_attr);
    if (!attr) {
      std::cerr << "--repr-attr: no attribute named " << options.repr_attr
                << "\n";
      return false;
    }
    vfree->subset.repr_attr = *attr;
  }
  return true;
}

/// A --generate workload: dirty instance, constraints, and the predicate
/// space the variant generator should use (hosp recommends one).
struct GeneratedWorkload {
  Relation data;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

GeneratedWorkload MakeGeneratedWorkload(const CliOptions& options) {
  NoiseConfig noise;
  noise.error_rate = options.error_rate;
  if (options.generate == "hosp") {
    HospConfig config;
    if (options.size > 0) config.num_hospitals = options.size;
    HospData hosp = MakeHosp(config);
    noise.target_attrs = hosp.noise_attrs;
    return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified,
            hosp.space};
  }
  if (options.generate == "census") {
    CensusConfig config;
    if (options.size > 0) config.num_rows = options.size;
    CensusData census = MakeCensus(config);
    noise.target_attrs = census.noise_attrs;
    return {InjectNoise(census.clean, noise).dirty, census.given, {}};
  }
  if (options.generate == "dense") {
    // The dense generator injects its own local band noise; InjectNoise's
    // global-range perturbations would defeat the banded conflict shape.
    DenseConfig config;
    if (options.size > 0) config.rows_per_track = options.size;
    config.error_rate = options.error_rate;
    DenseData dense = MakeDense(config);
    return {std::move(dense.dirty), std::move(dense.sigma), {}};
  }
  TaxConfig config;
  if (options.size > 0) config.num_rows = options.size;
  TaxData tax = MakeTax(config);
  noise.target_attrs = tax.noise_attrs;
  return {InjectNoise(tax.clean, noise).dirty, tax.given, {}};
}

int RunDiscovery(const CliOptions& options, const Relation& data) {
  FdDiscoveryOptions fd_options;
  fd_options.min_confidence = options.confidence;
  std::vector<DiscoveredFd> fds = DiscoverFds(data, fd_options);
  std::cout << "# discovered functional dependencies (confidence >= "
            << options.confidence << ")\n";
  for (const DiscoveredFd& d : fds) {
    std::ostringstream lhs;
    for (size_t i = 0; i < d.fd.lhs.size(); ++i) {
      lhs << (i ? "," : "") << data.schema().name(d.fd.lhs[i]);
    }
    std::cout << lhs.str() << " -> " << data.schema().name(d.fd.rhs)
              << "   # confidence=" << d.confidence
              << " support=" << d.support << "\n";
  }
  DcDiscoveryOptions dc_options;
  dc_options.min_confidence = std::max(options.confidence, 0.9);
  std::vector<DiscoveredDc> dcs = DiscoverOrderDcs(data, dc_options);
  std::cout << "# discovered order denial constraints\n";
  for (const DiscoveredDc& d : dcs) {
    std::cout << d.constraint.ToString(data.schema())
              << "   # confidence=" << d.confidence << "\n";
  }
  return 0;
}

/// --stream-batches mode: repairs a prefix of `data` to freeze a variant,
/// then replays the held-out rows plus synthetic edits as batches through
/// a StreamingRepairer, printing per-batch localization numbers.
int RunStream(const CliOptions& options, const Relation& data,
              const ConstraintSet& sigma,
              const PredicateSpaceOptions* space = nullptr) {
  if (options.algorithm != "cvtolerant") {
    std::cerr << "--stream-batches requires --algorithm cvtolerant\n";
    return 2;
  }
  ThreadPool::SetNumThreads(options.threads);
  if (!options.trace_out.empty()) Tracer::SetEnabled(true);

  StreamingOptions stream_options;
  CVTolerantOptions& repair_options = stream_options.repair;
  repair_options.variants.theta = options.theta;
  repair_options.variants.cost_model.lambda = options.lambda;
  if (space) repair_options.variants.space = *space;
  repair_options.threads = options.threads;
  repair_options.reuse_index = options.reuse_index;
  repair_options.use_encoded = options.encoded;
  repair_options.vfree.decompose = options.decompose;
  repair_options.vfree.max_component = options.max_component;
  if (!ApplyStrategyOptions(options, data.schema(), &repair_options.vfree)) {
    return 2;
  }
  stream_options.reopen_variants = options.reopen_variants;
  stream_options.cross_batch_cache = options.cross_batch_cache;

  ReplayWorkload workload =
      options.drift
          ? MakeDriftWorkload(data, options.stream_batches, options.batch_size)
          : MakeReplayWorkload(data, options.stream_batches,
                               options.batch_size);
  StreamingRepairer repairer(workload.base, sigma, stream_options);
  std::cout << "algorithm:        cvtolerant (streaming"
            << (options.drift ? ", drift" : "")
            << (options.reopen_variants ? ", unfrozen variant" : "");
  if (options.strategy != RepairStrategy::kUpdate) {
    std::cout << ", strategy=" << RepairStrategyToString(options.strategy);
  }
  std::cout << ")\n"
            << "base tuples:      " << workload.base.num_rows() << "\n"
            << "initial repair:   cost "
            << repairer.initial_stats().repair_cost << ", "
            << repairer.initial_stats().changed_cells << " cells, "
            << repairer.initial_stats().elapsed_seconds << "s\n";
  for (size_t b = 0; b < workload.batches.size(); ++b) {
    StreamBatchResult r = repairer.ApplyBatch(workload.batches[b]);
    std::cout << "batch " << b << ": edits " << r.edits << ", touched "
              << r.rows_touched << ", violations " << r.violations
              << ", dirty rows " << r.dirty_rows << ", components "
              << r.components << ", cells changed " << r.cells_changed
              << ", rechecked " << r.rows_rechecked << ", cost "
              << r.repair_cost;
    if (options.reopen_variants) {
      std::cout << ", reopened " << (r.reopened ? "yes" : "no")
                << (r.variant_switched ? " (switched)" : "") << ", realized "
                << r.realized_cost << ", rival bound " << r.rival_bound;
    }
    std::cout << ", " << r.elapsed_seconds << "s\n";
  }
  const StreamTotals& t = repairer.totals();
  std::cout << "tuples:           " << repairer.current().num_rows() << "\n"
            << "rows ingested:    " << t.rows_ingested << "\n"
            << "rows rechecked:   " << t.rows_rechecked << "\n"
            << "components:       " << t.components_resolved << "\n"
            << "cells changed:    " << t.cells_changed << "\n";
  if (options.reopen_variants) {
    std::cout << "variant reopens:  " << t.variant_reopens << "\n"
              << "variant switches: " << t.variant_switches << "\n"
              << "bound updates:    " << t.bound_updates << "\n";
  }
  std::cout << "cache evictions:  " << t.cache_invalidations << "\n"
            << "violation-free:   "
            << (repairer.IsViolationFree() ? "yes" : "NO") << "\n";

  PublishRepairStats(repairer.initial_stats());
  if (!options.metrics_out.empty() &&
      !WriteMetricsJsonFile(options.metrics_out,
                            MetricsRegistry::Global().SnapshotWork())) {
    std::cerr << "cannot write " << options.metrics_out << "\n";
    return 1;
  }
  if (!options.trace_out.empty() &&
      !Tracer::WriteChromeTrace(options.trace_out)) {
    std::cerr << "cannot write " << options.trace_out << "\n";
    return 1;
  }
  if (options.show_constraints) {
    std::cout << "satisfied constraints:\n"
              << ToString(repairer.variant(), data.schema());
  }
  if (!options.output_path.empty()) {
    if (!WriteCsvFile(repairer.current(), options.output_path)) {
      std::cerr << "cannot write " << options.output_path << "\n";
      return 1;
    }
    std::cout << "repaired CSV:     " << options.output_path << "\n";
  }
  return repairer.IsViolationFree() ? 0 : 1;
}

/// --serve-bench mode: a closed-loop load generator against a
/// server-hosted sharded session. The replay batches are dealt
/// round-robin to --clients simulated closed-loop clients; clients take
/// turns submitting, and a client whose submission is rejected pumps the
/// queue (the drain a real deployment's worker performs) and retries, so
/// every batch is eventually admitted in canonical order and the final
/// instance stays bit-identical to an unsharded single-session replay.
/// Reports p50/p99 batch latency, edits/sec, admission counts, and the
/// shard-local vs cross-shard component split; appends the numbers to
/// BENCH_serve.json next to bench/micro_serve's records.
int RunServeBench(const CliOptions& options, const Relation& data,
                  const ConstraintSet& sigma,
                  const PredicateSpaceOptions* space = nullptr) {
  if (options.algorithm != "cvtolerant") {
    std::cerr << "--serve-bench requires --algorithm cvtolerant\n";
    return 2;
  }
  ThreadPool::SetNumThreads(options.threads);

  ServeOptions serve_options;
  CVTolerantOptions& repair_options = serve_options.session.repair;
  repair_options.variants.theta = options.theta;
  repair_options.variants.cost_model.lambda = options.lambda;
  if (space) repair_options.variants.space = *space;
  repair_options.threads = options.threads;
  repair_options.reuse_index = options.reuse_index;
  repair_options.use_encoded = options.encoded;
  repair_options.vfree.decompose = options.decompose;
  repair_options.vfree.max_component = options.max_component;
  if (!ApplyStrategyOptions(options, data.schema(), &repair_options.vfree)) {
    return 2;
  }
  serve_options.session.num_shards = options.shards;
  serve_options.admission.queue_watermark = options.queue_watermark;

  const int num_batches =
      options.stream_batches > 0 ? options.stream_batches : 8;
  ReplayWorkload workload =
      options.drift
          ? MakeDriftWorkload(data, num_batches, options.batch_size)
          : MakeReplayWorkload(data, num_batches, options.batch_size);

  RepairServer server(serve_options);
  ServeSession* session = server.Open("cli", workload.base, sigma);
  if (session == nullptr) {
    std::cerr << "cannot open serve session\n";
    return 1;
  }
  const ShardedSession& engine = session->repair();
  std::ostringstream key_names;
  for (size_t i = 0; i < engine.plan().key.size(); ++i) {
    key_names << (i ? "," : "") << data.schema().name(engine.plan().key[i]);
  }
  std::cout << "algorithm:        cvtolerant (serve, " << options.shards
            << " shards, " << options.clients << " clients"
            << (options.drift ? ", drift" : "");
  if (options.strategy != RepairStrategy::kUpdate) {
    std::cout << ", strategy=" << RepairStrategyToString(options.strategy);
  }
  std::cout << ")\n"
            << "base tuples:      " << workload.base.num_rows() << "\n"
            << "initial repair:   cost "
            << engine.initial_stats().repair_cost << ", "
            << engine.initial_stats().changed_cells << " cells, "
            << engine.initial_stats().elapsed_seconds << "s\n"
            << "shard key:        "
            << (engine.plan().key.empty() ? "none (round-robin)"
                                          : key_names.str())
            << " (" << engine.plan().local.size() << " local / "
            << engine.plan().straddling.size()
            << " straddling constraints)\n"
            << "stream:           " << num_batches << " batches x "
            << options.batch_size << " edits, watermark "
            << options.queue_watermark << "\n";

  // Closed loop: batch i belongs to client i % clients; clients take
  // turns in round-robin order, each driving its next batch to admission
  // before yielding the turn. Retries pump the queue first, so progress
  // is guaranteed and the submit order stays canonical.
  bench::WallTimer wall;
  std::vector<size_t> next_of(static_cast<size_t>(options.clients), 0);
  for (size_t turn = 0; turn < workload.batches.size(); ++turn) {
    const int client = static_cast<int>(turn) % options.clients;
    size_t batch = static_cast<size_t>(client) +
                   next_of[static_cast<size_t>(client)] *
                       static_cast<size_t>(options.clients);
    while (!session->Submit(workload.batches[batch]).admitted) {
      session->Pump();
    }
    ++next_of[static_cast<size_t>(client)];
  }
  session->Flush();
  const double wall_seconds = wall.ElapsedMs() / 1e3;

  bench::LatencyHistogram latency;
  latency.RecordAll(session->batch_seconds());
  const ServeTotals& totals = engine.totals();
  const double busy = latency.TotalSeconds();
  const double edits_per_sec =
      busy > 0.0 ? static_cast<double>(totals.edits) / busy : 0.0;
  const int64_t admitted = session->admitted();
  const int64_t rejected = session->rejected();
  std::cout << "admitted:         " << admitted << " (rejected " << rejected
            << ", retried until admitted)\n"
            << "p50 latency:      " << latency.p50() * 1e3 << " ms\n"
            << "p99 latency:      " << latency.p99() * 1e3 << " ms\n"
            << "edits/sec:        " << edits_per_sec << "\n"
            << "components:       " << totals.components << " ("
            << totals.shard_local_components << " shard-local, "
            << totals.cross_shard_components << " cross-shard)\n"
            << "rows migrated:    " << totals.rows_migrated << "\n"
            << "rows rechecked:   " << totals.rows_rechecked << "\n"
            << "cells changed:    " << totals.cells_changed << "\n"
            << "wall time:        " << wall_seconds << "s\n";

  bench::BenchJsonWriter json("BENCH_serve.json");
  json.Record("serve_cli/p50", options.threads, latency.p50() * 1e3);
  json.Record("serve_cli/p99", options.threads, latency.p99() * 1e3);
  json.Record("serve_cli/edits_per_sec", options.threads, edits_per_sec);
  json.RecordCounters("serve_cli/load",
                      {{"clients", options.clients},
                       {"shards", options.shards},
                       {"batches_admitted", admitted},
                       {"batches_rejected", rejected},
                       {"shard_local_components",
                        totals.shard_local_components},
                       {"cross_shard_components",
                        totals.cross_shard_components},
                       {"rows_migrated", totals.rows_migrated},
                       {"cells_changed", totals.cells_changed}});

  PublishRepairStats(engine.initial_stats());
  if (!options.metrics_out.empty() &&
      !WriteMetricsJsonFile(options.metrics_out,
                            MetricsRegistry::Global().SnapshotWork())) {
    std::cerr << "cannot write " << options.metrics_out << "\n";
    return 1;
  }
  if (options.show_constraints) {
    std::cout << "satisfied constraints:\n"
              << ToString(engine.variant(), data.schema());
  }

  ConstraintSet variant = engine.variant();
  std::optional<Relation> final_instance = server.Close("cli");
  if (!final_instance) {
    std::cerr << "serve session lost on close\n";
    return 1;
  }
  const bool clean = FindViolations(*final_instance, variant).empty();
  std::cout << "violation-free:   " << (clean ? "yes" : "NO") << "\n";
  if (!options.output_path.empty()) {
    if (!WriteCsvFile(*final_instance, options.output_path)) {
      std::cerr << "cannot write " << options.output_path << "\n";
      return 1;
    }
    std::cout << "repaired CSV:     " << options.output_path << "\n";
  }
  return clean ? 0 : 1;
}

int RunRepair(const CliOptions& options, const Relation& data,
              const ConstraintSet& sigma,
              const PredicateSpaceOptions* space = nullptr) {
  // 0 = auto: size the global pool to the hardware; per-repair options
  // then inherit it via their own 0 default.
  ThreadPool::SetNumThreads(options.threads);
  if (!options.trace_out.empty()) Tracer::SetEnabled(true);
  if (options.strategy != RepairStrategy::kUpdate &&
      options.algorithm != "cvtolerant" && options.algorithm != "vfree") {
    std::cerr << "--strategy " << RepairStrategyToString(options.strategy)
              << " requires --algorithm cvtolerant or vfree\n";
    return 2;
  }
  RepairResult result;
  if (options.algorithm == "cvtolerant") {
    CVTolerantOptions repair_options;
    repair_options.variants.theta = options.theta;
    repair_options.variants.cost_model.lambda = options.lambda;
    if (space) repair_options.variants.space = *space;
    repair_options.threads = options.threads;
    repair_options.reuse_index = options.reuse_index;
    repair_options.use_encoded = options.encoded;
    repair_options.vfree.decompose = options.decompose;
    repair_options.vfree.max_component = options.max_component;
    if (!ApplyStrategyOptions(options, data.schema(), &repair_options.vfree)) {
      return 2;
    }
    result = CVTolerantRepair(data, sigma, repair_options);
  } else if (options.algorithm == "vfree") {
    VfreeOptions vfree_options;
    vfree_options.threads = options.threads;
    vfree_options.use_encoded = options.encoded;
    vfree_options.decompose = options.decompose;
    vfree_options.max_component = options.max_component;
    if (!ApplyStrategyOptions(options, data.schema(), &vfree_options)) {
      return 2;
    }
    result = VfreeRepair(data, sigma, vfree_options);
  } else if (options.algorithm == "holistic") {
    HolisticOptions holistic_options;
    holistic_options.use_encoded = options.encoded;
    result = HolisticRepair(data, sigma, holistic_options);
  } else if (options.algorithm == "greedy") {
    GreedyOptions greedy_options;
    greedy_options.use_encoded = options.encoded;
    result = GreedyRepair(data, sigma, greedy_options);
  } else if (options.algorithm == "vrepair") {
    result = VrepairRepair(data, sigma);
  } else if (options.algorithm == "unified") {
    result = UnifiedRepair(data, sigma);
  } else if (options.algorithm == "relative") {
    result = RelativeRepair(data, sigma);
  } else {
    std::cerr << "unknown algorithm: " << options.algorithm << "\n";
    return 2;
  }

  // Fold the run's outcome counters into the registry, then export. The
  // work snapshot excludes scheduling-dependent counters, so the file is
  // byte-identical across runs and --threads settings (see util/metrics.h).
  PublishRepairStats(result.stats);
  if (!options.metrics_out.empty() &&
      !WriteMetricsJsonFile(options.metrics_out,
                            MetricsRegistry::Global().SnapshotWork())) {
    std::cerr << "cannot write " << options.metrics_out << "\n";
    return 1;
  }
  if (!options.trace_out.empty() &&
      !Tracer::WriteChromeTrace(options.trace_out)) {
    std::cerr << "cannot write " << options.trace_out << "\n";
    return 1;
  }

  if (options.json) {
    RepairExplanation explanation =
        ExplainRepair(data, result.repaired, result.satisfied_constraints);
    std::cout << RepairResultToJson(result, data.schema(), options.algorithm,
                                    &explanation);
    if (!options.output_path.empty() &&
        !WriteCsvFile(result.repaired, options.output_path)) {
      std::cerr << "cannot write " << options.output_path << "\n";
      return 1;
    }
    return 0;
  }
  std::cout << "algorithm:        " << options.algorithm << "\n";
  if (options.strategy != RepairStrategy::kUpdate) {
    std::cout << "strategy:         "
              << RepairStrategyToString(options.strategy) << "\n"
              << "rows deleted:     " << result.stats.rows_deleted << "\n";
  }
  std::cout << "tuples:           " << data.num_rows() << "\n"
            << "violations found: " << result.stats.initial_violations << "\n"
            << "cells changed:    " << result.stats.changed_cells << "\n"
            << "fresh variables:  " << result.stats.fresh_assignments << "\n"
            << "repair cost:      " << result.stats.repair_cost << "\n"
            << "time:             " << result.stats.elapsed_seconds << "s\n"
            << "encoded:          " << (options.encoded ? "on" : "off") << "\n";
  if (options.decompose) {
    std::cout << "decompose:        " << result.stats.components_split
              << " components split, " << result.stats.stitch_merges
              << " stitch merges, " << result.stats.giant_component_cells
              << " giant-component cells\n";
  }
  if (options.algorithm == "cvtolerant") {
    std::cout << "variants tried:   " << result.stats.variants_enumerated
              << " (bound-pruned " << result.stats.variants_pruned_bounds
              << ", DataRepair calls " << result.stats.datarepair_calls
              << ", shared solutions " << result.stats.cache_hits << ")\n";
    std::cout << "index cache:      " << result.stats.index_partition_builds
              << " partition builds, " << result.stats.index_partition_reuses
              << " reuses, " << result.stats.index_predicate_evals
              << " predicate evals, " << result.stats.index_code_evals
              << " code evals, " << result.stats.index_memo_hits
              << " memo hits, " << result.stats.bound_memo_hits
              << " bound memo hits, " << result.stats.index_truncated_scans
              << " truncated scans\n";
    std::cout << "zone maps:        " << result.stats.index_blocks_scanned
              << " blocks scanned, " << result.stats.index_blocks_skipped
              << " blocks skipped\n";
  }
  if (!options.metrics_out.empty()) {
    std::cout << "metrics:          " << options.metrics_out << "\n";
  }
  if (!options.trace_out.empty()) {
    std::cout << "trace:            " << options.trace_out << "\n";
  }
  if (options.show_constraints) {
    std::cout << "satisfied constraints:\n"
              << ToString(result.satisfied_constraints, data.schema());
  }
  if (options.explain) {
    RepairExplanation explanation = ExplainRepair(
        data, result.repaired, result.satisfied_constraints);
    std::cout << "explanation:\n"
              << explanation.ToString(data.schema());
  }
  if (!options.output_path.empty()) {
    if (!WriteCsvFile(result.repaired, options.output_path)) {
      std::cerr << "cannot write " << options.output_path << "\n";
      return 1;
    }
    std::cout << "repaired CSV:     " << options.output_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage(argv[0]);

  if (!options.generate.empty()) {
    GeneratedWorkload workload = MakeGeneratedWorkload(options);
    if (options.serve_bench) {
      return RunServeBench(options, workload.data, workload.sigma,
                           &workload.space);
    }
    if (options.stream_batches > 0) {
      return RunStream(options, workload.data, workload.sigma,
                       &workload.space);
    }
    return RunRepair(options, workload.data, workload.sigma, &workload.space);
  }

  std::string text, error;
  if (!ReadFile(options.schema_path, &text, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  ParseSchemaResult schema = ParseSchema(text);
  if (!schema.ok()) {
    std::cerr << "schema: " << schema.error << "\n";
    return 1;
  }

  CsvResult data = ReadCsvFile(*schema.schema, options.data_path);
  if (!data.ok()) {
    std::cerr << "data: " << data.error << "\n";
    return 1;
  }

  if (options.discover) return RunDiscovery(options, *data.relation);

  if (!ReadFile(options.constraints_path, &text, &error)) {
    std::cerr << error << "\n";
    return 1;
  }
  ParseSetResult constraints = ParseConstraintSet(*schema.schema, text);
  if (!constraints.ok()) {
    std::cerr << "constraints: " << constraints.error << "\n";
    return 1;
  }
  if (options.serve_bench) {
    return RunServeBench(options, *data.relation, *constraints.constraints);
  }
  if (options.stream_batches > 0) {
    return RunStream(options, *data.relation, *constraints.constraints);
  }
  return RunRepair(options, *data.relation, *constraints.constraints);
}
