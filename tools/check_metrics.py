#!/usr/bin/env python3
"""Perf-regression gate over deterministic work counters.

Compares a metrics.json emitted by a bench binary (the flat
``{"counter": value}`` object written by WriteMetricsJsonFile) against a
checked-in baseline. Counters are deterministic work counts — predicate
evaluations, partition builds, solver calls — not wall-clock times, so
the comparison is meaningful on noisy shared CI runners.

Baseline format (bench/baselines/*.json)::

    {
      "counters": {"eval.partition_builds": 33, ...},
      "tolerance": 0.0,
      "tolerances": {"eval.memo_hits": 0.02},
      "require_zero": ["eval.predicate_evals"],
      "require_nonzero": ["eval.blocks_skipped"],
      "max_ratio": {
        "repair.rows_deleted": {"of": "repair.initial_violations",
                                "max": 1.0}
      }
    }

``tolerance`` is the default relative slack per counter (0.0 = exact,
the right setting for a fully deterministic pipeline); ``tolerances``
overrides it per counter. Drift beyond the slack fails in BOTH
directions: an increase is a perf regression, a decrease is an
improvement that must be locked in by refreshing the baseline (run with
--update). ``require_zero`` counters must be exactly zero — used to pin
boxed Value evaluations to zero on encoded hot paths.
``require_nonzero`` counters must be strictly positive — used to pin an
optimization as actually engaged (zone-map pruning must skip blocks on
the scan benches; a value of 0 means the fast path silently fell off).
``max_ratio`` pins one counter to at most ``max`` times another from the
same run — an invariant between counters rather than an absolute value,
so it survives workload-size changes. The canonical use: a subset-repair
run may tombstone at most one row per initial violation
(``repair.rows_deleted`` <= 1.0 x ``repair.initial_violations``).

``--update`` refreshes the baseline's counters from an ACTUAL run but
refuses to orphan the policy: when a counter pinned by ``require_zero``
or ``require_nonzero`` is missing from ACTUAL (the workload no longer
emits it), the refresh aborts so the gate cannot silently lose a pin.
``--force`` overrides, dropping the vanished pins with a notice.

Usage::

    check_metrics.py BASELINE ACTUAL          # compare, exit 1 on drift
    check_metrics.py --update BASELINE ACTUAL # rewrite baseline counters
    check_metrics.py --update --force ...     # also drop vanished pins
    check_metrics.py --self-test              # prove the gate can fail
"""

import argparse
import json
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare(baseline, actual):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    counters = baseline.get("counters", {})
    default_tol = float(baseline.get("tolerance", 0.0))
    per_counter_tol = baseline.get("tolerances", {})

    for name in sorted(counters):
        expected = int(counters[name])
        if name not in actual:
            failures.append(f"{name}: missing from actual metrics "
                            f"(expected {expected})")
            continue
        got = int(actual[name])
        tol = float(per_counter_tol.get(name, default_tol))
        slack = abs(expected) * tol
        drift = got - expected
        if abs(drift) > slack:
            kind = "regression" if drift > 0 else "improvement"
            fix = ("investigate the extra work" if drift > 0 else
                   "refresh the baseline with --update to lock it in")
            failures.append(
                f"{name}: {kind}: expected {expected} (±{slack:g}), "
                f"got {got} ({drift:+d}) — {fix}")

    for name in baseline.get("require_zero", []):
        got = int(actual.get(name, -1))
        if got != 0:
            failures.append(
                f"{name}: must be exactly 0 on this workload, got {got} "
                f"(boxed work leaked back onto an encoded hot path?)")

    for name in baseline.get("require_nonzero", []):
        got = int(actual.get(name, 0))
        if got <= 0:
            failures.append(
                f"{name}: must be > 0 on this workload, got {got} "
                f"(did the optimization it pins silently disengage?)")

    for name, pin in sorted(baseline.get("max_ratio", {}).items()):
        denom_name = pin["of"]
        max_ratio = float(pin["max"])
        if name not in actual or denom_name not in actual:
            missing = [n for n in (name, denom_name) if n not in actual]
            failures.append(
                f"{name}: max_ratio pin vs {denom_name} cannot be checked "
                f"({', '.join(missing)} missing from actual metrics)")
            continue
        got = int(actual[name])
        denom = int(actual[denom_name])
        if got > max_ratio * denom:
            failures.append(
                f"{name}: must stay <= {max_ratio:g} x {denom_name} "
                f"({max_ratio:g} x {denom} = {max_ratio * denom:g}), "
                f"got {got}")

    return failures


def update_baseline(baseline, actual, force):
    """Refreshed baseline dict, or (None, errors) when the update must be
    refused: a require_zero/require_nonzero pin references a counter the
    ACTUAL run no longer emits, and --force was not given. With --force the
    vanished pins are dropped (returned in the notices list)."""
    errors = []
    notices = []
    for policy in ("require_zero", "require_nonzero"):
        pinned = baseline.get(policy, [])
        vanished = [name for name in pinned if name not in actual]
        if not vanished:
            continue
        if not force:
            for name in vanished:
                errors.append(
                    f"{name}: pinned by {policy} but missing from ACTUAL — "
                    f"refusing to orphan the pin (re-add the counter or "
                    f"pass --force to drop it)")
            continue
        for name in vanished:
            notices.append(f"dropping {policy} pin {name} "
                           f"(missing from ACTUAL, --force)")
        baseline[policy] = [n for n in pinned if n in actual]
    ratio_pins = baseline.get("max_ratio", {})
    vanished_ratios = [name for name, pin in sorted(ratio_pins.items())
                       if name not in actual or pin["of"] not in actual]
    for name in vanished_ratios:
        if not force:
            errors.append(
                f"{name}: pinned by max_ratio (vs {ratio_pins[name]['of']}) "
                f"but a side is missing from ACTUAL — refusing to orphan "
                f"the pin (re-add the counter or pass --force to drop it)")
        else:
            notices.append(f"dropping max_ratio pin {name} "
                           f"(missing from ACTUAL, --force)")
            del ratio_pins[name]
    if errors:
        return None, errors
    baseline["counters"] = {k: int(v) for k, v in sorted(actual.items())}
    return baseline, notices


def self_test():
    """The gate must fail on inflated counters and pass on exact ones."""
    baseline = {
        "counters": {"eval.predicate_evals": 100, "eval.partition_builds": 7},
        "tolerance": 0.0,
        "require_zero": ["eval.boxed_fallbacks"],
        "require_nonzero": ["eval.blocks_skipped"],
    }
    exact = {"eval.predicate_evals": 100, "eval.partition_builds": 7,
             "eval.boxed_fallbacks": 0, "eval.blocks_skipped": 12}
    inflated = dict(exact, **{"eval.predicate_evals": 101})
    deflated = dict(exact, **{"eval.partition_builds": 6})
    nonzero = dict(exact, **{"eval.boxed_fallbacks": 3})
    zeroed = dict(exact, **{"eval.blocks_skipped": 0})
    missing = {"eval.partition_builds": 7, "eval.boxed_fallbacks": 0,
               "eval.blocks_skipped": 12}
    tolerant = {
        "counters": {"eval.predicate_evals": 100},
        "tolerance": 0.05,
    }

    cases = [
        (baseline, exact, 0, "exact match must pass"),
        (baseline, inflated, 1, "inflated counter must fail"),
        (baseline, deflated, 1, "deflated counter must fail"),
        (baseline, nonzero, 1, "nonzero require_zero counter must fail"),
        (baseline, zeroed, 1, "zero require_nonzero counter must fail"),
        (baseline, missing, 1, "missing counter must fail"),
        (tolerant, {"eval.predicate_evals": 104}, 0,
         "drift within tolerance must pass"),
        (tolerant, {"eval.predicate_evals": 106}, 1,
         "drift beyond tolerance must fail"),
    ]
    ratio = {
        "max_ratio": {"repair.rows_deleted":
                      {"of": "repair.initial_violations", "max": 1.0}},
    }
    cases += [
        (ratio, {"repair.rows_deleted": 9, "repair.initial_violations": 12},
         0, "ratio within bound must pass"),
        (ratio, {"repair.rows_deleted": 13, "repair.initial_violations": 12},
         1, "ratio beyond bound must fail"),
        (ratio, {"repair.initial_violations": 12}, 1,
         "max_ratio with missing numerator must fail"),
        (ratio, {"repair.rows_deleted": 9}, 1,
         "max_ratio with missing denominator must fail"),
    ]
    for base, act, want_fail, what in cases:
        failures = compare(base, act)
        got_fail = 1 if failures else 0
        if got_fail != want_fail:
            print(f"self-test FAILED: {what} (failures={failures})")
            return 1

    # --update must refuse to orphan require_zero/require_nonzero pins.
    import copy
    pinned = {
        "counters": {"serve.batches_rejected": 6},
        "require_nonzero": ["serve.batches_rejected"],
        "require_zero": ["eval.predicate_evals"],
        "max_ratio": {"repair.rows_deleted":
                      {"of": "repair.initial_violations", "max": 1.0}},
        "tolerance": 0.0,
    }
    full = {"serve.batches_rejected": 7, "eval.predicate_evals": 0,
            "repair.rows_deleted": 2, "repair.initial_violations": 5}
    no_ratio_denom = {k: v for k, v in full.items()
                      if k != "repair.initial_violations"}
    update_cases = [
        (full, False, True, None,
         "update with all pinned counters present must succeed"),
        ({k: v for k, v in full.items()
          if k != "serve.batches_rejected"}, False, False, None,
         "update missing a require_nonzero counter must be refused"),
        ({k: v for k, v in full.items()
          if k != "eval.predicate_evals"}, False, False, None,
         "update missing a require_zero counter must be refused"),
        (no_ratio_denom, False, False, None,
         "update missing a max_ratio denominator must be refused"),
        (no_ratio_denom, True, True, "max_ratio",
         "forced update must drop the vanished max_ratio pin"),
        ({k: v for k, v in full.items()
          if k != "eval.predicate_evals"}, True, True, "require_zero",
         "forced update must drop only the vanished pin"),
    ]
    for act, force, want_ok, dropped_from, what in update_cases:
        updated, messages = update_baseline(copy.deepcopy(pinned), act, force)
        if (updated is not None) != want_ok:
            print(f"self-test FAILED: {what} (messages={messages})")
            return 1
        if updated is not None:
            if updated["counters"] != {k: int(v)
                                       for k, v in sorted(act.items())}:
                print(f"self-test FAILED: {what} (counters not refreshed)")
                return 1
            if dropped_from and updated[dropped_from]:
                print(f"self-test FAILED: {what} "
                      f"({dropped_from} pin not dropped)")
                return 1
            if dropped_from and not updated["require_nonzero"]:
                print(f"self-test FAILED: {what} (surviving pin dropped)")
                return 1
    print(f"self-test OK ({len(cases) + len(update_cases)} cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="compare bench metrics.json against a baseline")
    parser.add_argument("baseline", nargs="?", help="baseline json")
    parser.add_argument("actual", nargs="?", help="metrics.json from a run")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline's counters from ACTUAL, "
                             "keeping tolerance/require_zero/require_nonzero "
                             "policy; refuses if a pinned counter is missing "
                             "from ACTUAL")
    parser.add_argument("--force", action="store_true",
                        help="with --update: drop require_zero/"
                             "require_nonzero pins whose counters are "
                             "missing from ACTUAL instead of refusing")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the comparator fails on drift")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.actual:
        parser.error("BASELINE and ACTUAL are required unless --self-test")

    actual = load_json(args.actual)

    if args.update:
        try:
            baseline = load_json(args.baseline)
        except FileNotFoundError:
            baseline = {"tolerance": 0.0}
        baseline, messages = update_baseline(baseline, actual, args.force)
        if baseline is None:
            print(f"REFUSED: {args.baseline} not updated:")
            for line in messages:
                print(f"  {line}")
            return 1
        for line in messages:
            print(f"notice: {line}")
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {args.baseline} "
              f"({len(baseline['counters'])} counters)")
        return 0

    baseline = load_json(args.baseline)
    failures = compare(baseline, actual)
    if failures:
        print(f"FAIL: {args.actual} vs {args.baseline}:")
        for line in failures:
            print(f"  {line}")
        return 1
    n = len(baseline.get("counters", {}))
    print(f"OK: {args.actual} matches {args.baseline} ({n} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
