// Topology-aware decomposition of giant conflict components (DESIGN.md
// §12): SplitComponent's structural contract on chains, barbells, cliques
// and degenerate inputs, RestrictComponent's re-indexing, and the vfree
// split/stitch path end to end — including a workload engineered so the
// independently solved parts disagree across a boundary atom and the
// stitching check must merge and re-solve.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "data/dense.h"
#include "dc/violation.h"
#include "graph/decompose.h"
#include "relation/domain_stats.h"
#include "repair/vfree.h"
#include "solver/components.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

RcAtom VarAtom(int lhs, Op op, int rhs) {
  RcAtom a;
  a.lhs_var = lhs;
  a.op = op;
  a.rhs_is_var = true;
  a.rhs_var = rhs;
  return a;
}

RcAtom ConstAtom(int lhs, Op op, Value rhs) {
  RcAtom a;
  a.lhs_var = lhs;
  a.op = op;
  a.rhs_is_var = false;
  a.rhs_const = std::move(rhs);
  return a;
}

// A component over cells (0,0)..(n-1,0) with the given atoms (sorted and
// deduplicated to meet the Component contract).
Component MakeComponent(int n, std::vector<RcAtom> atoms) {
  Component comp;
  for (int i = 0; i < n; ++i) comp.cells.push_back({i, 0});
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  comp.atoms = std::move(atoms);
  return comp;
}

Component MakeChain(int n) {
  std::vector<RcAtom> atoms;
  for (int i = 0; i + 1 < n; ++i) atoms.push_back(VarAtom(i, Op::kLeq, i + 1));
  return MakeComponent(n, std::move(atoms));
}

// Every structural invariant a SplitPlan promises: parts partition the
// input vars, the var maps round-trip, parts obey the Component contract,
// and every binary atom is either inside one part or listed in
// cross_atoms with endpoints in different parts.
void CheckPlanInvariants(const Component& comp, const SplitPlan& plan) {
  const int n = static_cast<int>(comp.cells.size());
  ASSERT_EQ(plan.part_of.size(), comp.cells.size());
  ASSERT_EQ(plan.local_of.size(), comp.cells.size());
  size_t total_cells = 0;
  for (const Component& part : plan.parts) {
    ASSERT_FALSE(part.cells.empty());
    total_cells += part.cells.size();
    for (size_t i = 1; i < part.cells.size(); ++i) {
      EXPECT_TRUE(part.cells[i - 1] < part.cells[i]) << "cells not sorted";
    }
    for (size_t i = 1; i < part.atoms.size(); ++i) {
      EXPECT_TRUE(part.atoms[i - 1] < part.atoms[i]) << "atoms not sorted";
    }
    for (const RcAtom& a : part.atoms) {
      ASSERT_GE(a.lhs_var, 0);
      ASSERT_LT(a.lhs_var, static_cast<int>(part.cells.size()));
      if (a.rhs_is_var) {
        ASSERT_GE(a.rhs_var, 0);
        ASSERT_LT(a.rhs_var, static_cast<int>(part.cells.size()));
      }
    }
  }
  EXPECT_EQ(total_cells, comp.cells.size()) << "parts must partition vars";
  for (int v = 0; v < n; ++v) {
    const int p = plan.part_of[v];
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<int>(plan.parts.size()));
    ASSERT_TRUE(plan.parts[p].cells[plan.local_of[v]] == comp.cells[v])
        << "var map does not round-trip for var " << v;
  }
  for (const RcAtom& a : comp.atoms) {
    if (!a.rhs_is_var) continue;
    const int pl = plan.part_of[a.lhs_var];
    const int pr = plan.part_of[a.rhs_var];
    if (pl == pr) {
      RcAtom local = a;
      local.lhs_var = plan.local_of[a.lhs_var];
      local.rhs_var = plan.local_of[a.rhs_var];
      EXPECT_TRUE(std::find(plan.parts[pl].atoms.begin(),
                            plan.parts[pl].atoms.end(),
                            local) != plan.parts[pl].atoms.end())
          << "intra-part atom missing from its part";
    } else {
      EXPECT_TRUE(std::find(plan.cross_atoms.begin(), plan.cross_atoms.end(),
                            a) != plan.cross_atoms.end())
          << "straddling atom missing from cross_atoms";
    }
  }
  for (const RcAtom& a : plan.cross_atoms) {
    ASSERT_TRUE(a.rhs_is_var);
    EXPECT_NE(plan.part_of[a.lhs_var], plan.part_of[a.rhs_var])
        << "cross atom does not straddle parts";
  }
}

TEST(DecomposeTest, WithinBudgetReturnsIdenticalSinglePart) {
  Component comp = MakeChain(5);
  DecomposeOptions opts;  // max_component = 24 > 5
  SplitPlan plan = SplitComponent(comp, opts);
  EXPECT_FALSE(plan.split());
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_TRUE(plan.parts[0].cells == comp.cells);
  EXPECT_TRUE(plan.parts[0].atoms == comp.atoms);
  EXPECT_TRUE(plan.cross_atoms.empty());
  EXPECT_TRUE(plan.boundary.empty());
}

TEST(DecomposeTest, ChainSplitsIntoBoundedParts) {
  Component comp = MakeChain(30);
  DecomposeOptions opts;
  opts.max_component = 8;
  SplitPlan plan = SplitComponent(comp, opts);
  EXPECT_TRUE(plan.split());
  EXPECT_GE(plan.parts.size(), 3u);
  EXPECT_FALSE(plan.boundary.empty());
  EXPECT_FALSE(plan.cross_atoms.empty());
  // Every cut is real: each part is strictly smaller than the input, and
  // no part outgrows the budget by more than the re-attached boundary.
  for (const Component& part : plan.parts) {
    EXPECT_LT(part.cells.size(), comp.cells.size());
    EXPECT_LE(part.cells.size(),
              static_cast<size_t>(opts.max_component) + plan.boundary.size());
  }
  CheckPlanInvariants(comp, plan);
}

TEST(DecomposeTest, BarbellCutsTheBridgeNotTheCliques) {
  // Two 6-cliques (vars 0..5 and 10..15) joined by the path 5-6-...-10.
  std::vector<RcAtom> atoms;
  for (int base : {0, 10}) {
    for (int i = base; i < base + 6; ++i) {
      for (int j = i + 1; j < base + 6; ++j) {
        atoms.push_back(VarAtom(i, Op::kEq, j));
      }
    }
  }
  for (int i = 5; i < 10; ++i) atoms.push_back(VarAtom(i, Op::kLeq, i + 1));
  Component comp = MakeComponent(16, std::move(atoms));
  DecomposeOptions opts;
  opts.max_component = 8;
  SplitPlan plan = SplitComponent(comp, opts);
  EXPECT_TRUE(plan.split());
  CheckPlanInvariants(comp, plan);
  // The cut lands on the bridge: each clique survives whole in one part.
  for (int base : {0, 10}) {
    const int part = plan.part_of[base];
    for (int v = base; v < base + 6; ++v) {
      EXPECT_EQ(plan.part_of[v], part)
          << "clique at " << base << " was torn apart";
    }
  }
  EXPECT_NE(plan.part_of[0], plan.part_of[10]);
}

TEST(DecomposeTest, CliqueNeverSplits) {
  // A 12-clique has no articulation point; even a tiny budget must leave
  // it whole rather than cut through the dense core.
  std::vector<RcAtom> atoms;
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) atoms.push_back(VarAtom(i, Op::kEq, j));
  }
  Component comp = MakeComponent(12, std::move(atoms));
  DecomposeOptions opts;
  opts.max_component = 4;
  SplitPlan plan = SplitComponent(comp, opts);
  EXPECT_FALSE(plan.split());
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_TRUE(plan.parts[0].cells == comp.cells);
  EXPECT_TRUE(plan.parts[0].atoms == comp.atoms);
  EXPECT_TRUE(plan.boundary.empty());
  EXPECT_TRUE(plan.cross_atoms.empty());
}

TEST(DecomposeTest, SingleCellComponentIsDegenerate) {
  Component comp = MakeComponent(1, {ConstAtom(0, Op::kGeq, Value::Int(3))});
  DecomposeOptions opts;
  opts.max_component = 0;  // even "oversized", there is nothing to cut
  SplitPlan plan = SplitComponent(comp, opts);
  EXPECT_FALSE(plan.split());
  ASSERT_EQ(plan.parts.size(), 1u);
  EXPECT_TRUE(plan.parts[0].cells == comp.cells);
  EXPECT_TRUE(plan.parts[0].atoms == comp.atoms);
}

TEST(DecomposeTest, RestrictComponentReindexesAtoms) {
  Component comp = MakeComponent(
      5, {VarAtom(0, Op::kLeq, 1), VarAtom(1, Op::kLeq, 2),
          VarAtom(2, Op::kLeq, 3), VarAtom(3, Op::kLeq, 4),
          ConstAtom(2, Op::kGeq, Value::Int(7))});
  Component sub = RestrictComponent(comp, {1, 2, 3});
  ASSERT_EQ(sub.cells.size(), 3u);
  EXPECT_TRUE(sub.cells[0] == comp.cells[1]);
  EXPECT_TRUE(sub.cells[2] == comp.cells[3]);
  // Atoms with an endpoint outside {1,2,3} are dropped; the rest are
  // re-indexed to 0..2.
  std::vector<RcAtom> want = {VarAtom(0, Op::kLeq, 1), VarAtom(1, Op::kLeq, 2),
                              ConstAtom(1, Op::kGeq, Value::Int(7))};
  std::sort(want.begin(), want.end());
  EXPECT_TRUE(sub.atoms == want);
}

// Restores the global pool budget even when an assertion bails out.
class PoolGuard {
 public:
  ~PoolGuard() { ThreadPool::SetNumThreads(1); }
};

// ---- The stitching check, exercised for real: an equality chain whose
// left half says "a" and right half says "b". With every Val cell
// changing, the repair context is one pure var-var chain v0=v1=...=v19;
// a small max_component splits it, all-"a" parts and all-"b" parts each
// keep their originals at zero cost, and the boundary atom at the a/b
// border is violated — the stitch loop must merge and re-solve until the
// combined assignment is consistent.
TEST(DecomposeTest, StitchMergeRepairsCrossAtomViolations) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(1);
  constexpr int kRows = 20;
  constexpr AttrId kKeyA = 0, kKeyB = 1, kVal = 2;
  Schema schema;
  schema.AddAttribute("KeyA", AttrType::kInt);
  schema.AddAttribute("KeyB", AttrType::kInt);
  schema.AddAttribute("Val", AttrType::kString);
  Relation rel(schema);
  for (int i = 0; i < kRows; ++i) {
    rel.AddRow({Value::Int(i / 2), Value::Int((i + 1) / 2),
                Value::String(i < kRows / 2 ? "a" : "b")});
  }
  // Overlapping half-shifted pair windows (the dense-generator trick):
  // rows sharing KeyA or KeyB must agree on Val, chaining all rows.
  ConstraintSet sigma = {
      DenialConstraint({Predicate::TwoCell(0, kKeyA, Op::kEq, 1, kKeyA),
                        Predicate::TwoCell(0, kVal, Op::kNeq, 1, kVal)}),
      DenialConstraint({Predicate::TwoCell(0, kKeyB, Op::kEq, 1, kKeyB),
                        Predicate::TwoCell(0, kVal, Op::kNeq, 1, kVal)})};
  std::vector<Cell> changing;
  for (int i = 0; i < kRows; ++i) changing.push_back({i, kVal});
  DomainStats stats(rel);

  auto run = [&](bool decompose) {
    VfreeOptions options;
    options.decompose = decompose;
    options.max_component = 6;
    options.threads = 1;
    RepairStats rstats;
    int64_t fresh = 1;
    std::optional<Relation> repaired = DataRepairVfree(
        rel, stats, sigma, changing,
        std::numeric_limits<double>::infinity(), options, nullptr, &rstats,
        &fresh);
    return std::make_pair(std::move(repaired), rstats);
  };

  auto [on_repaired, on_stats] = run(true);
  ASSERT_TRUE(on_repaired.has_value());
  EXPECT_TRUE(Satisfies(*on_repaired, sigma));
  EXPECT_GE(on_stats.components_split, 1);
  EXPECT_GE(on_stats.stitch_merges, 1)
      << "the a/b boundary atom must force a merged re-solve";

  auto [off_repaired, off_stats] = run(false);
  ASSERT_TRUE(off_repaired.has_value());
  EXPECT_TRUE(Satisfies(*off_repaired, sigma));
  EXPECT_EQ(off_stats.stitch_merges, 0);
  EXPECT_LE(on_stats.repair_cost, off_stats.repair_cost + 1e-9)
      << "stitching must not cost more than the undecomposed solve";
}

// ---- End to end on the adversarial dense generator: the giant banded
// component splits, the repair stays violation-free at no extra cost, and
// the decomposed path is bit-identical across thread counts.
TEST(DecomposeTest, DenseWorkloadSplitsAndStaysViolationFree) {
  PoolGuard guard;
  DenseConfig config;
  config.num_tracks = 1;
  config.rows_per_track = 120;
  config.error_rate = 0.4;
  DenseData dense = MakeDense(config);

  auto run = [&](bool decompose, int threads) {
    ThreadPool::SetNumThreads(threads);
    VfreeOptions options;
    options.decompose = decompose;
    options.max_component = 12;
    options.threads = threads;
    return VfreeRepair(dense.dirty, dense.sigma, options);
  };

  RepairResult off = run(false, 1);
  RepairResult on = run(true, 1);
  EXPECT_TRUE(Satisfies(off.repaired, dense.sigma));
  EXPECT_TRUE(Satisfies(on.repaired, dense.sigma));
  EXPECT_GE(on.stats.components_split, 1)
      << "the dense workload must produce a splittable giant component";
  EXPECT_GT(on.stats.giant_component_cells, 0);
  EXPECT_LE(on.stats.repair_cost, off.stats.repair_cost + 1e-9);

  RepairResult on4 = run(true, 4);
  ASSERT_EQ(on.repaired.num_rows(), on4.repaired.num_rows());
  for (int i = 0; i < on.repaired.num_rows(); ++i) {
    for (AttrId a = 0; a < on.repaired.num_attributes(); ++a) {
      ASSERT_EQ(on.repaired.Get(i, a), on4.repaired.Get(i, a))
          << "decomposed repair differs at t" << i << "." << a
          << " between 1 and 4 threads";
    }
  }
  EXPECT_EQ(on.stats.repair_cost, on4.stats.repair_cost);
  EXPECT_EQ(on.stats.components_split, on4.stats.components_split);
  EXPECT_EQ(on.stats.stitch_merges, on4.stats.stitch_merges);
}

}  // namespace
}  // namespace cvrepair
