#include "data/tax.h"

#include <gtest/gtest.h>

#include "data/noise.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

TEST(TaxTest, PreciseRulesHoldOnCleanData) {
  TaxData tax = MakeTax(TaxConfig{});
  EXPECT_EQ(tax.clean.num_attributes(), 10);
  EXPECT_TRUE(Satisfies(tax.clean, tax.precise));
  // The overrefined given rules refine the precise ones, so they hold.
  EXPECT_TRUE(Satisfies(tax.clean, tax.given));
  EXPECT_TRUE(IsRefinedBy(tax.precise, tax.given));
}

TEST(TaxTest, ExemptSinglesWithDependentsExist) {
  // The population segment the overrefined constant CFD misses must be
  // non-trivial, or the experiment degenerates.
  TaxData tax = MakeTax(TaxConfig{});
  int exempt_with_deps = 0;
  for (int i = 0; i < tax.clean.num_rows(); ++i) {
    if (tax.clean.Get(i, TaxAttrs::kMarital) == Value::String("S") &&
        tax.clean.Get(i, TaxAttrs::kSalary).numeric() < 20000.0 &&
        tax.clean.Get(i, TaxAttrs::kDependents).numeric() > 0) {
      ++exempt_with_deps;
    }
  }
  EXPECT_GT(exempt_with_deps, 3);
}

TEST(TaxTest, OverrefinedCfdsMissErrorsAndNegativeThetaRecovers) {
  TaxData tax = MakeTax(TaxConfig{});
  NoiseConfig noise;
  noise.error_rate = 0.06;
  // Noise on the CFD consequents only: State stays clean — it is both an
  // FD consequent and the rate rule's join key, and simultaneous noise on
  // a join key entangles every context that joins through it (a known
  // conservative-repair ceiling; see DESIGN.md).
  noise.target_attrs = {TaxAttrs::kRate, TaxAttrs::kTax};
  NoisyData dirty = InjectNoise(tax.clean, noise);

  RepairResult plain = VfreeRepair(dirty.dirty, tax.given);
  AccuracyResult plain_acc = CellAccuracy(tax.clean, dirty.dirty, plain.repaired);

  CVTolerantOptions options;
  options.variants.theta = -1.0;
  options.variants.space = tax.space;
  options.variants.max_changed_constraints = 2;
  RepairResult cv = CVTolerantRepair(dirty.dirty, tax.given, options);
  AccuracyResult cv_acc = CellAccuracy(tax.clean, dirty.dirty, cv.repaired);

  EXPECT_TRUE(Satisfies(cv.repaired, cv.satisfied_constraints));
  EXPECT_GT(cv_acc.recall, plain_acc.recall)
      << "deleting the excessive CFD predicates must expose more errors";
  // The chosen variant dropped predicates: it is refined BY the given set.
  EXPECT_TRUE(IsRefinedBy(cv.satisfied_constraints, tax.given));
}

TEST(TaxTest, ConstantPredicateDeletionTargetsTheGuard) {
  // At θ = -0.5 with the constant-CFD rule alone, the only sensible
  // deletion is the Dependents=0 guard: Salary< and Tax> are non-equality
  // constant predicates (not deletable without a substitution, and
  // constants are never inserted), and deleting Marital='S' exposes
  // massive overrepair.
  TaxData tax = MakeTax(TaxConfig{});
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = {TaxAttrs::kTax};
  NoisyData dirty = InjectNoise(tax.clean, noise);

  ConstraintSet sigma = {tax.given[3]};  // ccfd_exemption_overrefined
  CVTolerantOptions options;
  options.variants.theta = -0.5;
  options.variants.space = tax.space;
  RepairResult cv = CVTolerantRepair(dirty.dirty, sigma, options);
  ASSERT_EQ(cv.satisfied_constraints.size(), 1u);
  const DenialConstraint& chosen = cv.satisfied_constraints[0];
  EXPECT_EQ(chosen.size(), 3);
  // Dependents guard gone, the other three predicates intact.
  bool has_deps = false;
  for (const Predicate& p : chosen.predicates()) {
    if (p.lhs().attr == TaxAttrs::kDependents) has_deps = true;
  }
  EXPECT_FALSE(has_deps) << chosen.ToString(tax.clean.schema());
  EXPECT_TRUE(Satisfies(cv.repaired, cv.satisfied_constraints));
}

}  // namespace
}  // namespace cvrepair
