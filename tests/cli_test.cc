// End-to-end test of the command-line tool: writes schema/data/constraint
// files, invokes the binary (path injected by CMake), and checks the
// repaired CSV and the JSON report.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cvrepair {
namespace {

#ifndef CVREPAIR_CLI_PATH
#define CVREPAIR_CLI_PATH ""
#endif

std::string TempDir() {
  const char* dir = std::getenv("TMPDIR");
  return dir ? dir : "/tmp";
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  f << text;
}

std::string RunAndCapture(const std::string& command) {
  std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string out;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
  return out;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cli_ = CVREPAIR_CLI_PATH;
    ASSERT_FALSE(cli_.empty()) << "CLI path not configured";
    dir_ = TempDir() + "/cvrepair_cli_test";
    std::string ignore = RunAndCapture("mkdir -p " + dir_);
    WriteFile(dir_ + "/schema.txt",
              "Name:string\nGroup:string\nValue:string\n");
    WriteFile(dir_ + "/data.csv",
              "Name,Group,Value\n"
              "n1,g1,x\nn2,g1,x\nn3,g1,BAD\nn4,g2,y\nn5,g2,y\n");
    WriteFile(dir_ + "/rules.txt", "# cleaning rule\nGroup -> Value\n");
  }

  std::string cli_;
  std::string dir_;
};

TEST_F(CliTest, RepairWritesCsvAndReport) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --theta 0" +
      " --output " + dir_ + "/repaired.csv --show-constraints --explain");
  EXPECT_NE(out.find("cells changed:    1"), std::string::npos) << out;
  EXPECT_NE(out.find("satisfied constraints:"), std::string::npos) << out;
  EXPECT_NE(out.find("t3.Value: BAD -> x"), std::string::npos) << out;

  std::ifstream f(dir_ + "/repaired.csv");
  ASSERT_TRUE(f.is_open());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str().find("BAD"), std::string::npos) << buf.str();
  EXPECT_NE(buf.str().find("n3,g1,x"), std::string::npos) << buf.str();
}

TEST_F(CliTest, JsonModeEmitsParsableSkeleton) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --json");
  EXPECT_NE(out.find("\"algorithm\": \"cvtolerant\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"changed_cells\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"changes\": ["), std::string::npos) << out;
}

TEST_F(CliTest, DiscoveryModeListsFds) {
  std::string out = RunAndCapture(cli_ + " --schema " + dir_ +
                                  "/schema.txt --data " + dir_ +
                                  "/data.csv --discover --confidence 0.6");
  EXPECT_NE(out.find("Group -> Value"), std::string::npos) << out;
}

TEST_F(CliTest, BadArgumentsFailWithUsage) {
  std::string out = RunAndCapture(cli_ + " --nonsense");
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST_F(CliTest, NegativeThreadsRejected) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --threads -2");
  EXPECT_NE(out.find("--threads must be >= 0"), std::string::npos) << out;
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
}

TEST_F(CliTest, BadReuseIndexValueRejected) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --reuse-index yes");
  EXPECT_NE(out.find("--reuse-index must be 0 or 1"), std::string::npos)
      << out;
}

// --reuse-index only changes the work counters, never the repair: both
// modes must report the same changed cells, and the stats line must expose
// the index-cache counters.
TEST_F(CliTest, ReuseIndexTogglesCacheNotResults) {
  std::string base = cli_ + " --schema " + dir_ + "/schema.txt --data " +
                     dir_ + "/data.csv --constraints " + dir_ +
                     "/rules.txt --theta 0";
  std::string with = RunAndCapture(base + " --reuse-index 1");
  std::string without = RunAndCapture(base + " --reuse-index 0");
  EXPECT_NE(with.find("cells changed:    1"), std::string::npos) << with;
  EXPECT_NE(without.find("cells changed:    1"), std::string::npos) << without;
  EXPECT_NE(with.find("index cache:"), std::string::npos) << with;
  EXPECT_NE(without.find("index cache:"), std::string::npos) << without;
}

TEST_F(CliTest, BadEncodedValueRejected) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --encoded yes");
  EXPECT_NE(out.find("--encoded must be 0 or 1"), std::string::npos) << out;
}

// --encoded only moves work between the predicate-eval and code-eval
// counters, never the repair: both modes must report the same changed
// cells, and the stats line must say which backend ran.
std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --metrics-out writes the deterministic work-counter snapshot: the file
// must exist, carry the expected counter families, and be byte-identical
// across repeated runs and across thread counts (the CI baseline
// contract).
TEST_F(CliTest, MetricsOutIsByteIdenticalAcrossRunsAndThreads) {
  std::string base = cli_ + " --schema " + dir_ + "/schema.txt --data " +
                     dir_ + "/data.csv --constraints " + dir_ +
                     "/rules.txt --theta 0";
  std::string out1 =
      RunAndCapture(base + " --threads 1 --metrics-out " + dir_ + "/m1.json");
  std::string out2 =
      RunAndCapture(base + " --threads 1 --metrics-out " + dir_ + "/m2.json");
  std::string out4 =
      RunAndCapture(base + " --threads 4 --metrics-out " + dir_ + "/m4.json");
  EXPECT_NE(out1.find("metrics:"), std::string::npos) << out1;

  std::string m1 = ReadWholeFile(dir_ + "/m1.json");
  ASSERT_FALSE(m1.empty());
  EXPECT_EQ(m1, ReadWholeFile(dir_ + "/m2.json"));
  EXPECT_EQ(m1, ReadWholeFile(dir_ + "/m4.json"));
  EXPECT_NE(m1.find("\"eval."), std::string::npos) << m1;
  EXPECT_NE(m1.find("\"repair.solver_calls\""), std::string::npos) << m1;
  // Scheduling counters must never leak into the deterministic file.
  EXPECT_EQ(m1.find("\"pool."), std::string::npos) << m1;
}

// --trace-out writes a Chrome trace with the pipeline phase spans.
TEST_F(CliTest, TraceOutWritesPhaseSpans) {
  std::string out = RunAndCapture(
      cli_ + " --schema " + dir_ + "/schema.txt --data " + dir_ +
      "/data.csv --constraints " + dir_ + "/rules.txt --theta 0" +
      " --trace-out " + dir_ + "/trace.json");
  EXPECT_NE(out.find("trace:"), std::string::npos) << out;
  std::string trace = ReadWholeFile(dir_ + "/trace.json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("cvtolerant/repair"), std::string::npos);
  EXPECT_NE(trace.find("vfree/data_repair"), std::string::npos);
}

// The generator mode runs without any input files.
TEST_F(CliTest, GeneratorModeRepairsSyntheticWorkload) {
  std::string out = RunAndCapture(
      cli_ + " --generate hosp --size 6 --algorithm vfree");
  EXPECT_NE(out.find("cells changed:"), std::string::npos) << out;
  std::string bad = RunAndCapture(cli_ + " --generate nosuch");
  EXPECT_NE(bad.find("--generate"), std::string::npos) << bad;
  EXPECT_NE(bad.find("usage:"), std::string::npos) << bad;
}

// Streaming replay mode: ends violation-free, reports per-batch
// localization, and its per-batch numbers are thread-count invariant.
TEST_F(CliTest, StreamBatchesReplaysAndStaysViolationFree) {
  std::string base = cli_ + " --generate hosp --size 6 --stream-batches 3" +
                     " --batch-size 6";
  std::string out1 = RunAndCapture(base + " --threads 1");
  EXPECT_NE(out1.find("cvtolerant (streaming)"), std::string::npos) << out1;
  EXPECT_NE(out1.find("batch 2:"), std::string::npos) << out1;
  EXPECT_NE(out1.find("violation-free:   yes"), std::string::npos) << out1;

  std::string out4 = RunAndCapture(base + " --threads 4");
  // Batch lines carry wall-clock; compare everything up to the cost field.
  auto batch_lines = [](const std::string& s) {
    std::istringstream in(s);
    std::string line, kept;
    while (std::getline(in, line)) {
      if (line.rfind("batch ", 0) == 0) {
        kept += line.substr(0, line.rfind(", ")) + "\n";
      }
    }
    return kept;
  };
  EXPECT_EQ(batch_lines(out1), batch_lines(out4)) << out1 << out4;
}

TEST_F(CliTest, StreamBatchesWritesMetricsAndCsv) {
  std::string out = RunAndCapture(
      cli_ + " --generate hosp --size 6 --stream-batches 2 --batch-size 5" +
      " --metrics-out " + dir_ + "/stream.json --output " + dir_ +
      "/streamed.csv");
  EXPECT_NE(out.find("violation-free:   yes"), std::string::npos) << out;
  std::string metrics = ReadWholeFile(dir_ + "/stream.json");
  EXPECT_NE(metrics.find("\"stream.batches\": 2"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"stream.rows_rechecked\""), std::string::npos)
      << metrics;
  EXPECT_FALSE(ReadWholeFile(dir_ + "/streamed.csv").empty());
}

TEST_F(CliTest, StreamBatchesRejectsOtherAlgorithmsAndBadSizes) {
  std::string wrong = RunAndCapture(
      cli_ + " --generate hosp --stream-batches 2 --algorithm vfree");
  EXPECT_NE(wrong.find("--stream-batches requires"), std::string::npos)
      << wrong;
  std::string bad = RunAndCapture(cli_ + " --generate hosp --batch-size 0");
  EXPECT_NE(bad.find("--batch-size must be > 0"), std::string::npos) << bad;
}

TEST_F(CliTest, EncodedTogglesBackendNotResults) {
  std::string base = cli_ + " --schema " + dir_ + "/schema.txt --data " +
                     dir_ + "/data.csv --constraints " + dir_ +
                     "/rules.txt --theta 0";
  std::string with = RunAndCapture(base + " --encoded 1");
  std::string without = RunAndCapture(base + " --encoded 0");
  EXPECT_NE(with.find("cells changed:    1"), std::string::npos) << with;
  EXPECT_NE(without.find("cells changed:    1"), std::string::npos) << without;
  EXPECT_NE(with.find("encoded:          on"), std::string::npos) << with;
  EXPECT_NE(without.find("encoded:          off"), std::string::npos)
      << without;
  EXPECT_NE(with.find("code evals"), std::string::npos) << with;
}

}  // namespace
}  // namespace cvrepair
