#include "dc/op.h"

#include <gtest/gtest.h>

namespace cvrepair {
namespace {

// Ground-truth evaluation on doubles for the property checks.
bool Truth(double a, Op op, double b) {
  switch (op) {
    case Op::kEq: return a == b;
    case Op::kNeq: return a != b;
    case Op::kGt: return a > b;
    case Op::kLt: return a < b;
    case Op::kGeq: return a >= b;
    case Op::kLeq: return a <= b;
  }
  return false;
}

TEST(OpTest, InverseTable) {
  EXPECT_EQ(Inverse(Op::kEq), Op::kNeq);
  EXPECT_EQ(Inverse(Op::kNeq), Op::kEq);
  EXPECT_EQ(Inverse(Op::kGt), Op::kLeq);
  EXPECT_EQ(Inverse(Op::kLt), Op::kGeq);
  EXPECT_EQ(Inverse(Op::kGeq), Op::kLt);
  EXPECT_EQ(Inverse(Op::kLeq), Op::kGt);
}

TEST(OpTest, ImpTableMatchesPaper) {
  // Table 1: Imp(=) = {=, >=, <=}; Imp(!=) = {!=}; Imp(>) = {>, >=, !=};
  // Imp(<) = {<, <=, !=}; Imp(>=) = {>=}; Imp(<=) = {<=}.
  EXPECT_TRUE(Implies(Op::kEq, Op::kGeq));
  EXPECT_TRUE(Implies(Op::kEq, Op::kLeq));
  EXPECT_FALSE(Implies(Op::kEq, Op::kNeq));
  EXPECT_TRUE(Implies(Op::kGt, Op::kNeq));
  EXPECT_TRUE(Implies(Op::kGt, Op::kGeq));
  EXPECT_FALSE(Implies(Op::kGeq, Op::kGt));
  EXPECT_TRUE(Implies(Op::kLt, Op::kLeq));
  EXPECT_EQ(Imp(Op::kGeq).size(), 1u);
  EXPECT_EQ(Imp(Op::kNeq).size(), 1u);
}

class OpPairProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(OpPairProperty, InverseIsNegationOnConcreteValues) {
  auto [ai, bi] = GetParam();
  Value a = Value::Double(ai);
  Value b = Value::Double(bi);
  for (Op op : AllOps()) {
    EXPECT_NE(EvalOp(a, op, b), EvalOp(a, Inverse(op), b))
        << ai << " " << OpToString(op) << " " << bi;
  }
}

TEST_P(OpPairProperty, ImpliesHoldsSemantically) {
  auto [ai, bi] = GetParam();
  for (Op op1 : AllOps()) {
    for (Op op2 : AllOps()) {
      if (!Implies(op1, op2)) continue;
      if (Truth(ai, op1, bi)) {
        EXPECT_TRUE(Truth(ai, op2, bi))
            << ai << OpToString(op1) << bi << " should imply "
            << OpToString(op2);
      }
    }
  }
}

TEST_P(OpPairProperty, ContradictsMeansNeverBothTrue) {
  auto [ai, bi] = GetParam();
  for (Op op1 : AllOps()) {
    for (Op op2 : AllOps()) {
      if (Contradicts(op1, op2)) {
        EXPECT_FALSE(Truth(ai, op1, bi) && Truth(ai, op2, bi))
            << OpToString(op1) << " vs " << OpToString(op2) << " on " << ai
            << "," << bi;
      }
    }
  }
}

TEST_P(OpPairProperty, FlipOperandsSwaps) {
  auto [ai, bi] = GetParam();
  Value a = Value::Double(ai);
  Value b = Value::Double(bi);
  for (Op op : AllOps()) {
    EXPECT_EQ(EvalOp(a, op, b), EvalOp(b, FlipOperands(op), a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderings, OpPairProperty,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 1}, std::pair{3, 3},
                      std::pair{-5, 0}, std::pair{0, 0}, std::pair{7, -7}));

TEST(OpTest, FreshAndNullSatisfyNothing) {
  for (Op op : AllOps()) {
    EXPECT_FALSE(EvalOp(Value::Fresh(1), op, Value::Fresh(1)));
    EXPECT_FALSE(EvalOp(Value::Fresh(1), op, Value::Int(1)));
    EXPECT_FALSE(EvalOp(Value::Int(1), op, Value::Null()));
    EXPECT_FALSE(EvalOp(Value::Null(), op, Value::Null()));
  }
}

TEST(OpTest, MixedNumericWidthsCompareNumerically) {
  EXPECT_TRUE(EvalOp(Value::Int(2), Op::kEq, Value::Double(2.0)));
  EXPECT_TRUE(EvalOp(Value::Int(2), Op::kLt, Value::Double(2.5)));
  EXPECT_FALSE(EvalOp(Value::Int(3), Op::kLeq, Value::Double(2.5)));
}

TEST(OpTest, TypeMismatchSatisfiesNothing) {
  for (Op op : AllOps()) {
    EXPECT_FALSE(EvalOp(Value::String("2"), op, Value::Int(2)));
  }
}

TEST(OpTest, StringComparisonIsLexicographic) {
  EXPECT_TRUE(EvalOp(Value::String("abc"), Op::kLt, Value::String("abd")));
  EXPECT_TRUE(EvalOp(Value::String("b"), Op::kGt, Value::String("a")));
  EXPECT_TRUE(EvalOp(Value::String("x"), Op::kEq, Value::String("x")));
}

TEST(OpTest, ParseAndPrint) {
  Op op;
  EXPECT_TRUE(ParseOp("=", &op));
  EXPECT_EQ(op, Op::kEq);
  EXPECT_TRUE(ParseOp("!=", &op));
  EXPECT_EQ(op, Op::kNeq);
  EXPECT_TRUE(ParseOp("<>", &op));
  EXPECT_EQ(op, Op::kNeq);
  EXPECT_TRUE(ParseOp(">=", &op));
  EXPECT_EQ(op, Op::kGeq);
  EXPECT_FALSE(ParseOp("~", &op));
  for (Op o : AllOps()) {
    Op round;
    EXPECT_TRUE(ParseOp(OpToString(o), &round));
    EXPECT_EQ(round, o);
  }
}

}  // namespace
}  // namespace cvrepair
