#ifndef CVREPAIR_TESTS_PAPER_EXAMPLE_H_
#define CVREPAIR_TESTS_PAPER_EXAMPLE_H_

#include <string>

#include "dc/constraint.h"
#include "dc/parser.h"
#include "relation/relation.h"

namespace cvrepair {
namespace testing_fixture {

// The Income relation of Figure 1(a) of the paper. Rows are t1..t10 at
// indexes 0..9. Income/Tax are in "k" units (21 = 21k).
inline Relation PaperIncomeRelation() {
  Schema schema;
  schema.AddAttribute("Name", AttrType::kString);
  schema.AddAttribute("Birthday", AttrType::kString);
  schema.AddAttribute("CP", AttrType::kString);
  schema.AddAttribute("Year", AttrType::kInt);
  schema.AddAttribute("Income", AttrType::kDouble);
  schema.AddAttribute("Tax", AttrType::kDouble);
  Relation rel(schema);
  auto row = [&](const std::string& name, const std::string& bday,
                 const std::string& cp, int year, double income, double tax) {
    rel.AddRow({Value::String(name), Value::String(bday), Value::String(cp),
                Value::Int(year), Value::Double(income), Value::Double(tax)});
  };
  row("Ayres", "8-8-1984", "322-573", 2007, 21, 0);
  row("Ayres", "5-1-1960", "***-389", 2007, 22, 0);
  row("Ayres", "5-1-1960", "564-389", 2007, 22, 0);
  row("Stanley", "13-8-1987", "868-701", 2007, 23, 3);
  row("Stanley", "31-7-1983", "***-198", 2007, 24, 0);
  row("Stanley", "31-7-1983", "930-198", 2008, 24, 0);
  row("Dustin", "2-12-1985", "179-924", 2008, 25, 0);
  row("Dustin", "5-9-1980", "***-870", 2008, 100, 21);
  row("Dustin", "5-9-1980", "824-870", 2009, 100, 21);
  row("Dustin", "9-4-1984", "387-215", 2009, 150, 40);
  return rel;
}

// Parses a constraint against the Figure 1 schema; aborts on error.
inline DenialConstraint Parse(const Relation& rel, const std::string& text) {
  ParseConstraintResult r = ParseConstraint(rel.schema(), text);
  if (!r.ok()) std::abort();
  return *r.constraint;
}

// φ1: Name -> CP (oversimplified).
inline DenialConstraint Phi1(const Relation& rel) {
  return Parse(rel, "phi1: not(t0.Name=t1.Name & t0.CP!=t1.CP)");
}
// φ2: Name, Birthday -> CP (precise).
inline DenialConstraint Phi2(const Relation& rel) {
  return Parse(rel,
               "phi2: not(t0.Name=t1.Name & t0.Birthday=t1.Birthday & "
               "t0.CP!=t1.CP)");
}
// φ3: Name, Year, Birthday -> CP (overrefined).
inline DenialConstraint Phi3(const Relation& rel) {
  return Parse(rel,
               "phi3: not(t0.Name=t1.Name & t0.Year=t1.Year & "
               "t0.Birthday=t1.Birthday & t0.CP!=t1.CP)");
}
// φ4: not(Income> & Tax<=) (imprecise, Example 3).
inline DenialConstraint Phi4(const Relation& rel) {
  return Parse(rel, "phi4: not(t0.Income>t1.Income & t0.Tax<=t1.Tax)");
}
// φ4': not(Income> & Tax<) (repaired, Example 4).
inline DenialConstraint Phi4Prime(const Relation& rel) {
  return Parse(rel, "phi4p: not(t0.Income>t1.Income & t0.Tax<t1.Tax)");
}

}  // namespace testing_fixture
}  // namespace cvrepair

#endif  // CVREPAIR_TESTS_PAPER_EXAMPLE_H_
