// Numeric interval propagation (solver/interval.h): AC-3 bound narrowing
// over <, <=, >, >=, != plus the min-|Δ| value pick that replaces the
// fresh-variable fallback for order/range constraints. Table-driven, in
// the QuantLib test-suite idiom: each case is one row of a struct array,
// the loop body is the assertion.
#include "solver/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "paper_example.h"
#include "solver/components.h"
#include "solver/repair_context.h"

namespace cvrepair {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// NarrowWithConst: unary bounds, open/closed endpoints, punctures.

struct NarrowCase {
  const char* name;
  Op op;
  double c;
  double lo, hi;
  bool lo_open, hi_open;
  bool changed;
};

TEST(IntervalTest, NarrowWithConstTable) {
  const NarrowCase cases[] = {
      {"lt_sets_open_upper", Op::kLt, 5.0, -kInf, 5.0, false, true, true},
      {"leq_sets_closed_upper", Op::kLeq, 5.0, -kInf, 5.0, false, false,
       true},
      {"gt_sets_open_lower", Op::kGt, -2.0, -2.0, kInf, true, false, true},
      {"geq_sets_closed_lower", Op::kGeq, -2.0, -2.0, kInf, false, false,
       true},
      {"eq_collapses_to_point", Op::kEq, 7.5, 7.5, 7.5, false, false, true},
  };
  for (const NarrowCase& c : cases) {
    SCOPED_TRACE(c.name);
    Interval iv = Interval::All();
    EXPECT_EQ(NarrowWithConst(&iv, c.op, c.c), c.changed);
    EXPECT_EQ(iv.lo, c.lo);
    EXPECT_EQ(iv.hi, c.hi);
    EXPECT_EQ(iv.lo_open, c.lo_open);
    EXPECT_EQ(iv.hi_open, c.hi_open);
  }
}

TEST(IntervalTest, NarrowIsMonotoneAndIdempotent) {
  Interval iv = Interval::All();
  ASSERT_TRUE(NarrowWithConst(&iv, Op::kLt, 5.0));
  // A weaker bound changes nothing; a strictly tighter one does.
  EXPECT_FALSE(NarrowWithConst(&iv, Op::kLt, 5.0));
  EXPECT_FALSE(NarrowWithConst(&iv, Op::kLeq, 6.0));
  EXPECT_TRUE(NarrowWithConst(&iv, Op::kLeq, 4.0));
  // <= 4 then < 4: same bound, open beats closed.
  EXPECT_TRUE(NarrowWithConst(&iv, Op::kLt, 4.0));
  EXPECT_FALSE(NarrowWithConst(&iv, Op::kLt, 4.0));
}

TEST(IntervalTest, NeqPuncturesWithoutMovingBounds) {
  Interval iv = Interval::All();
  ASSERT_TRUE(NarrowWithConst(&iv, Op::kGeq, 0.0));
  ASSERT_TRUE(NarrowWithConst(&iv, Op::kLeq, 10.0));
  ASSERT_TRUE(NarrowWithConst(&iv, Op::kNeq, 5.0));
  EXPECT_FALSE(NarrowWithConst(&iv, Op::kNeq, 5.0));  // dedup: no change
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 10.0);
  EXPECT_FALSE(iv.Contains(5.0));
  EXPECT_TRUE(iv.Contains(5.5));
  EXPECT_TRUE(iv.Contains(0.0));
  EXPECT_TRUE(iv.Contains(10.0));
  EXPECT_FALSE(iv.Contains(10.5));
}

// ---------------------------------------------------------------------------
// NarrowWithInterval: binary bound propagation.

TEST(IntervalTest, BinaryBoundPropagationTable) {
  Interval y;  // y in [2, 8]
  NarrowWithConst(&y, Op::kGeq, 2.0);
  NarrowWithConst(&y, Op::kLeq, 8.0);

  struct BinCase {
    const char* name;
    Op op;
    double lo, hi;
    bool lo_open, hi_open;
  };
  const BinCase cases[] = {
      {"x_lt_y_caps_at_sup_open", Op::kLt, -kInf, 8.0, false, true},
      {"x_leq_y_caps_at_sup_closed", Op::kLeq, -kInf, 8.0, false, false},
      {"x_gt_y_floors_at_inf_open", Op::kGt, 2.0, kInf, true, false},
      {"x_geq_y_floors_at_inf_closed", Op::kGeq, 2.0, kInf, false, false},
      {"x_eq_y_intersects", Op::kEq, 2.0, 8.0, false, false},
  };
  for (const BinCase& c : cases) {
    SCOPED_TRACE(c.name);
    Interval x = Interval::All();
    EXPECT_TRUE(NarrowWithInterval(&x, c.op, y));
    EXPECT_EQ(x.lo, c.lo);
    EXPECT_EQ(x.hi, c.hi);
    EXPECT_EQ(x.lo_open, c.lo_open);
    EXPECT_EQ(x.hi_open, c.hi_open);
  }
}

TEST(IntervalTest, BinaryNeqPuncturesOnlyAtPoint) {
  Interval wide;  // y in [2, 8]: != cannot exclude anything
  NarrowWithConst(&wide, Op::kGeq, 2.0);
  NarrowWithConst(&wide, Op::kLeq, 8.0);
  Interval x = Interval::All();
  EXPECT_FALSE(NarrowWithInterval(&x, Op::kNeq, wide));
  EXPECT_TRUE(x.Contains(5.0));

  Interval point;  // y = [3, 3] closed: x != y punctures 3
  NarrowWithConst(&point, Op::kEq, 3.0);
  EXPECT_TRUE(NarrowWithInterval(&x, Op::kNeq, point));
  EXPECT_FALSE(x.Contains(3.0));
  EXPECT_TRUE(x.Contains(3.5));
}

// ---------------------------------------------------------------------------
// SnapIntegral: integer domains round bounds inward.

TEST(IntervalTest, SnapIntegralTable) {
  struct SnapCase {
    const char* name;
    double lo, hi;
    bool lo_open, hi_open;
    double want_lo, want_hi;
  };
  const SnapCase cases[] = {
      {"fractional_bounds_round_inward", 1.2, 7.8, false, false, 2.0, 7.0},
      {"open_integer_bounds_step_past", 2.0, 7.0, true, true, 3.0, 6.0},
      {"closed_integer_bounds_keep", 2.0, 7.0, false, false, 2.0, 7.0},
      {"open_fractional_same_as_closed", 1.5, 6.5, true, true, 2.0, 6.0},
  };
  for (const SnapCase& c : cases) {
    SCOPED_TRACE(c.name);
    Interval iv;
    iv.lo = c.lo;
    iv.hi = c.hi;
    iv.lo_open = c.lo_open;
    iv.hi_open = c.hi_open;
    SnapIntegral(&iv);
    EXPECT_EQ(iv.lo, c.want_lo);
    EXPECT_EQ(iv.hi, c.want_hi);
    EXPECT_FALSE(iv.lo_open);
    EXPECT_FALSE(iv.hi_open);
  }
}

// ---------------------------------------------------------------------------
// PickMinDelta: the min-|Δ| pick, integral and continuous.

struct PickCase {
  const char* name;
  double lo, hi;
  bool lo_open, hi_open;
  std::vector<double> holes;
  double origin;
  bool integral;
  double want;  // ignored when empty
  bool empty = false;
};

TEST(IntervalTest, PickMinDeltaTable) {
  const PickCase cases[] = {
      {"origin_inside_is_free", 0.0, 10.0, false, false, {}, 4.0, false,
       4.0},
      {"clamps_to_nearest_bound", 0.0, 10.0, false, false, {}, 15.0, false,
       10.0},
      {"open_upper_nudges_inward", 0.0, 10.0, false, true, {}, 15.0, false,
       9.0},
      {"open_lower_nudges_inward", 0.0, 10.0, true, false, {}, -3.0, false,
       1.0},
      {"narrow_open_interval_halves", 0.0, 1.0, true, true, {}, 5.0, false,
       0.5},
      {"hole_at_origin_steps_off", 0.0, 10.0, false, false, {4.0}, 4.0,
       false, 4.5},
      {"int_origin_inside_is_free", 0.0, 10.0, false, false, {}, 4.0, true,
       4.0},
      {"int_clamps_to_bound", 0.0, 10.0, false, false, {}, 15.2, true, 10.0},
      {"int_open_bounds_step_by_one", 0.0, 3.0, true, true, {}, 0.0, true,
       1.0},
      {"int_hole_ties_prefer_smaller", 0.0, 10.0, false, false, {4.0}, 4.0,
       true, 3.0},
      {"int_point_hole_is_empty", 3.0, 3.0, false, false, {3.0}, 0.0, true,
       0.0, true},
      {"continuous_empty_open_point", 3.0, 3.0, true, true, {}, 0.0, false,
       0.0, true},
      {"crossed_bounds_are_empty", 5.0, 2.0, false, false, {}, 0.0, false,
       0.0, true},
  };
  for (const PickCase& c : cases) {
    SCOPED_TRACE(c.name);
    Interval iv;
    iv.lo = c.lo;
    iv.hi = c.hi;
    iv.lo_open = c.lo_open;
    iv.hi_open = c.hi_open;
    iv.holes = c.holes;
    std::optional<double> pick = PickMinDelta(iv, c.origin, c.integral);
    if (c.empty) {
      EXPECT_FALSE(pick.has_value());
      continue;
    }
    ASSERT_TRUE(pick.has_value());
    EXPECT_DOUBLE_EQ(*pick, c.want);
    EXPECT_TRUE(iv.Contains(*pick));
  }
}

TEST(IntervalTest, PickFoldsNegativeZero) {
  // An upper bound of -0.0 with origin above it clamps to zero; the result
  // must be +0.0 bit-for-bit (the repair compares repaired instances
  // bitwise across engines, and -0.0 == 0.0 would still print "-0").
  Interval iv;
  iv.hi = -0.0;
  std::optional<double> pick = PickMinDelta(iv, 7.0, /*integral=*/false);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0.0);
  EXPECT_FALSE(std::signbit(*pick));
}

// ---------------------------------------------------------------------------
// Int/double mixing through IntervalSolveComponent: an int variable under
// double-constant bounds gets an integer pick; a double variable keeps
// fractional freedom; empty intervals fall back to fresh.

Component OneVarComponent(int row, AttrId attr,
                          const std::vector<std::pair<Op, double>>& bounds) {
  Component comp;
  comp.cells = {{row, attr}};
  for (const auto& [op, c] : bounds) {
    RcAtom a;
    a.lhs_var = 0;
    a.op = op;
    a.rhs_is_var = false;
    a.rhs_const = Value::Double(c);
    comp.atoms.push_back(a);
  }
  return comp;
}

TEST(IntervalTest, IntAttributeGetsIntegerPick) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  AttrId year = *rel.schema().Find("Year");  // kInt, t1.Year = 2007
  // 2008.5 < Year < 2012.4: integer snap yields [2009, 2012], origin 2007
  // clamps to 2009.
  Component comp =
      OneVarComponent(0, year, {{Op::kGt, 2008.5}, {Op::kLt, 2012.4}});
  IntervalResult r = IntervalSolveComponent(rel, comp, {0}, {false},
                                            {rel.Get(0, year)});
  ASSERT_TRUE(r.applicable);
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_FALSE(r.fresh[0]);
  EXPECT_EQ(r.values[0].kind(), ValueKind::kInt);
  EXPECT_EQ(r.values[0].as_int(), 2009);
  EXPECT_GT(r.narrowings, 0);
}

TEST(IntervalTest, DoubleAttributeKeepsFractionalPick) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");  // kDouble, t1.Tax = 0
  // 0 < Tax < 1: a double picks 0.5 (open-bound nudge min(1, width/2));
  // an integer domain would be empty here.
  Component comp = OneVarComponent(0, tax, {{Op::kGt, 0.0}, {Op::kLt, 1.0}});
  IntervalResult r =
      IntervalSolveComponent(rel, comp, {0}, {false}, {rel.Get(0, tax)});
  ASSERT_TRUE(r.applicable);
  EXPECT_FALSE(r.fresh[0]);
  EXPECT_EQ(r.values[0].kind(), ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(r.values[0].numeric(), 0.5);
}

TEST(IntervalTest, EmptyIntervalFallsBackToFresh) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  AttrId year = *rel.schema().Find("Year");  // kInt
  // 2 < Year < 3 has no integer: the variable goes fresh, and the result
  // is still applicable (the caller publishes the fresh fallback).
  Component comp = OneVarComponent(0, year, {{Op::kGt, 2.0}, {Op::kLt, 3.0}});
  IntervalResult r = IntervalSolveComponent(rel, comp, {0}, {false},
                                            {rel.Get(0, year)});
  ASSERT_TRUE(r.applicable);
  EXPECT_TRUE(r.fresh[0]);
}

TEST(IntervalTest, NonNumericAtomIsNotApplicable) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  AttrId cp = *rel.schema().Find("CP");  // kString
  Component comp;
  comp.cells = {{0, cp}};
  RcAtom a;
  a.lhs_var = 0;
  a.op = Op::kEq;
  a.rhs_is_var = false;
  a.rhs_const = Value::String("564-389");
  comp.atoms.push_back(a);
  IntervalResult r =
      IntervalSolveComponent(rel, comp, {0}, {false}, {rel.Get(0, cp)});
  EXPECT_FALSE(r.applicable);
}

TEST(IntervalTest, VarVarChainAssignsSequentially) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  // x0 < x1 with x0 >= 10 and x1 <= 10 is unsatisfiable over the reals
  // only at equality — AC-3 narrows x0 to [10, 10) open-above... which is
  // empty, so x0 goes fresh and x1 keeps a concrete pick.
  Component comp;
  comp.cells = {{0, tax}, {1, tax}};
  RcAtom lo;
  lo.lhs_var = 0;
  lo.op = Op::kGeq;
  lo.rhs_is_var = false;
  lo.rhs_const = Value::Double(10.0);
  RcAtom hi = lo;
  hi.lhs_var = 1;
  hi.op = Op::kLeq;
  hi.rhs_const = Value::Double(10.0);
  RcAtom link;
  link.lhs_var = 0;
  link.op = Op::kLt;
  link.rhs_is_var = true;
  link.rhs_var = 1;
  comp.atoms = {lo, hi, link};
  IntervalResult r = IntervalSolveComponent(
      rel, comp, {0, 1}, {false, false},
      {rel.Get(0, tax), rel.Get(1, tax)});
  ASSERT_TRUE(r.applicable);
  EXPECT_TRUE(r.fresh[0] || r.fresh[1]);  // one side must discharge
  // A satisfiable chain: x0 < x1, both in [0, 10], originals 0 and 0.
  Component sat;
  sat.cells = {{0, tax}, {1, tax}};
  RcAtom bound0;
  bound0.lhs_var = 0;
  bound0.op = Op::kGeq;
  bound0.rhs_is_var = false;
  bound0.rhs_const = Value::Double(0.0);
  RcAtom bound1 = bound0;
  bound1.lhs_var = 1;
  RcAtom cap0 = bound0;
  cap0.op = Op::kLeq;
  cap0.rhs_const = Value::Double(10.0);
  RcAtom cap1 = cap0;
  cap1.lhs_var = 1;
  sat.atoms = {bound0, bound1, cap0, cap1, link};
  IntervalResult rs = IntervalSolveComponent(
      rel, sat, {0, 1}, {false, false},
      {rel.Get(0, tax), rel.Get(1, tax)});
  ASSERT_TRUE(rs.applicable);
  ASSERT_FALSE(rs.fresh[0]);
  ASSERT_FALSE(rs.fresh[1]);
  EXPECT_LT(rs.values[0].numeric(), rs.values[1].numeric());
}

}  // namespace
}  // namespace cvrepair
