// Tests of the dictionary-encoded columnar backend (relation/encoded.h):
// dictionary code stability and rank recovery, sentinel semantics,
// constant-predicate thresholds, random EvalOp equivalence of the
// compiled evaluators, scan-level bit-identity against the boxed-Value
// detectors on the paper's generators, the ApplyChange/epoch protocol,
// and the work-counter reduction the backend exists for.
#include "relation/encoded.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/eval_index.h"
#include "dc/predicate.h"
#include "dc/violation.h"

namespace cvrepair {
namespace {

TEST(DictionaryTest, CodesAreStableAppendOrderedAndRanksOrdered) {
  Dictionary dict;
  // Inserted out of semantic order.
  Code c30 = dict.EncodeInsert(Value::Int(30));
  Code c10 = dict.EncodeInsert(Value::Int(10));
  Code c20 = dict.EncodeInsert(Value::Int(20));
  EXPECT_EQ(c30, 0);
  EXPECT_EQ(c10, 1);
  EXPECT_EQ(c20, 2);
  // Re-inserting returns the existing code.
  EXPECT_EQ(dict.EncodeInsert(Value::Int(10)), c10);
  EXPECT_EQ(dict.size(), 3);
  // Ranks reflect semantic order, not insertion order.
  EXPECT_LT(dict.rank(c10), dict.rank(c20));
  EXPECT_LT(dict.rank(c20), dict.rank(c30));
  // EvalOp-equality classes share a code: Int(20) and Double(20.0) are
  // the same entry.
  EXPECT_EQ(dict.EncodeInsert(Value::Double(20.0)), c20);
  EXPECT_EQ(dict.size(), 3);
}

TEST(DictionaryTest, SentinelsAndLookupMisses) {
  Dictionary dict;
  EXPECT_EQ(dict.EncodeInsert(Value::Null()), kNullCode);
  EXPECT_EQ(dict.EncodeInsert(Value::Fresh(7)), kFreshCode);
  EXPECT_EQ(dict.size(), 0);  // sentinels never enter the dictionary
  EXPECT_EQ(dict.Lookup(Value::Int(5)), kAbsentCode);
  dict.EncodeInsert(Value::Int(5));
  EXPECT_EQ(dict.Lookup(Value::Int(5)), 0);
  EXPECT_EQ(dict.Lookup(Value::Null()), kNullCode);
  EXPECT_EQ(dict.Lookup(Value::Fresh(3)), kFreshCode);
}

TEST(DictionaryTest, InsertRecoversRanksWithoutMovingCodes) {
  Dictionary dict;
  Code a = dict.EncodeInsert(Value::Int(10));
  Code b = dict.EncodeInsert(Value::Int(30));
  int32_t rank_a = dict.rank(a);
  int32_t rank_b = dict.rank(b);
  // A new middle value shifts ranks above it but never reassigns codes.
  Code mid = dict.EncodeInsert(Value::Int(20));
  EXPECT_EQ(mid, 2);
  EXPECT_EQ(dict.rank(a), rank_a);
  EXPECT_EQ(dict.rank(b), rank_b + 1);
  EXPECT_LT(dict.rank(a), dict.rank(mid));
  EXPECT_LT(dict.rank(mid), dict.rank(b));
}

TEST(DictionaryTest, ClassesAreDisjointInPackedRanks) {
  Dictionary dict;
  Code n = dict.EncodeInsert(Value::Int(5));
  Code s = dict.EncodeInsert(Value::String("5"));
  EXPECT_NE(n, s);
  EXPECT_EQ(dict.rank(n) >> Dictionary::kRankBits, 0);
  EXPECT_EQ(dict.rank(s) >> Dictionary::kRankBits, 1);
}

// Exhaustive grid for constant predicates: every operator against
// constants that are present, between entries, below/above all entries,
// NULL, fresh, and of the other comparison class. The compiled evaluator
// must agree with Predicate::Eval (EvalOp semantics) cell for cell.
TEST(EncodedPredicateTest, ConstantBoundsMatchEvalOpOnFullGrid) {
  Schema schema;
  schema.AddAttribute("N", AttrType::kDouble);
  schema.AddAttribute("S", AttrType::kString);
  Relation rel(schema);
  for (double v : {10.0, 20.0, 30.0, 40.0}) {
    rel.AddRow({Value::Double(v), Value::String("s" + std::to_string(int(v)))});
  }
  rel.AddRow({Value::Null(), Value::Fresh(1)});
  rel.AddRow({Value::Int(20), Value::String("s20")});  // cross-width dup
  EncodedRelation E(rel);

  std::vector<Value> constants = {
      Value::Double(20.0), Value::Int(20),  Value::Double(25.0),
      Value::Double(5.0),  Value::Double(99.0), Value::Null(),
      Value::Fresh(2),     Value::String("s20"), Value::String("a"),
      Value::String("zz"), Value::String("s25")};
  std::vector<int> rows(1);
  for (AttrId attr = 0; attr < rel.num_attributes(); ++attr) {
    for (const Value& c : constants) {
      for (Op op : AllOps()) {
        Predicate p = Predicate::WithConstant(0, attr, op, c);
        EncodedPredicateEval ev(E, p);
        EXPECT_TRUE(ev.on_codes());
        for (int i = 0; i < rel.num_rows(); ++i) {
          rows[0] = i;
          EXPECT_EQ(ev.Eval(rows), p.Eval(rel, rows))
              << "attr=" << attr << " op=" << OpToString(op)
              << " c=" << c.ToString() << " row=" << i;
        }
      }
    }
  }
}

// Randomized equivalence over every predicate shape: same-attribute
// two-cell (pure code/rank compares), constant (threshold compares), and
// cross-attribute two-cell (fallback). Columns mix Int/Double widths,
// NULLs, and fresh variables — everything EvalOp supports except NaN.
TEST(EncodedPredicateTest, RandomPredicatesMatchBoxedEvaluation) {
  std::mt19937_64 rng(42);
  Schema schema;
  schema.AddAttribute("A", AttrType::kDouble);
  schema.AddAttribute("B", AttrType::kDouble);
  schema.AddAttribute("C", AttrType::kString);
  Relation rel(schema);
  std::uniform_int_distribution<int> num(0, 6);
  std::uniform_int_distribution<int> shape(0, 9);
  auto random_numeric = [&]() -> Value {
    int roll = shape(rng);
    if (roll == 0) return Value::Null();
    if (roll == 1) return Value::Fresh(rng() % 5 + 1);
    return rng() % 2 ? Value::Int(num(rng))
                     : Value::Double(num(rng) + (rng() % 2 ? 0.5 : 0.0));
  };
  auto random_string = [&]() -> Value {
    int roll = shape(rng);
    if (roll == 0) return Value::Null();
    if (roll == 1) return Value::Fresh(rng() % 5 + 1);
    return Value::String("s" + std::to_string(num(rng)));
  };
  for (int i = 0; i < 40; ++i) {
    rel.AddRow({random_numeric(), random_numeric(), random_string()});
  }
  EncodedRelation E(rel);

  std::vector<Predicate> predicates;
  for (Op op : AllOps()) {
    for (AttrId a = 0; a < 3; ++a) {
      predicates.push_back(Predicate::TwoCell(0, a, op, 1, a));
      predicates.push_back(
          Predicate::WithConstant(0, a, op,
                                  a < 2 ? random_numeric() : random_string()));
    }
    predicates.push_back(Predicate::TwoCell(0, 0, op, 1, 1));  // cross-attr
    predicates.push_back(Predicate::TwoCell(0, 0, op, 1, 2));  // cross-class
  }
  std::uniform_int_distribution<int> row(0, rel.num_rows() - 1);
  for (const Predicate& p : predicates) {
    EncodedPredicateEval ev(E, p);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<int> rows = {row(rng), row(rng)};
      EXPECT_EQ(ev.Eval(rows), p.Eval(rel, rows))
          << p.ToString(schema) << " rows=" << rows[0] << "," << rows[1];
    }
  }
}

struct GeneratorCase {
  Relation dirty;
  ConstraintSet sigma;
};

GeneratorCase MakeHospCase() {
  HospConfig config;
  config.num_hospitals = 8;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = hosp.noise_attrs;
  noise.seed = 5;
  return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified};
}

GeneratorCase MakeCensusCase() {
  CensusConfig config;
  config.num_rows = 150;
  config.num_attributes = 8;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = census.noise_attrs;
  noise.seed = 5;
  return {InjectNoise(census.clean, noise).dirty, census.given};
}

// Scan-level bit-identity: encoded FindViolations / Satisfies /
// FindViolationsOfCapped / FindSuspects equal their boxed siblings on the
// generators — result order, capped prefix, and truncated flag included.
TEST(EncodedScanTest, ScansAreBitIdenticalToBoxedScansOnGenerators) {
  for (const GeneratorCase& gc : {MakeHospCase(), MakeCensusCase()}) {
    EncodedRelation E(gc.dirty);
    std::vector<Violation> plain = FindViolations(gc.dirty, gc.sigma);
    std::vector<Violation> coded = FindViolations(E, gc.sigma);
    ASSERT_EQ(plain.size(), coded.size());
    for (size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i], coded[i]) << "violation " << i;
    }
    EXPECT_EQ(Satisfies(gc.dirty, gc.sigma), Satisfies(E, gc.sigma));

    for (size_t k = 0; k < gc.sigma.size(); ++k) {
      for (int64_t cap : {int64_t{1}, int64_t{5}, int64_t{1000000}}) {
        bool trunc_plain = false;
        bool trunc_coded = false;
        std::vector<Violation> a = FindViolationsOfCapped(
            gc.dirty, gc.sigma[k], static_cast<int>(k), cap, &trunc_plain);
        std::vector<Violation> b = FindViolationsOfCapped(
            E, gc.sigma[k], static_cast<int>(k), cap, &trunc_coded);
        EXPECT_EQ(a, b) << "constraint " << k << " cap " << cap;
        EXPECT_EQ(trunc_plain, trunc_coded) << "constraint " << k;
      }
    }

    // Suspects over the cells of the first violations.
    CellSet changing;
    for (size_t i = 0; i < plain.size() && i < 10; ++i) {
      const DenialConstraint& c = gc.sigma[plain[i].constraint_index];
      for (const Cell& cell : ViolationCells(c, plain[i].rows)) {
        changing.insert(cell);
      }
    }
    std::vector<Violation> susp_plain =
        FindSuspects(gc.dirty, gc.sigma, changing);
    std::vector<Violation> susp_coded = FindSuspects(E, gc.sigma, changing);
    EXPECT_EQ(susp_plain, susp_coded);
  }
}

TEST(EncodedRelationTest, ApplyChangeKeepsMirrorConsistent) {
  GeneratorCase gc = MakeHospCase();
  Relation rel = gc.dirty;
  EncodedRelation E(rel);
  ASSERT_TRUE(E.in_sync());

  AttrId attr = 0;
  uint64_t epoch0 = E.epoch();
  // Overwrite with a value that already exists elsewhere in the column:
  // the dictionary must not grow and the epoch must hold still.
  rel.SetValue({0, attr}, rel.Get(1, attr));
  E.ApplyChange(0, attr);
  EXPECT_TRUE(E.in_sync());
  EXPECT_EQ(E.epoch(), epoch0);
  EXPECT_EQ(E.code(0, attr), E.code(1, attr));

  // A genuinely new value grows the dictionary and bumps the epoch.
  Code old_code_row2 = E.code(2, attr);
  rel.SetValue({0, attr}, Value::String("a value nobody generated"));
  E.ApplyChange(0, attr);
  EXPECT_TRUE(E.in_sync());
  EXPECT_GT(E.epoch(), epoch0);
  // Codes of untouched cells are stable across the growth.
  EXPECT_EQ(E.code(2, attr), old_code_row2);

  // NULL and fresh map to their sentinels.
  rel.SetValue({0, attr}, Value::Null());
  E.ApplyChange(0, attr);
  EXPECT_EQ(E.code(0, attr), kNullCode);
  rel.SetValue({0, attr}, Value::Fresh(99));
  E.ApplyChange(0, attr);
  EXPECT_EQ(E.code(0, attr), kFreshCode);

  // A forgotten ApplyChange is detectable.
  rel.SetValue({1, attr}, Value::String("unmirrored"));
  EXPECT_FALSE(E.in_sync());
  E.ApplyChange(1, attr);
  EXPECT_TRUE(E.in_sync());

  // After the whole edit sequence the delta-maintained mirror scans
  // exactly like a freshly encoded one — and like the boxed path.
  EncodedRelation fresh(rel);
  std::vector<Violation> via_mirror = FindViolations(E, gc.sigma);
  std::vector<Violation> via_fresh = FindViolations(fresh, gc.sigma);
  std::vector<Violation> via_boxed = FindViolations(rel, gc.sigma);
  EXPECT_EQ(via_mirror, via_fresh);
  EXPECT_EQ(via_mirror, via_boxed);
}

// AppendRow zone-map soundness at the 1024-code arena block boundary:
// appends that open a fresh segment mid-stream must leave every
// (attribute, block) BlockMeta sound — min/max packed rank covering the
// resident rows, has_sentinel set when a sentinel landed in the block —
// or the zone-map pruned scans would silently skip a violating block.
// All pre-existing test datasets are smaller than one block, so this is
// the only direct coverage of multi-block maintenance.
TEST(EncodedRelationTest, AppendRowAcrossBlockBoundaryKeepsZoneMapsSound) {
  Schema schema;
  schema.AddAttribute("K", AttrType::kString);
  schema.AddAttribute("V", AttrType::kInt);
  Relation rel(schema);
  // K and V are perfectly correlated (lexicographic K order == numeric V
  // order), so the clean base violates nothing and every violation below
  // is planted by a specific append.
  auto key = [](int i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    return std::string(buf);
  };
  for (int i = 0; i < EncodedRelation::kBlockSize - 2; ++i) {
    rel.AddRow({Value::String(key(i)), Value::Int(i)});
  }
  ConstraintSet sigma = {
      DenialConstraint::FromFd({0}, 1, "fd"),
      // No equality join: detection runs the blocked zone-map partner
      // loop on both columns.
      DenialConstraint({Predicate::TwoCell(0, 1, Op::kGt, 1, 1),
                        Predicate::TwoCell(0, 0, Op::kLt, 1, 0)},
                       "order"),
      DenialConstraint(
          {Predicate::WithConstant(0, 1, Op::kGt, Value::Int(2000))}, "cap")};
  ASSERT_TRUE(FindViolations(rel, sigma).empty());

  EncodedRelation E(rel);
  ASSERT_EQ(E.num_blocks(), 1);

  // Appends crossing into block 1: duplicate keys (FD violations pairing
  // the fresh block against block 0), decorrelated rows (order violations
  // the blocked partner loop must not zone-map-skip), brand-new dictionary
  // values at both rank extremes (rank shifts must refresh every block's
  // metas, not just the tail's), a cap violator, and a sentinel.
  std::vector<std::vector<Value>> appends = {
      {Value::String(key(0)), Value::Int(3)},        // fd + order vs block 0
      {Value::String("zz y0"), Value::Int(2095)},    // cap; new max ranks
      {Value::String(key(200)), Value::Null()},      // sentinel in block 1
      {Value::String("a first"), Value::Int(-5)},    // new min ranks
      {Value::String(key(999)), Value::Int(980)},    // order vs rows 981..1021
      {Value::String("zz z9"), Value::Int(1021)},    // order vs the cap row
  };
  for (const auto& row_values : appends) {
    rel.AddRow(row_values);
    E.AppendRow();
    ASSERT_TRUE(E.in_sync());
    // The delta-maintained mirror must scan exactly like a freshly
    // encoded relation and like the boxed path after every append.
    EncodedRelation fresh(rel);
    EXPECT_EQ(FindViolations(E, sigma), FindViolations(fresh, sigma));
    EXPECT_EQ(FindViolations(E, sigma), FindViolations(rel, sigma));
  }
  EXPECT_EQ(E.num_blocks(), 2);
  EXPECT_EQ(E.num_rows(), EncodedRelation::kBlockSize + 4);
  // The planted cross-block violations were found (not zone-map skipped).
  EXPECT_FALSE(FindViolations(E, {sigma[0]}).empty());
  EXPECT_FALSE(FindViolations(E, {sigma[1]}).empty());
  EXPECT_FALSE(FindViolations(E, {sigma[2]}).empty());
}

// The point of the backend: detection does (far) fewer boxed-Value
// predicate evaluations. The wall-clock claim lives in
// bench/micro_encoded_scan; here we pin the work counters — the encoded
// scan must cut boxed evals by at least 2x (in fact it only keeps the
// cross-attribute fallbacks), shifting the rest to integer code evals.
TEST(EncodedScanTest, EncodedScanHalvesBoxedPredicateEvals) {
  for (const GeneratorCase& gc : {MakeHospCase(), MakeCensusCase()}) {
    EncodedRelation E(gc.dirty);

    eval_counters::Reset();
    std::vector<Violation> plain = FindViolations(gc.dirty, gc.sigma);
    EvalCounters boxed_run = eval_counters::Snapshot();

    eval_counters::Reset();
    std::vector<Violation> coded = FindViolations(E, gc.sigma);
    EvalCounters coded_run = eval_counters::Snapshot();
    eval_counters::Reset();

    ASSERT_EQ(plain, coded);
    ASSERT_GT(boxed_run.predicate_evals, 0);
    EXPECT_GT(coded_run.code_predicate_evals, 0);
    // >= 2x fewer boxed evaluations (acceptance floor; typically the
    // encoded scan does none at all on these constraint sets).
    EXPECT_LE(coded_run.predicate_evals * 2, boxed_run.predicate_evals);
    // No work is invented: the encoded scan's total predicate
    // evaluations never exceed the boxed scan's.
    EXPECT_LE(coded_run.predicate_evals + coded_run.code_predicate_evals,
              boxed_run.predicate_evals);
  }
}

}  // namespace
}  // namespace cvrepair
