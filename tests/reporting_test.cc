// Coverage for the human-facing rendering surfaces and the weighted
// variants of the bound machinery.
#include <gtest/gtest.h>

#include "graph/bounds.h"
#include "paper_example.h"
#include "repair/cell_weights.h"
#include "repair/vfree.h"
#include "solver/repair_context.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi4Prime;

TEST(ReportingTest, RelationToStringAlignsAndTruncates) {
  Relation rel = PaperIncomeRelation();
  std::string full = rel.ToString();
  EXPECT_NE(full.find("Name"), std::string::npos);
  EXPECT_NE(full.find("322-573"), std::string::npos);
  std::string truncated = rel.ToString(/*max_rows=*/3);
  EXPECT_NE(truncated.find("(7 more rows)"), std::string::npos);
  EXPECT_EQ(truncated.find("Dustin"), std::string::npos);
}

TEST(ReportingTest, RepairStatsToStringMentionsCounters) {
  RepairStats stats;
  stats.rounds = 2;
  stats.solver_calls = 7;
  stats.changed_cells = 3;
  stats.variants_enumerated = 11;
  stats.datarepair_calls = 4;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("rounds=2"), std::string::npos);
  EXPECT_NE(text.find("solver_calls=7"), std::string::npos);
  EXPECT_NE(text.find("variants=11"), std::string::npos);
}

TEST(ReportingTest, RepairContextToStringRendersAtoms) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  std::vector<Cell> changing = {{3, tax}};
  ConstraintSet sigma = {Phi4Prime(rel)};
  std::vector<Violation> suspects =
      FindSuspects(rel, sigma, CellSet(changing.begin(), changing.end()));
  RepairContext rc = RepairContext::Build(rel, sigma, changing, suspects);
  std::string text = rc.ToString(rel);
  EXPECT_NE(text.find("I'(t3.Tax)"), std::string::npos);
  EXPECT_NE(text.find(">="), std::string::npos);
  EXPECT_NE(text.find("<="), std::string::npos);
}

TEST(ReportingTest, WeightedBoundsScaleWithCellWeights) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};

  RepairCostBounds plain = ComputeBounds(rel, sigma);

  // Weight every Tax cell 5x: the cover either pays 5x on a tax cell or
  // routes around it; either way the lower bound cannot shrink.
  CellWeights weights;
  AttrId tax = *rel.schema().Find("Tax");
  for (int i = 0; i < rel.num_rows(); ++i) weights.Set(i, tax, 5.0);
  CostModel cost;
  cost.cell_weights = &weights;
  RepairCostBounds weighted = ComputeBounds(rel, sigma, cost);
  EXPECT_GE(weighted.lower, plain.lower - 1e-9);
  EXPECT_FALSE(weighted.cover_cells.empty());
}

TEST(ReportingTest, SchemaAccessorsOnPaperExample) {
  Relation rel = PaperIncomeRelation();
  const Schema& schema = rel.schema();
  EXPECT_EQ(schema.attribute(0).name, "Name");
  EXPECT_FALSE(schema.attribute(0).is_key);
  EXPECT_EQ(schema.attributes().size(), 6u);
}

}  // namespace
}  // namespace cvrepair
