#include "variation/variant_generator.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "repair/vfree.h"
#include "variation/edit_cost.h"
#include "variation/predicate_weights.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi2;
using testing_fixture::Phi3;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

TEST(EditCostTest, Example4SubstitutionCostsHalf) {
  Relation rel = PaperIncomeRelation();
  VariationCostModel model;  // unit costs, lambda = -0.5
  // edit(φ4, φ4') = c(<) - 0.5 c(<=) = 0.5.
  EXPECT_DOUBLE_EQ(EditCost(Phi4(rel), Phi4Prime(rel), model), 0.5);
  // Pure insertion: φ1 -> φ2 inserts Birthday=: cost 1.
  EXPECT_DOUBLE_EQ(EditCost(Phi1(rel), Phi2(rel), model), 1.0);
  // Pure deletion: φ3 -> φ2 deletes Year=: cost -0.5.
  EXPECT_DOUBLE_EQ(EditCost(Phi3(rel), Phi2(rel), model), -0.5);
  // Identity.
  EXPECT_DOUBLE_EQ(EditCost(Phi1(rel), Phi1(rel), model), 0.0);
}

TEST(EditCostTest, SigmaLevelCostSums) {
  Relation rel = PaperIncomeRelation();
  VariationCostModel model;
  ConstraintSet original = {Phi1(rel), Phi4(rel)};
  ConstraintSet variant = {Phi2(rel), Phi4Prime(rel)};
  EXPECT_DOUBLE_EQ(VariationCost(original, variant, model), 1.5);
}

TEST(EditCostTest, LambdaScalesDeletion) {
  Relation rel = PaperIncomeRelation();
  VariationCostModel model;
  model.lambda = -1.0;
  // Substitution becomes free at lambda = -1 (why the paper discourages
  // it, Section 2.2.3).
  EXPECT_DOUBLE_EQ(EditCost(Phi4(rel), Phi4Prime(rel), model), 0.0);
}

TEST(PredicateWeightsTest, Eq2DistributionCost) {
  Relation rel = PaperIncomeRelation();
  PredicateWeights weights(rel, /*max_pairs=*/10000, /*seed=*/1);
  DenialConstraint phi1 = Phi1(rel);
  AttrId bday = *rel.schema().Find("Birthday");
  AttrId year = *rel.schema().Find("Year");
  Predicate p_bday = Predicate::TwoCell(0, bday, Op::kEq, 1, bday);
  Predicate p_year = Predicate::TwoCell(0, year, Op::kEq, 1, year);
  // Pr(φ1) is high (few violations); Birthday= has low Pr, Year= higher.
  // The paper's example: Birthday has the better-coinciding distribution
  // with CP than Year — here Pr(Birthday=) < Pr(Year=), and both costs
  // are |Pr(P) - Pr(φ)|.
  double pr_phi = weights.PrConstraint(phi1);
  EXPECT_GT(pr_phi, 0.5);
  EXPECT_NEAR(weights.Cost(p_bday, phi1),
              std::abs(weights.PrPredicate(p_bday) - pr_phi), 1e-12);
  EXPECT_GT(weights.PrPredicate(p_year), weights.PrPredicate(p_bday));
}

TEST(PredicateWeightsTest, SingleTuplePredicates) {
  Relation rel = PaperIncomeRelation();
  PredicateWeights weights(rel, 10000, 1);
  AttrId income = *rel.schema().Find("Income");
  Predicate rich =
      Predicate::WithConstant(0, income, Op::kGeq, Value::Double(100));
  EXPECT_NEAR(weights.PrPredicate(rich), 0.3, 1e-9);  // t8, t9, t10
}

VariantGenOptions PaperOptions(double theta) {
  VariantGenOptions o;
  o.theta = theta;
  o.max_changed_constraints = 2;
  return o;
}

TEST(VariantGenTest, Proposition2OnlyStrongOperatorsInserted) {
  Relation rel = PaperIncomeRelation();
  std::vector<Predicate> space = BuildPredicateSpace(rel.schema());
  for (const Predicate& p : space) {
    EXPECT_TRUE(p.op() == Op::kEq || p.op() == Op::kLt || p.op() == Op::kGt)
        << p.ToString(rel.schema());
    EXPECT_TRUE(p.IsSameAttributeAcrossTuples());
  }
}

TEST(VariantGenTest, KeyAttributesExcludedFromSpace) {
  Schema schema;
  schema.AddAttribute("K", AttrType::kInt, /*is_key=*/true);
  schema.AddAttribute("V", AttrType::kInt);
  std::vector<Predicate> space = BuildPredicateSpace(schema);
  for (const Predicate& p : space) {
    EXPECT_NE(p.lhs().attr, 0) << "key attribute must not be inserted";
  }
}

TEST(VariantGenTest, SubstitutionVariantGenerated) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi4 = Phi4(rel);
  std::vector<Predicate> space = BuildPredicateSpace(rel.schema());
  VariantGenOptions options = PaperOptions(1.0);
  std::vector<ConstraintVariant> variants =
      GenerateConstraintVariants(phi4, space, options, 1.0);
  // φ4' (Tax <= replaced by Tax <) must be among the variants, at cost 0.5.
  bool found = false;
  for (const ConstraintVariant& v : variants) {
    if (v.constraint == Phi4Prime(rel)) {
      found = true;
      EXPECT_DOUBLE_EQ(v.cost, 0.5);
      EXPECT_EQ(v.num_insertions, 1);
      EXPECT_EQ(v.num_deletions, 1);
    }
    EXPECT_FALSE(v.constraint.IsTrivial());
  }
  EXPECT_TRUE(found);
}

TEST(VariantGenTest, CostsRespectBudget) {
  Relation rel = PaperIncomeRelation();
  std::vector<Predicate> space = BuildPredicateSpace(rel.schema());
  VariantGenOptions options = PaperOptions(1.0);
  for (double budget : {0.0, 0.5, 1.0, 2.0}) {
    for (const ConstraintVariant& v :
         GenerateConstraintVariants(Phi1(rel), space, options, budget)) {
      EXPECT_LE(v.cost, budget + 1e-9);
      EXPECT_GE(v.constraint.size(), 1);
    }
  }
}

TEST(VariantGenTest, SigmaVariantsIncludeOriginalAndRespectTheta) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel), Phi4(rel)};
  VariantGenOptions options = PaperOptions(1.0);
  VariantGenStats stats;
  std::vector<SigmaVariant> variants =
      GenerateSigmaVariants(sigma, rel.schema(), options, &stats);
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants[0].constraints, sigma);  // identity first
  for (const SigmaVariant& sv : variants) {
    EXPECT_LE(sv.cost, options.theta + 1e-9);
    EXPECT_EQ(sv.constraints.size(), sigma.size());
  }
  EXPECT_GT(stats.sigma_enumerated, 0);
}

TEST(VariantGenTest, MaximalityPruningDropsExtendableVariants) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel)};
  VariantGenOptions options = PaperOptions(2.0);
  VariantGenStats stats;
  std::vector<SigmaVariant> variants =
      GenerateSigmaVariants(sigma, rel.schema(), options, &stats);
  // With θ=2 and unit costs, any single-insertion variant (cost 1) can
  // afford another insertion, so only the identity (kept explicitly) and
  // fully-extended variants survive.
  for (size_t i = 1; i < variants.size(); ++i) {
    EXPECT_GT(variants[i].cost, 1.0 + 1e-9)
        << ToString(variants[i].constraints, rel.schema());
  }
  EXPECT_GT(stats.pruned_nonmaximal, 0);
}

TEST(VariantGenTest, NegativeThetaForcesDeletions) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi3(rel)};  // 4 predicates
  VariantGenOptions options = PaperOptions(-0.5);
  options.always_include_original = false;
  std::vector<SigmaVariant> variants =
      GenerateSigmaVariants(sigma, rel.schema(), options);
  ASSERT_FALSE(variants.empty());
  for (const SigmaVariant& sv : variants) {
    EXPECT_LE(sv.cost, -0.5 + 1e-9);
    // Net deletion: the variant has fewer or substituted predicates.
    EXPECT_NE(sv.constraints[0], sigma[0]);
  }
  // φ2 (Year= deleted) should be reachable at θ = -0.5.
  bool found_phi2 = false;
  for (const SigmaVariant& sv : variants) {
    if (sv.constraints[0] == Phi2(rel)) found_phi2 = true;
  }
  EXPECT_TRUE(found_phi2);
}

TEST(VariantGenTest, MeaningfulInsertionFilterUsesData) {
  // Attribute U is row-unique: inserting U= into an FD would make it
  // vacuous, so with the data-driven filter it must not be proposed.
  Schema schema;
  schema.AddAttribute("G", AttrType::kString);
  schema.AddAttribute("V", AttrType::kString);
  schema.AddAttribute("U", AttrType::kString);
  schema.AddAttribute("S", AttrType::kString);
  Relation rel(schema);
  for (int i = 0; i < 40; ++i) {
    rel.AddRow({Value::String("g" + std::to_string(i / 4)),
                Value::String("v" + std::to_string(i % 3)),
                Value::String("u" + std::to_string(i)),
                Value::String("s" + std::to_string(i / 8))});
  }
  DenialConstraint fd = DenialConstraint::FromFd({0}, 1);
  std::vector<Predicate> space = BuildPredicateSpace(schema);
  VariantGenOptions options = PaperOptions(1.0);
  options.data = &rel;
  std::vector<ConstraintVariant> variants =
      GenerateConstraintVariants(fd, space, options, 1.0);
  for (const ConstraintVariant& v : variants) {
    for (const Predicate& p : v.constraint.predicates()) {
      EXPECT_NE(p.lhs().attr, 2)
          << "row-unique attribute U must be filtered: "
          << v.constraint.ToString(schema);
    }
  }
  // S (shared within G-groups) is still insertable.
  bool s_inserted = false;
  for (const ConstraintVariant& v : variants) {
    for (const Predicate& p : v.constraint.predicates()) {
      if (p.lhs().attr == 3) s_inserted = true;
    }
  }
  EXPECT_TRUE(s_inserted);
}

TEST(VariantGenTest, Lemma1RefinedVariantsNeverIncreaseMinRepair) {
  // Indirect check of Lemma 1 on the paper instance: the minimum repair
  // cost w.r.t. φ1 (7 by count in Example 5's discussion) is >= the cost
  // w.r.t. its refinement φ2 (3).
  Relation rel = PaperIncomeRelation();
  RepairResult coarse = VfreeRepair(rel, {Phi1(rel)});
  RepairResult fine = VfreeRepair(rel, {Phi2(rel)});
  EXPECT_TRUE(Phi1(rel).IsRefinedBy(Phi2(rel)));
  EXPECT_GE(coarse.stats.changed_cells, fine.stats.changed_cells);
}

}  // namespace
}  // namespace cvrepair
