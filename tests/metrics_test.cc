#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace cvrepair {
namespace {

Relation TinyRelation(std::vector<std::vector<double>> vals) {
  Schema schema;
  schema.AddAttribute("X", AttrType::kDouble);
  schema.AddAttribute("Y", AttrType::kDouble);
  Relation rel(schema);
  for (const auto& row : vals) {
    rel.AddRow({Value::Double(row[0]), Value::Double(row[1])});
  }
  return rel;
}

TEST(AccuracyTest, PerfectRepair) {
  Relation clean = TinyRelation({{1, 2}, {3, 4}});
  Relation dirty = clean;
  dirty.SetValue(0, 0, Value::Double(9));
  AccuracyResult r = CellAccuracy(clean, dirty, clean);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f_measure, 1.0);
  EXPECT_EQ(r.truth_cells, 1);
  EXPECT_EQ(r.repaired_cells, 1);
}

TEST(AccuracyTest, FreshVariableGetsHalfCredit) {
  Relation clean = TinyRelation({{1, 2}, {3, 4}});
  Relation dirty = clean;
  dirty.SetValue(0, 0, Value::Double(9));
  Relation repaired = dirty;
  repaired.SetValue(0, 0, Value::Fresh(1));
  AccuracyResult r = CellAccuracy(clean, dirty, repaired);
  EXPECT_DOUBLE_EQ(r.hits, 0.5);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
}

TEST(AccuracyTest, WrongRepairAndOverRepair) {
  Relation clean = TinyRelation({{1, 2}, {3, 4}});
  Relation dirty = clean;
  dirty.SetValue(0, 0, Value::Double(9));  // truth cell
  Relation repaired = dirty;
  repaired.SetValue(0, 0, Value::Double(7));  // wrong value on dirty cell
  repaired.SetValue(1, 1, Value::Double(8));  // repair on clean cell
  AccuracyResult r = CellAccuracy(clean, dirty, repaired);
  EXPECT_DOUBLE_EQ(r.hits, 0.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f_measure, 0.0);
  EXPECT_EQ(r.repaired_cells, 2);
}

TEST(AccuracyTest, EmptySetsConventions) {
  Relation clean = TinyRelation({{1, 2}});
  AccuracyResult r = CellAccuracy(clean, clean, clean);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(MnadTest, NormalizedByRange) {
  Relation clean = TinyRelation({{0, 0}, {10, 100}});
  Relation repaired = clean;
  repaired.SetValue(0, 0, Value::Double(5));    // off by 5 on range 10
  repaired.SetValue(0, 1, Value::Double(100));  // off by 100 on range 100
  // Distances: 0.5 and 1.0 over 4 cells = 0.375.
  EXPECT_NEAR(Mnad(clean, repaired), 0.375, 1e-9);
  // Restricted to attribute 0: 0.5 / 2 cells = 0.25.
  EXPECT_NEAR(Mnad(clean, repaired, {0}), 0.25, 1e-9);
}

TEST(MnadTest, FreshCountsAsMaxDistance) {
  Relation clean = TinyRelation({{0, 0}, {10, 100}});
  Relation repaired = clean;
  repaired.SetValue(0, 0, Value::Fresh(1));
  EXPECT_NEAR(Mnad(clean, repaired, {0}), 0.5, 1e-9);  // 1.0 over 2 cells
}

TEST(RelativeAccuracyTest, Extremes) {
  Relation clean = TinyRelation({{0, 0}, {10, 100}});
  Relation dirty = clean;
  dirty.SetValue(0, 0, Value::Double(10));
  // Perfect repair: accuracy 1.
  EXPECT_DOUBLE_EQ(RelativeAccuracy(clean, dirty, clean), 1.0);
  // No repair at all: Δ(rep,truth) = Δ(truth,noise), Δ(rep,noise) = 0
  // → accuracy 0.
  EXPECT_DOUBLE_EQ(RelativeAccuracy(clean, dirty, dirty), 0.0);
  // No noise and no change: accuracy 1 by convention.
  EXPECT_DOUBLE_EQ(RelativeAccuracy(clean, clean, clean), 1.0);
}

TEST(RelativeAccuracyTest, PartialRepairBetween) {
  Relation clean = TinyRelation({{0, 0}, {10, 100}});
  Relation dirty = clean;
  dirty.SetValue(0, 0, Value::Double(10));
  Relation repaired = dirty;
  repaired.SetValue(0, 0, Value::Double(5));
  double acc = RelativeAccuracy(clean, dirty, repaired);
  EXPECT_GT(acc, 0.0);
  EXPECT_LT(acc, 1.0);
}

TEST(ExperimentTableTest, RendersAlignedRows) {
  ExperimentTable table("demo", {"x", "value"});
  table.BeginRow();
  table.Add(1);
  table.Add(0.51234, 2);
  table.BeginRow();
  table.Add(10);
  table.Add("n/a");
  std::string out = table.ToString();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("0.51"), std::string::npos);
  EXPECT_NE(out.find("n/a"), std::string::npos);
}

}  // namespace
}  // namespace cvrepair
