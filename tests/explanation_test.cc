#include "eval/explanation.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi2;
using testing_fixture::Phi4Prime;

TEST(ExplanationTest, ExplainsTheTaxRepair) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  RepairExplanation ex = ExplainRepair(rel, r.repaired, sigma);
  ASSERT_EQ(ex.cells.size(), 1u);
  const CellExplanation& c = ex.cells[0];
  EXPECT_EQ(c.cell.row, 3);
  EXPECT_EQ(c.before, Value::Double(3));
  EXPECT_EQ(c.after, Value::Double(0));
  ASSERT_EQ(c.violated_constraints.size(), 1u);
  EXPECT_EQ(c.violated_constraints[0], "phi4p");
  // The violating partners were t5, t6, t7 (rows 4, 5, 6).
  EXPECT_EQ(c.conflicting_rows, (std::vector<int>{4, 5, 6}));
  // Rendering mentions the cell and the constraint.
  std::string text = c.ToString(rel.schema());
  EXPECT_NE(text.find("t4.Tax"), std::string::npos);
  EXPECT_NE(text.find("phi4p"), std::string::npos);
}

TEST(ExplanationTest, AlignedKindForFdRepairs) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi2(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  RepairExplanation ex = ExplainRepair(rel, r.repaired, sigma);
  ASSERT_EQ(ex.cells.size(), 3u);
  for (const CellExplanation& c : ex.cells) {
    EXPECT_EQ(c.kind, CellExplanation::Kind::kAlignedWithPartners)
        << c.ToString(rel.schema());
    EXPECT_FALSE(c.violated_constraints.empty());
  }
  EXPECT_EQ(ex.fresh_count(), 0);
}

TEST(ExplanationTest, FreshKindDetected) {
  Relation rel = PaperIncomeRelation();
  Relation repaired = rel;
  AttrId tax = *rel.schema().Find("Tax");
  repaired.SetValue(3, tax, Value::Fresh(9));
  RepairExplanation ex =
      ExplainRepair(rel, repaired, {Phi4Prime(rel)});
  ASSERT_EQ(ex.cells.size(), 1u);
  EXPECT_EQ(ex.cells[0].kind, CellExplanation::Kind::kFreshVariable);
  EXPECT_EQ(ex.fresh_count(), 1);
}

TEST(ExplanationTest, CollateralKindForUnflaggedCells) {
  Relation rel = PaperIncomeRelation();
  Relation repaired = rel;
  AttrId year = *rel.schema().Find("Year");
  repaired.SetValue(0, year, Value::Int(2010));
  RepairExplanation ex =
      ExplainRepair(rel, repaired, {Phi4Prime(rel)});
  ASSERT_EQ(ex.cells.size(), 1u);
  EXPECT_EQ(ex.cells[0].kind, CellExplanation::Kind::kCollateral);
}

TEST(ExplanationTest, ReportTruncates) {
  Relation rel = PaperIncomeRelation();
  Relation repaired = rel;
  AttrId year = *rel.schema().Find("Year");
  for (int i = 0; i < 10; ++i) repaired.SetValue(i, year, Value::Int(1999));
  RepairExplanation ex = ExplainRepair(rel, repaired, {});
  std::string report = ex.ToString(rel.schema(), /*max_cells=*/3);
  EXPECT_NE(report.find("10 cell(s) changed"), std::string::npos);
  EXPECT_NE(report.find("(7 more)"), std::string::npos);
}

}  // namespace
}  // namespace cvrepair
