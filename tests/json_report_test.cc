#include "eval/json_report.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi4Prime;

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonReportTest, ContainsStatsAndConstraints) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  std::string json = RepairResultToJson(r, rel.schema(), "vfree");
  EXPECT_NE(json.find("\"algorithm\": \"vfree\""), std::string::npos);
  EXPECT_NE(json.find("\"changed_cells\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"initial_violations\": 3"), std::string::npos);
  EXPECT_NE(json.find("t0.Income>t1.Income"), std::string::npos);
  // No raw newline inside any string literal (all escaped).
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      EXPECT_NE(json[i], '\n');
    }
  }
}

TEST(JsonReportTest, IncludesExplanationChanges) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  RepairExplanation ex = ExplainRepair(rel, r.repaired, sigma);
  std::string json = RepairResultToJson(r, rel.schema(), "vfree", &ex);
  EXPECT_NE(json.find("\"changes\""), std::string::npos);
  EXPECT_NE(json.find("\"attribute\": \"Tax\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"aligned_with_partners\""),
            std::string::npos);
}

TEST(JsonReportTest, AccuracySerialization) {
  AccuracyResult acc;
  acc.precision = 0.5;
  acc.recall = 0.25;
  acc.f_measure = 1.0 / 3;
  acc.repaired_cells = 4;
  acc.truth_cells = 8;
  std::string json = AccuracyToJson(acc);
  EXPECT_NE(json.find("\"precision\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"truth_cells\": 8"), std::string::npos);
}

}  // namespace
}  // namespace cvrepair
