#include <gtest/gtest.h>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "discovery/dc_discovery.h"
#include "discovery/fd_discovery.h"
#include "dc/violation.h"

namespace cvrepair {
namespace {

bool ContainsFd(const std::vector<DiscoveredFd>& fds,
                std::vector<AttrId> lhs, AttrId rhs) {
  std::sort(lhs.begin(), lhs.end());
  for (const DiscoveredFd& d : fds) {
    std::vector<AttrId> got = d.fd.lhs;
    std::sort(got.begin(), got.end());
    if (got == lhs && d.fd.rhs == rhs) return true;
  }
  return false;
}

TEST(FdDiscoveryTest, FindsTrueFdsOnCleanHosp) {
  HospConfig config;
  config.num_hospitals = 30;
  HospData hosp = MakeHosp(config);
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.excluded_attrs = {HospAttrs::kSample, HospAttrs::kScore};
  std::vector<DiscoveredFd> fds = DiscoverFds(hosp.clean, options);
  EXPECT_TRUE(ContainsFd(fds, {HospAttrs::kMeasureCode},
                         HospAttrs::kMeasureName));
  EXPECT_TRUE(
      ContainsFd(fds, {HospAttrs::kMeasureCode}, HospAttrs::kCondition));
  EXPECT_TRUE(ContainsFd(fds, {HospAttrs::kZipCode}, HospAttrs::kState));
  // The oversimplified Name -> Phone must NOT be discovered (chains).
  EXPECT_FALSE(
      ContainsFd(fds, {HospAttrs::kHospitalName}, HospAttrs::kPhone));
  // All discovered FDs actually hold.
  for (const DiscoveredFd& d : fds) {
    EXPECT_TRUE(Satisfies(hosp.clean, {d.AsConstraint()}))
        << d.AsConstraint().ToString(hosp.clean.schema());
    EXPECT_GE(d.confidence, options.min_confidence);
    EXPECT_GE(d.support, options.min_support);
  }
}

TEST(FdDiscoveryTest, MinimalityPrunesSupersets) {
  HospConfig config;
  config.num_hospitals = 30;
  HospData hosp = MakeHosp(config);
  FdDiscoveryOptions options;
  options.max_lhs_size = 2;
  options.excluded_attrs = {HospAttrs::kSample, HospAttrs::kScore};
  std::vector<DiscoveredFd> fds = DiscoverFds(hosp.clean, options);
  // MeasureCode -> MeasureName is discovered, so no (MeasureCode, X) LHS.
  for (const DiscoveredFd& d : fds) {
    if (d.fd.rhs != HospAttrs::kMeasureName) continue;
    if (d.fd.lhs.size() < 2) continue;
    EXPECT_EQ(std::count(d.fd.lhs.begin(), d.fd.lhs.end(),
                         HospAttrs::kMeasureCode),
              0)
        << "superset of a discovered FD must be pruned";
  }
}

TEST(FdDiscoveryTest, NoisyDataDiscoversOverrefinedFds) {
  // Appendix C.3: discovery on noisy data with exact confidence either
  // loses the true FD or escalates to overrefined supersets.
  HospConfig config;
  config.num_hospitals = 30;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.08;
  noise.target_attrs = {HospAttrs::kMeasureName};
  NoisyData dirty = InjectNoise(hosp.clean, noise);

  FdDiscoveryOptions exact;
  exact.max_lhs_size = 2;
  exact.excluded_attrs = {HospAttrs::kSample, HospAttrs::kScore};
  std::vector<DiscoveredFd> fds = DiscoverFds(dirty.dirty, exact);
  // The clean rule MeasureCode -> MeasureName no longer holds exactly.
  EXPECT_FALSE(ContainsFd(fds, {HospAttrs::kMeasureCode},
                          HospAttrs::kMeasureName));

  // Approximate discovery (confidence 0.9) recovers it.
  FdDiscoveryOptions approx = exact;
  approx.min_confidence = 0.9;
  std::vector<DiscoveredFd> approx_fds = DiscoverFds(dirty.dirty, approx);
  EXPECT_TRUE(ContainsFd(approx_fds, {HospAttrs::kMeasureCode},
                         HospAttrs::kMeasureName));
}

TEST(DcDiscoveryTest, FindsMonotoneDcsOnCensus) {
  CensusConfig config;
  config.num_rows = 200;
  CensusData census = MakeCensus(config);
  DcDiscoveryOptions options;
  options.excluded_attrs.assign(census.space.excluded_attrs.begin(),
                                census.space.excluded_attrs.end());
  std::vector<DiscoveredDc> dcs = DiscoverOrderDcs(census.clean, options);
  ASSERT_FALSE(dcs.empty());
  // The Income/Tax monotonicity must be among the discoveries.
  bool found_tax = false;
  for (const DiscoveredDc& d : dcs) {
    EXPECT_GE(d.confidence, options.min_confidence);
    EXPECT_GE(d.activation, options.min_activation);
    if (d.constraint.name() == "Tax_monotone_in_Income") found_tax = true;
  }
  EXPECT_TRUE(found_tax);
}

TEST(DcDiscoveryTest, LowActivationCandidatesSkipped) {
  // A constant attribute can never activate the guard predicate.
  Schema schema;
  schema.AddAttribute("C", AttrType::kInt);
  schema.AddAttribute("X", AttrType::kInt);
  Relation rel(schema);
  for (int i = 0; i < 50; ++i) rel.AddRow({Value::Int(7), Value::Int(i)});
  std::vector<DiscoveredDc> dcs = DiscoverOrderDcs(rel);
  for (const DiscoveredDc& d : dcs) {
    // No candidate guarded by the constant attribute C.
    EXPECT_NE(d.constraint.predicates()[0].lhs().attr, 0)
        << d.constraint.ToString(schema);
  }
}

}  // namespace
}  // namespace cvrepair
