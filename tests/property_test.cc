// Randomized property tests: the solver against brute force, the vertex
// cover against the exact minimum, edit costs against re-derivation, and
// Lemma 1 on random instances.
#include <gtest/gtest.h>

#include <random>

#include "graph/conflict_hypergraph.h"
#include "graph/vertex_cover.h"
#include "paper_example.h"
#include "repair/vfree.h"
#include "solver/csp_solver.h"
#include "variation/variant_generator.h"

namespace cvrepair {
namespace {

// ---------- Solver vs brute force ----------

class SolverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolverFuzz, SmallComponentsSolvedOptimally) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> val(0, 4);
  std::uniform_int_distribution<int> op_pick(0, 5);
  std::uniform_int_distribution<int> var_count(1, 3);
  std::uniform_int_distribution<int> atom_count(0, 5);

  // Small relation: one int attribute with domain {0..4}.
  Schema schema;
  schema.AddAttribute("V", AttrType::kInt);
  Relation rel(schema);
  for (int i = 0; i < 12; ++i) rel.AddRow({Value::Int(i % 5)});
  DomainStats stats(rel);
  CostModel cost;

  for (int trial = 0; trial < 30; ++trial) {
    int k = var_count(rng);
    Component comp;
    for (int v = 0; v < k; ++v) comp.cells.push_back({v, 0});
    int atoms = atom_count(rng);
    for (int t = 0; t < atoms; ++t) {
      RcAtom a;
      a.lhs_var = std::uniform_int_distribution<int>(0, k - 1)(rng);
      a.op = AllOps()[op_pick(rng)];
      if (k > 1 && val(rng) < 2) {
        a.rhs_is_var = true;
        a.rhs_var = std::uniform_int_distribution<int>(0, k - 1)(rng);
        if (a.rhs_var == a.lhs_var) {
          a.rhs_is_var = false;
          a.rhs_const = Value::Int(val(rng));
        }
      } else {
        a.rhs_is_var = false;
        a.rhs_const = Value::Int(val(rng));
      }
      comp.atoms.push_back(a);
    }

    int64_t fresh = 1;
    CspSolver solver(rel, stats, cost, &fresh);
    ComponentSolution sol = solver.Solve(comp);
    ASSERT_TRUE(SolutionSatisfies(comp, sol))
        << "solver output must satisfy the component (trial " << trial << ")";

    // Brute force over the in-domain assignments {0..4}^k.
    double best = std::numeric_limits<double>::infinity();
    std::vector<Value> assign(k);
    auto enumerate = [&](auto&& self, int depth, double acc) -> void {
      if (acc >= best) return;
      if (depth == k) {
        ComponentSolution candidate;
        candidate.values = assign;
        if (SolutionSatisfies(comp, candidate)) best = acc;
        return;
      }
      for (int x = 0; x < 5; ++x) {
        assign[depth] = Value::Int(x);
        const Value& orig = rel.Get(comp.cells[depth]);
        self(self, depth + 1, acc + cost.Dist(orig, assign[depth]));
      }
    };
    enumerate(enumerate, 0, 0.0);

    if (std::isfinite(best)) {
      // Exact search must match the in-domain optimum (no fv needed).
      EXPECT_NEAR(sol.cost, best, 1e-9) << "trial " << trial;
    } else if (sol.fresh_count == 0) {
      // Infeasible over the active domain {0..4}: interval propagation may
      // still find a concrete numeric value outside it (e.g. V > 4 -> 5).
      // SolutionSatisfies vouched for it above; it must not cost more than
      // the all-fresh fallback it replaces. Genuinely empty intervals (the
      // EmptyIntervalFallsBackToFresh case) still go fresh.
      EXPECT_LE(sol.cost, k * cost.fresh_cost + 1e-9) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz, ::testing::Range(1, 7));

// ---------- Cover vs exact minimum ----------

class CoverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CoverFuzz, LocalRatioWithinFactorFOfOptimum) {
  std::mt19937_64 rng(GetParam() * 131);
  Schema schema;
  schema.AddAttribute("A", AttrType::kInt);
  schema.AddAttribute("B", AttrType::kInt);
  Relation rel(schema);
  std::uniform_int_distribution<int> val(0, 3);
  for (int i = 0; i < 10; ++i) {
    rel.AddRow({Value::Int(val(rng)), Value::Int(val(rng))});
  }
  // Random order DC: violations give a random-ish hypergraph.
  DenialConstraint dc({Predicate::TwoCell(0, 0, Op::kGt, 1, 0),
                       Predicate::TwoCell(0, 1, Op::kLt, 1, 1)});
  ConstraintSet sigma = {dc};
  std::vector<Violation> violations = FindViolations(rel, sigma);
  if (violations.empty()) GTEST_SKIP() << "no violations for this seed";
  ConflictHypergraph g = ConflictHypergraph::Build(rel, sigma, violations);

  // Exact minimum weighted cover by exhaustive search (few vertices).
  ASSERT_LE(g.num_vertices(), 24);
  double opt = std::numeric_limits<double>::infinity();
  for (int64_t mask = 0; mask < (1LL << g.num_vertices()); ++mask) {
    double w = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (mask & (1LL << v)) w += g.weight(v);
    }
    if (w >= opt) continue;
    bool covers = true;
    for (int e = 0; e < g.num_edges() && covers; ++e) {
      bool hit = false;
      for (int v : g.edge(e)) hit |= (mask >> v) & 1;
      covers &= hit;
    }
    if (covers) opt = w;
  }

  VertexCover lr = ApproximateVertexCover(g, CoverHeuristic::kLocalRatio);
  EXPECT_LE(lr.weight, g.MaxEdgeSize() * opt + 1e-9)
      << "local ratio must be a factor-f approximation";
  VertexCover greedy =
      ApproximateVertexCover(g, CoverHeuristic::kGreedyDegree);
  EXPECT_GE(greedy.weight, opt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverFuzz, ::testing::Range(1, 9));

// ---------- Variant generation invariants ----------

TEST(VariantPropertyTest, ReportedCostsMatchEditCost) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  DenialConstraint phi = testing_fixture::Phi2(rel);
  std::vector<Predicate> space = BuildPredicateSpace(rel.schema());
  VariantGenOptions options;
  options.theta = 2.0;
  for (const ConstraintVariant& v :
       GenerateConstraintVariants(phi, space, options, 2.0)) {
    EXPECT_NEAR(v.cost, EditCost(phi, v.constraint, options.cost_model), 1e-9)
        << v.constraint.ToString(rel.schema());
    EXPECT_FALSE(v.constraint.IsTrivial());
    EXPECT_GE(v.constraint.size(), 1);
  }
}

TEST(VariantPropertyTest, InsertionOnlyVariantsRefineTheOriginal) {
  Relation rel = testing_fixture::PaperIncomeRelation();
  DenialConstraint phi = testing_fixture::Phi1(rel);
  std::vector<Predicate> space = BuildPredicateSpace(rel.schema());
  VariantGenOptions options;
  options.theta = 2.0;
  for (const ConstraintVariant& v :
       GenerateConstraintVariants(phi, space, options, 2.0)) {
    if (v.num_deletions == 0) {
      EXPECT_TRUE(phi.IsRefinedBy(v.constraint))
          << v.constraint.ToString(rel.schema());
    }
  }
}

// ---------- Lemma 1 on random instances ----------

class Lemma1Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Fuzz, RefinementNeverIncreasesMinimumRepair) {
  std::mt19937_64 rng(GetParam() * 7919);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("C", AttrType::kString);
  Relation rel(schema);
  std::uniform_int_distribution<int> val(0, 3);
  for (int i = 0; i < 30; ++i) {
    rel.AddRow({Value::String("a" + std::to_string(val(rng))),
                Value::String("b" + std::to_string(val(rng))),
                Value::String("c" + std::to_string(val(rng)))});
  }
  DenialConstraint coarse = DenialConstraint::FromFd({0}, 2);
  DenialConstraint fine = DenialConstraint::FromFd({0, 1}, 2);
  ASSERT_TRUE(coarse.IsRefinedBy(fine));
  RepairResult rc = VfreeRepair(rel, {coarse});
  RepairResult rf = VfreeRepair(rel, {fine});
  EXPECT_GE(rc.stats.repair_cost, rf.stats.repair_cost - 1e-9)
      << "Lemma 1: the refinement's minimum repair is never costlier";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Fuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace cvrepair
