#include <gtest/gtest.h>

#include "graph/bounds.h"
#include "graph/conflict_hypergraph.h"
#include "graph/decompose.h"
#include "graph/vertex_cover.h"
#include "paper_example.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi4Prime;

ConflictHypergraph BuildPhi4Graph(const Relation& rel) {
  ConstraintSet sigma = {Phi4Prime(rel)};
  return ConflictHypergraph::Build(rel, sigma, FindViolations(rel, sigma));
}

TEST(HypergraphTest, Example6GraphShape) {
  Relation rel = PaperIncomeRelation();
  ConflictHypergraph g = BuildPhi4Graph(rel);
  // Three violations <t5,t4>,<t6,t4>,<t7,t4>, each with 4 cells; shared
  // cells t4.Income / t4.Tax merge: 3*2 + 2 = 8 vertices, 3 edges.
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.MaxEdgeSize(), 4);
}

TEST(HypergraphTest, SymmetricViolationsDeduplicate) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel)};
  std::vector<Violation> v = FindViolations(rel, sigma);
  ConflictHypergraph g = ConflictHypergraph::Build(rel, sigma, v);
  // Both orientations of an FD violation cover the same cells.
  EXPECT_LT(g.num_edges(), static_cast<int>(v.size()));
}

TEST(HypergraphTest, VertexWeightsUseMinChangeCost) {
  Relation rel = PaperIncomeRelation();
  ConflictHypergraph g = BuildPhi4Graph(rel);
  for (int v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.weight(v), 1.0);  // count cost, alternatives exist
  }
}

class CoverHeuristicTest : public ::testing::TestWithParam<CoverHeuristic> {};

TEST_P(CoverHeuristicTest, CoversAllEdges) {
  Relation rel = PaperIncomeRelation();
  for (ConstraintSet sigma :
       {ConstraintSet{Phi4Prime(rel)}, ConstraintSet{Phi1(rel)},
        ConstraintSet{Phi1(rel), Phi4Prime(rel)}}) {
    ConflictHypergraph g =
        ConflictHypergraph::Build(rel, sigma, FindViolations(rel, sigma));
    VertexCover cover = ApproximateVertexCover(g, GetParam());
    std::vector<bool> in_cover(g.num_vertices(), false);
    for (int v : cover.vertices) in_cover[v] = true;
    for (int e = 0; e < g.num_edges(); ++e) {
      bool covered = false;
      for (int v : g.edge(e)) covered |= in_cover[v];
      EXPECT_TRUE(covered) << "edge " << e << " uncovered";
    }
  }
}

TEST_P(CoverHeuristicTest, CoverIsMinimal) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel), Phi4Prime(rel)};
  ConflictHypergraph g =
      ConflictHypergraph::Build(rel, sigma, FindViolations(rel, sigma));
  VertexCover cover = ApproximateVertexCover(g, GetParam());
  // Removing any single cover vertex must uncover some edge.
  for (int drop : cover.vertices) {
    std::vector<bool> in_cover(g.num_vertices(), false);
    for (int v : cover.vertices) in_cover[v] = v != drop;
    bool all_covered = true;
    for (int e = 0; e < g.num_edges(); ++e) {
      bool covered = false;
      for (int v : g.edge(e)) covered |= in_cover[v];
      all_covered &= covered;
    }
    EXPECT_FALSE(all_covered) << "vertex " << drop << " is redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, CoverHeuristicTest,
                         ::testing::Values(CoverHeuristic::kLocalRatio,
                                           CoverHeuristic::kGreedyDegree,
                                           CoverHeuristic::kEntropyDensity));

TEST(CoverTest, SingleCellCoverForExample7) {
  Relation rel = PaperIncomeRelation();
  ConflictHypergraph g = BuildPhi4Graph(rel);
  // t4.Income / t4.Tax each touch all three edges, so one vertex covers
  // everything (the paper picks {t4.Tax} in Example 7).
  VertexCover cover =
      ApproximateVertexCover(g, CoverHeuristic::kGreedyDegree);
  EXPECT_EQ(cover.vertices.size(), 1u);
  Cell c = g.cell(cover.vertices[0]);
  EXPECT_EQ(c.row, 3);
}

TEST(CoverTest, EntropyDensityPicksTheSharedHubOnThePaperExample) {
  // The entropy/density bias (DESIGN.md §12) must still find the paper's
  // Example 7 cover: the shared t4 cells sit in the densest conflict
  // neighborhood, so the biased greedy seeds them first and the cover
  // stays the same single t4 cell kGreedyDegree picks.
  Relation rel = PaperIncomeRelation();
  ConflictHypergraph g = BuildPhi4Graph(rel);
  DomainStats stats(rel);
  VertexCover plain = ApproximateVertexCover(g, CoverHeuristic::kGreedyDegree);
  VertexCover biased =
      ApproximateVertexCover(g, CoverHeuristic::kEntropyDensity, &stats);
  ASSERT_EQ(biased.vertices.size(), 1u);
  Cell c = g.cell(biased.vertices[0]);
  EXPECT_EQ(c.row, 3);
  ASSERT_EQ(plain.vertices.size(), 1u);
  EXPECT_TRUE(g.cell(plain.vertices[0]) == c);
  // And the bias must work without DomainStats (the hypergraph's own
  // domain annotations approximate the entropy term).
  VertexCover fallback =
      ApproximateVertexCover(g, CoverHeuristic::kEntropyDensity);
  ASSERT_EQ(fallback.vertices.size(), 1u);
  EXPECT_TRUE(g.cell(fallback.vertices[0]) == c);
}

TEST(HypergraphTest, VertexScoresAreNormalized) {
  Relation rel = PaperIncomeRelation();
  ConflictHypergraph g = BuildPhi4Graph(rel);
  DomainStats stats(rel);
  for (const DomainStats* s : {static_cast<const DomainStats*>(&stats),
                               static_cast<const DomainStats*>(nullptr)}) {
    VertexScores scores = ComputeVertexScores(g, s);
    ASSERT_EQ(scores.density.size(), static_cast<size_t>(g.num_vertices()));
    ASSERT_EQ(scores.entropy.size(), static_cast<size_t>(g.num_vertices()));
    for (int v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(scores.density[v], 0.0);
      EXPECT_LE(scores.density[v], 1.0);
      EXPECT_GE(scores.entropy[v], 0.0);
      EXPECT_LE(scores.entropy[v], 1.0);
    }
  }
}

TEST(CoverTest, ScoreTiesBreakOnSmallestRowThenAttr) {
  // Two disjoint FD violations whose four inequality-side cells tie on
  // every score input (degree, weight, value frequency, domain size): the
  // cover must settle each edge on the smaller row, making the pick a
  // pure function of the cells rather than of vertex ids (which follow
  // violation discovery order). Regression test for the nondeterministic
  // tie-breaking ApproximateVertexCover once had.
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("k"), Value::String("x")});
  rel.AddRow({Value::String("k"), Value::String("y")});
  rel.AddRow({Value::String("m"), Value::String("u")});
  rel.AddRow({Value::String("m"), Value::String("w")});
  AttrId a = 0, b = 1;
  ConstraintSet sigma = {
      DenialConstraint({Predicate::TwoCell(0, a, Op::kEq, 1, a),
                        Predicate::TwoCell(0, b, Op::kNeq, 1, b)})};
  ConflictHypergraph g =
      ConflictHypergraph::Build(rel, sigma, FindViolations(rel, sigma));
  ASSERT_EQ(g.num_edges(), 2);
  for (CoverHeuristic h :
       {CoverHeuristic::kGreedyDegree, CoverHeuristic::kEntropyDensity}) {
    VertexCover cover = ApproximateVertexCover(g, h);
    std::vector<Cell> cells = cover.Cells(g);
    std::sort(cells.begin(), cells.end());
    ASSERT_EQ(cells.size(), 2u) << "heuristic " << static_cast<int>(h);
    EXPECT_TRUE(cells[0] == (Cell{0, b})) << "heuristic " << static_cast<int>(h);
    EXPECT_TRUE(cells[1] == (Cell{2, b})) << "heuristic " << static_cast<int>(h);
  }
}

TEST(BoundsTest, Example7And8Bounds) {
  Relation rel = PaperIncomeRelation();
  CostModel cost;  // count cost, fresh 1.1
  // With AMWVC = {t4.Tax} (weight 1) and Deg = 4: delta_l = 0.25,
  // delta_u = 1.1 (Example 7).
  RepairCostBounds b1 =
      ComputeBounds(rel, {Phi4Prime(rel)}, cost, CoverHeuristic::kGreedyDegree);
  EXPECT_NEAR(b1.lower, 0.25, 1e-9);
  EXPECT_NEAR(b1.upper, 1.1, 1e-9);

  // Example 8: for φ4'' = not(Income> & Tax=) the paper's AMWVC is the 5
  // tax cells giving delta_l = 1.25 > delta_u(Σ1) = 1.1. Our local-ratio
  // cover may differ (it is a different f-approximation), but the bound
  // must still separate the two variants by a wide margin relative to Σ1's
  // lower bound, and stay a valid lower bound (>= 1 changed cell won't do
  // it: the true minimum repair of φ4'' needs several cells).
  DenialConstraint phi4pp = testing_fixture::Parse(
      rel, "not(t0.Income>t1.Income & t0.Tax=t1.Tax)");
  RepairCostBounds b2 =
      ComputeBounds(rel, {phi4pp}, cost, CoverHeuristic::kGreedyDegree);
  EXPECT_GE(b2.lower, 1.0);
  EXPECT_GT(b2.lower, 2.0 * b1.lower);
}

TEST(BoundsTest, LowerBoundNeverExceedsTrueRepairCost) {
  // Lemma 3 sanity: the minimum repair of φ4' costs 1 (t4.Tax := 0), and
  // delta_l = 0.25 <= 1 <= delta_u = 1.1.
  Relation rel = PaperIncomeRelation();
  RepairCostBounds b = ComputeBounds(rel, {Phi4Prime(rel)});
  EXPECT_LE(b.lower, 1.0 + 1e-9);
  EXPECT_GE(b.upper, 1.0 - 1e-9);
}

TEST(BoundsTest, EmptyViolationsGiveZeroBounds) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  AttrId income = *rel.schema().Find("Income");
  DenialConstraint ok({Predicate::TwoCell(0, tax, Op::kGt, 0, income)});
  RepairCostBounds b = ComputeBounds(rel, {ok});
  EXPECT_EQ(b.lower, 0.0);
  EXPECT_EQ(b.upper, 0.0);
  EXPECT_TRUE(b.cover_cells.empty());
}

}  // namespace
}  // namespace cvrepair
