// Repair-as-a-service (serve/): the sharded session must stay
// violation-free under the frozen Σ' and bit-identical — cost, changed
// cells, components, fresh ids included — to a single-session
// StreamingRepairer replay of the same edit sequence, across shard counts,
// backends, and thread counts; the admission edge must reject at the
// watermark deterministically, re-admit after a drain, and never lose an
// accepted batch, even across Close.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/predicate_space.h"
#include "dc/violation.h"
#include "repair/streaming.h"
#include "serve/sharded_session.h"

namespace cvrepair {
namespace {

struct Workload {
  Relation dirty;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

Workload MakeHospWorkload() {
  HospConfig config;
  config.num_hospitals = 6;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = hosp.noise_attrs;
  return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified,
          hosp.space};
}

Workload MakeCensusWorkload() {
  CensusConfig config;
  config.num_rows = 120;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  return {InjectNoise(census.clean, noise).dirty, census.given, {}};
}

ShardedOptions MakeShardedOptions(const Workload& w, bool encoded,
                                  int threads, int shards) {
  ShardedOptions options;
  options.repair.variants.space = w.space;
  options.repair.threads = threads;
  options.repair.use_encoded = encoded;
  options.num_shards = shards;
  return options;
}

StreamingOptions MakeStreamingOptions(const Workload& w, bool encoded,
                                      int threads) {
  StreamingOptions options;
  options.repair.variants.space = w.space;
  options.repair.threads = threads;
  options.repair.use_encoded = encoded;
  return options;
}

void ExpectExactlyEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId at = 0; at < a.num_attributes(); ++at) {
      EXPECT_TRUE(a.Get(r, at) == b.Get(r, at))
          << "cell (" << r << "," << at << "): " << a.Get(r, at).ToString()
          << " vs " << b.Get(r, at).ToString();
    }
  }
}

/// Streams the same replay through a ShardedSession and a single-session
/// StreamingRepairer and pins batch-by-batch bit-identity: same variant,
/// same violation count, same cost/cells/components, same cells including
/// fresh ids.
void RunShardedVsStreamed(const Workload& w, bool encoded, int threads,
                          int shards) {
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, /*num_batches=*/4,
                                             /*batch_size=*/8, /*seed=*/7);
  ShardedSession sharded(replay.base, w.sigma,
                         MakeShardedOptions(w, encoded, threads, shards));
  StreamingRepairer streamer(replay.base, w.sigma,
                             MakeStreamingOptions(w, encoded, threads));
  ASSERT_TRUE(sharded.variant() == streamer.variant());
  ASSERT_TRUE(sharded.IsViolationFree());
  ExpectExactlyEqual(sharded.current(), streamer.current());

  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    ServeBatchResult rs = sharded.ApplyBatch(replay.batches[b]);
    StreamBatchResult rt = streamer.ApplyBatch(replay.batches[b]);
    EXPECT_TRUE(sharded.IsViolationFree());
    EXPECT_EQ(rs.violations, rt.violations);
    EXPECT_EQ(rs.repair_cost, rt.repair_cost);  // bit-identical, not close
    EXPECT_EQ(rs.cells_changed, rt.cells_changed);
    EXPECT_EQ(rs.components, rt.components);
    if (rs.violations == 0) {
      EXPECT_EQ(rs.shard_local_components + rs.cross_shard_components, 0);
    } else {
      EXPECT_GE(rs.shard_local_components + rs.cross_shard_components, 1);
    }
    ExpectExactlyEqual(sharded.current(), streamer.current());
  }
  EXPECT_TRUE(FindViolations(sharded.current(), sharded.variant()).empty());
}

// The acceptance matrix: hosp and census, boxed and encoded, 1 and 4
// threads, shard counts 2 and 4 — every dimension covered on both
// datasets.
TEST(ServeTest, HospBoxed1Thread2Shards) {
  RunShardedVsStreamed(MakeHospWorkload(), false, 1, 2);
}
TEST(ServeTest, HospBoxed4Threads4Shards) {
  RunShardedVsStreamed(MakeHospWorkload(), false, 4, 4);
}
TEST(ServeTest, HospEncoded1Thread4Shards) {
  RunShardedVsStreamed(MakeHospWorkload(), true, 1, 4);
}
TEST(ServeTest, HospEncoded4Threads2Shards) {
  RunShardedVsStreamed(MakeHospWorkload(), true, 4, 2);
}
TEST(ServeTest, CensusBoxed1Thread2Shards) {
  RunShardedVsStreamed(MakeCensusWorkload(), false, 1, 2);
}
TEST(ServeTest, CensusBoxed4Threads4Shards) {
  RunShardedVsStreamed(MakeCensusWorkload(), false, 4, 4);
}
TEST(ServeTest, CensusEncoded1Thread4Shards) {
  RunShardedVsStreamed(MakeCensusWorkload(), true, 1, 4);
}
TEST(ServeTest, CensusEncoded4Threads2Shards) {
  RunShardedVsStreamed(MakeCensusWorkload(), true, 4, 2);
}

// The plan picks the equality-join key covering the most two-tuple
// constraints. On hosp's oversimplified set the eq-join sets are {Name},
// {Code}, {Code}, {Name,Addr}, {Zip}, {Name,Addr}: HospitalName covers
// three constraints, every rival at most two.
TEST(ServeTest, HospShardPlanPicksBestCoveringKey) {
  Workload w = MakeHospWorkload();
  ShardPlan plan = PlanShards(w.sigma);
  ASSERT_EQ(plan.key.size(), 1u);
  EXPECT_EQ(plan.key[0], HospAttrs::kHospitalName);
  EXPECT_EQ(plan.local.size() + plan.straddling.size(), w.sigma.size());
  // Structural soundness: every local two-tuple constraint's eq-join set
  // contains the key, so two rows violating it share all key values.
  for (int k : plan.local) {
    if (w.sigma[static_cast<size_t>(k)].NumTupleVars() < 2) continue;
    std::vector<AttrId> eq =
        EqualityJoinAttrs(w.sigma[static_cast<size_t>(k)].predicates());
    EXPECT_TRUE(std::includes(eq.begin(), eq.end(), plan.key.begin(),
                              plan.key.end()));
  }
  EXPECT_FALSE(plan.straddling.empty());
}

// Census's given DCs are order comparisons (no equality joins): the plan
// degenerates to round-robin row sharding with only single-tuple
// constraints local — everything else goes through the residual index.
TEST(ServeTest, CensusShardPlanFallsBackToRoundRobin) {
  Workload w = MakeCensusWorkload();
  ShardPlan plan = PlanShards(w.sigma);
  EXPECT_TRUE(plan.key.empty());
  for (int k : plan.local) {
    EXPECT_LT(w.sigma[static_cast<size_t>(k)].NumTupleVars(), 2);
  }
}

// When the shard key covers every constraint, the residual index runs with
// an empty constraint set (it is then purely the master copy) — the
// degenerate plan must still stream correctly.
TEST(ServeTest, AllConstraintsLocalRunsWithEmptyResidual) {
  Workload w = MakeHospWorkload();
  w.sigma = {w.sigma[0]};  // fd_phone_oversimplified alone, eq-join {Name}
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 3, 6, /*seed=*/5);
  ShardedSession sharded(replay.base, w.sigma,
                         MakeShardedOptions(w, true, 1, 3));
  EXPECT_TRUE(sharded.plan().straddling.empty());
  StreamingRepairer streamer(replay.base, w.sigma,
                             MakeStreamingOptions(w, true, 1));
  for (const std::vector<RowEdit>& batch : replay.batches) {
    ServeBatchResult rs = sharded.ApplyBatch(batch);
    StreamBatchResult rt = streamer.ApplyBatch(batch);
    EXPECT_EQ(rs.repair_cost, rt.repair_cost);
    EXPECT_EQ(rs.cells_changed, rt.cells_changed);
    EXPECT_TRUE(sharded.IsViolationFree());
  }
  ExpectExactlyEqual(sharded.current(), streamer.current());
  EXPECT_EQ(sharded.totals().cross_shard_components, 0);
}

/// Finds an edit of `target_attr` on some row that provably creates at
/// least one violation spanning two shards (want_cross) or contained in
/// one (want_cross = false), by simulating candidate edits on a copy.
/// Returns false if no candidate qualifies.
bool FindProbeEdit(ShardedSession& session, AttrId target_attr,
                   bool want_cross, RowEdit* out) {
  const Relation& W = session.current();
  for (int src = 0; src < W.num_rows(); ++src) {
    for (int dst = 0; dst < W.num_rows(); ++dst) {
      if (src == dst) continue;
      const bool cross = session.HomeOf(src) != session.HomeOf(dst);
      if (cross != want_cross) continue;
      const Value& v = W.Get(src, target_attr);
      if (v.is_null() || v.is_fresh() || W.Get(dst, target_attr) == v) {
        continue;
      }
      Relation probe = W;
      probe.SetValue(dst, target_attr, v);
      std::vector<Violation> violations =
          FindViolations(probe, session.variant());
      for (const Violation& viol : violations) {
        bool straddles = false;
        for (size_t i = 1; i < viol.rows.size(); ++i) {
          if (session.HomeOf(viol.rows[i]) != session.HomeOf(viol.rows[0])) {
            straddles = true;
          }
        }
        if (straddles == want_cross) {
          *out = RowEdit::Update(dst, target_attr, v);
          return true;
        }
      }
    }
  }
  return false;
}

// A violation whose rows live in different shards escapes every shard
// index, is caught by the residual, and is counted as a cross-shard
// component — and the repair still retires it.
TEST(ServeTest, CrossShardComponentIsMergedAndRepaired) {
  Workload w = MakeHospWorkload();
  ShardedSession session(w.dirty, w.sigma, MakeShardedOptions(w, true, 1, 2));
  // MeasureCode → MeasureName/Condition straddle the Name-keyed shards.
  RowEdit probe;
  ASSERT_TRUE(
      FindProbeEdit(session, HospAttrs::kMeasureCode, /*want_cross=*/true,
                    &probe));
  ServeBatchResult r = session.ApplyBatch({probe});
  EXPECT_GE(r.cross_shard_components, 1);
  EXPECT_TRUE(session.IsViolationFree());
  EXPECT_GE(session.totals().cross_shard_components, 1);
}

// A violation between rows agreeing on the shard key stays inside one
// shard index and is counted shard-local.
TEST(ServeTest, ShardLocalComponentStaysLocal) {
  Workload w = MakeHospWorkload();
  ShardedSession session(w.dirty, w.sigma, MakeShardedOptions(w, true, 1, 4));
  RowEdit probe;
  ASSERT_TRUE(FindProbeEdit(session, HospAttrs::kPhone, /*want_cross=*/false,
                            &probe));
  ServeBatchResult r = session.ApplyBatch({probe});
  EXPECT_GE(r.shard_local_components, 1);
  EXPECT_TRUE(session.IsViolationFree());
}

// Rewriting a row's shard-key cells re-homes it: the row must land in the
// shard of the rows it now joins with, and the session must stay
// equivalent to the unsharded replay of the same edits. The key attribute
// comes from the session's own plan — the variant search is free to move
// the equality joins (it does on hosp: fd_phone's key becomes Address).
TEST(ServeTest, ShardKeyEditMigratesRow) {
  Workload w = MakeHospWorkload();
  ShardedSession sharded(w.dirty, w.sigma, MakeShardedOptions(w, true, 1, 4));
  StreamingRepairer streamer(w.dirty, w.sigma,
                             MakeStreamingOptions(w, true, 1));
  const std::vector<AttrId>& key = sharded.plan().key;
  ASSERT_FALSE(key.empty());
  const Relation& W = sharded.current();
  // Find a donor row homed elsewhere whose key values are all concrete and
  // differ from the victim's in at least one attribute.
  int victim = -1, donor = -1;
  for (int a = 0; a < W.num_rows() && victim < 0; ++a) {
    for (int b = 0; b < W.num_rows(); ++b) {
      if (sharded.HomeOf(a) == sharded.HomeOf(b)) continue;
      bool concrete = true;
      for (AttrId at : key) {
        const Value& v = W.Get(b, at);
        concrete &= !v.is_null() && !v.is_fresh();
      }
      if (concrete) {
        victim = a;
        donor = b;
        break;
      }
    }
  }
  ASSERT_GE(victim, 0);
  std::vector<RowEdit> batch;
  for (AttrId at : key) {
    batch.push_back(RowEdit::Update(victim, at, W.Get(donor, at)));
  }
  ServeBatchResult rs = sharded.ApplyBatch(batch);
  StreamBatchResult rt = streamer.ApplyBatch(batch);
  EXPECT_GE(rs.rows_migrated, 1);
  EXPECT_EQ(rs.repair_cost, rt.repair_cost);
  EXPECT_EQ(rs.cells_changed, rt.cells_changed);
  ExpectExactlyEqual(sharded.current(), streamer.current());
  // Wherever the repair left the victim's key cells, equal keys mean equal
  // homes (the fixes may have rewritten them again, migrating it back).
  bool keys_equal = true;
  for (AttrId at : key) {
    const Value& v = sharded.current().Get(victim, at);
    keys_equal &= !v.is_null() && !v.is_fresh() &&
                  v == sharded.current().Get(donor, at);
  }
  if (keys_equal) EXPECT_EQ(sharded.HomeOf(victim), sharded.HomeOf(donor));
}

// Tombstone re-homing probe: under the delete strategy the per-batch
// re-solve retires violations by tombstoning tuples (all cells NULL). The
// tombstoned row must be retired from its shard's ViolationIndex in place
// — the route table keeps the shard it died in rather than migrating the
// row of NULLs to the round-robin slot its NULL key hashes to (which
// would rebuild two shard indexes per deletion) — and the session must
// stay bit-identical to the unsharded replay.
TEST(ServeTest, DeletedRowStaysHomeAndRetiresFromShardIndex) {
  Workload w = MakeHospWorkload();
  ShardedOptions sharded_options = MakeShardedOptions(w, true, 1, 4);
  sharded_options.repair.vfree.strategy = RepairStrategy::kDelete;
  ShardedSession sharded(w.dirty, w.sigma, sharded_options);
  StreamingOptions streaming_options = MakeStreamingOptions(w, true, 1);
  streaming_options.repair.vfree.strategy = RepairStrategy::kDelete;
  StreamingRepairer streamer(w.dirty, w.sigma, streaming_options);
  ASSERT_TRUE(sharded.variant() == streamer.variant());
  ASSERT_TRUE(sharded.IsViolationFree());
  ExpectExactlyEqual(sharded.current(), streamer.current());

  // Provoke a shard-local violation; the delete-strategy re-solve retires
  // it by tombstoning a row of the conflict.
  RowEdit probe;
  ASSERT_TRUE(FindProbeEdit(sharded, HospAttrs::kPhone, /*want_cross=*/false,
                            &probe));
  const Relation before = sharded.current();
  std::vector<int> home_before;
  for (int r = 0; r < before.num_rows(); ++r) {
    home_before.push_back(sharded.HomeOf(r));
  }
  const int64_t migrated_before = sharded.totals().rows_migrated;

  ServeBatchResult rs = sharded.ApplyBatch({probe});
  StreamBatchResult rt = streamer.ApplyBatch({probe});
  EXPECT_EQ(rs.repair_cost, rt.repair_cost);
  EXPECT_EQ(rs.cells_changed, rt.cells_changed);
  ExpectExactlyEqual(sharded.current(), streamer.current());
  EXPECT_TRUE(sharded.IsViolationFree());

  // At least one tuple died, and every tombstone kept its home.
  int deleted = 0;
  for (int r = 0; r < before.num_rows(); ++r) {
    if (!RowDeleted(before, sharded.current(), r)) continue;
    ++deleted;
    EXPECT_EQ(sharded.HomeOf(r), home_before[static_cast<size_t>(r)])
        << "tombstoned row " << r << " migrated";
  }
  EXPECT_GE(deleted, 1);
  // Tombstoning is not a migration: the probe edit touched no shard-key
  // cell and the fixes only wrote NULLs, so the route table is unchanged.
  EXPECT_EQ(sharded.totals().rows_migrated, migrated_before);

  // The shard indexes really retired the rows: a no-op batch detects
  // nothing and changes nothing.
  ServeBatchResult idle = sharded.ApplyBatch({});
  EXPECT_EQ(idle.violations, 0);
  EXPECT_EQ(idle.cells_changed, 0);
}

// The full delete-strategy equivalence sweep: sharded ≡ unsharded
// streamed replay, batch by batch, on both backends and thread counts.
TEST(ServeTest, DeleteStrategyShardedMatchesStreamedReplay) {
  for (bool encoded : {false, true}) {
    for (int threads : {1, 4}) {
      SCOPED_TRACE(std::string(encoded ? "encoded" : "boxed") + " threads=" +
                   std::to_string(threads));
      Workload w = MakeHospWorkload();
      ReplayWorkload replay = MakeReplayWorkload(w.dirty, /*num_batches=*/3,
                                                 /*batch_size=*/8, /*seed=*/7);
      ShardedOptions sharded_options =
          MakeShardedOptions(w, encoded, threads, 3);
      sharded_options.repair.vfree.strategy = RepairStrategy::kDelete;
      ShardedSession sharded(replay.base, w.sigma, sharded_options);
      StreamingOptions streaming_options =
          MakeStreamingOptions(w, encoded, threads);
      streaming_options.repair.vfree.strategy = RepairStrategy::kDelete;
      StreamingRepairer streamer(replay.base, w.sigma, streaming_options);
      for (const std::vector<RowEdit>& batch : replay.batches) {
        ServeBatchResult rs = sharded.ApplyBatch(batch);
        StreamBatchResult rt = streamer.ApplyBatch(batch);
        EXPECT_EQ(rs.repair_cost, rt.repair_cost);
        EXPECT_EQ(rs.cells_changed, rt.cells_changed);
        EXPECT_TRUE(sharded.IsViolationFree());
      }
      ExpectExactlyEqual(sharded.current(), streamer.current());
      EXPECT_TRUE(
          FindViolations(sharded.current(), sharded.variant()).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Admission control

ServeOptions SmallServeOptions(const Workload& w, int watermark) {
  ServeOptions options;
  options.session.repair.variants.space = w.space;
  options.session.num_shards = 2;
  options.admission.queue_watermark = watermark;
  return options;
}

// At the watermark, Submit rejects — deterministically, with a retry hint
// and no ticket — and a drained queue re-admits.
TEST(ServeTest, SubmitRejectsAtWatermarkAndReadmitsAfterDrain) {
  Workload w = MakeHospWorkload();
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 5, 4, /*seed=*/9);
  RepairServer server;
  ServeSession* session = server.Open("hosp", replay.base, w.sigma,
                                      SmallServeOptions(w, /*watermark=*/2));
  ASSERT_NE(session, nullptr);
  std::vector<SubmitOutcome> outcomes;
  for (const std::vector<RowEdit>& batch : replay.batches) {
    outcomes.push_back(session->Submit(batch));
  }
  ASSERT_EQ(outcomes.size(), 5u);
  EXPECT_TRUE(outcomes[0].admitted);
  EXPECT_TRUE(outcomes[1].admitted);
  EXPECT_EQ(outcomes[0].ticket, 0);
  EXPECT_EQ(outcomes[1].ticket, 1);
  for (size_t i = 2; i < outcomes.size(); ++i) {
    EXPECT_FALSE(outcomes[i].admitted);
    EXPECT_EQ(outcomes[i].ticket, -1);
    EXPECT_GT(outcomes[i].retry_after_seconds, 0.0);
    EXPECT_EQ(outcomes[i].queue_depth, 2);
  }
  EXPECT_EQ(session->depth(), 2);
  EXPECT_EQ(session->rejected(), 3);

  EXPECT_EQ(session->Flush(), 2);
  EXPECT_EQ(session->depth(), 0);
  EXPECT_EQ(session->applied(), 2);

  // Drained queue re-admits: the previously rejected batches go through.
  for (size_t i = 2; i < replay.batches.size(); ++i) {
    SubmitOutcome again = session->Submit(replay.batches[i]);
    EXPECT_TRUE(again.admitted);
    session->Pump();
  }
  EXPECT_EQ(session->applied(), 5);
  // One latency sample per applied batch, in ticket order.
  EXPECT_EQ(session->batch_seconds().size(), 5u);
  EXPECT_TRUE(FindViolations(session->repair().current(),
                             session->repair().variant())
                  .empty());
}

// Close flushes the accepted-but-unapplied tail: the final instance equals
// a directly driven session over the same batches, nothing is lost.
TEST(ServeTest, CloseFlushesAcceptedBatchesWithoutLoss) {
  Workload w = MakeHospWorkload();
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 3, 6, /*seed=*/17);
  ServeOptions options = SmallServeOptions(w, /*watermark=*/8);

  RepairServer server;
  ServeSession* session = server.Open("hosp", replay.base, w.sigma, options);
  ASSERT_NE(session, nullptr);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    ASSERT_TRUE(session->Submit(batch).admitted);
  }
  EXPECT_EQ(session->applied(), 0);  // everything still queued
  std::optional<Relation> final_instance = server.Close("hosp");
  ASSERT_TRUE(final_instance.has_value());
  EXPECT_EQ(server.Find("hosp"), nullptr);

  ShardedSession twin(replay.base, w.sigma, options.session);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    twin.ApplyBatch(batch);
  }
  ExpectExactlyEqual(*final_instance, twin.current());
}

// The background worker drains the queue in ticket order; the close still
// hands back the same instance as a synchronous twin.
TEST(ServeTest, BackgroundWorkerMatchesSynchronousDrain) {
  Workload w = MakeHospWorkload();
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 3, 6, /*seed=*/23);
  ServeOptions options = SmallServeOptions(w, /*watermark=*/8);
  options.admission.background = true;

  RepairServer server;
  ServeSession* session = server.Open("hosp", replay.base, w.sigma, options);
  ASSERT_NE(session, nullptr);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    ASSERT_TRUE(session->Submit(batch).admitted);
  }
  std::optional<Relation> final_instance = server.Close("hosp");
  ASSERT_TRUE(final_instance.has_value());

  options.admission.background = false;
  ShardedSession twin(replay.base, w.sigma, options.session);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    twin.ApplyBatch(batch);
  }
  ExpectExactlyEqual(*final_instance, twin.current());
}

TEST(ServeTest, ServerHostsMultipleNamedSessions) {
  Workload hosp = MakeHospWorkload();
  Workload census = MakeCensusWorkload();
  RepairServer server;
  ASSERT_NE(server.Open("hosp", hosp.dirty, hosp.sigma,
                        SmallServeOptions(hosp, 4)),
            nullptr);
  ASSERT_NE(server.Open("census", census.dirty, census.sigma,
                        SmallServeOptions(census, 4)),
            nullptr);
  EXPECT_EQ(server.Open("hosp", hosp.dirty, hosp.sigma), nullptr);
  EXPECT_EQ(server.SessionNames(),
            (std::vector<std::string>{"census", "hosp"}));
  EXPECT_NE(server.Find("census"), nullptr);
  // FlushAll drains every session's queue: one no-op batch each.
  for (const char* name : {"hosp", "census"}) {
    ServeSession* session = server.Find(name);
    ASSERT_NE(session, nullptr);
    const Relation& current = session->repair().current();
    ASSERT_TRUE(session
                    ->Submit({RowEdit::Update(0, 0, current.Get(0, 0))})
                    .admitted);
  }
  EXPECT_EQ(server.FlushAll(), 2);
  EXPECT_TRUE(server.Close("census").has_value());
  EXPECT_FALSE(server.Close("census").has_value());
  EXPECT_EQ(server.SessionNames(), (std::vector<std::string>{"hosp"}));
}

// ---------------------------------------------------------------------------
// Latency histogram (bench/bench_util.h)

TEST(ServeTest, LatencyHistogramNearestRankOnFixedSample) {
  bench::LatencyHistogram h;
  EXPECT_EQ(h.Percentile(50.0), 0.0);  // empty
  // 1..100 in a scrambled but fixed order.
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) {
    sample.push_back(static_cast<double>((i * 37) % 100 + 1));
  }
  h.RecordAll(sample);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.p50(), 50.0);   // nearest-rank: the 50th smallest
  EXPECT_EQ(h.p99(), 99.0);   // the 99th smallest
  EXPECT_EQ(h.Percentile(100.0), 100.0);
  EXPECT_EQ(h.Percentile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.TotalSeconds(), 5050.0);
  bench::LatencyHistogram tiny;
  tiny.Record(3.0);
  EXPECT_EQ(tiny.p50(), 3.0);
  EXPECT_EQ(tiny.p99(), 3.0);
}

// ---------------------------------------------------------------------------
// Fuzz: random shard counts × batch shapes × pump interleavings, sharded
// (through the full server path) ≡ unsharded streamed replay.

int FuzzScale() {
  static const int scale = [] {
    const char* v = std::getenv("CVREPAIR_FUZZ_ITERS");
    int s = (v != nullptr && v[0] != '\0') ? std::atoi(v) : 1;
    return s > 0 ? s : 1;
  }();
  return scale;
}

class ServeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ServeFuzz, RandomShardingMatchesUnshardedReplay) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 9973 + 17);
  Workload w = (seed % 2 == 0) ? MakeHospWorkload() : MakeCensusWorkload();
  const int shards = 1 + static_cast<int>(rng() % 5);
  const int num_batches = 2 + static_cast<int>(rng() % 3);
  const int batch_size = 4 + static_cast<int>(rng() % 6);
  const int watermark = 1 + static_cast<int>(rng() % num_batches);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" +
               std::to_string(shards) + " batches=" +
               std::to_string(num_batches) + "x" +
               std::to_string(batch_size) + " watermark=" +
               std::to_string(watermark));
  ReplayWorkload replay = MakeReplayWorkload(
      w.dirty, num_batches, batch_size, static_cast<uint64_t>(seed) + 101);

  ServeOptions options;
  options.session.repair.variants.space = w.space;
  options.session.repair.use_encoded = (rng() % 2 == 0);
  options.session.num_shards = shards;
  options.admission.queue_watermark = watermark;
  RepairServer server;
  ServeSession* session =
      server.Open("fuzz", replay.base, w.sigma, options);
  ASSERT_NE(session, nullptr);
  // Closed-loop with a random pump interleaving: rejected batches pump the
  // queue and retry, so the admitted order — and hence the repaired
  // instance — is the canonical batch order regardless of schedule.
  for (const std::vector<RowEdit>& batch : replay.batches) {
    while (!session->Submit(batch).admitted) session->Pump();
    if (rng() % 2 == 0) session->Pump();
  }
  std::optional<Relation> final_instance = server.Close("fuzz");
  ASSERT_TRUE(final_instance.has_value());

  StreamingOptions streaming;
  streaming.repair = options.session.repair;
  StreamingRepairer streamer(replay.base, w.sigma, streaming);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    streamer.ApplyBatch(batch);
  }
  ExpectExactlyEqual(*final_instance, streamer.current());
  EXPECT_TRUE(
      FindViolations(*final_instance, streamer.variant()).empty());
}

INSTANTIATE_TEST_SUITE_P(RandomShardings, ServeFuzz,
                         ::testing::Range(0, 2 * FuzzScale()));

}  // namespace
}  // namespace cvrepair
