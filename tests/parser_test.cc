#include "dc/parser.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;

TEST(ParserTest, ParsesTwoTupleDc) {
  Relation rel = PaperIncomeRelation();
  ParseConstraintResult r =
      ParseConstraint(rel.schema(), "not(t0.Name=t1.Name & t0.CP!=t1.CP)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.constraint->size(), 2);
  EXPECT_EQ(r.constraint->NumTupleVars(), 2);
}

TEST(ParserTest, ParsesNamePrefix) {
  Relation rel = PaperIncomeRelation();
  ParseConstraintResult r = ParseConstraint(
      rel.schema(), "my_dc: not(t0.Income>t1.Income & t0.Tax<=t1.Tax)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.constraint->name(), "my_dc");
}

TEST(ParserTest, ParsesConstantsTypedByAttribute) {
  Relation rel = PaperIncomeRelation();
  ParseConstraintResult r =
      ParseConstraint(rel.schema(), "not(t0.Income>=100)");
  ASSERT_TRUE(r.ok()) << r.error;
  const Predicate& p = r.constraint->predicates()[0];
  ASSERT_TRUE(p.has_constant());
  EXPECT_EQ(p.constant(), Value::Double(100));
  EXPECT_EQ(r.constraint->NumTupleVars(), 1);

  r = ParseConstraint(rel.schema(), "not(t0.Name='Ayres' & t0.Tax>0)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.constraint->size(), 2);
}

TEST(ParserTest, ParsesFdSugar) {
  Relation rel = PaperIncomeRelation();
  ParseConstraintResult r =
      ParseConstraint(rel.schema(), "Name,Birthday -> CP");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(*r.constraint, testing_fixture::Phi2(rel));
}

TEST(ParserTest, UnicodeOperators) {
  Relation rel = PaperIncomeRelation();
  ParseConstraintResult r = ParseConstraint(
      rel.schema(), "not(t0.Income>t1.Income & t0.Tax≤t1.Tax)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(*r.constraint, testing_fixture::Phi4(rel));
}

TEST(ParserTest, RoundTripsToString) {
  Relation rel = PaperIncomeRelation();
  for (const DenialConstraint& c :
       {testing_fixture::Phi1(rel), testing_fixture::Phi4Prime(rel)}) {
    ParseConstraintResult r =
        ParseConstraint(rel.schema(), c.ToString(rel.schema()));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(*r.constraint, c);
  }
}

TEST(ParserTest, ErrorMessages) {
  Relation rel = PaperIncomeRelation();
  EXPECT_FALSE(ParseConstraint(rel.schema(), "nonsense").ok());
  EXPECT_FALSE(ParseConstraint(rel.schema(), "not()").ok());
  EXPECT_FALSE(
      ParseConstraint(rel.schema(), "not(t0.Missing=t1.Missing)").ok());
  EXPECT_FALSE(ParseConstraint(rel.schema(), "not(t0.Name~t1.Name)").ok());
  EXPECT_FALSE(ParseConstraint(rel.schema(), "not(t2.Name=t1.Name)").ok());
  EXPECT_FALSE(ParseConstraint(rel.schema(), "Missing -> CP").ok());
  EXPECT_FALSE(ParseConstraint(rel.schema(), " -> CP").ok());
}

TEST(ParserTest, ConstraintSetWithCommentsAndSeparators) {
  Relation rel = PaperIncomeRelation();
  ParseSetResult r = ParseConstraintSet(rel.schema(),
                                        "# a comment\n"
                                        "Name,Birthday -> CP\n"
                                        "\n"
                                        "not(t0.Tax>t0.Income); "
                                        "not(t0.Income>t1.Income & "
                                        "t0.Tax<t1.Tax)\n");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.constraints->size(), 3u);
}

TEST(ParserTest, ConstraintSetPropagatesErrors) {
  Relation rel = PaperIncomeRelation();
  ParseSetResult r =
      ParseConstraintSet(rel.schema(), "Name -> CP\nbroken line\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("broken line"), std::string::npos);
}

}  // namespace
}  // namespace cvrepair
