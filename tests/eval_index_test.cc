// The shared evaluation index (dc/eval_index.h): partition derivation
// (refine / merge with NULL recovery), the predicate-verdict memo, and the
// end-to-end contract — CVTolerantRepair with the index on is bit-identical
// to the unshared path at any thread count while doing strictly less
// partition-building and predicate-evaluation work.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "data/hosp.h"
#include "data/noise.h"
#include "dc/eval_index.h"
#include "dc/violation.h"
#include "paper_example.h"
#include "repair/cvtolerant.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;

// A small relation with NULLs placed to exercise both derivation
// directions: refining must drop rows NULL on the added attribute, and
// merging must re-admit rows that were excluded only because of a NULL on
// a dropped attribute.
Relation NullableRelation() {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("C", AttrType::kString);
  schema.AddAttribute("D", AttrType::kString);
  Relation rel(schema);
  auto S = [](const char* s) { return Value::String(s); };
  rel.AddRow({S("a1"), S("b1"), S("c1"), S("d1")});
  rel.AddRow({S("a1"), S("b1"), S("c2"), S("d1")});
  rel.AddRow({S("a1"), Value::Null(), S("c3"), S("d1")});  // NULL on B
  rel.AddRow({S("a1"), S("b2"), S("c1"), Value::Null()});  // NULL on D
  rel.AddRow({S("a2"), S("b2"), S("c1"), S("d2")});
  rel.AddRow({S("a2"), S("b2"), S("c2"), S("d2")});
  rel.AddRow({S("a1"), S("b1"), S("c3"), S("d2")});
  rel.AddRow({S("a2"), Value::Null(), S("c2"), S("d2")});  // NULL on B
  return rel;
}

Predicate Eq(AttrId a) { return Predicate::TwoCell(0, a, Op::kEq, 1, a); }
Predicate Neq(AttrId a) { return Predicate::TwoCell(0, a, Op::kNeq, 1, a); }

// Index scans must agree with the plain detector on every derivation
// direction, capped and uncapped.
TEST(EvalIndexTest, DerivedPartitionsMatchFreshScans) {
  Relation rel = NullableRelation();
  // Base: the FD {A,B} -> C.
  DenialConstraint base({Eq(0), Eq(1), Neq(2)});
  EvalIndex index(rel, base);

  std::vector<DenialConstraint> variants = {
      base,
      DenialConstraint({Eq(0), Eq(1), Eq(3), Neq(2)}),  // refine: +D
      DenialConstraint({Eq(0), Neq(2)}),                // merge: -B (NULL rows)
      DenialConstraint({Eq(1), Neq(2)}),                // merge: -A
      DenialConstraint({Eq(3), Neq(2)}),                // refine from trivial
      DenialConstraint({Neq(2)}),                       // no join at all
      DenialConstraint({Eq(0), Eq(1), Neq(3)}),         // delta predicate
  };
  for (const DenialConstraint& v : variants) index.Prepare(v);

  for (size_t k = 0; k < variants.size(); ++k) {
    for (int64_t cap : {std::numeric_limits<int64_t>::max(), int64_t{3},
                        int64_t{1}}) {
      bool plain_truncated = false;
      std::vector<Violation> plain = FindViolationsOfCapped(
          rel, variants[k], static_cast<int>(k), cap, &plain_truncated);
      bool indexed_truncated = false;
      std::vector<Violation> indexed = index.FindViolationsCapped(
          variants[k], static_cast<int>(k), cap, &indexed_truncated);
      EXPECT_EQ(plain, indexed) << "variant " << k << " cap " << cap;
      EXPECT_EQ(plain_truncated, indexed_truncated)
          << "variant " << k << " cap " << cap;
    }
  }
}

TEST(EvalIndexTest, DerivationsAreCountedInsteadOfBuilds) {
  Relation rel = NullableRelation();
  DenialConstraint base({Eq(0), Eq(1), Neq(2)});
  eval_counters::Reset();
  EvalIndex index(rel, base);
  index.Prepare(DenialConstraint({Eq(0), Eq(1), Eq(3), Neq(2)}));  // refine
  index.Prepare(DenialConstraint({Eq(0), Neq(2)}));                // merge
  index.Prepare(DenialConstraint({Eq(0), Eq(1), Neq(2)}));         // hit
  EvalCounters c = eval_counters::Snapshot();
  EXPECT_EQ(c.partition_builds, 1);  // only the base partition was scanned
  EXPECT_EQ(c.partition_refines, 1);
  EXPECT_EQ(c.partition_merges, 1);
  EXPECT_GE(c.partition_hits, 1);
  EXPECT_EQ(index.num_partitions(), 3);
}

// Scanning a variant that shares all non-join predicates with the base
// costs zero predicate evaluations: every verdict comes from the memo.
TEST(EvalIndexTest, MemoAnswersSharedPredicates) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi1 = Phi1(rel);
  EvalIndex index(rel, phi1);
  ASSERT_TRUE(index.pair_memo_built());

  eval_counters::Reset();
  bool truncated = false;
  std::vector<Violation> indexed = index.FindViolationsCapped(
      phi1, 0, std::numeric_limits<int64_t>::max(), &truncated);
  EvalCounters after = eval_counters::Snapshot();
  EXPECT_EQ(after.predicate_evals, 0);
  EXPECT_GT(after.memo_hits, 0);

  std::vector<Violation> plain = FindViolationsOf(rel, phi1, 0);
  EXPECT_EQ(plain, indexed);
}

struct CvRun {
  RepairResult result;
};

CvRun RunCvTolerant(const Relation& dirty, const ConstraintSet& sigma,
                    const PredicateSpaceOptions& space, bool reuse_index,
                    int threads) {
  ThreadPool::SetNumThreads(threads);
  CVTolerantOptions options;
  options.variants.theta = 1.0;
  options.variants.space = space;
  options.max_datarepair_calls = 8;
  options.threads = threads;
  options.reuse_index = reuse_index;
  CvRun run;
  run.result = CVTolerantRepair(dirty, sigma, options);
  ThreadPool::SetNumThreads(1);
  return run;
}

// The acceptance contract of the shared index: on a workload with >= 200
// enumerated variants, CVTolerantRepair produces bit-identical repairs
// with the index on and off, at 1 and 4 threads, while building strictly
// fewer partitions and evaluating strictly fewer predicates.
TEST(EvalIndexTest, SharedIndexIsBitIdenticalAndStrictlyCheaper) {
  HospConfig config;
  config.num_hospitals = 12;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = hosp.noise_attrs;
  noise.seed = 7;
  Relation dirty = InjectNoise(hosp.clean, noise).dirty;
  const ConstraintSet& sigma = hosp.given_oversimplified;

  CvRun shared1 = RunCvTolerant(dirty, sigma, hosp.space, true, 1);
  CvRun unshared1 = RunCvTolerant(dirty, sigma, hosp.space, false, 1);
  CvRun shared4 = RunCvTolerant(dirty, sigma, hosp.space, true, 4);
  CvRun unshared4 = RunCvTolerant(dirty, sigma, hosp.space, false, 4);

  ASSERT_GE(shared1.result.stats.variants_enumerated, 200);

  auto expect_identical = [&](const RepairResult& a, const RepairResult& b,
                              const char* context) {
    ASSERT_EQ(a.repaired.num_rows(), b.repaired.num_rows()) << context;
    for (int i = 0; i < a.repaired.num_rows(); ++i) {
      for (AttrId attr = 0; attr < a.repaired.num_attributes(); ++attr) {
        ASSERT_EQ(a.repaired.Get(i, attr), b.repaired.Get(i, attr))
            << context << ": cell t" << i << "." << attr;
      }
    }
    ASSERT_EQ(a.satisfied_constraints.size(), b.satisfied_constraints.size())
        << context;
    for (size_t i = 0; i < a.satisfied_constraints.size(); ++i) {
      EXPECT_EQ(a.satisfied_constraints[i], b.satisfied_constraints[i])
          << context;
    }
    EXPECT_EQ(a.stats.repair_cost, b.stats.repair_cost) << context;
    EXPECT_EQ(a.stats.changed_cells, b.stats.changed_cells) << context;
    EXPECT_EQ(a.stats.initial_violations, b.stats.initial_violations)
        << context;
    EXPECT_EQ(a.stats.datarepair_calls, b.stats.datarepair_calls) << context;
    EXPECT_EQ(a.stats.variants_pruned_bounds, b.stats.variants_pruned_bounds)
        << context;
  };
  expect_identical(shared1.result, unshared1.result, "shared1 vs unshared1");
  expect_identical(shared1.result, shared4.result, "shared1 vs shared4");
  expect_identical(shared1.result, unshared4.result, "shared1 vs unshared4");

  // Strictly fewer partition builds and predicate evaluations, at each
  // fixed thread count (counters are only comparable within one thread
  // count: capped shards deliberately overscan by up to cap+1 each).
  // Evaluations count against predicate_evals (boxed Values) or
  // code_evals (dictionary codes) depending on use_encoded; the sharing
  // claim is about their total.
  auto total_evals = [](const RepairStats& s) {
    return s.index_predicate_evals + s.index_code_evals;
  };
  const RepairStats& s1 = shared1.result.stats;
  const RepairStats& u1 = unshared1.result.stats;
  EXPECT_LT(s1.index_partition_builds, u1.index_partition_builds);
  EXPECT_LT(total_evals(s1), total_evals(u1));
  EXPECT_GT(s1.index_partition_reuses, 0);
  EXPECT_GT(s1.index_memo_hits, 0);
  EXPECT_EQ(u1.index_partition_reuses, 0);
  EXPECT_EQ(u1.index_memo_hits, 0);
  EXPECT_GT(s1.bound_memo_hits, 0);

  const RepairStats& s4 = shared4.result.stats;
  const RepairStats& u4 = unshared4.result.stats;
  EXPECT_LT(s4.index_partition_builds, u4.index_partition_builds);
  EXPECT_LT(total_evals(s4), total_evals(u4));
  EXPECT_GT(s4.index_partition_reuses, 0);
  EXPECT_GT(s4.index_memo_hits, 0);
}

}  // namespace
}  // namespace cvrepair
