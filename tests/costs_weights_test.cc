#include <gtest/gtest.h>

#include <algorithm>

#include "paper_example.h"
#include "repair/cell_weights.h"
#include "repair/costs.h"
#include "repair/vfree.h"
#include "variation/edit_cost.h"
#include "variation/predicate_weights.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

TEST(CostModelTest, CountCostMatchesExample3) {
  CostModel cost;  // count, fresh 1.1
  Value a = Value::Double(3);
  Value b = Value::Double(0);
  EXPECT_DOUBLE_EQ(cost.Dist(a, a), 0.0);
  EXPECT_DOUBLE_EQ(cost.Dist(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cost.Dist(a, Value::Fresh(1)), 1.1);
  // Example 3: repairing 4 in-domain cells + ... the I' with 5 fv-ish
  // changes costs 5.5 under dist(a,fv)=1.1.
  EXPECT_DOUBLE_EQ(5 * cost.Dist(a, Value::Fresh(1)), 5.5);
}

TEST(CostModelTest, NumericAbsMode) {
  CostModel cost;
  cost.kind = CostModel::Kind::kNumericAbs;
  cost.numeric_scale = 10.0;
  EXPECT_DOUBLE_EQ(cost.Dist(Value::Double(3), Value::Double(8)), 0.5);
  // Non-numeric pairs fall back to count cost.
  EXPECT_DOUBLE_EQ(cost.Dist(Value::String("a"), Value::String("b")), 1.0);
}

TEST(EditDistanceTest, ClassicCases) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("abc", "abd"), 1);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "xyz"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
}

TEST(CostModelTest, EditDistanceMode) {
  CostModel cost;
  cost.kind = CostModel::Kind::kEditDistance;
  // "322-573" vs "322-575": 1 edit over 7 chars.
  EXPECT_NEAR(cost.Dist(Value::String("322-573"), Value::String("322-575")),
              1.0 / 7, 1e-9);
  EXPECT_DOUBLE_EQ(cost.Dist(Value::String("x"), Value::Fresh(1)), 1.1);
}

TEST(CellWeightsTest, DefaultsAndOverrides) {
  CellWeights weights;
  EXPECT_DOUBLE_EQ(weights.Get({0, 0}), 1.0);
  weights.Set(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(weights.Get({0, 0}), 2.5);
  EXPECT_DOUBLE_EQ(weights.Get({0, 1}), 1.0);

  CostModel cost;
  cost.cell_weights = &weights;
  EXPECT_DOUBLE_EQ(
      cost.CellDist({0, 0}, Value::Int(1), Value::Int(2)), 2.5);
  EXPECT_DOUBLE_EQ(
      cost.CellDist({0, 1}, Value::Int(1), Value::Int(2)), 1.0);
}

TEST(CellWeightsTest, FromValueFrequencies) {
  Relation rel = PaperIncomeRelation();
  CellWeights weights = CellWeights::FromValueFrequencies(rel);
  AttrId name = *rel.schema().Find("Name");
  // Dustin (4 occurrences, the mode) gets the max weight 1.5;
  // Ayres (3) less.
  EXPECT_DOUBLE_EQ(weights.Get({9, name}), 1.5);
  EXPECT_GT(weights.Get({9, name}), weights.Get({0, name}));
}

TEST(CellWeightsTest, WeightsSteerTheCoverAwayFromTrustedCells) {
  // FD A -> B with a 2-row tie; weighting one B cell as trusted forces the
  // repair onto the other.
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("g"), Value::String("x")});
  rel.AddRow({Value::String("g"), Value::String("y")});
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};

  CellWeights weights;
  weights.Set(0, 1, 10.0);  // row 0's B value is trusted

  VfreeOptions options;
  options.cost.cell_weights = &weights;
  RepairResult r = VfreeRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_EQ(r.repaired.Get(0, 1), Value::String("x")) << "trusted cell kept";
  EXPECT_EQ(r.repaired.Get(1, 1), Value::String("x"));
}

TEST(EditCostTest, Example4UnitCostSubstitution) {
  // Example 4 / Eq. 1: φ4 → φ4' substitutes Tax<= with Tax<, priced as
  // one insertion plus one rewarded deletion: 1 + λ·1.
  Relation rel = PaperIncomeRelation();
  VariationCostModel model;  // unit costs, λ = -0.5
  EXPECT_DOUBLE_EQ(EditCost(Phi4(rel), Phi4Prime(rel), model), 0.5);
  // The reverse direction prices the same pair of edits identically under
  // unit costs (the sets of inserted/deleted predicates swap roles).
  EXPECT_DOUBLE_EQ(EditCost(Phi4Prime(rel), Phi4(rel), model), 0.5);
}

TEST(EditCostTest, WeightedCostsChargeAgainstBaseConstraint) {
  // Eq. 2: c(P) = |Pr(P) − Pr(φ)| with φ the *base* constraint — for
  // insertions and deletions alike, and independent of any other edit in
  // the same variant.
  Relation rel = PaperIncomeRelation();
  PredicateWeights weights(rel);
  VariationCostModel model;
  model.weights = &weights;
  DenialConstraint phi = Phi1(rel);

  auto base_cost = [&](const Predicate& p) {
    return std::max(weights.Cost(p, phi), model.min_predicate_cost);
  };

  // Single insertion.
  AttrId income = *rel.schema().Find("Income");
  Predicate p_income = Predicate::TwoCell(0, income, Op::kEq, 1, income);
  DenialConstraint one_ins = phi.WithPredicate(p_income);
  EXPECT_DOUBLE_EQ(EditCost(phi, one_ins, model), base_cost(p_income));

  // A second insertion adds its own base-relative price: the first edit
  // does not shift the reference distribution Pr(φ).
  AttrId year = *rel.schema().Find("Year");
  Predicate p_year = Predicate::TwoCell(0, year, Op::kEq, 1, year);
  DenialConstraint two_ins = one_ins.WithPredicate(p_year);
  EXPECT_DOUBLE_EQ(EditCost(phi, two_ins, model),
                   base_cost(p_income) + base_cost(p_year));

  // Deletion reward: λ · c(P) against the same base.
  int neq_index = -1;
  for (int i = 0; i < phi.size(); ++i) {
    if (phi.predicates()[i].op() == Op::kNeq) neq_index = i;
  }
  ASSERT_GE(neq_index, 0);
  const Predicate deleted = phi.predicates()[neq_index];
  DenialConstraint one_del = phi.WithoutPredicate(neq_index);
  EXPECT_DOUBLE_EQ(EditCost(phi, one_del, model),
                   model.lambda * base_cost(deleted));

  // Substitution (Example 4 shape): insertion + rewarded deletion, both
  // base-relative, summed.
  DenialConstraint substituted = one_del.WithPredicate(p_income);
  EXPECT_DOUBLE_EQ(EditCost(phi, substituted, model),
                   base_cost(p_income) + model.lambda * base_cost(deleted));
}

TEST(EditCostTest, WeightedVariationCostSumsPositionally) {
  Relation rel = PaperIncomeRelation();
  PredicateWeights weights(rel);
  VariationCostModel model;
  model.weights = &weights;
  ConstraintSet sigma = {Phi1(rel), Phi4(rel)};
  ConstraintSet variant = {Phi1(rel), Phi4Prime(rel)};
  EXPECT_DOUBLE_EQ(VariationCost(sigma, variant, model),
                   EditCost(sigma[0], variant[0], model) +
                       EditCost(sigma[1], variant[1], model));
}

TEST(CostModelTest, WeightedRepairCost) {
  Relation before = PaperIncomeRelation();
  Relation after = before;
  AttrId tax = *before.schema().Find("Tax");
  after.SetValue(3, tax, Value::Double(0));
  CellWeights weights;
  weights.Set(3, tax, 4.0);
  CostModel cost;
  cost.cell_weights = &weights;
  EXPECT_DOUBLE_EQ(RepairCost(before, after, cost), 4.0);
  EXPECT_DOUBLE_EQ(RepairCost(before, after, CostModel{}), 1.0);
}

}  // namespace
}  // namespace cvrepair
