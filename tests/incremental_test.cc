#include "dc/incremental.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <tuple>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "paper_example.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi2;
using testing_fixture::Phi4Prime;

std::set<std::pair<int, std::vector<int>>> AsSet(
    const std::vector<Violation>& vs) {
  std::set<std::pair<int, std::vector<int>>> out;
  for (const Violation& v : vs) out.insert({v.constraint_index, v.rows});
  return out;
}

TEST(ViolationIndexTest, InitialStateMatchesFullDetection) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel), Phi4Prime(rel)};
  ViolationIndex index(rel, sigma);
  EXPECT_EQ(AsSet(index.CurrentViolations()),
            AsSet(FindViolations(rel, sigma)));
  EXPECT_TRUE(index.HasViolations());
}

TEST(ViolationIndexTest, RepairingACellRemovesItsViolations) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  ConstraintSet sigma = {Phi4Prime(rel)};
  ViolationIndex index(rel, sigma);
  EXPECT_EQ(index.CurrentViolations().size(), 3u);
  // Example 4: t4.Tax := 0 eliminates all three violations.
  index.ApplyChange({3, tax}, Value::Double(0));
  EXPECT_FALSE(index.HasViolations());
  EXPECT_TRUE(Satisfies(index.relation(), sigma));
}

TEST(ViolationIndexTest, IntroducingAnErrorAddsViolations) {
  Relation rel = PaperIncomeRelation();
  AttrId cp = *rel.schema().Find("CP");
  ConstraintSet sigma = {Phi2(rel)};
  ViolationIndex index(rel, sigma);
  size_t before = index.CurrentViolations().size();
  // Move t10 (no prior violations) into the t8/t9 birthday group: four
  // fresh violation orientations appear and none disappear.
  (void)cp;
  AttrId bday = *rel.schema().Find("Birthday");
  index.ApplyChange({9, bday}, Value::String("5-9-1980"));
  EXPECT_GT(index.CurrentViolations().size(), before);
  EXPECT_EQ(AsSet(index.CurrentViolations()),
            AsSet(FindViolations(index.relation(), sigma)));
}

TEST(ViolationIndexTest, GroupMembershipFollowsJoinKeyChanges) {
  Relation rel = PaperIncomeRelation();
  AttrId name = *rel.schema().Find("Name");
  ConstraintSet sigma = {Phi1(rel)};
  ViolationIndex index(rel, sigma);
  // Move t1 into the Dustin group: its CP conflicts with all Dustins.
  index.ApplyChange({0, name}, Value::String("Dustin"));
  EXPECT_EQ(AsSet(index.CurrentViolations()),
            AsSet(FindViolations(index.relation(), sigma)));
  // And move it out to a fresh name: those violations must vanish.
  index.ApplyChange({0, name}, Value::String("Nobody"));
  EXPECT_EQ(AsSet(index.CurrentViolations()),
            AsSet(FindViolations(index.relation(), sigma)));
}

class IncrementalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalFuzz, RandomEditSequencesMatchFullDetection) {
  std::mt19937_64 rng(GetParam() * 1013);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("X", AttrType::kInt);
  schema.AddAttribute("Y", AttrType::kInt);
  Relation rel(schema);
  std::uniform_int_distribution<int> cat(0, 3);
  std::uniform_int_distribution<int> num(0, 9);
  for (int i = 0; i < 25; ++i) {
    rel.AddRow({Value::String("a" + std::to_string(cat(rng))),
                Value::String("b" + std::to_string(cat(rng))),
                Value::Int(num(rng)), Value::Int(num(rng))});
  }
  ConstraintSet sigma = {
      DenialConstraint::FromFd({0}, 1, "fd"),
      DenialConstraint({Predicate::TwoCell(0, 2, Op::kGt, 1, 2),
                        Predicate::TwoCell(0, 3, Op::kLt, 1, 3)},
                       "order"),
      DenialConstraint(
          {Predicate::WithConstant(0, 3, Op::kGt, Value::Int(8))}, "cap")};

  // Maintain the coded and the plain index side by side: both must track
  // the full re-scan exactly, which also pins them to each other.
  ViolationIndex index(rel, sigma, /*use_encoded=*/true);
  ViolationIndex plain(rel, sigma, /*use_encoded=*/false);
  std::uniform_int_distribution<int> row(0, 24);
  std::uniform_int_distribution<int> attr(0, 3);
  for (int step = 0; step < 40; ++step) {
    Cell cell{row(rng), attr(rng)};
    Value value;
    switch (cell.attr) {
      case 0: value = Value::String("a" + std::to_string(cat(rng))); break;
      case 1: value = Value::String("b" + std::to_string(cat(rng))); break;
      default:
        // Occasionally a fresh variable or NULL, like real repairs.
        if (num(rng) == 0) {
          value = Value::Fresh(step + 1);
        } else {
          value = Value::Int(num(rng));
        }
    }
    index.ApplyChange(cell, value);
    plain.ApplyChange(cell, value);
    ASSERT_EQ(AsSet(index.CurrentViolations()),
              AsSet(FindViolations(index.relation(), sigma)))
        << "divergence at step " << step << " (seed " << GetParam() << ")";
    ASSERT_EQ(AsSet(plain.CurrentViolations()),
              AsSet(index.CurrentViolations()))
        << "encoded/plain divergence at step " << step << " (seed "
        << GetParam() << ")";
  }
  EXPECT_GT(index.rows_rechecked(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz, ::testing::Range(1, 8));

// Satellite of the encoded-backend work: randomized repair-like edit
// sequences on the paper's generators, delta-maintained violations checked
// against a full re-scan after every change, in both backends.
class IncrementalGeneratorFuzz
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(IncrementalGeneratorFuzz, DeltaMaintenanceMatchesFullRescan) {
  const bool use_encoded = std::get<0>(GetParam());
  const bool use_census = std::get<1>(GetParam());
  Relation dirty;
  ConstraintSet sigma;
  if (use_census) {
    CensusConfig config;
    config.num_rows = 80;
    config.num_attributes = 8;
    CensusData census = MakeCensus(config);
    NoiseConfig noise;
    noise.error_rate = 0.08;
    noise.target_attrs = census.noise_attrs;
    noise.seed = 11;
    dirty = InjectNoise(census.clean, noise).dirty;
    sigma = census.given;
  } else {
    HospConfig config;
    config.num_hospitals = 6;
    HospData hosp = MakeHosp(config);
    NoiseConfig noise;
    noise.error_rate = 0.08;
    noise.target_attrs = hosp.noise_attrs;
    noise.seed = 11;
    dirty = InjectNoise(hosp.clean, noise).dirty;
    sigma = hosp.given_oversimplified;
  }

  ViolationIndex index(dirty, sigma, use_encoded);
  EXPECT_EQ(AsSet(index.CurrentViolations()),
            AsSet(FindViolations(dirty, sigma)));

  // Repair-like sequence: overwrite random cells with another row's value
  // on the same attribute (domain repairs) or a fresh variable.
  std::mt19937_64 rng(use_census ? 131 : 97);
  std::uniform_int_distribution<int> row(0, dirty.num_rows() - 1);
  std::uniform_int_distribution<int> attr(0, dirty.num_attributes() - 1);
  std::uniform_int_distribution<int> coin(0, 9);
  int64_t fresh_id = 1;
  for (int step = 0; step < 30; ++step) {
    Cell cell{row(rng), attr(rng)};
    Value value = coin(rng) == 0
                      ? Value::Fresh(fresh_id++)
                      : index.relation().Get(row(rng), cell.attr);
    index.ApplyChange(cell, value);
    ASSERT_EQ(AsSet(index.CurrentViolations()),
              AsSet(FindViolations(index.relation(), sigma)))
        << (use_census ? "census" : "hosp") << " encoded=" << use_encoded
        << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, IncrementalGeneratorFuzz,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// Zone-map soundness under streaming inserts: batches interleave inserts
// with updates on a relation that starts just below the 1024-code arena
// block boundary, so mid-batch AppendRows open fresh segments whose
// BlockMeta (min/max rank, has_sentinel) must be sound — a stale zone map
// would make the blocked partner loop of ScanRow silently skip a violating
// block, which the full-rescan oracle below would catch. The clean data is
// constructed violation-free (X = Y per row; the FD groups nest), so every
// violation the stream plants is small and attributable.
class IncrementalInsertFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalInsertFuzz, InsertUpdateBatchesCrossBlockBoundary) {
  std::mt19937_64 rng(GetParam() * 7919u);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("X", AttrType::kInt);
  schema.AddAttribute("Y", AttrType::kInt);
  Relation rel(schema);
  auto make_row = [](int v, bool bad, int y_shift) {
    return std::vector<Value>{Value::String("a" + std::to_string(v / 5)),
                              Value::String(bad ? "bad"
                                                : "b" + std::to_string(v / 10)),
                              Value::Int(v), Value::Int(v + y_shift)};
  };
  for (int i = 0; i < 1015; ++i) rel.AddRow(make_row(i, false, 0));
  ConstraintSet sigma = {
      DenialConstraint::FromFd({0}, 1, "fd"),
      // No equality join: re-detection runs the blocked zone-map partner
      // loop. Clean rows have X == Y, so the clean instance is free of it.
      DenialConstraint({Predicate::TwoCell(0, 2, Op::kGt, 1, 2),
                        Predicate::TwoCell(0, 3, Op::kLt, 1, 3)},
                       "order"),
      DenialConstraint(
          {Predicate::WithConstant(0, 1, Op::kEq, Value::String("bad"))},
          "cap")};

  ViolationIndex index(rel, sigma, /*use_encoded=*/true);
  ViolationIndex plain(rel, sigma, /*use_encoded=*/false);
  ASSERT_FALSE(index.HasViolations());

  std::uniform_int_distribution<int> v_dist(0, 1099);  // grows dictionaries
  std::uniform_int_distribution<int> coin(0, 9);
  int64_t fresh_id = 1;
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<RowEdit> edits;
    int live = index.relation().num_rows();
    for (int i = 0; i < 12; ++i) {
      const int v = v_dist(rng);
      if (coin(rng) < 5) {
        // Insert: occasionally decorrelated (plants order violations that
        // pair the new tail block against old blocks), occasionally "bad".
        edits.push_back(
            RowEdit::Insert(make_row(v, coin(rng) == 0, -2 * (coin(rng) < 3))));
        ++live;
        continue;
      }
      const int row = static_cast<int>(rng() % static_cast<uint64_t>(live));
      switch (coin(rng) % 4) {
        case 0:
          edits.push_back(RowEdit::Update(
              row, 0, Value::String("a" + std::to_string(v / 5))));
          break;
        case 1:
          edits.push_back(RowEdit::Update(
              row, 1, Value::String("b" + std::to_string(v / 10))));
          break;
        case 2:
          edits.push_back(RowEdit::Update(row, 3, Value::Int(v - 2)));
          break;
        default:
          // Sentinels in freshly opened blocks must set has_sentinel.
          edits.push_back(RowEdit::Update(row, 3, Value::Fresh(fresh_id++)));
      }
    }
    index.ApplyBatch(edits);
    plain.ApplyBatch(edits);
    ASSERT_EQ(AsSet(index.CurrentViolations()),
              AsSet(FindViolations(index.relation(), sigma)))
        << "encoded delta/rescan divergence at batch " << batch << " (seed "
        << GetParam() << ")";
    ASSERT_EQ(AsSet(plain.CurrentViolations()),
              AsSet(index.CurrentViolations()))
        << "encoded/plain divergence at batch " << batch << " (seed "
        << GetParam() << ")";
  }
  // The stream must actually have crossed the 1024-code block boundary.
  EXPECT_GT(index.relation().num_rows(), 1024);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalInsertFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace cvrepair
