#include "repair/exact.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "graph/bounds.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi2;
using testing_fixture::Phi4Prime;

TEST(ExactRepairTest, Phi4PrimeOptimumIsOneCell) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  std::optional<RepairResult> r = ExactMinimumRepair(rel, sigma);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(Satisfies(r->repaired, sigma));
  // Example 4: the minimum repair sets t4.Tax := 0 — exactly cost 1.
  EXPECT_DOUBLE_EQ(r->stats.repair_cost, 1.0);
  EXPECT_EQ(r->stats.changed_cells, 1);
}

TEST(ExactRepairTest, CleanInstanceCostsNothing) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  AttrId income = *rel.schema().Find("Income");
  ConstraintSet sigma = {
      DenialConstraint({Predicate::TwoCell(0, tax, Op::kGt, 0, income)})};
  std::optional<RepairResult> r = ExactMinimumRepair(rel, sigma);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->stats.repair_cost, 0.0);
  EXPECT_EQ(r->stats.changed_cells, 0);
}

TEST(ExactRepairTest, RefusesLargeInstances) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {testing_fixture::Phi1(rel)};
  ExactRepairOptions options;
  options.max_violation_cells = 4;  // φ1 has far more violation cells
  EXPECT_FALSE(ExactMinimumRepair(rel, sigma, options).has_value());
}

TEST(ExactRepairTest, HeuristicNeverBeatsTheOptimum) {
  Relation rel = PaperIncomeRelation();
  ExactRepairOptions options;
  options.max_violation_cells = 20;  // φ2 touches 18 cells
  for (ConstraintSet sigma :
       {ConstraintSet{Phi4Prime(rel)}, ConstraintSet{Phi2(rel)}}) {
    std::optional<RepairResult> exact = ExactMinimumRepair(rel, sigma, options);
    ASSERT_TRUE(exact.has_value());
    RepairResult heuristic = VfreeRepair(rel, sigma);
    EXPECT_GE(heuristic.stats.repair_cost, exact->stats.repair_cost - 1e-9);
    // Lemma 3: the lower bound never exceeds the optimum.
    RepairCostBounds bounds = ComputeBounds(rel, sigma);
    EXPECT_LE(bounds.lower, exact->stats.repair_cost + 1e-9);
    EXPECT_GE(bounds.upper, exact->stats.repair_cost - 1e-9);
  }
}

TEST(ExactRepairTest, PrefersInDomainOverFresh) {
  // A single-tuple DC with an in-domain fix available: the optimum must
  // not pay the fresh-variable premium.
  Schema schema;
  schema.AddAttribute("X", AttrType::kInt);
  Relation rel(schema);
  rel.AddRow({Value::Int(10)});
  rel.AddRow({Value::Int(2)});
  ConstraintSet sigma = {DenialConstraint(
      {Predicate::WithConstant(0, 0, Op::kGt, Value::Int(5))})};
  std::optional<RepairResult> r = ExactMinimumRepair(rel, sigma);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->stats.repair_cost, 1.0);
  EXPECT_EQ(r->repaired.Get(0, 0), Value::Int(2));
}

}  // namespace
}  // namespace cvrepair
