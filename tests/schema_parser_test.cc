#include "relation/schema_parser.h"

#include <gtest/gtest.h>

namespace cvrepair {
namespace {

TEST(SchemaParserTest, ParsesTypesAndKeys) {
  ParseSchemaResult r = ParseSchema(
      "# comment\n"
      "ProviderID:int:key\n"
      "HospitalName:string\n"
      "\n"
      "Score:double\n"
      "Hours:integer\n"
      "Rate:float\n");
  ASSERT_TRUE(r.ok()) << r.error;
  const Schema& s = *r.schema;
  EXPECT_EQ(s.num_attributes(), 5);
  EXPECT_EQ(s.type(0), AttrType::kInt);
  EXPECT_TRUE(s.is_key(0));
  EXPECT_EQ(s.type(1), AttrType::kString);
  EXPECT_FALSE(s.is_key(1));
  EXPECT_EQ(s.type(2), AttrType::kDouble);
  EXPECT_EQ(s.type(3), AttrType::kInt);
  EXPECT_EQ(s.type(4), AttrType::kDouble);
}

TEST(SchemaParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSchema("").ok());
  EXPECT_FALSE(ParseSchema("JustAName\n").ok());
  EXPECT_FALSE(ParseSchema("A:banana\n").ok());
  EXPECT_FALSE(ParseSchema("A:int:primary\n").ok());
  EXPECT_FALSE(ParseSchema("A:int\nA:string\n").ok());
  EXPECT_FALSE(ParseSchema(":int\n").ok());
}

TEST(SchemaParserTest, RoundTrips) {
  Schema schema;
  schema.AddAttribute("K", AttrType::kInt, true);
  schema.AddAttribute("Name", AttrType::kString);
  schema.AddAttribute("X", AttrType::kDouble);
  ParseSchemaResult r = ParseSchema(SchemaToString(schema));
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.schema->num_attributes(), 3);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(r.schema->name(a), schema.name(a));
    EXPECT_EQ(r.schema->type(a), schema.type(a));
    EXPECT_EQ(r.schema->is_key(a), schema.is_key(a));
  }
}

TEST(SchemaParserTest, ErrorsNameTheLine) {
  ParseSchemaResult r = ParseSchema("A:int\nB:wat\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace cvrepair
