#include "solver/csp_solver.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "solver/components.h"
#include "solver/materialized_cache.h"
#include "solver/repair_context.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

// Builds the repair context of Example 10: Σ = {φ4'}, C = {t4.Tax}.
RepairContext Example10Context(const Relation& rel) {
  AttrId tax = *rel.schema().Find("Tax");
  std::vector<Cell> changing = {{3, tax}};
  ConstraintSet sigma = {Phi4Prime(rel)};
  std::vector<Violation> suspects =
      FindSuspects(rel, sigma, CellSet(changing.begin(), changing.end()));
  return RepairContext::Build(rel, sigma, changing, suspects);
}

TEST(RepairContextTest, Example10AtomsCompressToTightBounds) {
  Relation rel = PaperIncomeRelation();
  RepairContext rc = Example10Context(rel);
  ASSERT_EQ(rc.num_vars(), 1);
  // After compression: I'(t4.Tax) >= 0 (from t1..t3) and <= 0 (from
  // t5..t7; the <=21 and <=40 bounds are dominated).
  ASSERT_EQ(rc.atoms().size(), 2u);
  for (const RcAtom& a : rc.atoms()) {
    EXPECT_FALSE(a.rhs_is_var);
    EXPECT_DOUBLE_EQ(a.rhs_const.numeric(), 0.0);
    EXPECT_TRUE(a.op == Op::kGeq || a.op == Op::kLeq);
  }
}

TEST(SolverTest, Example10SolutionIsZero) {
  Relation rel = PaperIncomeRelation();
  RepairContext rc = Example10Context(rel);
  std::vector<Component> comps = DecomposeComponents(rc);
  ASSERT_EQ(comps.size(), 1u);
  DomainStats stats(rel);
  int64_t fresh = 1;
  CspSolver solver(rel, stats, CostModel{}, &fresh);
  ComponentSolution sol = solver.Solve(comps[0]);
  ASSERT_EQ(sol.values.size(), 1u);
  // I'(t4.Tax) = 0 with cost 1 (Example 10 / Example 4).
  EXPECT_DOUBLE_EQ(sol.values[0].numeric(), 0.0);
  EXPECT_DOUBLE_EQ(sol.cost, 1.0);
  EXPECT_EQ(sol.fresh_count, 0);
  EXPECT_TRUE(SolutionSatisfies(comps[0], sol));
}

// Shared setup of Example 11: C = {t2,t3,t5,t6,t7}.Tax (rows 1,2,4,5,6),
// Σ = {φ4}. t2.Tax is required to be > 0 and < 3 — no *domain* value fits.
std::vector<Component> Example11Components(const Relation& rel) {
  AttrId tax = *rel.schema().Find("Tax");
  std::vector<Cell> changing = {{1, tax}, {2, tax}, {4, tax}, {5, tax},
                                {6, tax}};
  ConstraintSet sigma = {Phi4(rel)};
  std::vector<Violation> suspects =
      FindSuspects(rel, sigma, CellSet(changing.begin(), changing.end()));
  RepairContext rc = RepairContext::Build(rel, sigma, changing, suspects);
  return DecomposeComponents(rc);
}

// With interval propagation (the default), the off-domain but non-empty
// interval (0, 3) yields a concrete numeric fix for t2.Tax instead of a
// fresh variable: Tax is a double, so the solver may leave the active
// domain (Bertossi-Bravo numeric min-change fixes).
TEST(SolverTest, Example11IntervalPropagationAvoidsFreshVariable) {
  Relation rel = PaperIncomeRelation();
  std::vector<Component> comps = Example11Components(rel);
  DomainStats stats(rel);
  int64_t fresh = 1;
  CspSolver solver(rel, stats, CostModel{}, &fresh);
  int fresh_total = 0;
  int64_t narrowings = 0;
  for (const Component& comp : comps) {
    ComponentSolution sol = solver.Solve(comp);
    EXPECT_TRUE(SolutionSatisfies(comp, sol));
    fresh_total += sol.fresh_count;
    narrowings += sol.interval_narrowings;
    for (size_t v = 0; v < comp.cells.size(); ++v) {
      if (comp.cells[v].row == 1) {
        ASSERT_FALSE(sol.values[v].is_fresh())
            << "interval propagation must fix t2.Tax concretely";
        // Min-|Δ| from the origin 0 inside the open interval (0, 3).
        EXPECT_GT(sol.values[v].numeric(), 0.0);
        EXPECT_LT(sol.values[v].numeric(), 3.0);
      }
    }
  }
  EXPECT_EQ(fresh_total, 0);
  EXPECT_GT(narrowings, 0);
}

// With use_interval off the solver restores the paper's §4.1.3 fallback
// verbatim: the domain-unsatisfiable cell becomes a fresh variable
// (Example 11).
TEST(SolverTest, Example11UnsatisfiableCellGetsFreshVariable) {
  Relation rel = PaperIncomeRelation();
  std::vector<Component> comps = Example11Components(rel);
  DomainStats stats(rel);
  int64_t fresh = 1;
  SolverOptions opts;
  opts.use_interval = false;
  CspSolver solver(rel, stats, CostModel{}, &fresh, opts);
  int fresh_total = 0;
  for (const Component& comp : comps) {
    ComponentSolution sol = solver.Solve(comp);
    EXPECT_TRUE(SolutionSatisfies(comp, sol));
    EXPECT_EQ(sol.interval_narrowings, 0);
    fresh_total += sol.fresh_count;
    for (size_t v = 0; v < comp.cells.size(); ++v) {
      if (comp.cells[v].row == 1) {
        EXPECT_TRUE(sol.values[v].is_fresh())
            << "t2.Tax must become a fresh variable";
      }
    }
  }
  EXPECT_GE(fresh_total, 1);
}

TEST(ComponentTest, VarVarAtomsGroupTogether) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  AttrId cp = *rel.schema().Find("CP");
  // Two tax cells linked via φ4' (t5 and t4 are a suspect pair) plus an
  // unrelated CP cell: expect the tax cells in one component.
  std::vector<Cell> changing = {{3, tax}, {4, tax}, {0, cp}};
  ConstraintSet sigma = {Phi4Prime(rel), testing_fixture::Phi1(rel)};
  std::vector<Violation> suspects =
      FindSuspects(rel, sigma, CellSet(changing.begin(), changing.end()));
  RepairContext rc = RepairContext::Build(rel, sigma, changing, suspects);
  std::vector<Component> comps = DecomposeComponents(rc);
  // Find which component holds t4.Tax and t5.Tax.
  int tax_comp = -1, cp_comp = -1;
  for (size_t k = 0; k < comps.size(); ++k) {
    for (const Cell& c : comps[k].cells) {
      if (c.attr == tax && c.row == 3) tax_comp = static_cast<int>(k);
      if (c.attr == cp) cp_comp = static_cast<int>(k);
    }
  }
  ASSERT_NE(tax_comp, -1);
  ASSERT_NE(cp_comp, -1);
  EXPECT_NE(tax_comp, cp_comp);
  // t4.Tax and t5.Tax are connected by a var-var atom.
  bool both = false;
  for (const Cell& c : comps[tax_comp].cells) {
    if (c.row == 4 && c.attr == tax) both = true;
  }
  EXPECT_TRUE(both);
}

TEST(SolverTest, EqualityAtomForcesCategoricalValue) {
  Relation rel = PaperIncomeRelation();
  AttrId cp = *rel.schema().Find("CP");
  // Repairing t2.CP under φ1 with C = {t2.CP}: suspects include
  // <t2,t3>/<t3,t2> whose rc forces I'(t2.CP) = I(t3.CP) = "564-389" and
  // <t1,t2> pairs forcing = "322-573" — conflicting equalities, so fv...
  // Use φ2 (precise): only the <t2,t3> pair applies (same birthday).
  std::vector<Cell> changing = {{1, cp}};
  ConstraintSet sigma = {testing_fixture::Phi2(rel)};
  std::vector<Violation> suspects =
      FindSuspects(rel, sigma, CellSet(changing.begin(), changing.end()));
  RepairContext rc = RepairContext::Build(rel, sigma, changing, suspects);
  std::vector<Component> comps = DecomposeComponents(rc);
  ASSERT_EQ(comps.size(), 1u);
  DomainStats stats(rel);
  int64_t fresh = 1;
  CspSolver solver(rel, stats, CostModel{}, &fresh);
  ComponentSolution sol = solver.Solve(comps[0]);
  EXPECT_EQ(sol.values[0], Value::String("564-389"));
}

TEST(SolverTest, GreedyPathSolvesLargeComponents) {
  // A long chain x0 <= x1 <= ... <= x49 over one numeric attribute with
  // plenty of feasible domain values; the greedy phase must satisfy it.
  Schema schema;
  schema.AddAttribute("V", AttrType::kInt);
  Relation rel(schema);
  for (int i = 0; i < 50; ++i) rel.AddRow({Value::Int(i % 10)});
  Component comp;
  for (int i = 0; i < 50; ++i) comp.cells.push_back({i, 0});
  for (int i = 0; i + 1 < 50; ++i) {
    RcAtom a;
    a.lhs_var = i;
    a.op = Op::kLeq;
    a.rhs_is_var = true;
    a.rhs_var = i + 1;
    comp.atoms.push_back(a);
  }
  DomainStats stats(rel);
  int64_t fresh = 1;
  SolverOptions opts;
  opts.max_exact_vars = 8;  // force the greedy path
  CspSolver solver(rel, stats, CostModel{}, &fresh, opts);
  ComponentSolution sol = solver.Solve(comp);
  EXPECT_TRUE(SolutionSatisfies(comp, sol));
}

TEST(CacheTest, Definition7Refinement) {
  RcAtom base;  // I'(x) >= 3
  base.lhs_var = 0;
  base.op = Op::kGeq;
  base.rhs_is_var = false;
  base.rhs_const = Value::Double(3);
  RcAtom refined = base;  // I'(x) > 3 refines >= 3
  refined.op = Op::kGt;
  EXPECT_TRUE(ContextRefines({refined}, {base}));
  EXPECT_FALSE(ContextRefines({base}, {refined}));
  EXPECT_TRUE(ContextRefines({base}, {base}));
  // Missing operand pair: no refinement.
  RcAtom other = base;
  other.rhs_const = Value::Double(5);
  EXPECT_FALSE(ContextRefines({other}, {base}));
}

TEST(CacheTest, Example12ReuseAcrossRefinedContexts) {
  // Mirrors Example 12: rc1 has I'(t4.Tax) >= 0 and <= 21; rc2 refines
  // the upper bound to < 21 (>= in rc1 vs > in rc2 on the same operands).
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  Component comp1;
  comp1.cells = {{3, tax}};
  RcAtom lower;
  lower.lhs_var = 0;
  lower.op = Op::kGeq;
  lower.rhs_is_var = false;
  lower.rhs_const = Value::Double(0);
  RcAtom upper = lower;
  upper.op = Op::kLeq;
  upper.rhs_const = Value::Double(21);
  comp1.atoms = {lower, upper};

  DomainStats stats(rel);
  int64_t fresh = 1;
  CspSolver solver(rel, stats, CostModel{}, &fresh);
  ComponentSolution sol = solver.Solve(comp1);
  // Original t4.Tax = 3 is feasible: kept for free.
  EXPECT_DOUBLE_EQ(sol.values[0].numeric(), 3.0);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);

  MaterializedCache cache;
  cache.Store(comp1, sol);

  Component comp2 = comp1;
  comp2.atoms[1].op = Op::kLt;  // <= 21 strengthened to < 21
  std::optional<ComponentSolution> hit = cache.Lookup(comp2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->values[0].numeric(), 3.0);
  EXPECT_EQ(cache.hits(), 1);

  // Refined but not satisfied by the stored solution: no reuse.
  Component comp3 = comp1;
  comp3.atoms[0].op = Op::kGt;  // >= 0 -> > 0; 3 still satisfies...
  comp3.atoms[1].op = Op::kLt;
  comp3.atoms[1].rhs_const = Value::Double(21);
  EXPECT_TRUE(cache.Lookup(comp3).has_value());  // 3 > 0 and 3 < 21

  Component comp4 = comp1;
  comp4.atoms[0].rhs_const = Value::Double(5);  // different operands
  EXPECT_FALSE(cache.Lookup(comp4).has_value());
}

}  // namespace
}  // namespace cvrepair
