#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/census.h"
#include "data/gps.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/violation.h"

namespace cvrepair {
namespace {

TEST(HospTest, PreciseRulesHoldOnCleanData) {
  HospData hosp = MakeHosp(HospConfig{});
  EXPECT_EQ(hosp.clean.num_attributes(), 14);
  EXPECT_GT(hosp.clean.num_rows(), 100);
  EXPECT_TRUE(Satisfies(hosp.clean, hosp.precise))
      << "generator invariant: precise FDs hold on clean HOSP";
  // The overrefined set refines the precise rules, so it holds too.
  EXPECT_TRUE(Satisfies(hosp.clean, hosp.given_overrefined));
}

TEST(HospTest, OversimplifiedFdViolatedByCleanData) {
  HospData hosp = MakeHosp(HospConfig{});
  // Chains/campuses share names with different phones: the given
  // oversimplified Name -> Phone flags clean data.
  EXPECT_FALSE(Satisfies(hosp.clean, hosp.given_oversimplified));
}

TEST(HospTest, AttributeSweepKeepsInvariants) {
  for (int na : {8, 10, 12, 14}) {
    HospConfig config;
    config.num_attributes = na;
    config.num_hospitals = 30;
    HospData hosp = MakeHosp(config);
    EXPECT_EQ(hosp.clean.num_attributes(), na);
    EXPECT_TRUE(Satisfies(hosp.clean, hosp.precise)) << "na=" << na;
    EXPECT_GE(hosp.given_oversimplified.size(), 3u);
  }
}

TEST(HospTest, DeterministicForSameSeed) {
  HospData a = MakeHosp(HospConfig{});
  HospData b = MakeHosp(HospConfig{});
  ASSERT_EQ(a.clean.num_rows(), b.clean.num_rows());
  for (int i = 0; i < a.clean.num_rows(); i += 37) {
    for (AttrId c = 0; c < a.clean.num_attributes(); ++c) {
      EXPECT_EQ(a.clean.Get(i, c), b.clean.Get(i, c));
    }
  }
}

TEST(CensusTest, PreciseDcsHoldAndGivenAreImprecise) {
  CensusData census = MakeCensus(CensusConfig{});
  EXPECT_EQ(census.clean.num_attributes(), 40);
  EXPECT_TRUE(Satisfies(census.clean, census.precise));
  // The oversimplified "<=" and "!=" versions flag clean ties.
  EXPECT_FALSE(Satisfies(census.clean, census.given));
}

TEST(CensusTest, ZeroTaxBandExists) {
  CensusData census = MakeCensus(CensusConfig{});
  int zero_tax = 0;
  for (int i = 0; i < census.clean.num_rows(); ++i) {
    if (census.clean.Get(i, CensusAttrs::kTax).numeric() == 0.0) ++zero_tax;
  }
  // The zero band is what makes "Tax <=" overrepair (Example 4).
  EXPECT_GT(zero_tax, census.clean.num_rows() / 20);
  EXPECT_LT(zero_tax, census.clean.num_rows());
}

TEST(GpsTest, JumpsViolatePreciseButEscapeOverrefined) {
  GpsData gps = MakeGps(GpsConfig{});
  EXPECT_TRUE(Satisfies(gps.clean, gps.precise));
  EXPECT_FALSE(Satisfies(gps.dirty, gps.precise));
  EXPECT_FALSE(gps.dirty_cells.empty());
  // Quality=1 jumps escape the overrefined rules: strictly fewer
  // violations under `given` than under `precise`.
  size_t given_viols = FindViolations(gps.dirty, gps.given).size();
  size_t precise_viols = FindViolations(gps.dirty, gps.precise).size();
  EXPECT_LT(given_viols, precise_viols);
  EXPECT_GT(given_viols, 0u);
}

TEST(NoiseTest, BudgetAndTracking) {
  HospConfig config;
  config.num_hospitals = 30;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = hosp.noise_attrs;
  NoisyData dirty = InjectNoise(hosp.clean, noise);
  int64_t expected = std::llround(0.05 * hosp.clean.num_rows() *
                                  hosp.noise_attrs.size());
  EXPECT_NEAR(static_cast<double>(dirty.dirty_cells.size()),
              static_cast<double>(expected), expected * 0.2 + 2);
  // Every tracked cell indeed differs; untracked cells match.
  int diff = 0;
  for (int i = 0; i < hosp.clean.num_rows(); ++i) {
    for (AttrId a = 0; a < hosp.clean.num_attributes(); ++a) {
      bool changed = !(hosp.clean.Get(i, a) == dirty.dirty.Get(i, a));
      if (changed) ++diff;
      EXPECT_EQ(changed, dirty.dirty_cells.count({i, a}) > 0);
    }
  }
  EXPECT_EQ(diff, static_cast<int>(dirty.dirty_cells.size()));
}

TEST(NoiseTest, CorrelatedErrorsShareTuples) {
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.04;
  noise.target_attrs = hosp.noise_attrs;
  noise.errors_per_tuple = 3;
  NoisyData dirty = InjectNoise(hosp.clean, noise);
  // Count dirty rows; with 3 errors per tuple there are ~3x fewer dirty
  // rows than dirty cells.
  std::set<int> rows;
  for (const Cell& c : dirty.dirty_cells) rows.insert(c.row);
  EXPECT_LE(rows.size() * 2, dirty.dirty_cells.size());
}

TEST(NoiseTest, DeterministicGivenSeed) {
  CensusData census = MakeCensus(CensusConfig{});
  NoiseConfig noise;
  noise.target_attrs = census.noise_attrs;
  NoisyData a = InjectNoise(census.clean, noise);
  NoisyData b = InjectNoise(census.clean, noise);
  EXPECT_EQ(a.dirty_cells.size(), b.dirty_cells.size());
  for (const Cell& c : a.dirty_cells) {
    EXPECT_TRUE(b.dirty_cells.count(c));
    EXPECT_EQ(a.dirty.Get(c), b.dirty.Get(c));
  }
}

TEST(NoiseTest, NumericNoiseBreaksPreciseDcs) {
  CensusData census = MakeCensus(CensusConfig{});
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  NoisyData dirty = InjectNoise(census.clean, noise);
  EXPECT_FALSE(Satisfies(dirty.dirty, census.precise));
}

}  // namespace
}  // namespace cvrepair
