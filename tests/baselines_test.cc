#include <gtest/gtest.h>

#include "data/hosp.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "paper_example.h"
#include "repair/relative.h"
#include "repair/unified.h"
#include "repair/vrepair.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;

TEST(FdViewTest, RecognizesFdShapes) {
  Relation rel = PaperIncomeRelation();
  std::optional<FdView> fd = AsFd(testing_fixture::Phi2(rel));
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->lhs.size(), 2u);
  EXPECT_EQ(fd->rhs, *rel.schema().Find("CP"));
  // Order DCs are not FDs.
  EXPECT_FALSE(AsFd(testing_fixture::Phi4(rel)).has_value());
  // Constant DCs are not FDs.
  AttrId income = *rel.schema().Find("Income");
  DenialConstraint constant(
      {Predicate::WithConstant(0, income, Op::kGt, Value::Double(1e6))});
  EXPECT_FALSE(AsFd(constant).has_value());
}

// Small fixture: a relation with an FD A -> B where one cell in a
// 3-member class is corrupted (majority must win).
Relation MajorityFixture() {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("g1"), Value::String("x")});
  rel.AddRow({Value::String("g1"), Value::String("x")});
  rel.AddRow({Value::String("g1"), Value::String("BAD")});
  rel.AddRow({Value::String("g2"), Value::String("y")});
  rel.AddRow({Value::String("g2"), Value::String("y")});
  return rel;
}

TEST(VrepairTest, MajorityMergeRestoresTruth) {
  Relation rel = MajorityFixture();
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};
  RepairResult r = VrepairRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_EQ(r.stats.changed_cells, 1);
  EXPECT_EQ(r.repaired.Get(2, 1), Value::String("x"));
}

TEST(VrepairTest, TwoWayTieGetsResolvedDeterministically) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("g"), Value::String("x")});
  rel.AddRow({Value::String("g"), Value::String("y")});
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};
  RepairResult r = VrepairRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_EQ(r.stats.changed_cells, 1);
}

TEST(UnifiedTest, DataRepairWinsWhenErrorsAreFew) {
  Relation rel = MajorityFixture();
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};
  RepairResult r = UnifiedRepair(rel, sigma);
  // One dirty cell: data repair is cheaper than widening the FD.
  EXPECT_EQ(r.satisfied_constraints, sigma);
  EXPECT_EQ(r.stats.changed_cells, 1);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
}

TEST(UnifiedTest, ConstraintRepairWinsWhenFdIsWrong) {
  // Oversimplified Name -> Phone on HOSP: many "violations" are chains,
  // so repairing the constraint (adding an LHS attribute) is cheaper.
  HospConfig config;
  config.num_hospitals = 40;
  HospData hosp = MakeHosp(config);
  ConstraintSet sigma = {DenialConstraint::FromFd(
      {HospAttrs::kHospitalName}, HospAttrs::kPhone)};
  UnifiedOptions options;
  RepairResult r = UnifiedRepair(hosp.clean, sigma, options);
  // The adopted constraint differs from the input FD...
  EXPECT_NE(r.satisfied_constraints, sigma);
  // ...and clean data stays (nearly) untouched.
  EXPECT_LE(r.stats.changed_cells, 2);
}

TEST(RelativeTest, FindsConstraintRepairWithinTau) {
  HospConfig config;
  config.num_hospitals = 30;
  config.measures_per_hospital = 5;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.03;
  noise.target_attrs = {HospAttrs::kPhone};
  NoisyData dirty = InjectNoise(hosp.clean, noise);

  ConstraintSet sigma = {DenialConstraint::FromFd(
      {HospAttrs::kHospitalName}, HospAttrs::kPhone)};
  // τ below the oversimplified FD's repair cost forces a constraint
  // repair; exclude the row-unique measure-level attributes so the
  // extension search sees the same meaningful space as CVtolerant.
  int identity_cost = 0;
  FdMajorityRepair(dirty.dirty, {*AsFd(sigma[0])}, 2, &identity_cost);
  RelativeOptions options;
  options.max_added_attrs = 1;
  options.tau = identity_cost / 2.0;
  options.excluded_attrs = {HospAttrs::kSample, HospAttrs::kScore,
                            HospAttrs::kMeasureCode,
                            HospAttrs::kMeasureName};
  RepairResult r = RelativeRepair(dirty.dirty, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  // The candidate search visited more than the identity repair, and the
  // identity itself exceeded τ, so a constraint repair was adopted.
  EXPECT_GT(r.stats.variants_enumerated, 1);
  EXPECT_NE(r.satisfied_constraints, sigma);
  // Accuracy beats repairing blindly under the oversimplified FD.
  RepairResult blind = VrepairRepair(dirty.dirty, sigma);
  AccuracyResult acc_rel =
      CellAccuracy(hosp.clean, dirty.dirty, r.repaired);
  AccuracyResult acc_blind =
      CellAccuracy(hosp.clean, dirty.dirty, blind.repaired);
  EXPECT_GE(acc_rel.precision, acc_blind.precision);
}

TEST(BaselinesTest, NonFdInputsReturnedUnchanged) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {testing_fixture::Phi4(rel)};
  EXPECT_EQ(VrepairRepair(rel, sigma).stats.changed_cells, 0);
  EXPECT_EQ(UnifiedRepair(rel, sigma).stats.changed_cells, 0);
  EXPECT_EQ(RelativeRepair(rel, sigma).stats.changed_cells, 0);
}

}  // namespace
}  // namespace cvrepair
