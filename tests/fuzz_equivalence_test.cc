// Cross-checking fuzz tests: repair-context compression vs uncompressed
// feasibility, parser round-trips on random constraints, and metric
// invariants on random repairs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <set>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/parser.h"
#include "eval/metrics.h"
#include "paper_example.h"
#include "repair/vfree.h"
#include "solver/components.h"
#include "solver/csp_solver.h"
#include "solver/repair_context.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;

// Iteration budget: CVREPAIR_FUZZ_ITERS scales the seed ranges and the
// per-seed trial counts (default 1x). The nightly workflow raises it to
// sweep far more of the random space than a per-PR run can afford. Read
// once at static-init time — INSTANTIATE_TEST_SUITE_P evaluates its
// ranges then.
int FuzzScale() {
  static const int scale = [] {
    const char* v = std::getenv("CVREPAIR_FUZZ_ITERS");
    int s = (v != nullptr && v[0] != '\0') ? std::atoi(v) : 1;
    return s > 0 ? s : 1;
  }();
  return scale;
}

// ---------- Parser round-trip on random constraints ----------

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, ToStringParsesBackToTheSameConstraint) {
  std::mt19937_64 rng(GetParam() * 271);
  Relation rel = PaperIncomeRelation();
  const Schema& schema = rel.schema();
  std::uniform_int_distribution<int> attr_pick(0, schema.num_attributes() - 1);
  std::uniform_int_distribution<int> op_pick(0, kNumOps - 1);
  std::uniform_int_distribution<int> pred_count(1, 4);
  std::uniform_int_distribution<int> shape(0, 2);
  std::uniform_int_distribution<int> const_pick(0, 99);

  for (int trial = 0; trial < 25 * FuzzScale(); ++trial) {
    std::vector<Predicate> preds;
    int m = pred_count(rng);
    for (int i = 0; i < m; ++i) {
      AttrId a = attr_pick(rng);
      Op op = AllOps()[op_pick(rng)];
      switch (shape(rng)) {
        case 0:
          preds.push_back(Predicate::TwoCell(0, a, op, 1, a));
          break;
        case 1:
          preds.push_back(Predicate::TwoCell(0, a, op, 1, attr_pick(rng)));
          break;
        default: {
          Value c;
          switch (schema.type(a)) {
            case AttrType::kString:
              c = Value::String("v" + std::to_string(const_pick(rng)));
              break;
            case AttrType::kInt:
              c = Value::Int(const_pick(rng));
              break;
            case AttrType::kDouble:
              c = Value::Double(const_pick(rng));
              break;
          }
          preds.push_back(Predicate::WithConstant(0, a, op, c));
        }
      }
    }
    DenialConstraint original(preds);
    ParseConstraintResult round =
        ParseConstraint(schema, original.ToString(schema));
    ASSERT_TRUE(round.ok())
        << original.ToString(schema) << ": " << round.error;
    EXPECT_EQ(*round.constraint, original) << original.ToString(schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range(1, 1 + 6 * FuzzScale()));

// ---------- Context compression preserves feasible sets ----------

class CompressionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CompressionFuzz, CompressedContextsAcceptTheSameValues) {
  // Build contexts for random covers over the paper instance and check
  // that a solver solution for the compressed context also satisfies
  // every *uncompressed* inverse predicate (i.e., really repairs).
  std::mt19937_64 rng(GetParam() * 337);
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {testing_fixture::Phi4(rel),
                         testing_fixture::Phi2(rel)};
  AttrId tax = *rel.schema().Find("Tax");
  AttrId cp = *rel.schema().Find("CP");
  std::uniform_int_distribution<int> row_pick(0, rel.num_rows() - 1);

  std::vector<Cell> changing;
  for (int i = 0; i < 3; ++i) {
    changing.push_back({row_pick(rng), tax});
    changing.push_back({row_pick(rng), cp});
  }
  std::sort(changing.begin(), changing.end());
  changing.erase(std::unique(changing.begin(), changing.end()),
                 changing.end());

  CellSet cs(changing.begin(), changing.end());
  std::vector<Violation> suspects = FindSuspects(rel, sigma, cs);
  RepairContext rc = RepairContext::Build(rel, sigma, changing, suspects);

  DomainStats stats(rel);
  int64_t fresh = 1;
  CspSolver solver(rel, stats, CostModel{}, &fresh);
  Relation repaired = rel;
  for (const Component& comp : DecomposeComponents(rc)) {
    ComponentSolution sol = solver.Solve(comp);
    ASSERT_TRUE(SolutionSatisfies(comp, sol));
    for (size_t v = 0; v < comp.cells.size(); ++v) {
      repaired.SetValue(comp.cells[v], sol.values[v]);
    }
  }
  // The ground truth the compression must preserve: the repaired instance
  // satisfies every suspect pair (no predicate set fully true).
  for (const Violation& s : suspects) {
    EXPECT_TRUE(sigma[s.constraint_index].IsSatisfied(repaired, s.rows))
        << "suspect <" << s.rows[0] << "," << s.rows[1]
        << "> violated after repair (seed " << GetParam() << ")";
  }
  // A random changing set is not a vertex cover, so violations that never
  // touched C may persist — but Proposition 5 forbids *new* ones: every
  // remaining violation must have existed before and be disjoint from C.
  std::set<std::vector<int>> before;
  for (const Violation& v : FindViolations(rel, sigma)) {
    std::vector<int> key = {v.constraint_index};
    key.insert(key.end(), v.rows.begin(), v.rows.end());
    before.insert(key);
  }
  for (const Violation& v : FindViolations(repaired, sigma)) {
    std::vector<int> key = {v.constraint_index};
    key.insert(key.end(), v.rows.begin(), v.rows.end());
    EXPECT_TRUE(before.count(key))
        << "NEW violation introduced (seed " << GetParam() << ")";
    for (const Cell& cell : ViolationCells(sigma[v.constraint_index], v.rows)) {
      EXPECT_FALSE(cs.count(cell))
          << "a remaining violation touches the changing set";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionFuzz,
                         ::testing::Range(1, 1 + 7 * FuzzScale()));

// ---------- Decomposition preserves violation-freeness and cost ----------

// The split/stitch contract of graph/decompose.h + repair/vfree.cc on
// noisy hosp/census instances, swept across random noise seeds: with
// --decompose on or off, on the boxed or encoded backend, at 1 or 4
// threads, the repair is violation-free, and decomposing never costs more
// than the undecomposed solve. A small max_component forces splits on
// whatever components the seed produces.
class DecomposeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeFuzz, DecomposedRepairStaysViolationFreeAtNoExtraCost) {
  struct PoolGuard {
    ~PoolGuard() { ThreadPool::SetNumThreads(1); }
  } guard;

  struct Workload {
    std::string name;
    Relation dirty;
    ConstraintSet sigma;
  };
  std::vector<Workload> workloads;
  auto corrupt = [&](const Relation& clean, const std::vector<AttrId>& attrs) {
    NoiseConfig noise;
    noise.error_rate = 0.08;
    noise.target_attrs = attrs;
    noise.seed = static_cast<uint64_t>(GetParam()) * 131;
    return InjectNoise(clean, noise).dirty;
  };
  HospConfig hosp_config;
  hosp_config.num_hospitals = 10;
  HospData hosp = MakeHosp(hosp_config);
  workloads.push_back({"hosp", corrupt(hosp.clean, hosp.noise_attrs),
                       hosp.given_oversimplified});
  CensusConfig census_config;
  census_config.num_rows = 100;
  CensusData census = MakeCensus(census_config);
  workloads.push_back(
      {"census", corrupt(census.clean, census.noise_attrs), census.given});

  for (const Workload& w : workloads) {
    for (bool use_encoded : {false, true}) {
      for (int threads : {1, 4}) {
        ThreadPool::SetNumThreads(threads);
        auto run = [&](bool decompose) {
          VfreeOptions options;
          options.decompose = decompose;
          options.max_component = 8;
          options.threads = threads;
          options.use_encoded = use_encoded;
          return VfreeRepair(w.dirty, w.sigma, options);
        };
        RepairResult off = run(false);
        RepairResult on = run(true);
        std::string context = w.name + (use_encoded ? "/encoded" : "/boxed") +
                              "/t" + std::to_string(threads) + " (seed " +
                              std::to_string(GetParam()) + ")";
        EXPECT_TRUE(Satisfies(off.repaired, w.sigma)) << context;
        EXPECT_TRUE(Satisfies(on.repaired, w.sigma)) << context;
        EXPECT_LE(on.stats.repair_cost, off.stats.repair_cost + 1e-9)
            << context;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposeFuzz,
                         ::testing::Range(1, 1 + 3 * FuzzScale()));

// ---------- Metric invariants on random repairs ----------

class MetricsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MetricsFuzz, AccuracyStaysInRangeAndPerfectRepairIsPerfect) {
  std::mt19937_64 rng(GetParam() * 911);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("X", AttrType::kDouble);
  Relation clean(schema);
  std::uniform_int_distribution<int> cat(0, 5);
  std::uniform_real_distribution<double> num(0, 100);
  for (int i = 0; i < 30; ++i) {
    clean.AddRow({Value::String("v" + std::to_string(cat(rng))),
                  Value::Double(std::floor(num(rng)))});
  }
  Relation dirty = clean;
  std::uniform_int_distribution<int> row(0, 29);
  for (int e = 0; e < 6; ++e) {
    dirty.SetValue(row(rng), 1, Value::Double(std::floor(num(rng))));
  }
  Relation repaired = dirty;
  for (int e = 0; e < 4; ++e) {
    int i = row(rng);
    repaired.SetValue(i, 1, clean.Get(i, 1));
  }

  AccuracyResult acc = CellAccuracy(clean, dirty, repaired);
  EXPECT_GE(acc.precision, 0.0);
  EXPECT_LE(acc.precision, 1.0);
  EXPECT_GE(acc.recall, 0.0);
  EXPECT_LE(acc.recall, 1.0);
  EXPECT_LE(acc.f_measure, 1.0);
  EXPECT_GE(acc.hits, 0.0);

  // Perfect repair maxes every metric.
  AccuracyResult perfect = CellAccuracy(clean, dirty, clean);
  EXPECT_DOUBLE_EQ(perfect.precision, 1.0);
  EXPECT_DOUBLE_EQ(perfect.recall, 1.0);
  EXPECT_DOUBLE_EQ(RelativeAccuracy(clean, dirty, clean), 1.0);
  EXPECT_DOUBLE_EQ(Mnad(clean, clean), 0.0);
  // MNAD of the repair is between the perfect and the untouched dirty.
  EXPECT_LE(Mnad(clean, repaired), Mnad(clean, dirty) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsFuzz,
                         ::testing::Range(1, 1 + 7 * FuzzScale()));

}  // namespace
}  // namespace cvrepair
