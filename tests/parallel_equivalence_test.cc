// Determinism contract of the parallel execution layer: for every dataset
// generator, the serial path (--threads 1) and the parallel path
// (--threads 4) must produce bit-identical violation sets, repairs, and
// Θ costs. Run under ThreadSanitizer by tools/run_tsan.sh.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <limits>

#include "data/census.h"
#include "data/gps.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "data/tax.h"
#include "dc/eval_index.h"
#include "dc/violation.h"
#include "relation/encoded.h"
#include "repair/cvtolerant.h"
#include "repair/vfree.h"
#include "solver/materialized_cache.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

struct Workload {
  std::string name;
  Relation dirty;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

NoisyData Corrupt(const Relation& clean, const std::vector<AttrId>& attrs) {
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = attrs;
  noise.seed = 7;
  return InjectNoise(clean, noise);
}

// One small instance of every generator in src/data/, each with its
// evaluation ("given") constraint set.
std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> workloads;

  HospConfig hosp_config;
  hosp_config.num_hospitals = 12;
  HospData hosp = MakeHosp(hosp_config);
  workloads.push_back({"hosp", Corrupt(hosp.clean, hosp.noise_attrs).dirty,
                       hosp.given_oversimplified, hosp.space});

  CensusConfig census_config;
  census_config.num_rows = 120;
  CensusData census = MakeCensus(census_config);
  workloads.push_back({"census", Corrupt(census.clean, census.noise_attrs).dirty,
                       census.given, census.space});

  GpsConfig gps_config;
  gps_config.num_points = 150;
  GpsData gps = MakeGps(gps_config);
  workloads.push_back({"gps", gps.dirty, gps.given, {}});

  TaxConfig tax_config;
  tax_config.num_rows = 100;
  TaxData tax = MakeTax(tax_config);
  workloads.push_back({"tax", Corrupt(tax.clean, tax.noise_attrs).dirty,
                       tax.given, tax.space});

  return workloads;
}

void ExpectSameRelation(const Relation& a, const Relation& b,
                        const std::string& context) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  ASSERT_EQ(a.num_attributes(), b.num_attributes()) << context;
  for (int i = 0; i < a.num_rows(); ++i) {
    for (AttrId attr = 0; attr < a.num_attributes(); ++attr) {
      ASSERT_EQ(a.Get(i, attr), b.Get(i, attr))
          << context << ": cell t" << i << "." << attr << " differs: "
          << a.Get(i, attr).ToString() << " vs " << b.Get(i, attr).ToString();
    }
  }
}

// Restores the global pool budget even when an assertion bails out.
class PoolGuard {
 public:
  ~PoolGuard() { ThreadPool::SetNumThreads(1); }
};

TEST(ParallelEquivalence, ViolationDetectionIdentical) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    ThreadPool::SetNumThreads(1);
    std::vector<Violation> serial = FindViolations(w.dirty, w.sigma);
    ThreadPool::SetNumThreads(4);
    std::vector<Violation> parallel = FindViolations(w.dirty, w.sigma);
    EXPECT_EQ(serial, parallel) << w.name;
  }
}

TEST(ParallelEquivalence, CappedViolationDetectionIdentical) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    for (size_t k = 0; k < w.sigma.size(); ++k) {
      for (int64_t cap : {int64_t{1}, int64_t{5}, int64_t{1000}}) {
        ThreadPool::SetNumThreads(1);
        bool serial_truncated = false;
        std::vector<Violation> serial = FindViolationsOfCapped(
            w.dirty, w.sigma[k], static_cast<int>(k), cap, &serial_truncated);
        ThreadPool::SetNumThreads(4);
        bool parallel_truncated = false;
        std::vector<Violation> parallel =
            FindViolationsOfCapped(w.dirty, w.sigma[k], static_cast<int>(k),
                                   cap, &parallel_truncated);
        EXPECT_EQ(serial, parallel) << w.name << " #" << k << " cap " << cap;
        EXPECT_EQ(serial_truncated, parallel_truncated)
            << w.name << " #" << k << " cap " << cap;
      }
    }
  }
}

TEST(ParallelEquivalence, VfreeRepairIdentical) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    ThreadPool::SetNumThreads(1);
    VfreeOptions serial_options;
    serial_options.threads = 1;
    RepairResult serial = VfreeRepair(w.dirty, w.sigma, serial_options);

    ThreadPool::SetNumThreads(4);
    VfreeOptions parallel_options;
    parallel_options.threads = 4;
    RepairResult parallel = VfreeRepair(w.dirty, w.sigma, parallel_options);

    ExpectSameRelation(serial.repaired, parallel.repaired, w.name + "/vfree");
    EXPECT_EQ(serial.stats.repair_cost, parallel.stats.repair_cost) << w.name;
    EXPECT_EQ(serial.stats.changed_cells, parallel.stats.changed_cells)
        << w.name;
    EXPECT_EQ(serial.stats.fresh_assignments, parallel.stats.fresh_assignments)
        << w.name;
    EXPECT_EQ(serial.stats.solver_calls, parallel.stats.solver_calls)
        << w.name;
    EXPECT_EQ(serial.stats.initial_violations,
              parallel.stats.initial_violations)
        << w.name;
  }
}

TEST(ParallelEquivalence, CVTolerantRepairIdentical) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    auto run = [&](int threads) {
      ThreadPool::SetNumThreads(threads);
      CVTolerantOptions options;
      options.variants.theta = 1.0;
      options.variants.space = w.space;
      options.max_datarepair_calls = 8;
      options.threads = threads;
      return CVTolerantRepair(w.dirty, w.sigma, options);
    };
    RepairResult serial = run(1);
    RepairResult parallel = run(4);

    ExpectSameRelation(serial.repaired, parallel.repaired,
                       w.name + "/cvtolerant");
    // Θ is folded into the chosen variant: the satisfied constraint sets
    // must match exactly, as must the repair cost.
    ASSERT_EQ(serial.satisfied_constraints.size(),
              parallel.satisfied_constraints.size())
        << w.name;
    for (size_t i = 0; i < serial.satisfied_constraints.size(); ++i) {
      EXPECT_EQ(serial.satisfied_constraints[i].ToString(w.dirty.schema()),
                parallel.satisfied_constraints[i].ToString(w.dirty.schema()))
          << w.name;
    }
    EXPECT_EQ(serial.stats.repair_cost, parallel.stats.repair_cost) << w.name;
    EXPECT_EQ(serial.stats.changed_cells, parallel.stats.changed_cells)
        << w.name;
    EXPECT_EQ(serial.stats.fresh_assignments, parallel.stats.fresh_assignments)
        << w.name;
    EXPECT_EQ(serial.stats.cache_hits, parallel.stats.cache_hits) << w.name;
    EXPECT_EQ(serial.stats.solver_calls, parallel.stats.solver_calls)
        << w.name;
    EXPECT_EQ(serial.stats.datarepair_calls, parallel.stats.datarepair_calls)
        << w.name;
    EXPECT_EQ(serial.stats.variants_pruned_bounds,
              parallel.stats.variants_pruned_bounds)
        << w.name;
  }
}

// The small workloads above stay below the scan-size threshold for some
// sharded paths; these instances are sized to force every one of them:
// the 1-tuple row-range shards, the hash-partition block shards, and cap
// truncation across shard boundaries.
TEST(ParallelEquivalence, ShardedScanPathsIdentical) {
  PoolGuard guard;

  // 1-tuple DCs over ~9000 rows (row-range sharding kicks in at 8192).
  CensusConfig census_config;
  census_config.num_rows = 9000;
  CensusData census = MakeCensus(census_config);
  NoiseConfig noise;
  noise.error_rate = 0.2;
  noise.target_attrs = {CensusAttrs::kTax};
  noise.seed = 11;
  Relation dirty = InjectNoise(census.clean, noise).dirty;
  bool found_unary = false;
  for (size_t k = 0; k < census.given.size(); ++k) {
    if (census.given[k].NumTupleVars() != 1) continue;
    found_unary = true;
    for (int64_t cap : {int64_t{3}, int64_t{1000000}}) {
      ThreadPool::SetNumThreads(1);
      bool serial_truncated = false;
      std::vector<Violation> serial = FindViolationsOfCapped(
          dirty, census.given[k], static_cast<int>(k), cap, &serial_truncated);
      ThreadPool::SetNumThreads(4);
      bool parallel_truncated = false;
      std::vector<Violation> parallel = FindViolationsOfCapped(
          dirty, census.given[k], static_cast<int>(k), cap,
          &parallel_truncated);
      EXPECT_EQ(serial, parallel) << "census unary #" << k << " cap " << cap;
      EXPECT_EQ(serial_truncated, parallel_truncated)
          << "census unary #" << k << " cap " << cap;
    }
  }
  EXPECT_TRUE(found_unary);

  // FD-style 2-tuple DCs with large hash-partition blocks (12 names ×
  // 30 measures: ~10800 in-block pairs crosses the 8192 threshold).
  HospConfig hosp_config;
  hosp_config.num_hospitals = 12;
  hosp_config.measures_per_hospital = 30;
  HospData hosp = MakeHosp(hosp_config);
  NoiseConfig hosp_noise;
  hosp_noise.error_rate = 0.1;
  hosp_noise.target_attrs = hosp.noise_attrs;
  hosp_noise.seed = 13;
  Relation hosp_dirty = InjectNoise(hosp.clean, hosp_noise).dirty;
  for (size_t k = 0; k < hosp.given_oversimplified.size(); ++k) {
    const DenialConstraint& c = hosp.given_oversimplified[k];
    if (c.NumTupleVars() != 2) continue;
    for (int64_t cap : {int64_t{5}, int64_t{1000000}}) {
      ThreadPool::SetNumThreads(1);
      bool serial_truncated = false;
      std::vector<Violation> serial = FindViolationsOfCapped(
          hosp_dirty, c, static_cast<int>(k), cap, &serial_truncated);
      ThreadPool::SetNumThreads(4);
      bool parallel_truncated = false;
      std::vector<Violation> parallel = FindViolationsOfCapped(
          hosp_dirty, c, static_cast<int>(k), cap, &parallel_truncated);
      EXPECT_EQ(serial, parallel) << "hosp fd #" << k << " cap " << cap;
      EXPECT_EQ(serial_truncated, parallel_truncated)
          << "hosp fd #" << k << " cap " << cap;
    }
  }
}

// One EvalIndex per base constraint, prepared serially and then scanned
// through concurrently: the scans must be bit-identical to the plain
// detector at every thread count (and race-free under TSan — the index is
// read-only after Prepare, and the eval counters are relaxed atomics).
TEST(ParallelEquivalence, SharedIndexScansIdenticalAcrossThreads) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    for (size_t k = 0; k < w.sigma.size(); ++k) {
      EvalIndex index(w.dirty, w.sigma[k]);
      index.Prepare(w.sigma[k]);
      for (int64_t cap :
           {int64_t{1}, int64_t{5}, std::numeric_limits<int64_t>::max()}) {
        ThreadPool::SetNumThreads(1);
        bool plain_truncated = false;
        std::vector<Violation> plain = FindViolationsOfCapped(
            w.dirty, w.sigma[k], static_cast<int>(k), cap, &plain_truncated);
        for (int threads : {1, 4}) {
          ThreadPool::SetNumThreads(threads);
          // Concurrent scans of one shared index: every pool worker reads
          // the same partitions and memo.
          std::vector<std::vector<Violation>> results(4);
          std::vector<char> truncated(4, 0);
          ThreadPool::ParallelFor(4, [&](int64_t i) {
            bool t = false;
            results[static_cast<size_t>(i)] = index.FindViolationsCapped(
                w.sigma[k], static_cast<int>(k), cap, &t);
            truncated[static_cast<size_t>(i)] = t ? 1 : 0;
          });
          for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(plain, results[static_cast<size_t>(i)])
                << w.name << " #" << k << " cap " << cap << " threads "
                << threads;
            EXPECT_EQ(plain_truncated, truncated[static_cast<size_t>(i)] != 0)
                << w.name << " #" << k << " cap " << cap << " threads "
                << threads;
          }
        }
      }
    }
  }
}

// The dictionary-encoded backend must not perturb determinism: for every
// generator, encoded and boxed scans agree at 1 and 4 threads, and
// CVTolerantRepair is bit-identical across the full {encoded, boxed} x
// {1 thread, 4 threads} grid.
TEST(ParallelEquivalence, EncodedBackendIdenticalAcrossThreads) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    EncodedRelation encoded(w.dirty);
    ThreadPool::SetNumThreads(1);
    std::vector<Violation> boxed1 = FindViolations(w.dirty, w.sigma);
    std::vector<Violation> coded1 = FindViolations(encoded, w.sigma);
    ThreadPool::SetNumThreads(4);
    std::vector<Violation> boxed4 = FindViolations(w.dirty, w.sigma);
    std::vector<Violation> coded4 = FindViolations(encoded, w.sigma);
    EXPECT_EQ(boxed1, coded1) << w.name;
    EXPECT_EQ(boxed1, coded4) << w.name;
    EXPECT_EQ(boxed1, boxed4) << w.name;
  }
}

TEST(ParallelEquivalence, CVTolerantEncodedGridIdentical) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    auto run = [&](bool use_encoded, int threads) {
      ThreadPool::SetNumThreads(threads);
      CVTolerantOptions options;
      options.variants.theta = 1.0;
      options.variants.space = w.space;
      options.max_datarepair_calls = 8;
      options.threads = threads;
      options.use_encoded = use_encoded;
      return CVTolerantRepair(w.dirty, w.sigma, options);
    };
    RepairResult base = run(false, 1);
    for (bool use_encoded : {true, false}) {
      for (int threads : {1, 4}) {
        if (!use_encoded && threads == 1) continue;  // that's `base`
        RepairResult other = run(use_encoded, threads);
        std::string context = w.name + (use_encoded ? "/encoded" : "/boxed") +
                              "/t" + std::to_string(threads);
        ExpectSameRelation(base.repaired, other.repaired, context);
        EXPECT_EQ(base.stats.repair_cost, other.stats.repair_cost) << context;
        EXPECT_EQ(base.stats.changed_cells, other.stats.changed_cells)
            << context;
        EXPECT_EQ(base.stats.initial_violations,
                  other.stats.initial_violations)
            << context;
        EXPECT_EQ(base.stats.datarepair_calls, other.stats.datarepair_calls)
            << context;
        ASSERT_EQ(base.satisfied_constraints.size(),
                  other.satisfied_constraints.size())
            << context;
        for (size_t i = 0; i < base.satisfied_constraints.size(); ++i) {
          EXPECT_EQ(base.satisfied_constraints[i].ToString(w.dirty.schema()),
                    other.satisfied_constraints[i].ToString(w.dirty.schema()))
              << context;
        }
      }
    }
  }
}

// The metrics.json determinism contract (DESIGN.md §8): the registry's
// work-counter snapshot after a repair must be identical at any thread
// count. This pins the truncation-aware counter flush in the capped scan
// paths — shards over-scan past the cap, so a truncated scan must publish
// eval.truncated_scans alone instead of its shard-dependent eval deltas.
TEST(ParallelEquivalence, WorkMetricsIdenticalAcrossThreads) {
  PoolGuard guard;
  for (const Workload& w : MakeWorkloads()) {
    auto run = [&](int threads) {
      ThreadPool::SetNumThreads(threads);
      MetricsRegistry::Global().ResetAll();
      CVTolerantOptions options;
      options.variants.theta = 1.0;
      options.variants.space = w.space;
      options.max_datarepair_calls = 8;
      options.threads = threads;
      RepairResult result = CVTolerantRepair(w.dirty, w.sigma, options);
      PublishRepairStats(result.stats);
      return MetricsRegistry::Global().SnapshotWork();
    };
    MetricsSnapshot serial = run(1);
    MetricsSnapshot parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size()) << w.name;
    for (const auto& [name, value] : serial) {
      ASSERT_TRUE(parallel.count(name)) << w.name << ": " << name;
      EXPECT_EQ(value, parallel.at(name)) << w.name << ": " << name;
    }
    // The rendered file (what CI diffs) must therefore match bytewise.
    EXPECT_EQ(MetricsToJson(serial), MetricsToJson(parallel)) << w.name;
  }
}

// Same contract on the raw capped scans, where the bug lived: a parallel
// truncated scan used to flush per-shard over-scan work, inflating the
// counters relative to the serial early-stop.
TEST(ParallelEquivalence, CappedScanCountersIdenticalAcrossThreads) {
  PoolGuard guard;
  HospConfig config;
  config.num_hospitals = 12;
  config.measures_per_hospital = 30;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.1;
  noise.target_attrs = hosp.noise_attrs;
  noise.seed = 13;
  Relation dirty = InjectNoise(hosp.clean, noise).dirty;

  for (size_t k = 0; k < hosp.given_oversimplified.size(); ++k) {
    for (int64_t cap : {int64_t{5}, int64_t{1000000}}) {
      auto scan = [&](int threads) {
        ThreadPool::SetNumThreads(threads);
        eval_counters::Reset();
        bool truncated = false;
        FindViolationsOfCapped(dirty, hosp.given_oversimplified[k],
                               static_cast<int>(k), cap, &truncated);
        return eval_counters::Snapshot();
      };
      EvalCounters serial = scan(1);
      EvalCounters parallel = scan(4);
      EXPECT_EQ(serial.predicate_evals, parallel.predicate_evals)
          << "#" << k << " cap " << cap;
      EXPECT_EQ(serial.code_predicate_evals, parallel.code_predicate_evals)
          << "#" << k << " cap " << cap;
      EXPECT_EQ(serial.truncated_scans, parallel.truncated_scans)
          << "#" << k << " cap " << cap;
      EXPECT_EQ(serial.partition_builds, parallel.partition_builds)
          << "#" << k << " cap " << cap;
    }
  }
}

// Regression for the MaterializedCache statistics race: Lookup is const
// but bumps the hit/miss counters, so concurrent lookups from pool workers
// must not race (they were plain mutable int64_t once; TSan flagged the
// increments). Exercised with both hits and misses in flight.
TEST(ParallelEquivalence, MaterializedCacheConcurrentLookups) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);

  MaterializedCache cache;
  Component stored;
  stored.cells = {{0, 0}, {1, 0}};
  RcAtom atom;
  atom.lhs_var = 0;
  atom.op = Op::kEq;
  atom.rhs_is_var = true;
  atom.rhs_var = 1;
  stored.atoms = {atom};
  ComponentSolution solution;
  solution.values = {Value::Int(1), Value::Int(1)};
  solution.cost = 1.0;
  cache.Store(stored, solution);

  Component missing;
  missing.cells = {{2, 0}, {3, 0}};
  missing.atoms = {atom};

  constexpr int kLookups = 4096;
  std::vector<char> hit(kLookups, 0);
  ThreadPool::ParallelFor(kLookups, [&](int64_t i) {
    const Component& c = (i % 2 == 0) ? stored : missing;
    hit[static_cast<size_t>(i)] = cache.Lookup(c).has_value() ? 1 : 0;
  });

  for (int i = 0; i < kLookups; ++i) {
    EXPECT_EQ(hit[static_cast<size_t>(i)] != 0, i % 2 == 0) << i;
  }
  EXPECT_EQ(cache.hits(), kLookups / 2);
  EXPECT_EQ(cache.misses(), kLookups / 2);
}

// The pool itself: full coverage of the ParallelFor contract (order-free
// slot writes, range splitting, nesting, exceptions).
TEST(ThreadPoolTest, ParallelMapMatchesSerial) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);
  std::vector<int64_t> squares = ThreadPool::ParallelMap<int64_t>(
      1000, [](int64_t i) { return i * i; });
  for (int64_t i = 0; i < 1000; ++i) ASSERT_EQ(squares[i], i * i);
}

TEST(ThreadPoolTest, RangesCoverEveryIndexOnce) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);
  std::vector<int> hits(1237, 0);
  ThreadPool::ParallelForRanges(1237, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int i = 0; i < 1237; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);
  std::vector<int> outer(64, 0);
  ThreadPool::ParallelFor(64, [&](int64_t i) {
    int inner_sum = 0;
    ThreadPool::ParallelFor(10, [&](int64_t j) {
      inner_sum += static_cast<int>(j);  // safe: nested call is serial
    });
    outer[i] = inner_sum;
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(outer[i], 45);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);
  EXPECT_THROW(ThreadPool::ParallelFor(
                   100,
                   [](int64_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PerCallOverrideForcesSerial) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1);
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1);
  EXPECT_EQ(ThreadPool::EffectiveThreads(3), 3);
  bool ran = false;
  ThreadPool::ParallelFor(
      5, [&](int64_t) { ran = true; }, /*max_threads=*/1);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace cvrepair
