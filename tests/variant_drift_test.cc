// Unfrozen Σ' (repair/streaming.h VariantTracker + cvtolerant.h factored
// search): on a drifting edit stream, the tracker's delta-maintained
// per-constraint facts must stay identical to from-scratch detection scans
// of the accumulated dirty instance after every batch, the held variant
// must always be the one the from-scratch full variant search would
// choose, and on reopen batches the held instance must equal the scratch
// search's repair — cost bit-identical, cells equal modulo fresh ids — at
// 1 and 4 threads, boxed and encoded.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "relation/encoded.h"
#include "repair/cvtolerant.h"
#include "repair/streaming.h"

namespace cvrepair {
namespace {

struct Workload {
  Relation dirty;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

Workload MakeDriftableWorkload() {
  HospConfig config;
  config.num_hospitals = 6;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = hosp.noise_attrs;
  return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified,
          hosp.space};
}

void ExpectEqualModuloFresh(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId at = 0; at < a.num_attributes(); ++at) {
      const Value& va = a.Get(r, at);
      const Value& vb = b.Get(r, at);
      if (va.is_fresh() || vb.is_fresh()) {
        EXPECT_TRUE(va.is_fresh() && vb.is_fresh())
            << "cell (" << r << "," << at << "): " << va.ToString() << " vs "
            << vb.ToString();
      } else {
        EXPECT_TRUE(va == vb)
            << "cell (" << r << "," << at << "): " << va.ToString() << " vs "
            << vb.ToString();
      }
    }
  }
}

/// Streams a drift workload with reopen_variants and checks, after every
/// batch, the tracker state against its from-scratch twin on the
/// accumulated dirty instance D.
void RunDriftStreamVsScratch(bool encoded, int threads) {
  Workload w = MakeDriftableWorkload();
  StreamingOptions options;
  options.repair.variants.space = w.space;
  options.repair.threads = threads;
  options.repair.use_encoded = encoded;
  options.reopen_variants = true;
  ReplayWorkload replay = MakeDriftWorkload(w.dirty, /*num_batches=*/6,
                                            /*batch_size=*/10, /*seed=*/29);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  ASSERT_TRUE(streamer.tracker() != nullptr);
  ASSERT_GT(streamer.tracker()->variants().size(), 1u);

  int reopened = 0, switched = 0;
  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    StreamBatchResult r = streamer.ApplyBatch(replay.batches[b]);
    EXPECT_TRUE(streamer.IsViolationFree());
    reopened += r.reopened ? 1 : 0;
    switched += r.variant_switched ? 1 : 0;

    const VariantTracker& t = *streamer.tracker();
    std::optional<EncodedRelation> E;
    if (encoded) E.emplace(t.dirty());

    // Delta-maintained facts == full detection scans on D, constraint by
    // constraint: violation sets, δ_l/δ_u, hopeless verdicts.
    std::map<DenialConstraint, VariantFacts> scratch_facts = ScanVariantFacts(
        t.dirty(), w.sigma, t.variants(), options.repair, E ? &*E : nullptr);
    for (const auto& [phi, sf] : scratch_facts) {
      const VariantFacts& tf = t.FactsOf(phi);
      EXPECT_EQ(tf.violations, sf.violations);
      EXPECT_EQ(tf.delta_l, sf.delta_l);
      EXPECT_EQ(tf.delta_u, sf.delta_u);
      EXPECT_EQ(tf.hopeless, sf.hopeless);
    }

    // The full from-scratch variant search over those facts must land on
    // the variant the stream is holding — on every batch, reopened or not
    // (the reopen trigger is what makes skipping the search safe).
    int64_t scratch_fresh = 1000000;  // disjoint from the streamed ids
    VariantSearchResult sr = CVTolerantSearchWithFacts(
        t.dirty(), w.sigma, t.variants(),
        [&scratch_facts](const DenialConstraint& c) -> const VariantFacts& {
          return scratch_facts.at(c);
        },
        options.repair, &scratch_fresh, E ? &*E : nullptr);
    ASSERT_TRUE(sr.have_result);
    EXPECT_TRUE(sr.variant == streamer.variant())
        << "held variant diverged from the scratch-optimal choice";

    if (r.variant_switched) {
      // A switch adopted the streamed search's result wholesale, and that
      // search ran on the tracker's (equal) facts — so the held state is
      // bit-identical to the scratch search modulo fresh-id numbering.
      // (Between switches the stream holds the cheaper incrementally
      // repaired instance instead, whose realized cost the trigger
      // compares against the rivals' bounds.)
      EXPECT_EQ(sr.cost, streamer.realized_cost());
      ExpectEqualModuloFresh(streamer.current(), sr.repaired);
    }
  }
  // The workload must force real reopens and at least one switch, or the
  // test is vacuous. (Noisy drift batches perturb some family constraint
  // essentially every batch, so the conservative trigger re-opens every
  // batch here; QuietBatchSkipsReopen pins the skip regime.)
  EXPECT_GT(reopened, 0) << "no batch re-opened the search";
  EXPECT_GT(switched, 0) << "no batch switched variants";
  EXPECT_EQ(streamer.totals().variant_reopens, reopened);
  EXPECT_EQ(streamer.totals().variant_switches, switched);
  EXPECT_GT(streamer.totals().bound_updates, 0);
}

TEST(VariantDriftTest, BoxedSerial) {
  RunDriftStreamVsScratch(/*encoded=*/false, /*threads=*/1);
}

TEST(VariantDriftTest, BoxedThreaded) {
  RunDriftStreamVsScratch(/*encoded=*/false, /*threads=*/4);
}

TEST(VariantDriftTest, EncodedSerial) {
  RunDriftStreamVsScratch(/*encoded=*/true, /*threads=*/1);
}

TEST(VariantDriftTest, EncodedThreaded) {
  RunDriftStreamVsScratch(/*encoded=*/true, /*threads=*/4);
}

// The skip regime of the reopen trigger: a batch whose edits change no
// cell — rewriting values the dirty instance and the held instance both
// already carry — moves no violation epoch, so every rival bound keeps
// its post-search lift (solved cost or abort threshold) and the trigger
// must NOT re-open the search. Census keeps the variant family small
// enough for the initial search to process every candidate; hosp's family
// outnumbers max_datarepair_calls, leaving budget-cut rivals at δ_l and
// the trigger legitimately hot on every batch.
TEST(VariantDriftTest, QuietBatchSkipsReopen) {
  CensusConfig config;
  config.num_rows = 120;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  Workload w{InjectNoise(census.clean, noise).dirty, census.given, {}};
  StreamingOptions options;
  options.repair.variants.space = w.space;
  options.repair.use_encoded = true;
  options.reopen_variants = true;
  StreamingRepairer streamer(w.dirty, w.sigma, options);
  const ConstraintSet held = streamer.variant();
  const double realized = streamer.realized_cost();

  // A cell the initial repair left untouched: its value agrees between the
  // dirty instance (the tracker's D) and the repaired instance.
  std::vector<RowEdit> quiet;
  for (int r = 0; r < w.dirty.num_rows() && quiet.size() < 3; ++r) {
    for (AttrId a = 0; a < w.dirty.num_attributes() && quiet.size() < 3; ++a) {
      if (w.dirty.Get(r, a) == streamer.current().Get(r, a) &&
          !w.dirty.Get(r, a).is_fresh()) {
        quiet.push_back(RowEdit::Update(r, a, w.dirty.Get(r, a)));
      }
    }
  }
  ASSERT_EQ(quiet.size(), 3u);

  StreamBatchResult r = streamer.ApplyBatch(quiet);
  EXPECT_FALSE(r.reopened);
  EXPECT_FALSE(r.variant_switched);
  EXPECT_EQ(r.bound_updates, 0);
  EXPECT_EQ(r.cells_changed, 0);
  EXPECT_TRUE(streamer.variant() == held);
  EXPECT_EQ(streamer.realized_cost(), realized);
  EXPECT_EQ(streamer.totals().variant_reopens, 0);
}

// Thread count must be invisible to the unfrozen path too: serial and
// 4-thread reopened streams agree exactly, fresh ids included.
TEST(VariantDriftTest, ThreadCountIsInvisibleUnderReopens) {
  Workload w = MakeDriftableWorkload();
  StreamingOptions serial_options;
  serial_options.repair.variants.space = w.space;
  serial_options.repair.use_encoded = true;
  serial_options.reopen_variants = true;
  serial_options.repair.threads = 1;
  StreamingOptions threaded_options = serial_options;
  threaded_options.repair.threads = 4;
  ReplayWorkload replay = MakeDriftWorkload(w.dirty, 6, 10, /*seed=*/29);
  StreamingRepairer serial(replay.base, w.sigma, serial_options);
  StreamingRepairer threaded(replay.base, w.sigma, threaded_options);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    StreamBatchResult rs = serial.ApplyBatch(batch);
    StreamBatchResult rt = threaded.ApplyBatch(batch);
    EXPECT_EQ(rs.repair_cost, rt.repair_cost);
    EXPECT_EQ(rs.reopened, rt.reopened);
    EXPECT_EQ(rs.variant_switched, rt.variant_switched);
    EXPECT_EQ(rs.realized_cost, rt.realized_cost);
    EXPECT_EQ(rs.rival_bound, rt.rival_bound);
    EXPECT_TRUE(serial.variant() == threaded.variant());
    ASSERT_EQ(serial.current().num_rows(), threaded.current().num_rows());
    for (int r = 0; r < serial.current().num_rows(); ++r) {
      for (AttrId a = 0; a < serial.current().num_attributes(); ++a) {
        EXPECT_TRUE(serial.current().Get(r, a) == threaded.current().Get(r, a));
      }
    }
  }
  EXPECT_GT(serial.totals().variant_reopens, 0);
}

}  // namespace
}  // namespace cvrepair
