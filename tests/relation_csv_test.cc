#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "paper_example.h"
#include "relation/csv.h"
#include "relation/domain_stats.h"
#include "relation/relation.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;

TEST(SchemaTest, FindAndProperties) {
  Relation rel = PaperIncomeRelation();
  const Schema& s = rel.schema();
  EXPECT_EQ(s.num_attributes(), 6);
  ASSERT_TRUE(s.Find("Income").has_value());
  EXPECT_EQ(*s.Find("Income"), 4);
  EXPECT_FALSE(s.Find("Nope").has_value());
  EXPECT_TRUE(s.is_numeric(*s.Find("Year")));
  EXPECT_FALSE(s.is_numeric(*s.Find("Name")));
}

TEST(RelationTest, DomainExcludesNullAndFresh) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  EXPECT_EQ(rel.Domain(tax).size(), 4u);  // {0, 3, 21, 40}
  rel.SetValue(0, tax, Value::Null());
  rel.SetValue(3, tax, rel.NextFresh());
  std::vector<Value> dom = rel.Domain(tax);
  EXPECT_EQ(dom.size(), 3u);  // 0 still present via other rows; 3 gone
  for (const Value& v : dom) {
    EXPECT_FALSE(v.is_null());
    EXPECT_FALSE(v.is_fresh());
  }
}

// Regression for the Domain() cache: every mutation path (SetValue by
// cell, SetValue by row/attr, AddRow, Truncate) bumps the relation
// version, so a cached domain can never be served stale — here each
// mutation in a repair-round-shaped sequence is followed by a comparison
// against a freshly copied relation whose cache is necessarily cold.
TEST(RelationTest, DomainCacheNeverStaleAcrossRepairRound) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  AttrId name = *rel.schema().Find("Name");
  auto expect_fresh = [&](const char* context) {
    for (AttrId a : {tax, name}) {
      Relation cold = rel;  // copy: no shared cache, recomputes from rows
      EXPECT_EQ(rel.Domain(a), cold.Domain(a)) << context << " attr " << a;
    }
  };
  // Warm the cache, then mutate through every path a repair round uses.
  (void)rel.Domain(tax);
  (void)rel.Domain(name);
  rel.SetValue(0, tax, Value::Double(999));
  expect_fresh("SetValue(row, attr)");
  rel.SetValue({1, tax}, Value::Null());
  expect_fresh("SetValue(cell)");
  rel.SetValue({2, name}, rel.NextFresh());
  expect_fresh("fresh assignment");
  std::vector<Value> row;
  for (AttrId a = 0; a < rel.num_attributes(); ++a) row.push_back(rel.Get(0, a));
  rel.AddRow(std::move(row));
  expect_fresh("AddRow");
  rel.Truncate(rel.num_rows() - 1);
  expect_fresh("Truncate");
  // Repeated lookups with no interleaved writes are stable (served from
  // the cache) and still correct.
  std::vector<Value> first = rel.Domain(tax);
  EXPECT_EQ(rel.Domain(tax), first);
}

// CellHash must mix the full 32-bit row: with the row's high half dropped
// (the old bug), cells that differ only above bit 15 collide in bulk.
TEST(RelationTest, CellHashMixesFullRowRange) {
  CellHash hash;
  std::set<size_t> seen;
  int n = 0;
  for (int shift = 0; shift < 31; ++shift) {
    for (AttrId attr = 0; attr < 4; ++attr) {
      seen.insert(hash(Cell{1 << shift, attr}));
      ++n;
    }
  }
  // Large consecutive row ids (beyond 16 bits) with identical low bits.
  for (int i = 0; i < 64; ++i) {
    seen.insert(hash(Cell{(i << 20) | 7, 0}));
    ++n;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(n));  // no collisions at all
}

TEST(RelationTest, TruncateAndFreshIds) {
  Relation rel = PaperIncomeRelation();
  rel.Truncate(4);
  EXPECT_EQ(rel.num_rows(), 4);
  Value f1 = rel.NextFresh();
  Value f2 = rel.NextFresh();
  EXPECT_NE(f1, f2);
}

TEST(DomainStatsTest, FrequenciesSortedAndQueryable) {
  Relation rel = PaperIncomeRelation();
  DomainStats stats(rel);
  AttrId name = *rel.schema().Find("Name");
  const AttrStats& s = stats.attr(name);
  ASSERT_EQ(s.frequencies.size(), 3u);
  // Dustin appears 4 times — the mode.
  EXPECT_EQ(s.frequencies[0].first, Value::String("Dustin"));
  EXPECT_EQ(s.frequencies[0].second, 4);
  EXPECT_EQ(stats.Frequency(name, Value::String("Ayres")), 3);
  EXPECT_EQ(stats.Frequency(name, Value::String("Nobody")), 0);

  AttrId income = *rel.schema().Find("Income");
  EXPECT_TRUE(stats.attr(income).has_numeric_range);
  EXPECT_DOUBLE_EQ(stats.attr(income).min, 21);
  EXPECT_DOUBLE_EQ(stats.attr(income).max, 150);
}

TEST(CsvTest, RoundTrip) {
  Relation rel = PaperIncomeRelation();
  std::string csv = WriteCsvString(rel);
  CsvResult parsed = ReadCsvString(rel.schema(), csv);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.relation->num_rows(), rel.num_rows());
  for (int i = 0; i < rel.num_rows(); ++i) {
    for (AttrId a = 0; a < rel.num_attributes(); ++a) {
      EXPECT_EQ(parsed.relation->Get(i, a), rel.Get(i, a))
          << "cell (" << i << "," << a << ")";
    }
  }
}

TEST(CsvTest, QuotingAndEscapes) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kInt);
  Relation rel(schema);
  rel.AddRow({Value::String("has,comma"), Value::Int(1)});
  rel.AddRow({Value::String("has\"quote"), Value::Int(2)});
  CsvResult parsed = ReadCsvString(schema, WriteCsvString(rel));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.relation->Get(0, 0), Value::String("has,comma"));
  EXPECT_EQ(parsed.relation->Get(1, 0), Value::String("has\"quote"));
}

TEST(CsvTest, MultiLineQuotedRecords) {
  // RFC 4180: a quoted field may contain newlines, so one record spans
  // several input lines.
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kInt);
  CsvResult parsed =
      ReadCsvString(schema, "A,B\n\"line one\nline two\",1\nplain,2\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.relation->num_rows(), 2);
  EXPECT_EQ(parsed.relation->Get(0, 0), Value::String("line one\nline two"));
  EXPECT_EQ(parsed.relation->Get(0, 1), Value::Int(1));
  EXPECT_EQ(parsed.relation->Get(1, 0), Value::String("plain"));
}

TEST(CsvTest, MultiLineRecordsRoundTrip) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("a\nb\nc")});
  rel.AddRow({Value::String("quote\"and\nnewline")});
  CsvResult parsed = ReadCsvString(schema, WriteCsvString(rel));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.relation->num_rows(), 2);
  EXPECT_EQ(parsed.relation->Get(0, 0), Value::String("a\nb\nc"));
  EXPECT_EQ(parsed.relation->Get(1, 0), Value::String("quote\"and\nnewline"));
}

TEST(CsvTest, CrlfInsideAndOutsideQuotes) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kInt);
  // CRLF record separators are consumed; a CRLF inside quotes is data.
  CsvResult parsed =
      ReadCsvString(schema, "A,B\r\n\"x\r\ny\",3\r\nz,4\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.relation->num_rows(), 2);
  EXPECT_EQ(parsed.relation->Get(0, 0), Value::String("x\r\ny"));
  EXPECT_EQ(parsed.relation->Get(1, 0), Value::String("z"));
}

TEST(CsvTest, UnterminatedQuoteIsAnError) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  CsvResult parsed = ReadCsvString(schema, "A\n\"never closed\nmore text");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("unterminated"), std::string::npos)
      << parsed.error;
  EXPECT_NE(parsed.error.find("line 2"), std::string::npos) << parsed.error;
  // Same for a header left open.
  EXPECT_FALSE(ReadCsvString(schema, "\"A").ok());
}

TEST(CsvTest, FieldCountErrorReportsRecordStartLine) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kInt);
  // The bad record starts on line 4 (record 2 spans lines 2-3).
  CsvResult parsed =
      ReadCsvString(schema, "A,B\n\"two\nlines\",1\nonly_one_field\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("line 4"), std::string::npos) << parsed.error;
}

TEST(CsvTest, ErrorsAreReported) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  EXPECT_FALSE(ReadCsvString(schema, "").ok());
  EXPECT_FALSE(ReadCsvString(schema, "Wrong\nx").ok());
  EXPECT_FALSE(ReadCsvString(schema, "A\nx,y").ok());
  EXPECT_FALSE(ReadCsvFile(schema, "/nonexistent/file.csv").ok());
}

TEST(CsvTest, BadNumericFieldsBecomeNull) {
  Schema schema;
  schema.AddAttribute("N", AttrType::kInt);
  CsvResult parsed = ReadCsvString(schema, "N\nabc\n\n42\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.relation->num_rows(), 2);
  EXPECT_TRUE(parsed.relation->Get(0, 0).is_null());
  EXPECT_EQ(parsed.relation->Get(1, 0), Value::Int(42));
}

}  // namespace
}  // namespace cvrepair
