// Streaming batch repair (repair/streaming.h): the streamed result must be
// violation-free under the frozen variant after every batch, and
// bit-identical in cost — identical cell-for-cell modulo fresh-variable
// ids — to a from-scratch dirty-component repair of the accumulated
// instance, in the boxed and encoded backends, serial and threaded.
#include "repair/streaming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/incremental.h"
#include "dc/violation.h"
#include "relation/encoded.h"
#include "repair/cvtolerant.h"

namespace cvrepair {
namespace {

struct Workload {
  Relation dirty;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

Workload MakeHospWorkload() {
  HospConfig config;
  config.num_hospitals = 6;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = hosp.noise_attrs;
  return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified,
          hosp.space};
}

Workload MakeCensusWorkload() {
  CensusConfig config;
  config.num_rows = 120;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  return {InjectNoise(census.clean, noise).dirty, census.given, {}};
}

StreamingOptions MakeOptions(const Workload& w, bool encoded, int threads) {
  StreamingOptions options;
  options.repair.variants.space = w.space;
  options.repair.threads = threads;
  options.repair.use_encoded = encoded;
  return options;
}

void ApplyEditsToRelation(const std::vector<RowEdit>& edits, Relation* W) {
  for (const RowEdit& e : edits) {
    if (e.insert) {
      W->AddRow(e.values);
    } else {
      W->SetValue(e.row, e.attr, e.value);
    }
  }
}

/// Equal cell-for-cell, except that fresh variables only need to match in
/// kind (streamed and scratch runs mint ids from different counters).
void ExpectEqualModuloFresh(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId at = 0; at < a.num_attributes(); ++at) {
      const Value& va = a.Get(r, at);
      const Value& vb = b.Get(r, at);
      if (va.is_fresh() || vb.is_fresh()) {
        EXPECT_TRUE(va.is_fresh() && vb.is_fresh())
            << "cell (" << r << "," << at << "): " << va.ToString()
            << " vs " << vb.ToString();
      } else {
        EXPECT_TRUE(va == vb)
            << "cell (" << r << "," << at << "): " << va.ToString()
            << " vs " << vb.ToString();
      }
    }
  }
}

void ExpectExactlyEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId at = 0; at < a.num_attributes(); ++at) {
      EXPECT_TRUE(a.Get(r, at) == b.Get(r, at))
          << "cell (" << r << "," << at << "): " << a.Get(r, at).ToString()
          << " vs " << b.Get(r, at).ToString();
    }
  }
}

/// Streams a replay workload and checks every batch against a from-scratch
/// dirty-component repair of the accumulated instance: same violation set,
/// exactly equal cost, same cells modulo fresh ids.
void RunStreamedVsScratch(const Workload& w, bool encoded, int threads) {
  StreamingOptions options = MakeOptions(w, encoded, threads);
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, /*num_batches=*/4,
                                             /*batch_size=*/8, /*seed=*/7);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  ASSERT_TRUE(streamer.IsViolationFree());

  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    // Accumulated instance: previous streamed result plus this batch.
    Relation W = streamer.current();
    ApplyEditsToRelation(replay.batches[b], &W);

    StreamBatchResult r = streamer.ApplyBatch(replay.batches[b]);
    EXPECT_TRUE(streamer.IsViolationFree());
    EXPECT_TRUE(FindViolations(streamer.current(), streamer.variant()).empty());

    // From-scratch: full detection on W, then the same scoped solve.
    std::optional<EncodedRelation> E;
    if (encoded) E.emplace(W);
    std::vector<Violation> violations =
        E ? FindViolations(*E, streamer.variant())
          : FindViolations(W, streamer.variant());
    EXPECT_EQ(static_cast<int>(violations.size()), r.violations);

    DomainStats stats_of_W(W);
    RepairStats scratch_stats;
    MaterializedCache cold;
    int64_t scratch_fresh = 1000000;  // disjoint from the streamed ids
    std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
        W, stats_of_W, streamer.variant(), std::move(violations),
        options.repair, &cold, &scratch_stats, &scratch_fresh,
        E ? &*E : nullptr);
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->cost, r.repair_cost);  // bit-identical, not just close
    EXPECT_EQ(fix->components, r.components);
    for (auto& [cell, value] : fix->assignments) {
      W.SetValue(cell, std::move(value));
    }
    ExpectEqualModuloFresh(streamer.current(), W);
  }
}

TEST(StreamingTest, HospBoxedMatchesScratch) {
  RunStreamedVsScratch(MakeHospWorkload(), /*encoded=*/false, /*threads=*/1);
}

TEST(StreamingTest, HospEncodedMatchesScratch) {
  RunStreamedVsScratch(MakeHospWorkload(), /*encoded=*/true, /*threads=*/1);
}

TEST(StreamingTest, CensusBoxedMatchesScratch) {
  RunStreamedVsScratch(MakeCensusWorkload(), /*encoded=*/false,
                       /*threads=*/1);
}

TEST(StreamingTest, CensusEncodedMatchesScratch) {
  RunStreamedVsScratch(MakeCensusWorkload(), /*encoded=*/true,
                       /*threads=*/1);
}

TEST(StreamingTest, HospEncodedMatchesScratchAt4Threads) {
  RunStreamedVsScratch(MakeHospWorkload(), /*encoded=*/true, /*threads=*/4);
}

// Serial and 4-thread streams of the same workload must agree exactly —
// including fresh-variable ids — batch by batch.
TEST(StreamingTest, ThreadCountIsInvisible) {
  Workload w = MakeHospWorkload();
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 3, 10, /*seed=*/11);
  StreamingRepairer serial(replay.base, w.sigma, MakeOptions(w, true, 1));
  StreamingRepairer threaded(replay.base, w.sigma, MakeOptions(w, true, 4));
  ExpectExactlyEqual(serial.current(), threaded.current());
  for (const std::vector<RowEdit>& batch : replay.batches) {
    StreamBatchResult rs = serial.ApplyBatch(batch);
    StreamBatchResult rt = threaded.ApplyBatch(batch);
    EXPECT_EQ(rs.repair_cost, rt.repair_cost);
    EXPECT_EQ(rs.cells_changed, rt.cells_changed);
    EXPECT_EQ(rs.components, rt.components);
    EXPECT_EQ(rs.rows_rechecked, rt.rows_rechecked);
    ExpectExactlyEqual(serial.current(), threaded.current());
  }
}

// Delta maintenance through ApplyBatch must land on the same violation set
// as (a) per-edit ApplyChange calls for update-only batches and (b) an
// index rebuilt from the edited instance, for mixed batches with inserts.
TEST(StreamingTest, ApplyBatchMatchesPerEditAndRebuild) {
  Workload w = MakeHospWorkload();
  std::mt19937_64 rng(13);
  for (bool encoded : {false, true}) {
    ViolationIndex batch_index(w.dirty, w.sigma, encoded);
    ViolationIndex edit_index(w.dirty, w.sigma, encoded);
    const int n = w.dirty.num_rows();
    const int m = w.dirty.num_attributes();
    // Update-only batch: compare against per-edit ApplyChange.
    std::vector<RowEdit> updates;
    for (int i = 0; i < 12; ++i) {
      int row = static_cast<int>(rng() % static_cast<uint64_t>(n));
      AttrId attr = static_cast<AttrId>(rng() % static_cast<uint64_t>(m));
      Value v = w.dirty.Get(static_cast<int>(rng() % static_cast<uint64_t>(n)),
                            attr);
      updates.push_back(RowEdit::Update(row, attr, v));
    }
    batch_index.ApplyBatch(updates);
    for (const RowEdit& e : updates) {
      edit_index.ApplyChange({e.row, e.attr}, e.value);
    }
    EXPECT_EQ(batch_index.CurrentViolations(), edit_index.CurrentViolations());

    // Mixed batch with inserts: compare against a full rebuild.
    std::vector<RowEdit> mixed;
    mixed.push_back(RowEdit::Insert(w.dirty.row(0)));
    mixed.push_back(RowEdit::Insert(w.dirty.row(n / 2)));
    for (int i = 0; i < 6; ++i) {
      int row = static_cast<int>(rng() % static_cast<uint64_t>(n + 2));
      AttrId attr = static_cast<AttrId>(rng() % static_cast<uint64_t>(m));
      Value v = w.dirty.Get(static_cast<int>(rng() % static_cast<uint64_t>(n)),
                            attr);
      mixed.push_back(RowEdit::Update(row, attr, v));
    }
    std::vector<int> touched = batch_index.ApplyBatch(mixed);
    EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
    ViolationIndex rebuilt(batch_index.relation(), w.sigma, encoded);
    EXPECT_EQ(batch_index.CurrentViolations(), rebuilt.CurrentViolations());
  }
}

TEST(StreamingTest, EdgeCaseBatches) {
  Workload w = MakeHospWorkload();
  StreamingOptions options = MakeOptions(w, true, 1);
  StreamingRepairer streamer(w.dirty, w.sigma, options);
  ASSERT_TRUE(streamer.IsViolationFree());
  const Relation before = streamer.current();
  const int n = before.num_rows();

  // Empty batch: a no-op.
  StreamBatchResult empty = streamer.ApplyBatch({});
  EXPECT_EQ(empty.rows_touched, 0);
  EXPECT_EQ(empty.violations, 0);
  EXPECT_EQ(empty.cells_changed, 0);
  ExpectExactlyEqual(streamer.current(), before);

  // No-op edit: rewrite a cell with its current (non-fresh) value.
  Cell cell{0, HospAttrs::kMeasureCode};
  ASSERT_FALSE(before.Get(cell).is_fresh());
  StreamBatchResult noop =
      streamer.ApplyBatch({RowEdit::Update(cell.row, cell.attr,
                                           before.Get(cell))});
  EXPECT_EQ(noop.rows_touched, 1);
  EXPECT_EQ(noop.cells_changed, 0);
  EXPECT_TRUE(streamer.IsViolationFree());
  ExpectExactlyEqual(streamer.current(), before);

  // Duplicate edits of one cell: last one wins — the stream must end in
  // the same state as a batch carrying only the final edit.
  StreamingRepairer twice(w.dirty, w.sigma, options);
  StreamingRepairer once(w.dirty, w.sigma, options);
  Value v0 = w.dirty.Get(1, HospAttrs::kPhone);
  Value v1 = w.dirty.Get(2, HospAttrs::kPhone);
  twice.ApplyBatch({RowEdit::Update(0, HospAttrs::kPhone, v0),
                    RowEdit::Update(0, HospAttrs::kPhone, v1)});
  once.ApplyBatch({RowEdit::Update(0, HospAttrs::kPhone, v1)});
  ExpectExactlyEqual(twice.current(), once.current());

  // Insert followed by an update of the inserted row in the same batch
  // (inserts extend the index space at apply time).
  StreamBatchResult mixed = streamer.ApplyBatch(
      {RowEdit::Insert(w.dirty.row(0)),
       RowEdit::Update(n, HospAttrs::kCity, w.dirty.Get(1, HospAttrs::kCity))});
  EXPECT_EQ(streamer.current().num_rows(), n + 1);
  EXPECT_GE(mixed.rows_touched, 1);
  EXPECT_TRUE(streamer.IsViolationFree());
}

/// Regression for the cross-batch cache staleness bug: with epoch stamps
/// and row/attr eviction, a cached stream must be bit-identical — costs,
/// counters, and every cell including fresh-variable ids — to a stream
/// that solves every batch cold.
void RunCacheOnMatchesOff(const Workload& w, bool encoded) {
  StreamingOptions on = MakeOptions(w, encoded, 1);
  on.cross_batch_cache = true;
  StreamingOptions off = on;
  off.cross_batch_cache = false;
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, /*num_batches=*/5,
                                             /*batch_size=*/8, /*seed=*/23);
  StreamingRepairer cached(replay.base, w.sigma, on);
  StreamingRepairer cold(replay.base, w.sigma, off);
  ExpectExactlyEqual(cached.current(), cold.current());
  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    StreamBatchResult rc = cached.ApplyBatch(replay.batches[b]);
    StreamBatchResult rk = cold.ApplyBatch(replay.batches[b]);
    EXPECT_EQ(rc.repair_cost, rk.repair_cost);
    EXPECT_EQ(rc.cells_changed, rk.cells_changed);
    EXPECT_EQ(rc.components, rk.components);
    EXPECT_TRUE(cached.IsViolationFree());
    ExpectExactlyEqual(cached.current(), cold.current());
  }
}

TEST(StreamingTest, CacheOnMatchesOffHospBoxed) {
  RunCacheOnMatchesOff(MakeHospWorkload(), /*encoded=*/false);
}

TEST(StreamingTest, CacheOnMatchesOffHospEncoded) {
  RunCacheOnMatchesOff(MakeHospWorkload(), /*encoded=*/true);
}

TEST(StreamingTest, CacheOnMatchesOffCensusBoxed) {
  RunCacheOnMatchesOff(MakeCensusWorkload(), /*encoded=*/false);
}

TEST(StreamingTest, CacheOnMatchesOffCensusEncoded) {
  RunCacheOnMatchesOff(MakeCensusWorkload(), /*encoded=*/true);
}

// The same bit-identity must survive the unfrozen path: a drifting stream
// with reopen_variants exercises the variant-switch cache sweep (Def. 7
// refinement check plus diff eviction), and a sweep that keeps one stale
// entry too many would show up as diverging cells here.
TEST(StreamingTest, CacheOnMatchesOffWithReopens) {
  Workload w = MakeHospWorkload();
  StreamingOptions on = MakeOptions(w, /*encoded=*/true, 1);
  on.reopen_variants = true;
  on.cross_batch_cache = true;
  StreamingOptions off = on;
  off.cross_batch_cache = false;
  ReplayWorkload replay = MakeDriftWorkload(w.dirty, /*num_batches=*/6,
                                            /*batch_size=*/10, /*seed=*/29);
  StreamingRepairer cached(replay.base, w.sigma, on);
  StreamingRepairer cold(replay.base, w.sigma, off);
  ExpectExactlyEqual(cached.current(), cold.current());
  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    StreamBatchResult rc = cached.ApplyBatch(replay.batches[b]);
    StreamBatchResult rk = cold.ApplyBatch(replay.batches[b]);
    EXPECT_EQ(rc.repair_cost, rk.repair_cost);
    EXPECT_EQ(rc.reopened, rk.reopened);
    EXPECT_EQ(rc.variant_switched, rk.variant_switched);
    EXPECT_TRUE(cached.variant() == cold.variant());
    ExpectExactlyEqual(cached.current(), cold.current());
  }
  EXPECT_GT(cached.totals().variant_reopens, 0);
}

// Satellite of the unfrozen-Σ' work: after a mid-stream variant switch the
// held instance must match the from-scratch factored search on the
// accumulated dirty instance — same Σ', same cost, same cells modulo
// fresh ids. (tests/variant_drift_test.cc pins the per-batch version.)
TEST(StreamingTest, ScratchEquivalenceHoldsAfterVariantSwitch) {
  Workload w = MakeHospWorkload();
  StreamingOptions options = MakeOptions(w, /*encoded=*/true, 1);
  options.reopen_variants = true;
  ReplayWorkload replay = MakeDriftWorkload(w.dirty, /*num_batches=*/6,
                                            /*batch_size=*/10, /*seed=*/29);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  bool switched = false;
  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    StreamBatchResult r = streamer.ApplyBatch(replay.batches[b]);
    EXPECT_TRUE(streamer.IsViolationFree());
    EXPECT_TRUE(FindViolations(streamer.current(), streamer.variant()).empty());
    if (!r.variant_switched) continue;
    switched = true;
    // From-scratch twin on the accumulated dirty instance D: full
    // per-constraint fact scans feeding the same factored candidate loop.
    const VariantTracker& t = *streamer.tracker();
    std::optional<EncodedRelation> E;
    if (options.repair.use_encoded) E.emplace(t.dirty());
    std::map<DenialConstraint, VariantFacts> facts = ScanVariantFacts(
        t.dirty(), w.sigma, t.variants(), options.repair, E ? &*E : nullptr);
    int64_t scratch_fresh = 1000000;  // disjoint from the streamed ids
    VariantSearchResult sr = CVTolerantSearchWithFacts(
        t.dirty(), w.sigma, t.variants(),
        [&facts](const DenialConstraint& c) -> const VariantFacts& {
          return facts.at(c);
        },
        options.repair, &scratch_fresh, E ? &*E : nullptr);
    ASSERT_TRUE(sr.have_result);
    EXPECT_TRUE(sr.variant == streamer.variant());
    EXPECT_EQ(sr.cost, streamer.realized_cost());
    ExpectEqualModuloFresh(streamer.current(), sr.repaired);
  }
  EXPECT_TRUE(switched) << "drift stream never forced a variant switch — "
                           "retune MakeDriftWorkload parameters";
}

// Cross-batch solution reuse keeps the invariant after every batch (the
// bit-identity to the cold default is pinned by CacheOnMatchesOff*).
TEST(StreamingTest, CrossBatchCacheStaysViolationFree) {
  Workload w = MakeHospWorkload();
  StreamingOptions options = MakeOptions(w, true, 1);
  options.cross_batch_cache = true;
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 4, 8, /*seed=*/17);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    streamer.ApplyBatch(batch);
    EXPECT_TRUE(streamer.IsViolationFree());
    EXPECT_TRUE(FindViolations(streamer.current(), streamer.variant()).empty());
  }
}

// The localization claim behind the subsystem: streamed detection work
// stays well below one full re-detection per batch.
TEST(StreamingTest, RecheckWorkIsLocalizedToBatches) {
  Workload w = MakeCensusWorkload();
  StreamingOptions options = MakeOptions(w, true, 1);
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, 5, 6, /*seed=*/19);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  for (const std::vector<RowEdit>& batch : replay.batches) {
    streamer.ApplyBatch(batch);
  }
  const StreamTotals& t = streamer.totals();
  // Full re-detection scans every row once per constraint; rows_rechecked
  // counts (constraint, row) scans, so the scratch equivalent is
  // batches * rows * |sigma|.
  const int64_t full_rescans =
      t.batches * streamer.current().num_rows() *
      static_cast<int64_t>(streamer.variant().size());
  EXPECT_LT(t.rows_rechecked, full_rescans / 2) << "no localization win";
  EXPECT_GT(t.rows_ingested, 0);
}

}  // namespace
}  // namespace cvrepair
