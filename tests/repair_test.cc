#include <gtest/gtest.h>

#include <random>

#include "paper_example.h"
#include "repair/greedy.h"
#include "repair/holistic.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi2;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

TEST(VfreeTest, RepairsPhi4PrimeWithSingleCellChange) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // The minimum repair sets t4.Tax := 0 (Example 4): exactly one cell.
  EXPECT_EQ(r.stats.changed_cells, 1);
  AttrId tax = *rel.schema().Find("Tax");
  EXPECT_DOUBLE_EQ(r.repaired.Get(3, tax).numeric(), 0.0);
  EXPECT_EQ(r.stats.rounds, 1);
  EXPECT_EQ(r.stats.initial_violations, 3);
}

TEST(VfreeTest, PreciseFdRepairsOnlyDirtyCells) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi2(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // φ2 violations: the three starred CPs against their twins -> 3 cells.
  EXPECT_EQ(r.stats.changed_cells, 3);
  AttrId cp = *rel.schema().Find("CP");
  // Figure 1(c): each starred value repaired to its twin's value.
  std::vector<Value> repaired_cps = {r.repaired.Get(1, cp),
                                     r.repaired.Get(4, cp),
                                     r.repaired.Get(7, cp)};
  EXPECT_EQ(repaired_cps[0], Value::String("564-389"));
  EXPECT_EQ(repaired_cps[1], Value::String("930-198"));
  EXPECT_EQ(repaired_cps[2], Value::String("824-870"));
}

TEST(VfreeTest, OversimplifiedFdOverRepairs) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel)};
  RepairResult r = VfreeRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // Figure 1(b): φ1 forces CP agreement inside every name group — far
  // more changes than the 3 truly dirty cells.
  EXPECT_GT(r.stats.changed_cells, 3);
}

TEST(HolisticTest, SatisfiesConstraintsAndCountsRounds) {
  Relation rel = PaperIncomeRelation();
  for (ConstraintSet sigma :
       {ConstraintSet{Phi4Prime(rel)}, ConstraintSet{Phi2(rel)},
        ConstraintSet{Phi1(rel), Phi4Prime(rel)}}) {
    RepairResult r = HolisticRepair(rel, sigma);
    EXPECT_TRUE(Satisfies(r.repaired, sigma));
    EXPECT_GE(r.stats.rounds, 1);
  }
}

TEST(HolisticTest, IncrementalModeMatchesViolationFreeness) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel), Phi4Prime(rel)};
  HolisticOptions options;
  options.incremental = true;
  RepairResult r = HolisticRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  // Same ballpark as the full-detection mode.
  RepairResult full = HolisticRepair(rel, sigma);
  EXPECT_NEAR(r.stats.changed_cells, full.stats.changed_cells, 3);
}

TEST(GreedyTest, SatisfiesConstraints) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel)};
  RepairResult r = GreedyRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_GE(r.stats.changed_cells, 1);
}

TEST(VfreeTest, DataRepairAbortsWhenCostBoundExceeded) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel)};  // needs many changes
  DomainStats stats(rel);
  std::vector<Violation> violations = FindViolations(rel, sigma);
  ConflictHypergraph g = ConflictHypergraph::Build(rel, sigma, violations);
  VertexCover cover = ApproximateVertexCover(g);
  RepairStats rstats;
  int64_t fresh = 1;
  std::optional<Relation> out = DataRepairVfree(
      rel, stats, sigma, cover.Cells(g), /*delta_min=*/0.5, VfreeOptions{},
      nullptr, &rstats, &fresh);
  EXPECT_FALSE(out.has_value());  // Algorithm 2 lines 18-19
}

// ----- Property: one-round violation-freeness on randomized instances.

struct RandomCase {
  int seed;
  int rows;
};

class VfreePropertyTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(VfreePropertyTest, OneRoundRepairAlwaysSatisfiesSigma) {
  RandomCase param = GetParam();
  std::mt19937_64 rng(param.seed);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  schema.AddAttribute("X", AttrType::kInt);
  schema.AddAttribute("Y", AttrType::kInt);
  Relation rel(schema);
  std::uniform_int_distribution<int> cat(0, 4);
  std::uniform_int_distribution<int> num(0, 20);
  for (int i = 0; i < param.rows; ++i) {
    rel.AddRow({Value::String("a" + std::to_string(cat(rng))),
                Value::String("b" + std::to_string(cat(rng))),
                Value::Int(num(rng)), Value::Int(num(rng))});
  }
  // A mixed constraint set: an FD, an order DC, and a constant DC.
  ConstraintSet sigma = {
      DenialConstraint::FromFd({0}, 1, "fd"),
      DenialConstraint({Predicate::TwoCell(0, 2, Op::kGt, 1, 2),
                        Predicate::TwoCell(0, 3, Op::kLt, 1, 3)},
                       "order"),
      DenialConstraint(
          {Predicate::WithConstant(0, 2, Op::kGt, Value::Int(18))}, "cap")};

  RepairResult r = VfreeRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma))
      << "Vfree must be violation-free in ONE round (Proposition 5), "
      << "seed=" << param.seed;
  EXPECT_EQ(r.stats.rounds, 1);
  // Untouched rows/attrs keep their values (value modification only).
  EXPECT_EQ(r.repaired.num_rows(), rel.num_rows());
}

TEST_P(VfreePropertyTest, HolisticEventuallySatisfiesSigma) {
  RandomCase param = GetParam();
  std::mt19937_64 rng(param.seed * 31 + 1);
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("X", AttrType::kInt);
  Relation rel(schema);
  std::uniform_int_distribution<int> cat(0, 3);
  std::uniform_int_distribution<int> num(0, 15);
  for (int i = 0; i < param.rows; ++i) {
    rel.AddRow({Value::String("a" + std::to_string(cat(rng))),
                Value::Int(num(rng))});
  }
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1, "fd")};
  RepairResult r = HolisticRepair(rel, sigma);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, VfreePropertyTest,
    ::testing::Values(RandomCase{1, 20}, RandomCase{2, 30}, RandomCase{3, 40},
                      RandomCase{4, 25}, RandomCase{5, 50}, RandomCase{6, 35},
                      RandomCase{7, 45}, RandomCase{8, 60}, RandomCase{9, 15},
                      RandomCase{10, 55}));

}  // namespace
}  // namespace cvrepair
