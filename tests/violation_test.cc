#include "dc/violation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "paper_example.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

std::set<std::pair<int, int>> AsPairs(const std::vector<Violation>& v) {
  std::set<std::pair<int, int>> out;
  for (const Violation& viol : v) out.insert({viol.rows[0], viol.rows[1]});
  return out;
}

TEST(ViolationTest, Example6ViolationsOfPhi4Prime) {
  Relation rel = PaperIncomeRelation();
  std::vector<Violation> v = FindViolationsOf(rel, Phi4Prime(rel));
  // viol(I, φ4') = {<t5,t4>, <t6,t4>, <t7,t4>} (rows 4,5,6 vs 3).
  EXPECT_EQ(AsPairs(v),
            (std::set<std::pair<int, int>>{{4, 3}, {5, 3}, {6, 3}}));
}

TEST(ViolationTest, Phi1FindsAllSameNameDifferentCpPairs) {
  Relation rel = PaperIncomeRelation();
  std::vector<Violation> v = FindViolationsOf(rel, Phi1(rel));
  // Ayres group {0,1,2}: CPs 322-573, ***-389, 564-389 — all distinct.
  // Each unordered conflicting pair appears in both orientations.
  std::set<std::pair<int, int>> pairs = AsPairs(v);
  EXPECT_TRUE(pairs.count({0, 1}));
  EXPECT_TRUE(pairs.count({1, 0}));
  EXPECT_TRUE(pairs.count({1, 2}));
  // Dustin rows 7 and 8 have different CPs.
  EXPECT_TRUE(pairs.count({7, 8}));
  // No cross-name violations.
  EXPECT_FALSE(pairs.count({0, 3}));
}

TEST(ViolationTest, HashPartitioningAgreesWithBruteForce) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi1 = Phi1(rel);
  std::set<std::pair<int, int>> brute;
  for (int i = 0; i < rel.num_rows(); ++i) {
    for (int j = 0; j < rel.num_rows(); ++j) {
      if (i != j && phi1.IsViolated(rel, {i, j})) brute.insert({i, j});
    }
  }
  EXPECT_EQ(AsPairs(FindViolationsOf(rel, phi1)), brute);
}

TEST(ViolationTest, SatisfiesShortCircuit) {
  Relation rel = PaperIncomeRelation();
  EXPECT_FALSE(Satisfies(rel, {Phi1(rel)}));
  // Name -> Name trivially holds.
  AttrId name = *rel.schema().Find("Name");
  DenialConstraint tautology = DenialConstraint::FromFd({name}, name);
  EXPECT_TRUE(Satisfies(rel, {tautology}));
}

TEST(ViolationTest, SingleTupleConstraints) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  AttrId income = *rel.schema().Find("Income");
  // not(Tax > Income) holds everywhere.
  DenialConstraint ok({Predicate::TwoCell(0, tax, Op::kGt, 0, income)});
  EXPECT_TRUE(FindViolationsOf(rel, ok).empty());
  // not(Income >= 100) flags t8, t9, t10 (rows 7, 8, 9).
  DenialConstraint rich(
      {Predicate::WithConstant(0, income, Op::kGeq, Value::Double(100))});
  std::vector<Violation> v = FindViolationsOf(rel, rich);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].rows, std::vector<int>{7});
  EXPECT_EQ(v[2].rows, std::vector<int>{9});
}

TEST(ViolationTest, ViolationCellsExample6) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi4p = Phi4Prime(rel);
  AttrId income = *rel.schema().Find("Income");
  AttrId tax = *rel.schema().Find("Tax");
  std::vector<Cell> cells = ViolationCells(phi4p, {4, 3});
  // cell(t5, t4; φ4') = {t5.Income, t4.Income, t5.Tax, t4.Tax}.
  EXPECT_EQ(cells.size(), 4u);
  EXPECT_NE(std::find(cells.begin(), cells.end(), Cell{4, income}),
            cells.end());
  EXPECT_NE(std::find(cells.begin(), cells.end(), Cell{3, tax}), cells.end());
}

TEST(SuspectTest, Example9SuspectsOfPhi4Prime) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  CellSet changing = {{3, tax}};  // C = {t4.Tax}
  std::vector<Violation> s = FindSuspects(rel, {Phi4Prime(rel)}, changing);
  // susp = {<t4,t1>,<t4,t2>,<t4,t3>,<t5,t4>,<t6,t4>,<t7,t4>,<t8,t4>,
  //         <t9,t4>,<t10,t4>} (Example 9).
  std::set<std::pair<int, int>> expected = {{3, 0}, {3, 1}, {3, 2},
                                            {4, 3}, {5, 3}, {6, 3},
                                            {7, 3}, {8, 3}, {9, 3}};
  EXPECT_EQ(AsPairs(s), expected);
}

TEST(SuspectTest, Lemma4ViolationsAreSuspects) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4Prime(rel), Phi1(rel)};
  std::vector<Violation> violations = FindViolations(rel, sigma);
  // Any changing set covering all violations must suspect every violation.
  CellSet changing;
  for (const Violation& v : violations) {
    for (const Cell& c : ViolationCells(sigma[v.constraint_index], v.rows)) {
      changing.insert(c);
    }
  }
  std::vector<Violation> suspects = FindSuspects(rel, sigma, changing);
  std::set<std::pair<int, int>> suspect_pairs;
  for (const Violation& s : suspects) {
    suspect_pairs.insert({s.rows[0], s.rows[1]});
  }
  for (const Violation& v : violations) {
    EXPECT_TRUE(suspect_pairs.count({v.rows[0], v.rows[1]}))
        << "violation <" << v.rows[0] << "," << v.rows[1]
        << "> must be suspected (Lemma 4)";
  }
}

TEST(SuspectTest, NoSuspectsWhenChangingSetOffConstraintAttrs) {
  Relation rel = PaperIncomeRelation();
  AttrId year = *rel.schema().Find("Year");
  CellSet changing = {{3, year}};
  EXPECT_TRUE(FindSuspects(rel, {Phi4Prime(rel)}, changing).empty());
}

// Exact-cap semantics, pinned for every scan path: with V violations in
// total, cap = V returns the complete result with truncated *false* (the
// scan finished exactly at the cap — nothing was cut), cap = V - 1 returns
// the first V - 1 violations of the uncapped order with truncated true,
// and cap = V + 1 is indistinguishable from uncapped. The capped result is
// always a prefix of the uncapped one.
void CheckExactCapSemantics(const Relation& I, const DenialConstraint& c,
                            const std::string& context) {
  bool truncated = true;
  std::vector<Violation> all = FindViolationsOfCapped(
      I, c, 0, std::numeric_limits<int64_t>::max(), &truncated);
  ASSERT_FALSE(truncated) << context;
  const int64_t v = static_cast<int64_t>(all.size());
  ASSERT_GE(v, 2) << context << ": need >= 2 violations to pin the cap";
  for (int64_t cap : {v - 1, v, v + 1}) {
    bool capped_truncated = false;
    std::vector<Violation> capped =
        FindViolationsOfCapped(I, c, 0, cap, &capped_truncated);
    int64_t expect_size = std::min(cap, v);
    ASSERT_EQ(static_cast<int64_t>(capped.size()), expect_size)
        << context << " cap " << cap;
    EXPECT_EQ(capped_truncated, v > cap) << context << " cap " << cap;
    for (int64_t i = 0; i < expect_size; ++i) {
      ASSERT_EQ(capped[static_cast<size_t>(i)], all[static_cast<size_t>(i)])
          << context << " cap " << cap << ": not the uncapped prefix at " << i;
    }
  }
}

class PoolGuard {
 public:
  ~PoolGuard() { ThreadPool::SetNumThreads(1); }
};

// Small instances: the serial 1-tuple row scan, the hash-partition block
// scan, and the no-join pair scan.
TEST(ViolationCapTest, ExactCapOnSerialPaths) {
  Relation rel = PaperIncomeRelation();
  AttrId income = *rel.schema().Find("Income");
  DenialConstraint rich(
      {Predicate::WithConstant(0, income, Op::kGeq, Value::Double(100))});
  CheckExactCapSemantics(rel, rich, "serial 1-tuple");
  CheckExactCapSemantics(rel, Phi1(rel), "serial partition-block");
  CheckExactCapSemantics(rel, Phi4Prime(rel), "serial no-join pairs");
}

// Large instances at 4 threads: the row-range shards and the
// partition-block shards, where the cap must survive the local_cap = cap+1
// overscan and the in-order merge.
TEST(ViolationCapTest, ExactCapOnShardedPaths) {
  PoolGuard guard;
  ThreadPool::SetNumThreads(4);

  CensusConfig census_config;
  census_config.num_rows = 9000;  // above the 8192 row-shard threshold
  CensusData census = MakeCensus(census_config);
  // not(Income >= tax_threshold): a constant unary DC violated by every
  // taxpaying row — thousands of violations across all row shards.
  DenialConstraint high_income({Predicate::WithConstant(
      0, CensusAttrs::kIncome, Op::kGeq,
      Value::Double(census_config.tax_threshold))});
  ASSERT_GE(FindViolationsOf(census.clean, high_income).size(), 2u);
  CheckExactCapSemantics(census.clean, high_income, "sharded 1-tuple rows");

  HospConfig hosp_config;
  hosp_config.num_hospitals = 12;
  hosp_config.measures_per_hospital = 30;  // blocks of 30+: work > 8192
  HospData hosp = MakeHosp(hosp_config);
  NoiseConfig hosp_noise;
  hosp_noise.error_rate = 0.1;
  hosp_noise.target_attrs = hosp.noise_attrs;
  hosp_noise.seed = 13;
  Relation hosp_dirty = InjectNoise(hosp.clean, hosp_noise).dirty;
  bool found_fd = false;
  for (const DenialConstraint& c : hosp.given_oversimplified) {
    if (c.NumTupleVars() != 2) continue;
    if (FindViolationsOf(hosp_dirty, c).size() < 2) continue;
    found_fd = true;
    CheckExactCapSemantics(hosp_dirty, c, "sharded partition blocks");
  }
  EXPECT_TRUE(found_fd);
}

}  // namespace
}  // namespace cvrepair
