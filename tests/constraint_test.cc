#include "dc/constraint.h"

#include <gtest/gtest.h>

#include "dc/parser.h"
#include "paper_example.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi2;
using testing_fixture::Phi3;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

TEST(PredicateTest, EvalOnPaperRows) {
  Relation rel = PaperIncomeRelation();
  AttrId name = *rel.schema().Find("Name");
  Predicate same_name = Predicate::TwoCell(0, name, Op::kEq, 1, name);
  EXPECT_TRUE(same_name.Eval(rel, {0, 1}));   // Ayres vs Ayres
  EXPECT_FALSE(same_name.Eval(rel, {0, 3}));  // Ayres vs Stanley

  AttrId income = *rel.schema().Find("Income");
  Predicate income_gt = Predicate::TwoCell(0, income, Op::kGt, 1, income);
  EXPECT_TRUE(income_gt.Eval(rel, {1, 0}));  // 22 > 21
  EXPECT_FALSE(income_gt.Eval(rel, {0, 1}));

  Predicate adult =
      Predicate::WithConstant(0, income, Op::kGeq, Value::Double(100));
  EXPECT_TRUE(adult.Eval(rel, {7}));
  EXPECT_FALSE(adult.Eval(rel, {0}));
}

TEST(PredicateTest, CellsAndArity) {
  Relation rel = PaperIncomeRelation();
  AttrId income = *rel.schema().Find("Income");
  AttrId tax = *rel.schema().Find("Tax");
  Predicate p = Predicate::TwoCell(0, income, Op::kGt, 1, income);
  std::vector<Cell> cells = p.Cells({4, 3});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], (Cell{4, income}));
  EXPECT_EQ(cells[1], (Cell{3, income}));
  EXPECT_EQ(p.MaxTupleVar(), 1);

  Predicate single = Predicate::TwoCell(0, tax, Op::kGt, 0, income);
  EXPECT_EQ(single.MaxTupleVar(), 0);
  EXPECT_EQ(single.Cells({4}).size(), 2u);
}

TEST(ConstraintTest, ViolationSemanticsExample2) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi1 = Phi1(rel);
  // Example 2: <t1, t2> violates φ1; <t1, t4> satisfies it.
  EXPECT_TRUE(phi1.IsViolated(rel, {0, 1}));
  EXPECT_TRUE(phi1.IsSatisfied(rel, {0, 3}));
}

TEST(ConstraintTest, DegreeCountsDistinctSymbolicCells) {
  Relation rel = PaperIncomeRelation();
  // φ4' has 4 distinct cells: t0.Income, t1.Income, t0.Tax, t1.Tax
  // (Example 7: Deg = 4).
  EXPECT_EQ(Phi4Prime(rel).Degree(), 4);
  EXPECT_EQ(Phi1(rel).Degree(), 4);
  EXPECT_EQ(Phi2(rel).Degree(), 6);
}

TEST(ConstraintTest, FromFdMatchesParsedForm) {
  Relation rel = PaperIncomeRelation();
  AttrId name = *rel.schema().Find("Name");
  AttrId bday = *rel.schema().Find("Birthday");
  AttrId cp = *rel.schema().Find("CP");
  DenialConstraint fd = DenialConstraint::FromFd({name, bday}, cp);
  EXPECT_EQ(fd, Phi2(rel));
  EXPECT_EQ(fd.NumTupleVars(), 2);
}

TEST(ConstraintTest, TrivialityDetection) {
  Relation rel = PaperIncomeRelation();
  AttrId tax = *rel.schema().Find("Tax");
  // Tax = Tax' and Tax != Tax' together can never hold: trivial.
  DenialConstraint trivial({Predicate::TwoCell(0, tax, Op::kEq, 1, tax),
                            Predicate::TwoCell(0, tax, Op::kNeq, 1, tax)});
  EXPECT_TRUE(trivial.IsTrivial());
  // < together with = on the same operands: trivial.
  DenialConstraint trivial2({Predicate::TwoCell(0, tax, Op::kLt, 1, tax),
                             Predicate::TwoCell(0, tax, Op::kEq, 1, tax)});
  EXPECT_TRUE(trivial2.IsTrivial());
  // < with <= is redundant but not trivial.
  DenialConstraint fine({Predicate::TwoCell(0, tax, Op::kLt, 1, tax),
                         Predicate::TwoCell(0, tax, Op::kLeq, 1, tax)});
  EXPECT_FALSE(fine.IsTrivial());
  // Self-comparison with an irreflexive operator is trivial.
  DenialConstraint self({Predicate::TwoCell(0, tax, Op::kLt, 0, tax)});
  EXPECT_TRUE(self.IsTrivial());
  EXPECT_FALSE(Phi4(rel).IsTrivial());
}

TEST(ConstraintTest, RefinementDefinition3) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi1 = Phi1(rel);
  DenialConstraint phi2 = Phi2(rel);
  DenialConstraint phi3 = Phi3(rel);
  // φ1 ⪯ φ2 ⪯ φ3 (each inserts predicates).
  EXPECT_TRUE(phi1.IsRefinedBy(phi2));
  EXPECT_TRUE(phi2.IsRefinedBy(phi3));
  EXPECT_TRUE(phi1.IsRefinedBy(phi3));
  EXPECT_FALSE(phi2.IsRefinedBy(phi1));
  // Every constraint refines itself.
  EXPECT_TRUE(phi1.IsRefinedBy(phi1));
  // Operator strengthening refines: < refines <= (Example: Tax).
  DenialConstraint phi4 = Phi4(rel);
  DenialConstraint phi4p = Phi4Prime(rel);
  EXPECT_TRUE(phi4.IsRefinedBy(phi4p));
  EXPECT_FALSE(phi4p.IsRefinedBy(phi4));
}

TEST(ConstraintTest, Example5RefinementWithOperators) {
  Relation rel = PaperIncomeRelation();
  // φ6 (Income <=) is refined by φ5 (Income =): <= ∈ Imp(=).
  DenialConstraint phi5 = testing_fixture::Parse(
      rel, "not(t0.Name=t1.Name & t0.Income=t1.Income & t0.CP!=t1.CP)");
  DenialConstraint phi6 = testing_fixture::Parse(
      rel, "not(t0.Name=t1.Name & t0.Income<=t1.Income & t0.CP!=t1.CP)");
  EXPECT_TRUE(phi6.IsRefinedBy(phi5));
  EXPECT_FALSE(phi5.IsRefinedBy(phi6));
}

TEST(ConstraintSetTest, SetLevelRefinementDefinition4) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet s1 = {Phi1(rel), Phi4(rel)};
  ConstraintSet s2 = {Phi2(rel), Phi4Prime(rel)};
  EXPECT_TRUE(IsRefinedBy(s1, s2));
  EXPECT_FALSE(IsRefinedBy(s2, s1));
  EXPECT_EQ(Degree(s1), 4);
  EXPECT_EQ(MaxTupleVars(s1), 2);
}

TEST(ConstraintTest, CanonicalizationDeduplicatesAndSorts) {
  Relation rel = PaperIncomeRelation();
  AttrId name = *rel.schema().Find("Name");
  AttrId cp = *rel.schema().Find("CP");
  Predicate a = Predicate::TwoCell(0, name, Op::kEq, 1, name);
  Predicate b = Predicate::TwoCell(0, cp, Op::kNeq, 1, cp);
  DenialConstraint c1({a, b, a});
  DenialConstraint c2({b, a});
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1.size(), 2);
}

TEST(ConstraintTest, WithAndWithoutPredicate) {
  Relation rel = PaperIncomeRelation();
  DenialConstraint phi1 = Phi1(rel);
  AttrId bday = *rel.schema().Find("Birthday");
  Predicate extra = Predicate::TwoCell(0, bday, Op::kEq, 1, bday);
  DenialConstraint refined = phi1.WithPredicate(extra);
  EXPECT_EQ(refined, Phi2(rel));
  EXPECT_TRUE(refined.Contains(extra));
  EXPECT_TRUE(refined.ContainsOperands(extra.WithOp(Op::kNeq)));
  // Removing it again restores φ1.
  for (int i = 0; i < refined.size(); ++i) {
    if (refined.predicates()[i] == extra) {
      EXPECT_EQ(refined.WithoutPredicate(i), phi1);
    }
  }
}

}  // namespace
}  // namespace cvrepair
