// Equivalence contract of the block scan kernels (dc/scan_kernels.h):
//
//  * kernel level — EvalBlock must be bit-identical between the scalar
//    reference and the SIMD paths on randomized codes/ranks, including
//    sentinel-heavy and partial-tail blocks, and MayMatch == false must
//    imply an all-zero selection bitmap (zone-map skips are sound);
//  * scan level — FindViolations / FindViolationsOfCapped / FindSuspects
//    on every dataset generator must produce identical violations, capped
//    prefixes, truncated flags, and (thread-invariant) work counters
//    across block-scan on/off, SIMD on/off, and 1 vs 4 threads;
//  * maintenance level — all-NULL / all-fresh / tail blocks scan
//    correctly, zone maps follow ApplyChange (including dictionary-epoch
//    bumps mid-workload), and ViolationIndex recompiles exactly the
//    per-attribute-stale evaluators (the recompilation regression).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "data/census.h"
#include "data/gps.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "data/tax.h"
#include "dc/eval_index.h"
#include "dc/incremental.h"
#include "dc/scan_kernels.h"
#include "dc/violation.h"
#include "relation/encoded.h"
#include "util/thread_pool.h"

namespace cvrepair {
namespace {

using scan_kernels::BlockPredicate;

// ---------------------------------------------------------------------------
// Kernel level: randomized scalar-vs-SIMD equivalence and skip soundness.
// ---------------------------------------------------------------------------

// A synthetic dictionary rank array: `dict_size` codes split over the two
// comparison classes, each class ranked by a shuffled permutation — the
// same invariants (packed class|rank, distinct ranks per class) a real
// Dictionary maintains.
std::vector<int32_t> MakeRanks(int dict_size, std::mt19937* rng) {
  std::vector<int32_t> cls(dict_size);
  for (int& c : cls) c = static_cast<int>((*rng)() % 2);
  std::vector<int32_t> ranks(dict_size);
  for (int c = 0; c < 2; ++c) {
    std::vector<int> members;
    for (int i = 0; i < dict_size; ++i) {
      if (cls[i] == c) members.push_back(i);
    }
    std::shuffle(members.begin(), members.end(), *rng);
    for (size_t r = 0; r < members.size(); ++r) {
      ranks[members[r]] =
          (c << Dictionary::kRankBits) | static_cast<int32_t>(r);
    }
  }
  return ranks;
}

std::vector<Code> MakeCodes(int n, int dict_size, double sentinel_rate,
                            std::mt19937* rng) {
  std::vector<Code> codes(n);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (Code& c : codes) {
    if (coin(*rng) < sentinel_rate) {
      c = coin(*rng) < 0.5 ? kNullCode : kFreshCode;
    } else {
      c = static_cast<Code>((*rng)() % dict_size);
    }
  }
  return codes;
}

BlockPredicate RandomPredicate(int dict_size, const std::vector<int32_t>& ranks,
                               std::mt19937* rng) {
  BlockPredicate p;
  Code c = static_cast<Code>((*rng)() % dict_size);
  switch ((*rng)() % 4) {
    case 0:
      p.kind = BlockPredicate::Kind::kNever;
      break;
    case 1:
      p.kind = BlockPredicate::Kind::kEqCode;
      p.code = c;
      break;
    case 2:
      p.kind = BlockPredicate::Kind::kNeqCode;
      p.code = c;
      p.cls = ranks[c] >> Dictionary::kRankBits;
      break;
    default: {
      p.kind = BlockPredicate::Kind::kRankRange;
      int32_t a = ranks[static_cast<Code>((*rng)() % dict_size)];
      int32_t b = ranks[c];
      p.lo = std::min(a, b);
      p.hi = std::max(a, b);
      break;
    }
  }
  return p;
}

class SimdToggle {
 public:
  explicit SimdToggle(bool enabled) { scan_kernels::SetSimdEnabled(enabled); }
  ~SimdToggle() { scan_kernels::SetSimdEnabled(true); }
};

class BlockScanToggle {
 public:
  explicit BlockScanToggle(bool enabled) {
    scan_kernels::SetBlockScanEnabled(enabled);
  }
  ~BlockScanToggle() { scan_kernels::SetBlockScanEnabled(true); }
};

TEST(ScanKernelTest, ScalarAndSimdBitmapsAreBitIdentical) {
  std::mt19937 rng(17);
  const int kDict = 200;
  std::vector<int32_t> ranks = MakeRanks(kDict, &rng);
  // Lane counts straddling every vector width and bitmap-word boundary,
  // plus full and near-full blocks.
  const int kLaneCounts[] = {0, 1, 3, 7, 8, 9, 15, 16, 63,
                             64, 65, 100, 1000, 1023, 1024};
  for (double sentinel_rate : {0.0, 0.3, 1.0}) {
    for (int n : kLaneCounts) {
      std::vector<Code> codes = MakeCodes(n, kDict, sentinel_rate, &rng);
      for (int trial = 0; trial < 8; ++trial) {
        BlockPredicate p = RandomPredicate(kDict, ranks, &rng);
        uint64_t scalar_bm[EncodedRelation::kBlockSize / 64];
        uint64_t simd_bm[EncodedRelation::kBlockSize / 64];
        {
          SimdToggle off(false);
          scan_kernels::EvalBlock(p, codes.data(), n, ranks.data(), scalar_bm);
        }
        {
          SimdToggle on(true);
          scan_kernels::EvalBlock(p, codes.data(), n, ranks.data(), simd_bm);
        }
        int words = (n + 63) / 64;
        for (int w = 0; w < words; ++w) {
          ASSERT_EQ(scalar_bm[w], simd_bm[w])
              << "n=" << n << " sentinel_rate=" << sentinel_rate
              << " kind=" << static_cast<int>(p.kind) << " word=" << w;
        }
      }
    }
  }
}

TEST(ScanKernelTest, MayMatchFalseImpliesEmptyBitmap) {
  std::mt19937 rng(23);
  const int kDict = 64;
  std::vector<int32_t> ranks = MakeRanks(kDict, &rng);
  int skipped = 0;
  for (int trial = 0; trial < 500; ++trial) {
    int n = 1 + static_cast<int>(rng() % EncodedRelation::kBlockSize);
    // Narrow code range per block so zones actually exclude predicates.
    int lo_code = static_cast<int>(rng() % kDict);
    int width = 1 + static_cast<int>(rng() % 8);
    std::vector<Code> codes(n);
    for (Code& c : codes) {
      c = rng() % 10 == 0
              ? kNullCode
              : static_cast<Code>(lo_code + rng() % width) % kDict;
    }
    int32_t zone_min = 0, zone_max = 0;
    scan_kernels::ComputeZone(codes.data(), n, ranks.data(), &zone_min,
                              &zone_max);
    BlockPredicate p = RandomPredicate(kDict, ranks, &rng);
    if (scan_kernels::MayMatch(p, zone_min, zone_max, ranks.data())) continue;
    ++skipped;
    uint64_t bm[EncodedRelation::kBlockSize / 64];
    scan_kernels::EvalBlock(p, codes.data(), n, ranks.data(), bm);
    for (int w = 0; w < (n + 63) / 64; ++w) {
      ASSERT_EQ(bm[w], 0u) << "zone-skipped predicate matched a lane";
    }
  }
  // The trial mix must actually exercise skips for the test to mean much.
  EXPECT_GT(skipped, 50);
}

TEST(ScanKernelTest, CompileProbeSentinelIsNever) {
  std::mt19937 rng(29);
  std::vector<int32_t> ranks = MakeRanks(16, &rng);
  for (Code sentinel : {kNullCode, kFreshCode, kAbsentCode}) {
    for (Op op : {Op::kEq, Op::kNeq, Op::kLt, Op::kGeq}) {
      BlockPredicate p =
          scan_kernels::CompileProbe(op, false, sentinel, ranks.data());
      EXPECT_EQ(p.kind, BlockPredicate::Kind::kNever);
    }
  }
}

// ---------------------------------------------------------------------------
// Scan level: end-to-end equivalence across every generator and backend
// configuration.
// ---------------------------------------------------------------------------

struct Workload {
  std::string name;
  Relation dirty;
  ConstraintSet sigma;
};

NoisyData Corrupt(const Relation& clean, const std::vector<AttrId>& attrs) {
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = attrs;
  noise.seed = 7;
  return InjectNoise(clean, noise);
}

std::vector<Workload> MakeWorkloads() {
  std::vector<Workload> workloads;

  HospConfig hosp_config;
  hosp_config.num_hospitals = 12;
  HospData hosp = MakeHosp(hosp_config);
  workloads.push_back({"hosp", Corrupt(hosp.clean, hosp.noise_attrs).dirty,
                       hosp.given_oversimplified});

  CensusConfig census_config;
  census_config.num_rows = 120;
  CensusData census = MakeCensus(census_config);
  workloads.push_back(
      {"census", Corrupt(census.clean, census.noise_attrs).dirty,
       census.given});

  GpsConfig gps_config;
  gps_config.num_points = 150;
  GpsData gps = MakeGps(gps_config);
  workloads.push_back({"gps", gps.dirty, gps.given});

  TaxConfig tax_config;
  tax_config.num_rows = 100;
  TaxData tax = MakeTax(tax_config);
  workloads.push_back(
      {"tax", Corrupt(tax.clean, tax.noise_attrs).dirty, tax.given});

  return workloads;
}

struct ScanOutcome {
  std::vector<Violation> violations;
  std::vector<Violation> capped;
  bool truncated = false;
  std::vector<Violation> suspects;
  EvalCounters counters;
};

ScanOutcome RunScans(const Workload& w, const EncodedRelation& E,
                     bool block_scan, bool simd, int threads) {
  BlockScanToggle bs(block_scan);
  SimdToggle st(simd);
  ThreadPool::SetNumThreads(threads);
  eval_counters::Reset();
  ScanOutcome out;
  out.violations = FindViolations(E, w.sigma);
  for (size_t k = 0; k < w.sigma.size(); ++k) {
    bool truncated = false;
    std::vector<Violation> capped = FindViolationsOfCapped(
        E, w.sigma[k], static_cast<int>(k), 5, &truncated);
    out.capped.insert(out.capped.end(), capped.begin(), capped.end());
    out.truncated = out.truncated || truncated;
  }
  CellSet changing;
  for (int r = 0; r < std::min(4, E.num_rows()); ++r) {
    changing.insert(Cell{r, 0});
  }
  out.suspects = FindSuspects(E, w.sigma, changing);
  out.counters = eval_counters::Snapshot();
  eval_counters::Reset();
  ThreadPool::SetNumThreads(1);
  return out;
}

bool SameCounters(const EvalCounters& a, const EvalCounters& b) {
  return a.predicate_evals == b.predicate_evals &&
         a.code_predicate_evals == b.code_predicate_evals &&
         a.partition_builds == b.partition_builds &&
         a.truncated_scans == b.truncated_scans &&
         a.blocks_scanned == b.blocks_scanned &&
         a.blocks_skipped == b.blocks_skipped;
}

TEST(ScanKernelEquivalenceTest, AllGeneratorsAllBackendsAllThreadCounts) {
  for (const Workload& w : MakeWorkloads()) {
    SCOPED_TRACE(w.name);
    EncodedRelation E(w.dirty);

    // Reference: the row-at-a-time encoded path, serial.
    ScanOutcome reference = RunScans(w, E, /*block_scan=*/false,
                                     /*simd=*/false, /*threads=*/1);
    ASSERT_FALSE(reference.violations.empty() && reference.suspects.empty())
        << "workload exercises nothing";

    struct Config {
      bool block_scan;
      bool simd;
      int threads;
    };
    const Config configs[] = {
        {false, false, 4}, {true, false, 1}, {true, false, 4},
        {true, true, 1},   {true, true, 4},
    };
    // Counters must be thread-invariant per backend configuration; index
    // them by (block_scan, simd).
    std::vector<std::pair<std::pair<bool, bool>, EvalCounters>> seen;
    seen.push_back({{false, false}, reference.counters});
    for (const Config& c : configs) {
      SCOPED_TRACE(std::string("block=") + (c.block_scan ? "on" : "off") +
                   " simd=" + (c.simd ? "on" : "off") +
                   " threads=" + std::to_string(c.threads));
      ScanOutcome got = RunScans(w, E, c.block_scan, c.simd, c.threads);
      EXPECT_EQ(got.violations, reference.violations);
      EXPECT_EQ(got.capped, reference.capped);
      EXPECT_EQ(got.truncated, reference.truncated);
      EXPECT_EQ(got.suspects, reference.suspects);
      bool found = false;
      for (auto& [key, counters] : seen) {
        if (key == std::make_pair(c.block_scan, c.simd)) {
          found = true;
          EXPECT_TRUE(SameCounters(counters, got.counters))
              << "work counters vary with --threads";
        }
      }
      if (!found) {
        seen.push_back({{c.block_scan, c.simd}, got.counters});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Maintenance level: degenerate blocks, zone maps under ApplyChange,
// epoch-keyed recompilation.
// ---------------------------------------------------------------------------

// A three-attribute relation spanning several blocks with degenerate
// regions: block 1 all-NULL in attr 1, block 2 all-fresh in attr 1, and a
// partial tail block.
Relation MakeBlockyRelation(int rows) {
  Schema schema({{"A", AttrType::kInt},
                 {"B", AttrType::kInt},
                 {"C", AttrType::kString}});
  Relation I(schema);
  constexpr int kB = EncodedRelation::kBlockSize;
  for (int r = 0; r < rows; ++r) {
    Value b;
    int block = r / kB;
    if (block == 1) {
      b = Value::Null();
    } else if (block == 2) {
      b = I.NextFresh();
    } else {
      b = Value::Int(r % 97);
    }
    I.AddRow({Value::Int(r % 31), b,
              Value::String(std::string("s") + std::to_string(r % 13))});
  }
  return I;
}

ConstraintSet BlockySigma() {
  ConstraintSet sigma;
  sigma.push_back(DenialConstraint::FromFd({0}, 1, "A->B"));
  sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, 1, Op::kGeq, Value::Int(90))}, "B>=90"));
  return sigma;
}

TEST(ScanKernelMaintenanceTest, DegenerateBlocksMatchBoxedScan) {
  // 3.5 blocks: full, all-NULL, all-fresh, partial tail.
  Relation I = MakeBlockyRelation(3 * EncodedRelation::kBlockSize + 500);
  ConstraintSet sigma = BlockySigma();
  EncodedRelation E(I);

  EXPECT_TRUE(E.block_meta(1, 1).all_sentinel());
  EXPECT_TRUE(E.block_meta(1, 1).has_sentinel);
  EXPECT_TRUE(E.block_meta(1, 2).all_sentinel());
  EXPECT_EQ(E.num_blocks(), 4);
  EXPECT_EQ(E.block_rows(3), 500);

  std::vector<Violation> boxed = FindViolations(I, sigma);
  std::vector<Violation> blocked = FindViolations(E, sigma);
  EXPECT_EQ(boxed, blocked);
  {
    BlockScanToggle off(false);
    EXPECT_EQ(FindViolations(E, sigma), boxed);
  }
}

TEST(ScanKernelMaintenanceTest, ZoneMapsFollowApplyChange) {
  Relation I = MakeBlockyRelation(2 * EncodedRelation::kBlockSize + 100);
  ConstraintSet sigma = BlockySigma();
  EncodedRelation E(I);

  // In-dictionary change: only the touched block's meta moves.
  uint64_t attr_epoch_before = E.attr_epoch(1);
  I.SetValue(3, 1, Value::Int(5));
  E.ApplyChange(3, 1);
  EXPECT_EQ(E.attr_epoch(1), attr_epoch_before);
  EXPECT_TRUE(E.in_sync());
  EXPECT_EQ(FindViolations(E, sigma), FindViolations(I, sigma));

  // Dictionary-growing change mid-workload: attr epoch bumps, ranks
  // shift, and the whole column's zone maps must still be sound.
  I.SetValue(7, 1, Value::Int(-1000));
  E.ApplyChange(7, 1);
  EXPECT_GT(E.attr_epoch(1), attr_epoch_before);
  EXPECT_EQ(E.block_meta(1, 0).min_rank,
            E.dict(1).rank(E.code(7, 1)));
  EXPECT_EQ(FindViolations(E, sigma), FindViolations(I, sigma));

  // The all-NULL block becomes mixed once one cell gains a value.
  int null_row = EncodedRelation::kBlockSize + 10;
  I.SetValue(null_row, 1, Value::Int(50));
  E.ApplyChange(null_row, 1);
  EXPECT_FALSE(E.block_meta(1, 1).all_sentinel());
  EXPECT_TRUE(E.block_meta(1, 1).has_sentinel);
  EXPECT_EQ(FindViolations(E, sigma), FindViolations(I, sigma));
}

TEST(ScanKernelMaintenanceTest, RecompilesOnlyConstraintsReadingTheAttr) {
  // Two constraints over disjoint attribute sets: the FD reads A and B,
  // the constant constraint reads only B, and a third reads only C.
  Schema schema({{"A", AttrType::kInt},
                 {"B", AttrType::kInt},
                 {"C", AttrType::kInt}});
  Relation I(schema);
  for (int r = 0; r < 64; ++r) {
    I.AddRow({Value::Int(r % 5), Value::Int(r % 7), Value::Int(r % 11)});
  }
  ConstraintSet sigma;
  sigma.push_back(DenialConstraint::FromFd({0}, 1, "A->B"));
  sigma.push_back(DenialConstraint(
      {Predicate::WithConstant(0, 2, Op::kGt, Value::Int(8))}, "C>8"));

  ViolationIndex index(I, sigma);
  int64_t base = index.evals_recompiled();
  EXPECT_GE(base, static_cast<int64_t>(sigma.size()));  // initial compile

  // Change within attribute C's existing domain: no dictionary growth,
  // nothing recompiles.
  index.ApplyChange(Cell{0, 2}, Value::Int(3));
  EXPECT_EQ(index.evals_recompiled(), base);

  // New value on C: only the C-reading constraint recompiles — the
  // regression was keying staleness on a global epoch, which recompiled
  // every constraint (evals_recompiled would jump by sigma.size()).
  index.ApplyChange(Cell{1, 2}, Value::Int(1000));
  EXPECT_EQ(index.evals_recompiled(), base + 1);

  // New value on B: both B-readers... only the FD reads B; C>8 untouched.
  index.ApplyChange(Cell{2, 1}, Value::Int(2000));
  EXPECT_EQ(index.evals_recompiled(), base + 2);

  // New value on A: again exactly one recompile.
  index.ApplyChange(Cell{3, 0}, Value::Int(3000));
  EXPECT_EQ(index.evals_recompiled(), base + 3);
}

}  // namespace
}  // namespace cvrepair
