#include "relation/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cvrepair {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::Null().kind(), ValueKind::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).kind(), ValueKind::kInt);
  EXPECT_EQ(Value::Int(42).as_int(), 42);
  EXPECT_EQ(Value::Double(3.5).kind(), ValueKind::kDouble);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).as_double(), 3.5);
  EXPECT_EQ(Value::String("abc").kind(), ValueKind::kString);
  EXPECT_EQ(Value::String("abc").as_string(), "abc");
  EXPECT_EQ(Value::Fresh(7).kind(), ValueKind::kFresh);
  EXPECT_EQ(Value::Fresh(7).fresh_id(), 7);
  EXPECT_TRUE(Value::Fresh(7).is_fresh());
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(Value::Int(5).numeric(), 5.0);
  EXPECT_DOUBLE_EQ(Value::Double(5.5).numeric(), 5.5);
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
  EXPECT_FALSE(Value::Null().is_numeric());
}

TEST(ValueTest, StorageEquality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  // Int and Double are distinct representations even for equal magnitude.
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Fresh(3), Value::Fresh(3));
  EXPECT_NE(Value::Fresh(3), Value::Fresh(4));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> vals = {Value::Null(),      Value::Int(1),
                             Value::Int(2),      Value::Double(0.5),
                             Value::String("a"), Value::String("b"),
                             Value::Fresh(1)};
  for (const Value& a : vals) {
    EXPECT_FALSE(a < a);
    for (const Value& b : vals) {
      if (a == b) continue;
      EXPECT_NE(a < b, b < a) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(9).Hash(), Value::Int(9).Hash());
  EXPECT_EQ(Value::String("q").Hash(), Value::String("q").Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::Double(1.0));
  set.insert(Value::String("1"));
  EXPECT_EQ(set.size(), 3u);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(Value::Fresh(12).ToString(), "fv_12");
}

}  // namespace
}  // namespace cvrepair
