#include "repair/cvtolerant.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi2;
using testing_fixture::Phi3;
using testing_fixture::Phi4;
using testing_fixture::Phi4Prime;

CVTolerantOptions Options(double theta) {
  CVTolerantOptions o;
  o.variants.theta = theta;
  return o;
}

TEST(CVTolerantTest, Example4RepairsOversimplifiedTaxDc) {
  // Σ = {φ4} (Tax <=). With θ = 1 the substitution to φ4' costs 0.5, and
  // the minimum repair under φ4' changes only t4.Tax := 0 — instead of
  // the 5-cell fresh-variable mess of Example 3.
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4(rel)};
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_EQ(r.stats.changed_cells, 1);
  AttrId tax = *rel.schema().Find("Tax");
  EXPECT_DOUBLE_EQ(r.repaired.Get(3, tax).numeric(), 0.0);
  // The chosen variant is a refinement of φ4.
  EXPECT_TRUE(IsRefinedBy(sigma, r.satisfied_constraints));
}

TEST(CVTolerantTest, OversimplifiedFdGetsRefined) {
  // Σ = {φ1} (Name -> CP). θ = 1 allows one insertion; the Δ-minimum
  // insertion is Birthday (the three starred cells repair cheaply), not
  // the oversimplified repair of Figure 1(b).
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel)};
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_LE(r.stats.changed_cells, 3);
  EXPECT_GT(r.stats.variants_enumerated, 1);
  // Compared to no tolerance (θ=0): fewer changed cells.
  RepairResult r0 = CVTolerantRepair(rel, sigma, Options(0.0));
  EXPECT_GT(r0.stats.changed_cells, r.stats.changed_cells);
}

TEST(CVTolerantTest, ThetaZeroEqualsPlainRepair) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi2(rel)};
  CVTolerantOptions options = Options(0.0);
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  // Precise constraints + θ=0: behaves like Vfree on Σ itself (possibly
  // better via deletion variants, but Δ-min keeps Σ's 3-cell repair).
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_EQ(r.stats.changed_cells, 3);
}

TEST(CVTolerantTest, NegativeThetaDeletesExcessivePredicate) {
  // Σ = {φ3} (Name, Year, Birthday -> CP): overrefined, misses the
  // dirty cells of t5 and t8 (Figure 1(d) catches only t2). θ = -1
  // forces two deletions; the Δ-minimum choice drops Name= and Year=,
  // leaving Birthday -> CP, which repairs all three starred cells.
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi3(rel)};
  // Without tolerance only <t2,t3> is caught (Figure 1(d)): one cell.
  RepairResult none = VfreeRepair(rel, sigma);
  EXPECT_EQ(none.stats.changed_cells, 1);

  CVTolerantOptions options = Options(-1.0);
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_GE(r.stats.changed_cells, 1);
  AttrId cp = *rel.schema().Find("CP");
  EXPECT_EQ(r.repaired.Get(1, cp), Value::String("564-389"));
  EXPECT_EQ(r.repaired.Get(4, cp), Value::String("930-198"));
  EXPECT_EQ(r.repaired.Get(7, cp), Value::String("824-870"));
}

TEST(CVTolerantTest, BoundPruningSkipsCostlyVariants) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4(rel)};
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  RepairResult with = CVTolerantRepair(rel, sigma, options);
  options.enable_bound_pruning = false;
  RepairResult without = CVTolerantRepair(rel, sigma, options);
  // Same answer, pruning strictly reduces DataRepair calls.
  EXPECT_EQ(with.stats.changed_cells, without.stats.changed_cells);
  EXPECT_LE(with.stats.datarepair_calls, without.stats.datarepair_calls);
  EXPECT_GT(with.stats.variants_pruned_bounds, 0);
}

TEST(CVTolerantTest, SharingReusesComponentSolutions) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi1(rel), Phi4(rel)};
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  options.enable_bound_pruning = false;  // force many DataRepair calls
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_GT(r.stats.cache_hits, 0) << "sharing must kick in across variants";
}

TEST(CVTolerantTest, HolisticEngineVariant) {
  Relation rel = PaperIncomeRelation();
  ConstraintSet sigma = {Phi4(rel)};
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  options.use_vfree = false;
  RepairResult r = CVTolerantRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_LE(r.stats.changed_cells, 2);
}

TEST(CVTolerantTest, CleanDataStaysClean) {
  Relation rel = PaperIncomeRelation();
  // φ2 with the starred cells already repaired: no violations at all.
  AttrId cp = *rel.schema().Find("CP");
  rel.SetValue(1, cp, Value::String("564-389"));
  rel.SetValue(4, cp, Value::String("930-198"));
  rel.SetValue(7, cp, Value::String("824-870"));
  CVTolerantOptions options = Options(1.0);
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, {Phi2(rel)}, options);
  EXPECT_EQ(r.stats.changed_cells, 0);
}

}  // namespace
}  // namespace cvrepair
