// Edge-case coverage: degenerate instances, option corners, and less
// traveled configuration paths.
#include <gtest/gtest.h>

#include "data/noise.h"
#include "dc/predicate_space.h"
#include "paper_example.h"
#include "repair/cvtolerant.h"
#include "repair/greedy.h"
#include "repair/vfree.h"
#include "variation/variant_generator.h"

namespace cvrepair {
namespace {

using testing_fixture::PaperIncomeRelation;
using testing_fixture::Phi1;
using testing_fixture::Phi4;

TEST(EdgeCaseTest, EmptyRelationRepairsToItself) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};
  RepairResult r = VfreeRepair(rel, sigma);
  EXPECT_EQ(r.stats.changed_cells, 0);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  CVTolerantOptions options;
  RepairResult cv = CVTolerantRepair(rel, sigma, options);
  EXPECT_EQ(cv.stats.changed_cells, 0);
}

TEST(EdgeCaseTest, SingleRowInstanceHasNoPairViolations) {
  Schema schema;
  schema.AddAttribute("A", AttrType::kString);
  schema.AddAttribute("B", AttrType::kString);
  Relation rel(schema);
  rel.AddRow({Value::String("x"), Value::String("y")});
  ConstraintSet sigma = {DenialConstraint::FromFd({0}, 1)};
  EXPECT_TRUE(Satisfies(rel, sigma));
  EXPECT_TRUE(FindViolations(rel, sigma).empty());
}

TEST(EdgeCaseTest, NullCellsNeverViolate) {
  Relation rel = PaperIncomeRelation();
  AttrId name = *rel.schema().Find("Name");
  AttrId cp = *rel.schema().Find("CP");
  // NULL out the whole Ayres group's names: those pairs stop violating φ1.
  for (int i : {0, 1, 2}) rel.SetValue(i, name, Value::Null());
  for (const Violation& v : FindViolationsOf(rel, Phi1(rel))) {
    for (int row : v.rows) {
      EXPECT_FALSE(rel.Get(row, name).is_null());
    }
  }
  (void)cp;
}

TEST(EdgeCaseTest, EmptyConstraintSetIsAlwaysSatisfied) {
  Relation rel = PaperIncomeRelation();
  EXPECT_TRUE(Satisfies(rel, {}));
  RepairResult r = VfreeRepair(rel, {});
  EXPECT_EQ(r.stats.changed_cells, 0);
}

TEST(PredicateSpaceTest, NonMaximalOpsOnDemand) {
  Relation rel = PaperIncomeRelation();
  PredicateSpaceOptions options;
  options.maximal_ops_only = false;
  std::vector<Predicate> full = BuildPredicateSpace(rel.schema(), options);
  std::vector<Predicate> restricted = BuildPredicateSpace(rel.schema());
  EXPECT_GT(full.size(), restricted.size());
  bool has_leq = false;
  for (const Predicate& p : full) {
    if (p.op() == Op::kLeq) has_leq = true;
  }
  EXPECT_TRUE(has_leq);
}

TEST(PredicateSpaceTest, ExcludedAttrsHonored) {
  Relation rel = PaperIncomeRelation();
  PredicateSpaceOptions options;
  options.excluded_attrs = {*rel.schema().Find("Year"),
                            *rel.schema().Find("CP")};
  for (const Predicate& p : BuildPredicateSpace(rel.schema(), options)) {
    EXPECT_NE(p.lhs().attr, *rel.schema().Find("Year"));
    EXPECT_NE(p.lhs().attr, *rel.schema().Find("CP"));
  }
}

TEST(EdgeCaseTest, GreedyEscalatesStubbornCellsToFresh) {
  // Two rows locked in an unsatisfiable two-sided conflict on a
  // two-value domain: greedy must eventually fall back to fv.
  Schema schema;
  schema.AddAttribute("X", AttrType::kInt);
  Relation rel(schema);
  rel.AddRow({Value::Int(0)});
  rel.AddRow({Value::Int(1)});
  // not(X != X'): the two rows must agree — and also not(X = X') would be
  // unsatisfiable; use the pair that forces value equality plus a cap that
  // rules out both domain values.
  ConstraintSet sigma = {
      DenialConstraint({Predicate::TwoCell(0, 0, Op::kNeq, 1, 0)}),
      DenialConstraint(
          {Predicate::WithConstant(0, 0, Op::kGeq, Value::Int(0))})};
  GreedyOptions options;
  RepairResult r = GreedyRepair(rel, sigma, options);
  EXPECT_TRUE(Satisfies(r.repaired, sigma));
  EXPECT_GT(r.stats.fresh_assignments, 0);
}

TEST(EdgeCaseTest, ThetaLargerThanSpaceBudgetSaturates) {
  // θ far beyond what insertions can spend: enumeration stays finite and
  // the repair is still valid.
  Relation rel = PaperIncomeRelation();
  CVTolerantOptions options;
  options.variants.theta = 50.0;
  options.variants.data = &rel;
  RepairResult r = CVTolerantRepair(rel, {Phi4(rel)}, options);
  EXPECT_TRUE(Satisfies(r.repaired, r.satisfied_constraints));
  EXPECT_LT(r.stats.variants_enumerated, 20001);
}

TEST(EdgeCaseTest, NoiseOnEmptyTargetsIsANoop) {
  Relation rel = PaperIncomeRelation();
  NoiseConfig config;
  config.error_rate = 0.5;
  config.target_attrs = {};  // defaults to all non-key attrs
  NoisyData noisy = InjectNoise(rel, config);
  EXPECT_GT(noisy.dirty_cells.size(), 0u);

  Relation empty{rel.schema()};
  NoisyData nothing = InjectNoise(empty, config);
  EXPECT_TRUE(nothing.dirty_cells.empty());
}

TEST(EdgeCaseTest, ZeroErrorRateChangesNothing) {
  Relation rel = PaperIncomeRelation();
  NoiseConfig config;
  config.error_rate = 0.0;
  NoisyData noisy = InjectNoise(rel, config);
  EXPECT_TRUE(noisy.dirty_cells.empty());
  for (int i = 0; i < rel.num_rows(); ++i) {
    for (AttrId a = 0; a < rel.num_attributes(); ++a) {
      EXPECT_EQ(noisy.dirty.Get(i, a), rel.Get(i, a));
    }
  }
}

}  // namespace
}  // namespace cvrepair
