// End-to-end checks of the paper's headline claims on the synthetic
// datasets, with small sizes so the whole suite stays fast.
#include <gtest/gtest.h>

#include "data/census.h"
#include "data/gps.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "eval/metrics.h"
#include "repair/cvtolerant.h"
#include "repair/greedy.h"
#include "repair/holistic.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

struct HospFixture {
  HospData hosp;
  NoisyData noisy;

  explicit HospFixture(double error_rate = 0.05, int hospitals = 40) {
    HospConfig config;
    config.num_hospitals = hospitals;
    hosp = MakeHosp(config);
    NoiseConfig noise;
    noise.error_rate = error_rate;
    noise.target_attrs = hosp.noise_attrs;
    noisy = InjectNoise(hosp.clean, noise);
  }

  AccuracyResult Accuracy(const Relation& repaired) const {
    return CellAccuracy(hosp.clean, noisy.dirty, repaired);
  }
};

TEST(IntegrationTest, PreciseConstraintsRepairPerfectlyOnHosp) {
  HospFixture fx;
  RepairResult r = VfreeRepair(fx.noisy.dirty, fx.hosp.precise);
  AccuracyResult acc = fx.Accuracy(r.repaired);
  EXPECT_TRUE(Satisfies(r.repaired, fx.hosp.precise));
  EXPECT_GT(acc.f_measure, 0.9);
}

TEST(IntegrationTest, CVTolerantBeatsNoToleranceOnHosp) {
  // The paper's headline (Figures 5/9): under the oversimplified given
  // constraints, CVtolerant achieves much higher f-measure than repairing
  // against Σ as-is, and changes far fewer cells.
  HospFixture fx;
  RepairResult plain = VfreeRepair(fx.noisy.dirty, fx.hosp.given_oversimplified);
  CVTolerantOptions options;
  options.variants.theta = 1.0;
  options.variants.space = fx.hosp.space;
  RepairResult cv =
      CVTolerantRepair(fx.noisy.dirty, fx.hosp.given_oversimplified, options);
  AccuracyResult acc_plain = fx.Accuracy(plain.repaired);
  AccuracyResult acc_cv = fx.Accuracy(cv.repaired);
  EXPECT_GT(acc_cv.f_measure, acc_plain.f_measure + 0.2);
  EXPECT_LT(cv.stats.changed_cells, plain.stats.changed_cells);
  EXPECT_TRUE(Satisfies(cv.repaired, cv.satisfied_constraints));
}

TEST(IntegrationTest, NegativeThetaRecoversOverrefinedHosp) {
  // Appendix D.2 (Figure 16): overrefined given FDs catch almost nothing;
  // a negative θ deletes the excessive predicates and recall recovers.
  HospFixture fx;
  RepairResult plain = VfreeRepair(fx.noisy.dirty, fx.hosp.given_overrefined);
  AccuracyResult acc_plain = fx.Accuracy(plain.repaired);
  CVTolerantOptions options;
  options.variants.theta = -1.5;
  options.variants.space = fx.hosp.space;
  options.variants.max_changed_constraints = 3;
  RepairResult cv =
      CVTolerantRepair(fx.noisy.dirty, fx.hosp.given_overrefined, options);
  AccuracyResult acc_cv = fx.Accuracy(cv.repaired);
  EXPECT_GT(acc_cv.recall, acc_plain.recall);
  EXPECT_TRUE(Satisfies(cv.repaired, cv.satisfied_constraints));
}

TEST(IntegrationTest, CensusOrderSubstitutionWins) {
  // Figures 7/12: the oversimplified "<=" / "!=" DCs overrepair massively;
  // CVtolerant substitutes the strict orders and lands near the truth.
  CensusConfig config;
  config.num_rows = 250;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  NoisyData noisy = InjectNoise(census.clean, noise);

  RepairResult holistic = HolisticRepair(noisy.dirty, census.given);
  CVTolerantOptions options;
  options.variants.theta = 1.0;
  options.variants.space = census.space;
  RepairResult cv = CVTolerantRepair(noisy.dirty, census.given, options);

  double mnad_holistic =
      Mnad(census.clean, holistic.repaired, census.noise_attrs);
  double mnad_cv = Mnad(census.clean, cv.repaired, census.noise_attrs);
  EXPECT_LT(mnad_cv, mnad_holistic);
  EXPECT_LT(cv.stats.changed_cells, holistic.stats.changed_cells);
  // The chosen variant strictly refines the given DCs (<= -> <, != -> <).
  EXPECT_TRUE(IsRefinedBy(census.given, cv.satisfied_constraints));
}

TEST(IntegrationTest, GpsDeletionRecoversJumps) {
  // Figure 15: the overrefined Quality-guarded bounds miss half the
  // jumps; θ = -2 deletes the guards and accuracy improves.
  GpsConfig config;
  config.num_points = 500;
  GpsData gps = MakeGps(config);
  RepairResult holistic = HolisticRepair(gps.dirty, gps.given);
  CVTolerantOptions options;
  options.variants.theta = -2.0;
  options.variants.max_changed_constraints = 4;
  RepairResult cv = CVTolerantRepair(gps.dirty, gps.given, options);

  double acc_holistic =
      RelativeAccuracy(gps.clean, gps.dirty, holistic.repaired, gps.eval_attrs);
  double acc_cv =
      RelativeAccuracy(gps.clean, gps.dirty, cv.repaired, gps.eval_attrs);
  EXPECT_GT(acc_cv, acc_holistic);
  // The chosen variant drops the Quality guards (equals the precise set).
  EXPECT_EQ(cv.satisfied_constraints.size(), gps.precise.size());
}

class ErrorRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ErrorRateSweep, CVTolerantStaysAheadAcrossErrorRates) {
  HospFixture fx(GetParam(), /*hospitals=*/30);
  RepairResult plain =
      VfreeRepair(fx.noisy.dirty, fx.hosp.given_oversimplified);
  CVTolerantOptions options;
  options.variants.theta = 1.0;
  options.variants.space = fx.hosp.space;
  RepairResult cv =
      CVTolerantRepair(fx.noisy.dirty, fx.hosp.given_oversimplified, options);
  EXPECT_GE(fx.Accuracy(cv.repaired).f_measure,
            fx.Accuracy(plain.repaired).f_measure);
}

INSTANTIATE_TEST_SUITE_P(Rates, ErrorRateSweep,
                         ::testing::Values(0.02, 0.05, 0.08));

}  // namespace
}  // namespace cvrepair
