// Subset repair (repair/subset.h): tuple deletion as weighted vertex
// cover over the conflict hypergraph's tuple projection, the hybrid
// update-or-delete rule, and the strategy equivalence contracts — delete
// and hybrid must produce violation-free instances on hosp/census, boxed
// and encoded, serial and threaded, bit-identical across every axis, and
// the streamed variant must match a from-scratch dirty-component solve.
#include "repair/subset.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "data/census.h"
#include "data/hosp.h"
#include "data/noise.h"
#include "dc/parser.h"
#include "dc/violation.h"
#include "relation/domain_stats.h"
#include "relation/encoded.h"
#include "repair/cvtolerant.h"
#include "repair/streaming.h"
#include "repair/vfree.h"

namespace cvrepair {
namespace {

// ---------------------------------------------------------------------------
// Strategy parsing.

TEST(SubsetRepairTest, StrategyParseRoundTrip) {
  for (RepairStrategy s : {RepairStrategy::kUpdate, RepairStrategy::kDelete,
                           RepairStrategy::kHybrid}) {
    RepairStrategy parsed;
    ASSERT_TRUE(ParseRepairStrategy(RepairStrategyToString(s), &parsed));
    EXPECT_EQ(parsed, s);
  }
  RepairStrategy out;
  EXPECT_FALSE(ParseRepairStrategy("tombstone", &out));
  EXPECT_FALSE(ParseRepairStrategy("", &out));
}

// ---------------------------------------------------------------------------
// Deletion weights: representation-cost accounting per --repr-attr group.

Relation GroupedRelation() {
  Schema schema;
  schema.AddAttribute("G", AttrType::kString);
  schema.AddAttribute("A", AttrType::kInt);
  Relation rel(schema);
  // Group "big" has 3 rows, group "rare" has 1, plus a NULL-group row.
  rel.AddRow({Value::String("big"), Value::Int(1)});
  rel.AddRow({Value::String("big"), Value::Int(2)});
  rel.AddRow({Value::String("big"), Value::Int(3)});
  rel.AddRow({Value::String("rare"), Value::Int(4)});
  rel.AddRow({Value::Null(), Value::Int(5)});
  return rel;
}

TEST(SubsetRepairTest, DeletionWeightProtectsRareGroups) {
  Relation rel = GroupedRelation();
  DomainStats stats(rel);
  SubsetOptions options;
  options.repr_attr = 0;
  options.alpha = 1.0;
  options.delete_base = 3.0;
  // weight = base * (1 + alpha * (1 - freq/|I|)).
  const double big = RowDeletionWeight(rel, stats, 0, options);
  const double rare = RowDeletionWeight(rel, stats, 3, options);
  const double null_group = RowDeletionWeight(rel, stats, 4, options);
  EXPECT_DOUBLE_EQ(big, 3.0 * (1.0 + (1.0 - 3.0 / 5.0)));
  EXPECT_DOUBLE_EQ(rare, 3.0 * (1.0 + (1.0 - 1.0 / 5.0)));
  EXPECT_LT(big, rare);
  // A NULL group value reads as a vanishing group: maximally protected.
  EXPECT_DOUBLE_EQ(null_group, 3.0 * 2.0);
  EXPECT_GE(null_group, rare);
  // Without a grouping attribute every row costs the flat base.
  SubsetOptions flat;
  EXPECT_DOUBLE_EQ(RowDeletionWeight(rel, stats, 0, flat),
                   flat.delete_base);
  EXPECT_DOUBLE_EQ(RowDeletionWeight(rel, stats, 3, flat),
                   flat.delete_base);
}

// ---------------------------------------------------------------------------
// The greedy weighted cover over the tuple projection.

TEST(SubsetRepairTest, CoverPicksHubRowAndTombstonesIt) {
  Relation rel = GroupedRelation();
  DomainStats stats(rel);
  // Three edges all incident to row 1: {0,1}, {1,2}, {1,3}. Deleting row 1
  // covers everything at one weight.
  std::vector<Violation> violations = {
      {0, {0, 1}}, {0, {1, 2}}, {0, {1, 3}}};
  SubsetOptions options;  // flat weights
  RepairStats repair_stats;
  SubsetRepair result =
      SubsetCoverRepair(rel, stats, violations, options, &repair_stats);
  EXPECT_EQ(result.rows_deleted, 1);
  EXPECT_EQ(repair_stats.rows_deleted, 1);
  EXPECT_DOUBLE_EQ(result.cost, options.delete_base);
  // Every assignment NULLs a cell of row 1, covering both attributes.
  ASSERT_EQ(result.assignments.size(), 2u);
  for (const auto& [cell, value] : result.assignments) {
    EXPECT_EQ(cell.row, 1);
    EXPECT_TRUE(value.is_null());
  }
  // Applying the tombstones retires every violation: NULL satisfies no
  // predicate, so the deleted row can never violate again.
  Relation repaired = rel;
  for (const auto& [cell, value] : result.assignments) {
    repaired.SetValue(cell, value);
  }
  EXPECT_TRUE(RowDeleted(rel, repaired, 1));
  EXPECT_FALSE(RowDeleted(rel, repaired, 0));
}

TEST(SubsetRepairTest, CoverPrefersCheaperRowsUnderWeights) {
  Relation rel = GroupedRelation();
  DomainStats stats(rel);
  // One edge {0, 3}: row 0 ("big" group, cheap) vs row 3 ("rare" group,
  // expensive). The cover must delete the cheap row.
  std::vector<Violation> violations = {{0, {0, 3}}};
  SubsetOptions options;
  options.repr_attr = 0;
  RepairStats repair_stats;
  SubsetRepair result =
      SubsetCoverRepair(rel, stats, violations, options, &repair_stats);
  ASSERT_EQ(result.rows_deleted, 1);
  EXPECT_EQ(result.assignments.front().first.row, 0);
}

TEST(SubsetRepairTest, SingleTupleViolationForcesItsRow) {
  Relation rel = GroupedRelation();
  DomainStats stats(rel);
  std::vector<Violation> violations = {{0, {2}}};
  SubsetRepair result =
      SubsetCoverRepair(rel, stats, violations, SubsetOptions{}, nullptr);
  ASSERT_EQ(result.rows_deleted, 1);
  EXPECT_EQ(result.assignments.front().first.row, 2);
}

// ---------------------------------------------------------------------------
// Hybrid: delete a tuple only when its update cost exceeds its weight.

struct HybridFixture {
  Relation rel;
  ConstraintSet sigma;
};

// Row 0 violates three single-tuple range DCs (three cells must change,
// update cost 3 under the count model); row 1 is clean.
HybridFixture MakeHybridFixture() {
  Schema schema;
  schema.AddAttribute("A", AttrType::kInt);
  schema.AddAttribute("B", AttrType::kInt);
  schema.AddAttribute("C", AttrType::kInt);
  Relation rel(schema);
  rel.AddRow({Value::Int(-1), Value::Int(-2), Value::Int(-3)});
  rel.AddRow({Value::Int(7), Value::Int(8), Value::Int(9)});
  ConstraintSet sigma;
  for (const char* text :
       {"c_a: not(t0.A < 0)", "c_b: not(t0.B < 0)", "c_c: not(t0.C < 0)"}) {
    ParseConstraintResult r = ParseConstraint(rel.schema(), text);
    EXPECT_TRUE(r.ok()) << r.error;
    if (r.ok()) sigma.push_back(*r.constraint);
  }
  return {std::move(rel), std::move(sigma)};
}

TEST(SubsetRepairTest, HybridDeletesRowWhoseUpdateCostExceedsWeight) {
  HybridFixture f = MakeHybridFixture();
  VfreeOptions options;
  options.strategy = RepairStrategy::kHybrid;
  options.subset.delete_base = 1.5;  // update cost 3 > weight 1.5: delete
  RepairResult result = VfreeRepair(f.rel, f.sigma, options);
  EXPECT_EQ(result.stats.rows_deleted, 1);
  EXPECT_TRUE(RowDeleted(f.rel, result.repaired, 0));
  EXPECT_FALSE(RowDeleted(f.rel, result.repaired, 1));
  EXPECT_DOUBLE_EQ(result.stats.repair_cost, 1.5);
  EXPECT_TRUE(FindViolations(result.repaired, f.sigma).empty());
}

TEST(SubsetRepairTest, HybridKeepsRowWhenUpdateIsCheaper) {
  HybridFixture f = MakeHybridFixture();
  VfreeOptions options;
  options.strategy = RepairStrategy::kHybrid;
  options.subset.delete_base = 5.0;  // update cost 3 < weight 5: keep
  RepairResult result = VfreeRepair(f.rel, f.sigma, options);
  EXPECT_EQ(result.stats.rows_deleted, 0);
  EXPECT_FALSE(RowDeleted(f.rel, result.repaired, 0));
  // The interval solver lifts each negative cell to the bound.
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_TRUE(result.repaired.Get(0, a).is_numeric());
    EXPECT_GE(result.repaired.Get(0, a).numeric(), 0.0);
  }
  EXPECT_TRUE(FindViolations(result.repaired, f.sigma).empty());
}

TEST(SubsetRepairTest, DeleteStrategyTombstonesTheViolatingRow) {
  HybridFixture f = MakeHybridFixture();
  VfreeOptions options;
  options.strategy = RepairStrategy::kDelete;
  RepairResult result = VfreeRepair(f.rel, f.sigma, options);
  EXPECT_EQ(result.stats.rows_deleted, 1);
  EXPECT_TRUE(RowDeleted(f.rel, result.repaired, 0));
  EXPECT_DOUBLE_EQ(result.stats.repair_cost, options.subset.delete_base);
  EXPECT_TRUE(FindViolations(result.repaired, f.sigma).empty());
  // StrategyRepairCost recomputes the same total from the instance pair.
  DomainStats stats(f.rel);
  EXPECT_DOUBLE_EQ(
      StrategyRepairCost(f.rel, result.repaired, options.cost,
                         options.strategy, options.subset, stats),
      result.stats.repair_cost);
}

// ---------------------------------------------------------------------------
// The acceptance matrix: delete and hybrid are violation-free on hosp and
// census, boxed and encoded, 1 and 4 threads — and bit-identical across
// every axis (tombstones are concrete NULLs, updates replay serially, so
// exact equality holds, fresh ids included).

struct Workload {
  Relation dirty;
  ConstraintSet sigma;
  PredicateSpaceOptions space;
};

Workload MakeHospWorkload() {
  HospConfig config;
  config.num_hospitals = 6;
  HospData hosp = MakeHosp(config);
  NoiseConfig noise;
  noise.error_rate = 0.06;
  noise.target_attrs = hosp.noise_attrs;
  return {InjectNoise(hosp.clean, noise).dirty, hosp.given_oversimplified,
          hosp.space};
}

Workload MakeCensusWorkload() {
  CensusConfig config;
  config.num_rows = 120;
  CensusData census = MakeCensus(config);
  NoiseConfig noise;
  noise.error_rate = 0.05;
  noise.target_attrs = census.noise_attrs;
  return {InjectNoise(census.clean, noise).dirty, census.given, {}};
}

void ExpectExactlyEqual(const Relation& a, const Relation& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (int r = 0; r < a.num_rows(); ++r) {
    for (AttrId at = 0; at < a.num_attributes(); ++at) {
      EXPECT_TRUE(a.Get(r, at) == b.Get(r, at))
          << "cell (" << r << "," << at << "): " << a.Get(r, at).ToString()
          << " vs " << b.Get(r, at).ToString();
    }
  }
}

RepairResult RunCVTolerant(const Workload& w, RepairStrategy strategy,
                           bool encoded, int threads) {
  CVTolerantOptions options;
  options.variants.space = w.space;
  options.threads = threads;
  options.use_encoded = encoded;
  options.vfree.strategy = strategy;
  return CVTolerantRepair(w.dirty, w.sigma, options);
}

void RunStrategyMatrix(const Workload& w, RepairStrategy strategy) {
  RepairResult baseline = RunCVTolerant(w, strategy, /*encoded=*/false,
                                        /*threads=*/1);
  EXPECT_TRUE(
      FindViolations(baseline.repaired, baseline.satisfied_constraints)
          .empty());
  if (strategy == RepairStrategy::kDelete) {
    EXPECT_GT(baseline.stats.rows_deleted, 0);
  }
  for (bool encoded : {false, true}) {
    for (int threads : {1, 4}) {
      if (!encoded && threads == 1) continue;  // the baseline itself
      SCOPED_TRACE(std::string(encoded ? "encoded" : "boxed") +
                   " threads=" + std::to_string(threads));
      RepairResult result = RunCVTolerant(w, strategy, encoded, threads);
      EXPECT_TRUE(baseline.satisfied_constraints ==
                  result.satisfied_constraints);
      EXPECT_EQ(baseline.stats.repair_cost, result.stats.repair_cost);
      EXPECT_EQ(baseline.stats.rows_deleted, result.stats.rows_deleted);
      ExpectExactlyEqual(baseline.repaired, result.repaired);
      EXPECT_TRUE(
          FindViolations(result.repaired, result.satisfied_constraints)
              .empty());
    }
  }
}

TEST(SubsetRepairTest, DeleteMatrixHosp) {
  RunStrategyMatrix(MakeHospWorkload(), RepairStrategy::kDelete);
}
TEST(SubsetRepairTest, DeleteMatrixCensus) {
  RunStrategyMatrix(MakeCensusWorkload(), RepairStrategy::kDelete);
}
TEST(SubsetRepairTest, HybridMatrixHosp) {
  RunStrategyMatrix(MakeHospWorkload(), RepairStrategy::kHybrid);
}
TEST(SubsetRepairTest, HybridMatrixCensus) {
  RunStrategyMatrix(MakeCensusWorkload(), RepairStrategy::kHybrid);
}

// ---------------------------------------------------------------------------
// Streamed ≡ scratch under the delete strategy: every batch's streamed
// dirty-component solve matches a from-scratch detection + solve of the
// accumulated instance (the SolveDirtyComponents intercept is the same
// code path either way, so costs and tombstones agree exactly).

void ApplyEditsToRelation(const std::vector<RowEdit>& edits, Relation* W) {
  for (const RowEdit& e : edits) {
    if (e.insert) {
      W->AddRow(e.values);
    } else {
      W->SetValue(e.row, e.attr, e.value);
    }
  }
}

void RunStreamedVsScratchDelete(const Workload& w, bool encoded,
                                int threads) {
  StreamingOptions options;
  options.repair.variants.space = w.space;
  options.repair.threads = threads;
  options.repair.use_encoded = encoded;
  options.repair.vfree.strategy = RepairStrategy::kDelete;
  ReplayWorkload replay = MakeReplayWorkload(w.dirty, /*num_batches=*/4,
                                             /*batch_size=*/8, /*seed=*/7);
  StreamingRepairer streamer(replay.base, w.sigma, options);
  ASSERT_TRUE(streamer.IsViolationFree());

  for (size_t b = 0; b < replay.batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    Relation W = streamer.current();
    ApplyEditsToRelation(replay.batches[b], &W);

    StreamBatchResult r = streamer.ApplyBatch(replay.batches[b]);
    EXPECT_TRUE(streamer.IsViolationFree());
    EXPECT_TRUE(
        FindViolations(streamer.current(), streamer.variant()).empty());

    std::optional<EncodedRelation> E;
    if (encoded) E.emplace(W);
    std::vector<Violation> violations =
        E ? FindViolations(*E, streamer.variant())
          : FindViolations(W, streamer.variant());
    EXPECT_EQ(static_cast<int>(violations.size()), r.violations);

    DomainStats stats_of_W(W);
    RepairStats scratch_stats;
    MaterializedCache cold;
    int64_t scratch_fresh = 1000000;
    std::optional<ScopedRepair> fix = CVTolerantResolveComponents(
        W, stats_of_W, streamer.variant(), std::move(violations),
        options.repair, &cold, &scratch_stats, &scratch_fresh,
        E ? &*E : nullptr);
    ASSERT_TRUE(fix.has_value());
    EXPECT_EQ(fix->cost, r.repair_cost);  // bit-identical
    for (auto& [cell, value] : fix->assignments) {
      W.SetValue(cell, std::move(value));
    }
    // Tombstones carry no fresh ids, so exact equality is the contract.
    ExpectExactlyEqual(streamer.current(), W);
  }
}

TEST(SubsetRepairTest, DeleteStreamedMatchesScratchHospEncoded) {
  RunStreamedVsScratchDelete(MakeHospWorkload(), /*encoded=*/true,
                             /*threads=*/1);
}
TEST(SubsetRepairTest, DeleteStreamedMatchesScratchHospBoxed4Threads) {
  RunStreamedVsScratchDelete(MakeHospWorkload(), /*encoded=*/false,
                             /*threads=*/4);
}
TEST(SubsetRepairTest, DeleteStreamedMatchesScratchCensusEncoded) {
  RunStreamedVsScratchDelete(MakeCensusWorkload(), /*encoded=*/true,
                             /*threads=*/1);
}

// ---------------------------------------------------------------------------
// Fuzz arm (scaled by CVREPAIR_FUZZ_ITERS in the nightly job): random
// workload shape × strategy × backend; the repaired instance must be
// violation-free, deletions bounded by the violating-row count, and the
// serial run bit-identical to the threaded one.

int FuzzScale() {
  static const int scale = [] {
    const char* v = std::getenv("CVREPAIR_FUZZ_ITERS");
    int s = (v != nullptr && v[0] != '\0') ? std::atoi(v) : 1;
    return s > 0 ? s : 1;
  }();
  return scale;
}

class SubsetRepairFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SubsetRepairFuzz, RandomWorkloadStaysViolationFree) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 7919 + 13);
  Workload w = (seed % 2 == 0) ? MakeHospWorkload() : MakeCensusWorkload();
  const RepairStrategy strategy =
      (rng() % 2 == 0) ? RepairStrategy::kDelete : RepairStrategy::kHybrid;
  const bool encoded = rng() % 2 == 0;
  SCOPED_TRACE("seed=" + std::to_string(seed) + " strategy=" +
               RepairStrategyToString(strategy) +
               (encoded ? " encoded" : " boxed"));
  RepairResult serial = RunCVTolerant(w, strategy, encoded, /*threads=*/1);
  EXPECT_TRUE(
      FindViolations(serial.repaired, serial.satisfied_constraints).empty());
  // The greedy cover deletes at most one row per violation hyperedge.
  EXPECT_LE(serial.stats.rows_deleted, serial.stats.initial_violations);
  RepairResult threaded = RunCVTolerant(w, strategy, encoded, /*threads=*/4);
  EXPECT_EQ(serial.stats.repair_cost, threaded.stats.repair_cost);
  EXPECT_EQ(serial.stats.rows_deleted, threaded.stats.rows_deleted);
  ExpectExactlyEqual(serial.repaired, threaded.repaired);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, SubsetRepairFuzz,
                         ::testing::Range(0, 2 * FuzzScale()));

}  // namespace
}  // namespace cvrepair
