// Contract tests for the observability layer (util/trace.h and
// util/metrics.h): span nesting and counter attribution, thread safety of
// the per-thread buffers under ParallelFor, the disabled-mode no-op
// contract, and byte-stable metrics.json rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Restores the global tracer and pool state even when an assertion bails.
class TraceGuard {
 public:
  ~TraceGuard() {
    Tracer::SetEnabled(false);
    Tracer::Clear();
    ThreadPool::SetNumThreads(1);
  }
};

const Tracer::Event* FindEvent(const std::vector<Tracer::Event>& events,
                               const std::string& name) {
  for (const Tracer::Event& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

int64_t ArgValue(const Tracer::Event& e, const std::string& key) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return v;
  }
  return -1;
}

TEST(TracerTest, SpansNestWithDepthAndContainment) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      inner.AddArg("shards", 4);
    }
    {
      TraceSpan sibling("sibling");
    }
  }
  Tracer::SetEnabled(false);

  std::vector<Tracer::Event> events = Tracer::CollectEvents();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: the parent opens first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);

  const Tracer::Event* outer = FindEvent(events, "outer");
  const Tracer::Event* inner = FindEvent(events, "inner");
  const Tracer::Event* sibling = FindEvent(events, "sibling");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(sibling->depth, 1);
  EXPECT_EQ(ArgValue(*inner, "shards"), 4);

  // Children run inside the parent's window.
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us + 1.0);
  EXPECT_GE(sibling->start_us, inner->start_us + inner->dur_us - 1.0);
}

TEST(TracerTest, CounterDeltasCreditEveryOpenSpan) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  {
    TraceSpan outer("outer");
    Tracer::AddCounterDelta("eval.things", 10);
    {
      TraceSpan inner("inner");
      Tracer::AddCounterDelta("eval.things", 5);
    }
    // After inner closed: this delta belongs to outer only.
    Tracer::AddCounterDelta("eval.things", 2);
  }
  Tracer::SetEnabled(false);

  std::vector<Tracer::Event> events = Tracer::CollectEvents();
  const Tracer::Event* outer = FindEvent(events, "outer");
  const Tracer::Event* inner = FindEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(ArgValue(*inner, "eval.things"), 5);
  EXPECT_EQ(ArgValue(*outer, "eval.things"), 17);
}

TEST(TracerTest, DeltasOutsideAnySpanAreDropped) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  Tracer::AddCounterDelta("eval.orphan", 99);  // no span open: no-op
  {
    TraceSpan span("lone");
  }
  Tracer::SetEnabled(false);
  std::vector<Tracer::Event> events = Tracer::CollectEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(ArgValue(events[0], "eval.orphan"), -1);
}

TEST(TracerTest, DisabledModeRecordsNothing) {
  TraceGuard guard;
  Tracer::Clear();
  ASSERT_FALSE(Tracer::enabled());
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("ghost");
    span.AddArg("i", i);
    Tracer::AddCounterDelta("eval.ghost", 1);
  }
  EXPECT_TRUE(Tracer::CollectEvents().empty());
}

TEST(TracerTest, SpanOpenedWhileEnabledSurvivesMidSpanDisable) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  {
    TraceSpan span("straddler");
    Tracer::SetEnabled(false);
  }
  // The span was active at construction, so it completes and records.
  EXPECT_EQ(Tracer::CollectEvents().size(), 1u);
}

TEST(TracerTest, ParallelSpansLandInPerThreadBuffers) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  ThreadPool::SetNumThreads(4);
  constexpr int kTasks = 64;
  ThreadPool::ParallelFor(kTasks, [](int64_t i) {
    TraceSpan span("task");
    span.AddArg("index", i);
    Tracer::AddCounterDelta("eval.work", 1);
    TraceSpan nested("task/inner");
  });
  Tracer::SetEnabled(false);

  std::vector<Tracer::Event> events = Tracer::CollectEvents();
  ASSERT_EQ(events.size(), 2u * kTasks);
  int outer_spans = 0;
  std::vector<int64_t> seen_index;
  for (const Tracer::Event& e : events) {
    if (e.name == "task") {
      ++outer_spans;
      EXPECT_EQ(e.depth, 0) << e.name;
      EXPECT_EQ(ArgValue(e, "eval.work"), 1);
      seen_index.push_back(ArgValue(e, "index"));
    } else {
      EXPECT_EQ(e.name, "task/inner");
      EXPECT_EQ(e.depth, 1);
    }
  }
  EXPECT_EQ(outer_spans, kTasks);
  std::sort(seen_index.begin(), seen_index.end());
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(seen_index[i], i);
}

TEST(TracerTest, ChromeTraceFileIsWellFormed) {
  TraceGuard guard;
  Tracer::Clear();
  Tracer::SetEnabled(true);
  {
    TraceSpan span("phase \"quoted\\name\"");
    span.AddArg("n", 3);
  }
  Tracer::SetEnabled(false);
  std::string path = TempPath("cvrepair_trace_test.json");
  ASSERT_TRUE(Tracer::WriteChromeTrace(path));
  std::string text = ReadFile(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  // The quote and backslash in the span name must be escaped.
  EXPECT_NE(text.find("phase \\\"quoted\\\\name\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsTest, RegistryHandlesAreStableAndKindIsFixedByFirstUse) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("test.a");
  EXPECT_EQ(a, registry.GetCounter("test.a"));
  EXPECT_EQ(a->kind(), MetricKind::kWork);
  a->Add(5);
  a->Increment();
  EXPECT_EQ(a->value(), 6);

  MetricCounter* r = registry.GetCounter("test.r", MetricKind::kRuntime);
  // Second registration with a different kind keeps the first kind.
  EXPECT_EQ(registry.GetCounter("test.r", MetricKind::kWork), r);
  EXPECT_EQ(r->kind(), MetricKind::kRuntime);
}

TEST(MetricsTest, WorkSnapshotExcludesRuntimeCounters) {
  MetricsRegistry registry;
  registry.GetCounter("work.one")->Add(1);
  registry.GetCounter("sched.noise", MetricKind::kRuntime)->Add(7);

  MetricsSnapshot all = registry.SnapshotAll();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("sched.noise"), 7);

  MetricsSnapshot work = registry.SnapshotWork();
  EXPECT_EQ(work.size(), 1u);
  EXPECT_EQ(work.at("work.one"), 1);

  registry.ResetAll();
  EXPECT_EQ(registry.SnapshotAll().at("sched.noise"), 0);
  EXPECT_EQ(registry.GetCounter("work.one")->value(), 0);
}

TEST(MetricsTest, JsonRenderingIsTheExactStableFormat) {
  MetricsSnapshot snapshot;
  snapshot["b.second"] = 20;
  snapshot["a.first"] = 1;
  EXPECT_EQ(MetricsToJson(snapshot),
            "{\n"
            "  \"a.first\": 1,\n"
            "  \"b.second\": 20\n"
            "}\n");
}

TEST(MetricsTest, JsonFileIsByteIdenticalAcrossWrites) {
  MetricsRegistry registry;
  registry.GetCounter("eval.scans")->Add(42);
  registry.GetCounter("repair.rounds")->Add(3);
  std::string p1 = TempPath("cvrepair_metrics_test_1.json");
  std::string p2 = TempPath("cvrepair_metrics_test_2.json");
  ASSERT_TRUE(WriteMetricsJsonFile(p1, registry.SnapshotWork()));
  ASSERT_TRUE(WriteMetricsJsonFile(p2, registry.SnapshotWork()));
  std::string t1 = ReadFile(p1);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, ReadFile(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(MetricsTest, DiffSubtractsPerKeyAndKeepsVanishedKeysNegated) {
  MetricsSnapshot before{{"x", 10}, {"gone", 4}};
  MetricsSnapshot after{{"x", 25}, {"fresh", 2}};
  MetricsSnapshot diff = MetricsDiff(after, before);
  EXPECT_EQ(diff.at("x"), 15);
  EXPECT_EQ(diff.at("fresh"), 2);
  EXPECT_EQ(diff.at("gone"), -4);
}

}  // namespace
}  // namespace cvrepair
