#ifndef CVREPAIR_RELATION_CSV_H_
#define CVREPAIR_RELATION_CSV_H_

#include <optional>
#include <string>

#include "relation/relation.h"

namespace cvrepair {

/// Result of a CSV parse: either a relation or a human-readable error.
struct CsvResult {
  std::optional<Relation> relation;
  std::string error;

  bool ok() const { return relation.has_value(); }
};

/// Parses CSV text (first line = header) into a relation using `schema` for
/// types. Header names must match the schema's attribute names and order.
/// Numeric fields that fail to parse and empty fields become NULL.
CsvResult ReadCsvString(const Schema& schema, const std::string& text);

/// Reads a CSV file from disk; see ReadCsvString.
CsvResult ReadCsvFile(const Schema& schema, const std::string& path);

/// Serializes a relation to CSV (header + rows). Fresh variables render as
/// "fv_<id>", NULL renders as the empty field.
std::string WriteCsvString(const Relation& relation);

/// Writes WriteCsvString(relation) to `path`; returns false on I/O error.
bool WriteCsvFile(const Relation& relation, const std::string& path);

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_CSV_H_
