#ifndef CVREPAIR_RELATION_CSV_H_
#define CVREPAIR_RELATION_CSV_H_

#include <optional>
#include <string>

#include "relation/relation.h"

namespace cvrepair {

/// Result of a CSV parse: either a relation or a human-readable error.
struct CsvResult {
  std::optional<Relation> relation;
  std::string error;

  bool ok() const { return relation.has_value(); }
};

/// Parses CSV text (first record = header) into a relation using `schema`
/// for types. Header names must match the schema's attribute names and
/// order. Numeric fields that fail to parse and empty fields become NULL.
///
/// Quoting follows RFC 4180: fields may be double-quoted, `""` escapes a
/// quote, and a quoted field may contain commas and newlines (one record
/// can span several input lines). A quote left open at end of input is a
/// parse error — the file is truncated mid-record, and guessing the
/// missing close quote would silently swallow the damage.
CsvResult ReadCsvString(const Schema& schema, const std::string& text);

/// Reads a CSV file from disk; see ReadCsvString.
CsvResult ReadCsvFile(const Schema& schema, const std::string& path);

/// Serializes a relation to CSV (header + rows). Fresh variables render as
/// "fv_<id>", NULL renders as the empty field.
std::string WriteCsvString(const Relation& relation);

/// Writes WriteCsvString(relation) to `path`; returns false on I/O error.
bool WriteCsvFile(const Relation& relation, const std::string& path);

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_CSV_H_
