#ifndef CVREPAIR_RELATION_RELATION_H_
#define CVREPAIR_RELATION_RELATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace cvrepair {

/// Address of one cell t.A in a relation instance: the pair of a row
/// (tuple) index and an attribute id.
struct Cell {
  int row = 0;
  AttrId attr = 0;

  friend bool operator==(const Cell& a, const Cell& b) {
    return a.row == b.row && a.attr == b.attr;
  }
  friend bool operator!=(const Cell& a, const Cell& b) { return !(a == b); }
  friend bool operator<(const Cell& a, const Cell& b) {
    return a.row != b.row ? a.row < b.row : a.attr < b.attr;
  }
};

struct CellHash {
  size_t operator()(const Cell& c) const {
    // Pack the full 32-bit row into the high half so row and attr bits can
    // never collide, then finalize with a splitmix64-style mixer (std::hash
    // of an integer is the identity on common standard libraries, which
    // gives terrible bucket distribution for row-major iteration orders).
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(c.row)) << 32) |
                 static_cast<uint32_t>(c.attr);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// A relation instance I: a schema plus a row-major grid of values.
///
/// The repair algorithms modify instances only through SetValue (value
/// modification, never tuple insertion/deletion, matching Definition 1),
/// and allocate fresh variables through NextFresh so that distinct fv
/// assignments stay distinguishable.
class Relation {
 public:
  Relation();
  explicit Relation(Schema schema);
  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;
  ~Relation();

  const Schema& schema() const { return schema_; }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_attributes() const { return schema_.num_attributes(); }

  /// Appends a row; the row must have exactly num_attributes() values.
  /// Returns the new row index.
  int AddRow(std::vector<Value> row);

  const Value& Get(int row, AttrId attr) const { return rows_[row][attr]; }
  const Value& Get(const Cell& c) const { return rows_[c.row][c.attr]; }
  void SetValue(int row, AttrId attr, Value v) {
    rows_[row][attr] = std::move(v);
    ++version_;
  }
  void SetValue(const Cell& c, Value v) { SetValue(c.row, c.attr, std::move(v)); }

  const std::vector<Value>& row(int i) const { return rows_[i]; }

  /// Allocates a new fresh variable, unique within this instance. Does NOT
  /// count as a mutation: fresh ids are a counter, not cell data, so
  /// handing one out must never invalidate caches or encoded views.
  Value NextFresh() { return Value::Fresh(next_fresh_id_++); }

  /// Monotone mutation counter, bumped by SetValue / AddRow / Truncate
  /// (not by NextFresh). Lets derived views — the Domain cache below, the
  /// dictionary-encoded column store (relation/encoded.h) — detect that
  /// they are stale.
  uint64_t version() const { return version_; }

  /// The currently known active domain dom(A): distinct non-null,
  /// non-fresh values of attribute `attr`, in first-appearance order.
  /// Cached per attribute; the cache is invalidated by any mutation
  /// (version()) and is safe to populate from concurrent readers.
  std::vector<Value> Domain(AttrId attr) const;

  /// Truncates the instance to its first `n` rows (used by scalability
  /// sweeps). No-op if n >= num_rows().
  void Truncate(int n);

  /// Renders the instance as an aligned text table (small instances only;
  /// meant for examples and debugging).
  std::string ToString(int max_rows = 50) const;

 private:
  struct DomainCache;  // defined in relation.cc; holds a mutex

  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  int64_t next_fresh_id_ = 1;
  uint64_t version_ = 0;
  // Lazily filled per-attribute Domain() results, keyed by version_.
  // Always non-null; never copied between instances (each copy starts
  // with a cold cache so a stale entry cannot leak across instances).
  mutable std::unique_ptr<DomainCache> domain_cache_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_RELATION_H_
