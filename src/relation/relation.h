#ifndef CVREPAIR_RELATION_RELATION_H_
#define CVREPAIR_RELATION_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"

namespace cvrepair {

/// Address of one cell t.A in a relation instance: the pair of a row
/// (tuple) index and an attribute id.
struct Cell {
  int row = 0;
  AttrId attr = 0;

  friend bool operator==(const Cell& a, const Cell& b) {
    return a.row == b.row && a.attr == b.attr;
  }
  friend bool operator!=(const Cell& a, const Cell& b) { return !(a == b); }
  friend bool operator<(const Cell& a, const Cell& b) {
    return a.row != b.row ? a.row < b.row : a.attr < b.attr;
  }
};

struct CellHash {
  size_t operator()(const Cell& c) const {
    return std::hash<int64_t>{}((static_cast<int64_t>(c.row) << 20) ^
                                static_cast<int64_t>(c.attr));
  }
};

/// A relation instance I: a schema plus a row-major grid of values.
///
/// The repair algorithms modify instances only through SetValue (value
/// modification, never tuple insertion/deletion, matching Definition 1),
/// and allocate fresh variables through NextFresh so that distinct fv
/// assignments stay distinguishable.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_attributes() const { return schema_.num_attributes(); }

  /// Appends a row; the row must have exactly num_attributes() values.
  /// Returns the new row index.
  int AddRow(std::vector<Value> row);

  const Value& Get(int row, AttrId attr) const { return rows_[row][attr]; }
  const Value& Get(const Cell& c) const { return rows_[c.row][c.attr]; }
  void SetValue(int row, AttrId attr, Value v) {
    rows_[row][attr] = std::move(v);
  }
  void SetValue(const Cell& c, Value v) { SetValue(c.row, c.attr, std::move(v)); }

  const std::vector<Value>& row(int i) const { return rows_[i]; }

  /// Allocates a new fresh variable, unique within this instance.
  Value NextFresh() { return Value::Fresh(next_fresh_id_++); }

  /// The currently known active domain dom(A): distinct non-null,
  /// non-fresh values of attribute `attr`, in first-appearance order.
  std::vector<Value> Domain(AttrId attr) const;

  /// Truncates the instance to its first `n` rows (used by scalability
  /// sweeps). No-op if n >= num_rows().
  void Truncate(int n);

  /// Renders the instance as an aligned text table (small instances only;
  /// meant for examples and debugging).
  std::string ToString(int max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
  int64_t next_fresh_id_ = 1;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_RELATION_H_
