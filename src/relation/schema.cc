#include "relation/schema.h"

// Schema is header-only today; this translation unit anchors the module so
// future out-of-line helpers have a home and the library archive stays
// layout-stable.
