#ifndef CVREPAIR_RELATION_ENCODED_H_
#define CVREPAIR_RELATION_ENCODED_H_

// Dictionary-encoded columnar view of a Relation.
//
// Every hot scan in the system (violation detection, the shared
// evaluation index, suspect enumeration, incremental maintenance)
// ultimately compares boxed Value variants stored row-major. This header
// provides the integer-coded mirror those scans consume instead:
//
//  * a per-attribute, order-preserving `Dictionary` mapping each distinct
//    value (one code per EvalOp-equality class) to a stable int32 code and
//    a rank within its comparison class, so `=`/`!=` become code compares
//    and `<`/`<=`/`>`/`>=` become rank compares;
//  * an `EncodedRelation` column store kept consistent with repairs
//    through an epoch/ApplyChange protocol — new values are *appended* to
//    the dictionary (codes are stable) and their rank is recovered by
//    binary search into the sorted order, so order predicates stay
//    correct without a full re-encode;
//  * compiled predicate/constraint evaluators (`EncodedPredicateEval`,
//    `EncodedConstraintEval`) that evaluate DC predicates on codes with
//    exactly EvalOp's semantics, falling back to Value evaluation only
//    for shapes codes cannot answer (cross-attribute two-cell predicates,
//    whose operands live in different dictionaries).
//
// Block layout (see DESIGN.md): each column is a sequence of fixed-size
// segments of kBlockSize codes carved out of an arena owned by the
// relation. Segments never move once allocated — ApplyChange writes the
// re-encoded cell in place — and row r of attribute a lives at
// segments(a)[r >> kBlockShift][r & kBlockMask]. Every (attribute, block)
// pair carries a zone map (`BlockMeta`): the min/max packed rank over the
// block's non-sentinel codes, a NULL/fresh-sentinel presence bit, and the
// epoch of its last recompute. Zone maps are maintained *eagerly* — they
// are always current — so concurrent read-only scans may consult them
// without synchronization: an ApplyChange that grows no dictionary
// recomputes only the touched block's meta (O(kBlockSize)); one that does
// grow a dictionary recomputes that column's metas (ranks above the
// insertion point shifted), which is rare and already O(dictionary) in
// the dictionary itself.
//
// Epochs: `attr_epoch(a)` advances when attribute a's dictionary grows
// (its rank array may reallocate and existing packed ranks may shift);
// `structural_epoch()` advances when AppendRow extends the relation (the
// per-column segment tables may reallocate). Compiled evaluators record
// the epochs of exactly the state they cache and report staleness
// per-predicate through valid_for — a dictionary growing on attribute X
// does not invalidate evaluators compiled against attribute Y. The legacy
// `epoch()` still advances on either event.
//
// Sentinel codes: NULL cells encode to kNullCode and fresh variables to
// kFreshCode — both negative, so a single sign test reproduces the
// "NULL/fv satisfies no predicate" rule (Section 2.1) before any compare.
// Note that kFreshCode deliberately conflates distinct fresh variables:
// no predicate ever distinguishes them, and repair bookkeeping that does
// (fv_i == fv_i storage equality) reads the row-major Relation, which
// remains the sole mutation interface and the source of truth.
//
// Semantics note: codes identify *EvalOp-equality* classes, so Int(1) and
// Double(1.0) share a code while representational Value equality keeps
// them distinct. On schema-typed columns (every generator and CSV load)
// the two notions coincide. Double NaN is unsupported in the encoded path
// (EvalOp gives NaN != NaN, which no total order can encode); a debug
// assert rejects it.

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "dc/op.h"  // Op only; dc/op.h depends just on relation/value.h
#include "relation/relation.h"
#include "relation/value.h"

namespace cvrepair {

class Predicate;
class DenialConstraint;
struct EvalCounters;

/// Integer code of one cell under its attribute's dictionary.
using Code = int32_t;

inline constexpr Code kNullCode = -1;   ///< cell is NULL
inline constexpr Code kFreshCode = -2;  ///< cell is a fresh variable fv
inline constexpr Code kAbsentCode = -3; ///< lookup miss / unsatisfiable

/// Order-preserving dictionary for one attribute.
///
/// Codes are stable append-ordered ids (a value keeps its code for the
/// dictionary's lifetime); the semantic order lives in a separate packed
/// rank per code: (comparison class << kRankBits) | rank-within-class,
/// where class 0 holds numeric values ordered by numeric() and class 1
/// holds strings ordered lexicographically. Two codes are comparable iff
/// their classes match (EvalOp: type-mismatched operands satisfy nothing,
/// not even `!=`).
class Dictionary {
 public:
  static constexpr int kRankBits = 30;
  static constexpr int32_t kRankMask = (int32_t{1} << kRankBits) - 1;

  /// Comparison class of a (non-NULL, non-fresh) value: 0 numeric,
  /// 1 string.
  static int32_t ClassOf(const Value& v) {
    return v.kind() == ValueKind::kString ? 1 : 0;
  }

  /// Semantic three-way compare within one class (numeric() widening for
  /// numerics, lexicographic for strings).
  static int Compare(const Value& a, const Value& b);

  /// Code of `v`, inserting it if absent. NULL / fresh map to their
  /// sentinels without touching the dictionary. Insertion appends (codes
  /// already handed out never change) and bumps the ranks of entries
  /// ordered after the new value — O(dictionary size), paid only when a
  /// repair introduces a genuinely new value.
  Code EncodeInsert(const Value& v);

  /// Code of `v`, or kAbsentCode if it was never inserted (NULL / fresh
  /// still map to their sentinels).
  Code Lookup(const Value& v) const;

  /// Packed (class << kRankBits) | rank of a non-sentinel code.
  int32_t rank(Code code) const {
    return rank_of_[static_cast<size_t>(code)];
  }
  const int32_t* rank_data() const { return rank_of_.data(); }

  /// Representative value of a non-sentinel code.
  const Value& value(Code code) const {
    return values_[static_cast<size_t>(code)];
  }

  int size() const { return static_cast<int>(values_.size()); }

  /// Precomputed thresholds for a constant predicate `cell op c`:
  /// with e_0 < e_1 < ... the class-`cls` entries in semantic order,
  /// lower = #{i : e_i < c} and upper = #{i : e_i <= c}, so for a cell of
  /// rank r in that class:  v < c  iff r < lower,   v <= c iff r < upper,
  ///                        v > c  iff r >= upper,  v >= c iff r >= lower.
  /// Stale after any insertion into this dictionary — recompute when the
  /// owning EncodedRelation's attr_epoch moves.
  struct ConstantBounds {
    Code eq = kAbsentCode;  ///< code of c, or kAbsentCode
    int32_t cls = -1;       ///< -1: c is NULL/fresh — satisfies nothing
    int32_t lower = 0;
    int32_t upper = 0;
  };
  ConstantBounds BoundsOf(const Value& c) const;

 private:
  // Position in sorted_[cls] where `v` belongs (first entry not
  // semantically less than v); *found reports an exact semantic match.
  size_t SortedPos(int32_t cls, const Value& v, bool* found) const;

  std::vector<Value> values_;    // code -> representative (append order)
  std::vector<int32_t> rank_of_; // code -> packed class|rank
  std::vector<Code> sorted_[2];  // per class: codes in semantic order
};

/// Column store of integer codes mirroring one Relation, laid out in
/// fixed-size arena-backed blocks with an eagerly maintained per-block
/// zone map (see the header comment).
///
/// The Relation stays the sole mutation interface: callers first mutate
/// it (SetValue), then notify the mirror with ApplyChange(row, attr),
/// which re-encodes that single cell in place. `in_sync()` cross-checks
/// against Relation::version() so a forgotten ApplyChange is detectable.
class EncodedRelation {
 public:
  static constexpr int kBlockShift = 10;
  static constexpr int kBlockSize = 1 << kBlockShift;  ///< codes per block
  static constexpr int kBlockMask = kBlockSize - 1;

  /// Zone map of one (attribute, block): packed-rank extrema over the
  /// block's non-sentinel codes (min > max means the block holds only
  /// sentinels — no predicate matches anything in it), whether any
  /// NULL/fresh sentinel is present, and the relation epoch at the last
  /// recompute (introspection: which blocks a mutation dirtied).
  struct BlockMeta {
    int32_t min_rank = std::numeric_limits<int32_t>::max();
    int32_t max_rank = std::numeric_limits<int32_t>::min();
    bool has_sentinel = false;
    uint64_t dirty_epoch = 0;

    bool all_sentinel() const { return min_rank > max_rank; }
  };

  explicit EncodedRelation(const Relation& I);

  const Relation& relation() const { return *I_; }
  int num_rows() const { return n_; }
  int num_attributes() const {
    return static_cast<int>(col_segs_.size());
  }

  Code code(int row, AttrId attr) const {
    return col_segs_[static_cast<size_t>(attr)]
                    [static_cast<size_t>(row >> kBlockShift)]
                    [row & kBlockMask];
  }
  const Dictionary& dict(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)];
  }

  // --- Block-granular access (the scan kernels' interface). -------------
  int num_blocks() const {
    return n_ == 0 ? 0 : ((n_ - 1) >> kBlockShift) + 1;
  }
  /// Rows resident in block b (kBlockSize except a shorter tail block).
  int block_rows(int b) const {
    int begin = b << kBlockShift;
    int left = n_ - begin;
    return left < kBlockSize ? left : kBlockSize;
  }
  /// Codes of block b of attribute a (block_rows(b) valid entries; the
  /// unused tail of the segment is kNullCode-filled, never scanned).
  const Code* block_codes(AttrId a, int b) const {
    return col_segs_[static_cast<size_t>(a)][static_cast<size_t>(b)];
  }
  /// The column's segment table, for compiled evaluators that index rows
  /// directly. Invalidated by AppendRow (structural_epoch moves).
  const Code* const* segments(AttrId a) const {
    return col_segs_[static_cast<size_t>(a)].data();
  }
  const BlockMeta& block_meta(AttrId a, int b) const {
    return metas_[static_cast<size_t>(a)][static_cast<size_t>(b)];
  }

  /// Re-encodes one cell from the backing relation in place. Call exactly
  /// once after each Relation::SetValue. Row deletion is not supported
  /// (repairs modify values only, Definition 1); streaming ingestion
  /// appends rows through AppendRow below. Refreshes the touched block's
  /// zone map — or the whole column's when the dictionary grew (ranks
  /// shifted).
  void ApplyChange(int row, AttrId attr);

  /// Mirrors one Relation::AddRow: encodes the backing relation's newest
  /// row into every column. Call exactly once after each AddRow, before
  /// any further ApplyChange. Always advances the structural epoch (and
  /// the legacy epoch): appending can reallocate the per-column segment
  /// tables, and compiled evaluators cache raw table pointers.
  void AppendRow();

  /// Advances when attribute a's dictionary grows; evaluators compiled
  /// against that dictionary hold stale ranks/thresholds.
  uint64_t attr_epoch(AttrId a) const {
    return attr_epochs_[static_cast<size_t>(a)];
  }
  /// Advances when AppendRow extends the relation (segment tables may
  /// have reallocated).
  uint64_t structural_epoch() const { return structural_epoch_; }

  /// Legacy coarse epoch: advances on any dictionary growth and on every
  /// AppendRow. Prefer valid_for on the compiled evaluators, which is
  /// keyed per attribute and does not over-invalidate.
  uint64_t epoch() const { return epoch_; }

  /// True iff every Relation mutation has been mirrored (each SetValue
  /// paired with one ApplyChange).
  bool in_sync() const { return synced_version_ == I_->version(); }

 private:
  /// Hands out the next kBlockSize-code segment from the arena,
  /// kNullCode-filled. Chunks hold several segments to keep allocation
  /// traffic low; handed-out segments never move or shrink.
  Code* AllocateSegment();
  void AppendSegmentToColumn(AttrId a);
  void RecomputeBlockMeta(AttrId a, int b);
  void RecomputeColumnMetas(AttrId a);

  static constexpr int kSegmentsPerChunk = 8;

  const Relation* I_;
  int n_ = 0;
  std::vector<Dictionary> dicts_;
  /// Column-major: col_segs_[a][b] points at the kBlockSize-code segment
  /// holding rows [b << kBlockShift, ...) of attribute a.
  std::vector<std::vector<Code*>> col_segs_;
  std::vector<std::vector<BlockMeta>> metas_;   // [attr][block]
  std::vector<std::unique_ptr<Code[]>> arena_;  // chunked segment storage
  int arena_used_ = kSegmentsPerChunk;          // segments used in back()
  std::vector<uint64_t> attr_epochs_;
  uint64_t structural_epoch_ = 0;
  uint64_t epoch_ = 0;
  uint64_t synced_version_ = 0;
};

/// One DC predicate compiled against an EncodedRelation.
///
/// Same-attribute two-cell predicates and constant predicates evaluate
/// purely on codes/ranks; cross-attribute two-cell predicates (operands
/// in different dictionaries) fall back to Predicate::Eval on the backing
/// relation — on_codes() tells callers which work counter an evaluation
/// belongs to. Valid only while the epochs of the state it caches stand
/// still: the lhs attribute's dictionary (attr_epoch) and the segment
/// tables (structural_epoch). valid_for is keyed per attribute, so growth
/// in an unrelated dictionary does not invalidate this evaluator.
class EncodedPredicateEval {
 public:
  EncodedPredicateEval(const EncodedRelation& E, const Predicate& p);

  bool on_codes() const { return mode_ != Mode::kFallback; }
  bool is_constant() const { return mode_ == Mode::kConstant; }
  bool is_same_attr() const { return mode_ == Mode::kSameAttr; }
  bool valid_for(const EncodedRelation& E) const {
    if (mode_ == Mode::kFallback) return true;  // nothing cached
    return structural_epoch_ == E.structural_epoch() &&
           attr_epoch_ == E.attr_epoch(lattr_);
  }

  Op op() const { return op_; }
  AttrId lhs_attr() const { return lattr_; }
  int lhs_tuple() const { return lt_; }
  int rhs_tuple() const { return rt_; }  // kSameAttr only
  const Dictionary::ConstantBounds& bounds() const { return bounds_; }
  const int32_t* ranks() const { return ranks_; }

  bool Eval(const std::vector<int>& rows) const;

 private:
  enum class Mode : uint8_t { kSameAttr, kConstant, kFallback };

  Code at(const Code* const* segs, int row) const {
    return segs[row >> EncodedRelation::kBlockShift]
               [row & EncodedRelation::kBlockMask];
  }

  Mode mode_ = Mode::kFallback;
  Op op_ = Op::kEq;
  int lt_ = 0, rt_ = 0;            // tuple variable of lhs / rhs operand
  AttrId lattr_ = 0;               // lhs (== rhs for kSameAttr) attribute
  const Code* const* lsegs_ = nullptr;  // lhs column segment table
  const Code* const* rsegs_ = nullptr;  // rhs column segment table
  const int32_t* ranks_ = nullptr; // lhs dictionary packed ranks
  Dictionary::ConstantBounds bounds_;  // kConstant
  const Predicate* p_ = nullptr;
  const Relation* I_ = nullptr;    // kFallback
  uint64_t structural_epoch_ = 0;
  uint64_t attr_epoch_ = 0;
};

/// A whole constraint compiled against an EncodedRelation; evaluates with
/// the same predicate order and short-circuit as
/// DenialConstraint::IsViolated, attributing each predicate evaluation to
/// code_predicate_evals or predicate_evals by evaluator kind.
class EncodedConstraintEval {
 public:
  EncodedConstraintEval(const EncodedRelation& E, const DenialConstraint& c);

  const DenialConstraint& constraint() const { return *c_; }
  const std::vector<EncodedPredicateEval>& predicate_evals() const {
    return evals_;
  }

  /// True iff every compiled predicate is still current for E. Keyed per
  /// attribute epoch: growth in a dictionary none of this constraint's
  /// predicates read does not force a recompile.
  bool valid_for(const EncodedRelation& E) const {
    for (const EncodedPredicateEval& ev : evals_) {
      if (!ev.valid_for(E)) return false;
    }
    return true;
  }

  bool IsViolated(const std::vector<int>& rows) const;
  /// Counted flavor for the capped scans (mirrors IsViolatedCounted).
  bool IsViolated(const std::vector<int>& rows, EvalCounters* local) const;

 private:
  const DenialConstraint* c_ = nullptr;
  std::vector<EncodedPredicateEval> evals_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_ENCODED_H_
