#ifndef CVREPAIR_RELATION_ENCODED_H_
#define CVREPAIR_RELATION_ENCODED_H_

// Dictionary-encoded columnar view of a Relation.
//
// Every hot scan in the system (violation detection, the shared
// evaluation index, suspect enumeration, incremental maintenance)
// ultimately compares boxed Value variants stored row-major. This header
// provides the integer-coded mirror those scans consume instead:
//
//  * a per-attribute, order-preserving `Dictionary` mapping each distinct
//    value (one code per EvalOp-equality class) to a stable int32 code and
//    a rank within its comparison class, so `=`/`!=` become code compares
//    and `<`/`<=`/`>`/`>=` become rank compares;
//  * an `EncodedRelation` column store (`std::vector<int32_t>` per
//    attribute) kept consistent with repairs through an epoch/ApplyChange
//    protocol — new values are *appended* to the dictionary (codes are
//    stable) and their rank is recovered by binary search into the sorted
//    order, so order predicates stay correct without a full re-encode;
//  * compiled predicate/constraint evaluators (`EncodedPredicateEval`,
//    `EncodedConstraintEval`) that evaluate DC predicates on codes with
//    exactly EvalOp's semantics, falling back to Value evaluation only
//    for shapes codes cannot answer (cross-attribute two-cell predicates,
//    whose operands live in different dictionaries).
//
// Sentinel codes: NULL cells encode to kNullCode and fresh variables to
// kFreshCode — both negative, so a single sign test reproduces the
// "NULL/fv satisfies no predicate" rule (Section 2.1) before any compare.
// Note that kFreshCode deliberately conflates distinct fresh variables:
// no predicate ever distinguishes them, and repair bookkeeping that does
// (fv_i == fv_i storage equality) reads the row-major Relation, which
// remains the sole mutation interface and the source of truth.
//
// Semantics note: codes identify *EvalOp-equality* classes, so Int(1) and
// Double(1.0) share a code while representational Value equality keeps
// them distinct. On schema-typed columns (every generator and CSV load)
// the two notions coincide. Double NaN is unsupported in the encoded path
// (EvalOp gives NaN != NaN, which no total order can encode); a debug
// assert rejects it.

#include <cassert>
#include <cstdint>
#include <vector>

#include "dc/op.h"  // Op only; dc/op.h depends just on relation/value.h
#include "relation/relation.h"
#include "relation/value.h"

namespace cvrepair {

class Predicate;
class DenialConstraint;
struct EvalCounters;

/// Integer code of one cell under its attribute's dictionary.
using Code = int32_t;

inline constexpr Code kNullCode = -1;   ///< cell is NULL
inline constexpr Code kFreshCode = -2;  ///< cell is a fresh variable fv
inline constexpr Code kAbsentCode = -3; ///< lookup miss / unsatisfiable

/// Order-preserving dictionary for one attribute.
///
/// Codes are stable append-ordered ids (a value keeps its code for the
/// dictionary's lifetime); the semantic order lives in a separate packed
/// rank per code: (comparison class << kRankBits) | rank-within-class,
/// where class 0 holds numeric values ordered by numeric() and class 1
/// holds strings ordered lexicographically. Two codes are comparable iff
/// their classes match (EvalOp: type-mismatched operands satisfy nothing,
/// not even `!=`).
class Dictionary {
 public:
  static constexpr int kRankBits = 30;
  static constexpr int32_t kRankMask = (int32_t{1} << kRankBits) - 1;

  /// Comparison class of a (non-NULL, non-fresh) value: 0 numeric,
  /// 1 string.
  static int32_t ClassOf(const Value& v) {
    return v.kind() == ValueKind::kString ? 1 : 0;
  }

  /// Semantic three-way compare within one class (numeric() widening for
  /// numerics, lexicographic for strings).
  static int Compare(const Value& a, const Value& b);

  /// Code of `v`, inserting it if absent. NULL / fresh map to their
  /// sentinels without touching the dictionary. Insertion appends (codes
  /// already handed out never change) and bumps the ranks of entries
  /// ordered after the new value — O(dictionary size), paid only when a
  /// repair introduces a genuinely new value.
  Code EncodeInsert(const Value& v);

  /// Code of `v`, or kAbsentCode if it was never inserted (NULL / fresh
  /// still map to their sentinels).
  Code Lookup(const Value& v) const;

  /// Packed (class << kRankBits) | rank of a non-sentinel code.
  int32_t rank(Code code) const {
    return rank_of_[static_cast<size_t>(code)];
  }
  const int32_t* rank_data() const { return rank_of_.data(); }

  /// Representative value of a non-sentinel code.
  const Value& value(Code code) const {
    return values_[static_cast<size_t>(code)];
  }

  int size() const { return static_cast<int>(values_.size()); }

  /// Precomputed thresholds for a constant predicate `cell op c`:
  /// with e_0 < e_1 < ... the class-`cls` entries in semantic order,
  /// lower = #{i : e_i < c} and upper = #{i : e_i <= c}, so for a cell of
  /// rank r in that class:  v < c  iff r < lower,   v <= c iff r < upper,
  ///                        v > c  iff r >= upper,  v >= c iff r >= lower.
  /// Stale after any insertion into this dictionary — recompute when the
  /// owning EncodedRelation's epoch moves.
  struct ConstantBounds {
    Code eq = kAbsentCode;  ///< code of c, or kAbsentCode
    int32_t cls = -1;       ///< -1: c is NULL/fresh — satisfies nothing
    int32_t lower = 0;
    int32_t upper = 0;
  };
  ConstantBounds BoundsOf(const Value& c) const;

 private:
  // Position in sorted_[cls] where `v` belongs (first entry not
  // semantically less than v); *found reports an exact semantic match.
  size_t SortedPos(int32_t cls, const Value& v, bool* found) const;

  std::vector<Value> values_;    // code -> representative (append order)
  std::vector<int32_t> rank_of_; // code -> packed class|rank
  std::vector<Code> sorted_[2];  // per class: codes in semantic order
};

/// Column store of integer codes mirroring one Relation.
///
/// The Relation stays the sole mutation interface: callers first mutate
/// it (SetValue), then notify the mirror with ApplyChange(row, attr),
/// which re-encodes that single cell. `epoch()` advances whenever a
/// dictionary grows — compiled evaluators (below) cache dictionary
/// internals and must be rebuilt when the epoch they were compiled
/// against has passed. `in_sync()` cross-checks against
/// Relation::version() so a forgotten ApplyChange is detectable.
class EncodedRelation {
 public:
  explicit EncodedRelation(const Relation& I);

  const Relation& relation() const { return *I_; }
  int num_rows() const { return n_; }
  int num_attributes() const { return static_cast<int>(cols_.size()); }

  Code code(int row, AttrId attr) const {
    return cols_[static_cast<size_t>(attr)][static_cast<size_t>(row)];
  }
  const std::vector<Code>& column(AttrId attr) const {
    return cols_[static_cast<size_t>(attr)];
  }
  const Dictionary& dict(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)];
  }

  /// Re-encodes one cell from the backing relation. Call exactly once
  /// after each Relation::SetValue. Row deletion is not supported
  /// (repairs modify values only, Definition 1); streaming ingestion
  /// appends rows through AppendRow below.
  void ApplyChange(int row, AttrId attr);

  /// Mirrors one Relation::AddRow: encodes the backing relation's newest
  /// row into every column. Call exactly once after each AddRow, before
  /// any further ApplyChange. Always advances the epoch — even when no
  /// dictionary grows — because appending can reallocate the code
  /// columns, and compiled evaluators cache raw column pointers.
  void AppendRow();

  /// Advances when any dictionary grows; compiled evaluators built under
  /// an older epoch hold stale ranks/thresholds and must be recompiled.
  uint64_t epoch() const { return epoch_; }

  /// True iff every Relation mutation has been mirrored (each SetValue
  /// paired with one ApplyChange).
  bool in_sync() const { return synced_version_ == I_->version(); }

 private:
  const Relation* I_;
  int n_ = 0;
  std::vector<Dictionary> dicts_;
  std::vector<std::vector<Code>> cols_;  // column-major
  uint64_t epoch_ = 0;
  uint64_t synced_version_ = 0;
};

/// One DC predicate compiled against an EncodedRelation.
///
/// Same-attribute two-cell predicates and constant predicates evaluate
/// purely on codes/ranks; cross-attribute two-cell predicates (operands
/// in different dictionaries) fall back to Predicate::Eval on the backing
/// relation — on_codes() tells callers which work counter an evaluation
/// belongs to. Valid only for the epoch it was compiled under.
class EncodedPredicateEval {
 public:
  EncodedPredicateEval(const EncodedRelation& E, const Predicate& p);

  bool on_codes() const { return mode_ != Mode::kFallback; }
  bool valid_for(const EncodedRelation& E) const {
    return epoch_ == E.epoch();
  }

  bool Eval(const std::vector<int>& rows) const;

 private:
  enum class Mode : uint8_t { kSameAttr, kConstant, kFallback };

  Mode mode_ = Mode::kFallback;
  Op op_ = Op::kEq;
  int lt_ = 0, rt_ = 0;            // tuple variable of lhs / rhs operand
  const Code* lcol_ = nullptr;     // lhs attribute column
  const Code* rcol_ = nullptr;     // rhs attribute column (kSameAttr)
  const int32_t* ranks_ = nullptr; // lhs dictionary packed ranks
  Dictionary::ConstantBounds bounds_;  // kConstant
  const Predicate* p_ = nullptr;
  const Relation* I_ = nullptr;    // kFallback
  uint64_t epoch_ = 0;
};

/// A whole constraint compiled against an EncodedRelation; evaluates with
/// the same predicate order and short-circuit as
/// DenialConstraint::IsViolated, attributing each predicate evaluation to
/// code_predicate_evals or predicate_evals by evaluator kind.
class EncodedConstraintEval {
 public:
  EncodedConstraintEval(const EncodedRelation& E, const DenialConstraint& c);

  const DenialConstraint& constraint() const { return *c_; }
  const std::vector<EncodedPredicateEval>& predicate_evals() const {
    return evals_;
  }

  bool IsViolated(const std::vector<int>& rows) const;
  /// Counted flavor for the capped scans (mirrors IsViolatedCounted).
  bool IsViolated(const std::vector<int>& rows, EvalCounters* local) const;

 private:
  const DenialConstraint* c_ = nullptr;
  std::vector<EncodedPredicateEval> evals_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_ENCODED_H_
