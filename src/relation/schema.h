#ifndef CVREPAIR_RELATION_SCHEMA_H_
#define CVREPAIR_RELATION_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cvrepair {

/// Index of an attribute within a schema.
using AttrId = int;

/// Logical type of an attribute. Order predicates (<, >, <=, >=) are
/// meaningful for numeric attributes; categorical (string) attributes are
/// compared with = / != only (lexicographic order is allowed but the
/// predicate space never proposes it).
enum class AttrType {
  kString = 0,
  kInt = 1,
  kDouble = 2,
};

/// Static description of one attribute.
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kString;
  /// Declared key attribute: inserting t0.K = t1.K over a key makes any
  /// two-tuple DC trivially satisfied (Section 2.2.1), so the predicate
  /// space skips key attributes.
  bool is_key = false;
};

/// Relation schema: an ordered list of typed attributes with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attrs) : attrs_(std::move(attrs)) {}

  /// Appends an attribute and returns its id.
  AttrId AddAttribute(std::string name, AttrType type, bool is_key = false) {
    attrs_.push_back({std::move(name), type, is_key});
    return static_cast<AttrId>(attrs_.size()) - 1;
  }

  int num_attributes() const { return static_cast<int>(attrs_.size()); }

  const AttributeDef& attribute(AttrId id) const { return attrs_[id]; }
  const std::string& name(AttrId id) const { return attrs_[id].name; }
  AttrType type(AttrId id) const { return attrs_[id].type; }
  bool is_key(AttrId id) const { return attrs_[id].is_key; }
  bool is_numeric(AttrId id) const {
    return attrs_[id].type != AttrType::kString;
  }

  /// Finds an attribute by name; std::nullopt if absent.
  std::optional<AttrId> Find(const std::string& name) const {
    for (size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i].name == name) return static_cast<AttrId>(i);
    }
    return std::nullopt;
  }

  const std::vector<AttributeDef>& attributes() const { return attrs_; }

 private:
  std::vector<AttributeDef> attrs_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_SCHEMA_H_
