#include "relation/relation.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace cvrepair {

int Relation::AddRow(std::vector<Value> row) {
  assert(static_cast<int>(row.size()) == schema_.num_attributes());
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size()) - 1;
}

std::vector<Value> Relation::Domain(AttrId attr) const {
  std::vector<Value> out;
  std::unordered_set<Value, ValueHash> seen;
  for (const auto& r : rows_) {
    const Value& v = r[attr];
    if (v.is_null() || v.is_fresh()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

void Relation::Truncate(int n) {
  if (n < num_rows()) rows_.resize(n);
}

std::string Relation::ToString(int max_rows) const {
  std::vector<size_t> width(schema_.num_attributes());
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    width[a] = schema_.name(a).size();
  }
  int shown = std::min(max_rows, num_rows());
  std::vector<std::vector<std::string>> cells(shown);
  for (int i = 0; i < shown; ++i) {
    cells[i].resize(schema_.num_attributes());
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      cells[i][a] = rows_[i][a].ToString();
      width[a] = std::max(width[a], cells[i][a].size());
    }
  }
  std::ostringstream os;
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    os << (a ? " | " : "") << schema_.name(a)
       << std::string(width[a] - schema_.name(a).size(), ' ');
  }
  os << "\n";
  for (int i = 0; i < shown; ++i) {
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      os << (a ? " | " : "") << cells[i][a]
         << std::string(width[a] - cells[i][a].size(), ' ');
    }
    os << "\n";
  }
  if (shown < num_rows()) {
    os << "... (" << num_rows() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace cvrepair
