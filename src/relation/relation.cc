#include "relation/relation.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace cvrepair {

// Per-attribute memo of Domain() results. Guarded by a mutex so concurrent
// readers of a const Relation stay race-free; entries are keyed by the
// mutation version at compute time, so any SetValue/AddRow/Truncate makes
// every cached entry unreachable without an explicit clear.
struct Relation::DomainCache {
  std::mutex mu;
  struct Entry {
    uint64_t valid_for = ~0ull;  // sentinel: never computed
    std::vector<Value> values;
  };
  std::unordered_map<AttrId, Entry> by_attr;
};

Relation::Relation() : domain_cache_(std::make_unique<DomainCache>()) {}

Relation::Relation(Schema schema)
    : schema_(std::move(schema)),
      domain_cache_(std::make_unique<DomainCache>()) {}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      rows_(other.rows_),
      next_fresh_id_(other.next_fresh_id_),
      version_(other.version_),
      domain_cache_(std::make_unique<DomainCache>()) {}

Relation::Relation(Relation&& other) noexcept = default;

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    rows_ = other.rows_;
    next_fresh_id_ = other.next_fresh_id_;
    version_ = other.version_;
    domain_cache_ = std::make_unique<DomainCache>();
  }
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept = default;

Relation::~Relation() = default;

int Relation::AddRow(std::vector<Value> row) {
  assert(static_cast<int>(row.size()) == schema_.num_attributes());
  rows_.push_back(std::move(row));
  ++version_;
  return static_cast<int>(rows_.size()) - 1;
}

std::vector<Value> Relation::Domain(AttrId attr) const {
  // Moved-from instances hand their cache to the new owner; recreate
  // lazily so they stay usable (assignable, queryable) afterwards.
  if (!domain_cache_) domain_cache_ = std::make_unique<DomainCache>();
  std::lock_guard<std::mutex> lock(domain_cache_->mu);
  DomainCache::Entry& entry = domain_cache_->by_attr[attr];
  if (entry.valid_for == version_) return entry.values;
  std::vector<Value> out;
  std::unordered_set<Value, ValueHash> seen;
  for (const auto& r : rows_) {
    const Value& v = r[attr];
    if (v.is_null() || v.is_fresh()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  entry.values = out;
  entry.valid_for = version_;
  return out;
}

void Relation::Truncate(int n) {
  if (n < num_rows()) {
    rows_.resize(n);
    ++version_;
  }
}

std::string Relation::ToString(int max_rows) const {
  std::vector<size_t> width(schema_.num_attributes());
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    width[a] = schema_.name(a).size();
  }
  int shown = std::min(max_rows, num_rows());
  std::vector<std::vector<std::string>> cells(shown);
  for (int i = 0; i < shown; ++i) {
    cells[i].resize(schema_.num_attributes());
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      cells[i][a] = rows_[i][a].ToString();
      width[a] = std::max(width[a], cells[i][a].size());
    }
  }
  std::ostringstream os;
  for (int a = 0; a < schema_.num_attributes(); ++a) {
    os << (a ? " | " : "") << schema_.name(a)
       << std::string(width[a] - schema_.name(a).size(), ' ');
  }
  os << "\n";
  for (int i = 0; i < shown; ++i) {
    for (int a = 0; a < schema_.num_attributes(); ++a) {
      os << (a ? " | " : "") << cells[i][a]
         << std::string(width[a] - cells[i][a].size(), ' ');
    }
    os << "\n";
  }
  if (shown < num_rows()) {
    os << "... (" << num_rows() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace cvrepair
