#include "relation/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace cvrepair {

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble: {
      double d = as_double();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueKind::kString:
      return as_string();
    case ValueKind::kFresh:
      return "fv_" + std::to_string(fresh_id());
  }
  return "NULL";
}

size_t Value::Hash() const {
  // Mix the kind into the payload hash so e.g. Int(0) and Double(0) differ.
  size_t seed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt:
      seed ^= std::hash<int64_t>{}(as_int()) + (seed << 6);
      break;
    case ValueKind::kDouble:
      seed ^= std::hash<double>{}(as_double()) + (seed << 6);
      break;
    case ValueKind::kString:
      seed ^= std::hash<std::string>{}(as_string()) + (seed << 6);
      break;
    case ValueKind::kFresh:
      seed ^= std::hash<int64_t>{}(fresh_id()) + (seed << 6) + 0x517cc1b7;
      break;
  }
  return seed;
}

}  // namespace cvrepair
