#include "relation/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace cvrepair {

namespace {

// Splits one CSV record, honoring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Value ParseField(AttrType type, const std::string& field) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case AttrType::kString:
      return Value::String(field);
    case AttrType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Int(v);
    }
    case AttrType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Double(v);
    }
  }
  return Value::Null();
}

}  // namespace

CsvResult ReadCsvString(const Schema& schema, const std::string& text) {
  CsvResult result;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    result.error = "empty CSV input";
    return result;
  }
  std::vector<std::string> header = SplitCsvLine(line);
  if (static_cast<int>(header.size()) != schema.num_attributes()) {
    result.error = "header has " + std::to_string(header.size()) +
                   " fields, schema has " +
                   std::to_string(schema.num_attributes());
    return result;
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (header[a] != schema.name(a)) {
      result.error = "header field " + std::to_string(a) + " is '" +
                     header[a] + "', expected '" + schema.name(a) + "'";
      return result;
    }
  }
  Relation rel(schema);
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (static_cast<int>(fields.size()) != schema.num_attributes()) {
      result.error = "line " + std::to_string(lineno) + " has " +
                     std::to_string(fields.size()) + " fields";
      return result;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (int a = 0; a < schema.num_attributes(); ++a) {
      row.push_back(ParseField(schema.type(a), fields[a]));
    }
    rel.AddRow(std::move(row));
  }
  result.relation = std::move(rel);
  return result;
}

CsvResult ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    CsvResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ReadCsvString(schema, buf.str());
}

std::string WriteCsvString(const Relation& relation) {
  std::ostringstream os;
  const Schema& schema = relation.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    os << (a ? "," : "") << QuoteField(schema.name(a));
  }
  os << "\n";
  for (int i = 0; i < relation.num_rows(); ++i) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a) os << ",";
      const Value& v = relation.Get(i, a);
      if (!v.is_null()) os << QuoteField(v.ToString());
    }
    os << "\n";
  }
  return os.str();
}

bool WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << WriteCsvString(relation);
  return static_cast<bool>(f);
}

}  // namespace cvrepair
