#include "relation/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace cvrepair {

namespace {

// Reads the next CSV record starting at *pos, honoring double-quoted
// fields with "" escapes. A record ends at an unquoted newline (RFC 4180:
// a newline inside quotes belongs to the field, so one record may span
// several input lines) or at end of input. '\r' is dropped outside quotes
// (CRLF input) and kept verbatim inside them. *line is advanced past every
// newline consumed; *record_line is set to the line the record starts on.
//
// Returns false with an empty error when no record remains, and false with
// a message on an unterminated quote at end of input (a truncated file —
// silently closing the quote would hide data corruption).
bool ReadCsvRecord(const std::string& text, size_t* pos, int* line,
                   int* record_line, std::vector<std::string>* fields,
                   bool* blank, std::string* error) {
  fields->clear();
  *blank = true;
  if (*pos >= text.size()) return false;
  *record_line = *line;
  std::string cur;
  bool quoted = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (quoted) {
      if (c == '\n') ++*line;
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
      *blank = false;
    } else if (c == ',') {
      fields->push_back(cur);
      cur.clear();
      *blank = false;
    } else if (c == '\n') {
      ++*line;
      ++i;
      break;
    } else if (c != '\r') {
      cur += c;
      *blank = false;
    }
  }
  *pos = i;
  if (quoted) {
    *error = "unterminated quoted field in record starting at line " +
             std::to_string(*record_line);
    return false;
  }
  fields->push_back(cur);
  return true;
}

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Value ParseField(AttrType type, const std::string& field) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case AttrType::kString:
      return Value::String(field);
    case AttrType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Int(v);
    }
    case AttrType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || *end != '\0') return Value::Null();
      return Value::Double(v);
    }
  }
  return Value::Null();
}

}  // namespace

CsvResult ReadCsvString(const Schema& schema, const std::string& text) {
  CsvResult result;
  size_t pos = 0;
  int line = 1;
  int record_line = 1;
  bool blank = false;
  std::vector<std::string> header;
  if (!ReadCsvRecord(text, &pos, &line, &record_line, &header, &blank,
                     &result.error)) {
    if (result.error.empty()) result.error = "empty CSV input";
    return result;
  }
  if (static_cast<int>(header.size()) != schema.num_attributes()) {
    result.error = "header has " + std::to_string(header.size()) +
                   " fields, schema has " +
                   std::to_string(schema.num_attributes());
    return result;
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (header[a] != schema.name(a)) {
      result.error = "header field " + std::to_string(a) + " is '" +
                     header[a] + "', expected '" + schema.name(a) + "'";
      return result;
    }
  }
  Relation rel(schema);
  std::vector<std::string> fields;
  for (;;) {
    if (!ReadCsvRecord(text, &pos, &line, &record_line, &fields, &blank,
                       &result.error)) {
      if (!result.error.empty()) return result;
      break;
    }
    if (blank) continue;
    if (static_cast<int>(fields.size()) != schema.num_attributes()) {
      result.error = "line " + std::to_string(record_line) + " has " +
                     std::to_string(fields.size()) + " fields";
      return result;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (int a = 0; a < schema.num_attributes(); ++a) {
      row.push_back(ParseField(schema.type(a), fields[a]));
    }
    rel.AddRow(std::move(row));
  }
  result.relation = std::move(rel);
  return result;
}

CsvResult ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    CsvResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return ReadCsvString(schema, buf.str());
}

std::string WriteCsvString(const Relation& relation) {
  std::ostringstream os;
  const Schema& schema = relation.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    os << (a ? "," : "") << QuoteField(schema.name(a));
  }
  os << "\n";
  for (int i = 0; i < relation.num_rows(); ++i) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (a) os << ",";
      const Value& v = relation.Get(i, a);
      if (!v.is_null()) os << QuoteField(v.ToString());
    }
    os << "\n";
  }
  return os.str();
}

bool WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << WriteCsvString(relation);
  return static_cast<bool>(f);
}

}  // namespace cvrepair
