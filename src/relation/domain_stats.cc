#include "relation/domain_stats.h"

#include <algorithm>

namespace cvrepair {

DomainStats::DomainStats(const Relation& relation) {
  int na = relation.num_attributes();
  stats_.resize(na);
  counts_.resize(na);
  for (int i = 0; i < relation.num_rows(); ++i) {
    for (AttrId a = 0; a < na; ++a) {
      const Value& v = relation.Get(i, a);
      if (v.is_null() || v.is_fresh()) continue;
      ++counts_[a][v];
      if (v.is_numeric()) {
        double d = v.numeric();
        AttrStats& s = stats_[a];
        if (!s.has_numeric_range) {
          s.min = s.max = d;
          s.has_numeric_range = true;
        } else {
          s.min = std::min(s.min, d);
          s.max = std::max(s.max, d);
        }
      }
    }
  }
  for (AttrId a = 0; a < na; ++a) {
    auto& freq = stats_[a].frequencies;
    freq.assign(counts_[a].begin(), counts_[a].end());
    std::sort(freq.begin(), freq.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;  // deterministic tie-break
              });
  }
}

int DomainStats::Frequency(AttrId a, const Value& v) const {
  const auto& m = counts_[a];
  auto it = m.find(v);
  return it == m.end() ? 0 : it->second;
}

}  // namespace cvrepair
