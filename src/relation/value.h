#ifndef CVREPAIR_RELATION_VALUE_H_
#define CVREPAIR_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace cvrepair {

/// Kind of a cell value. A relation cell holds either a concrete typed
/// value, a NULL, or a *fresh variable* `fv` — a placeholder outside the
/// currently known domain that, by definition (Chu et al. [8], Section 2.1
/// of the paper), does not satisfy any predicate.
enum class ValueKind {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kFresh = 4,
};

/// A dynamically typed cell value.
///
/// Values are small, copyable, and totally ordered within a kind. Fresh
/// variables carry an identifier so that distinct fresh assignments remain
/// distinguishable (fv_1, fv_2, ...), but two fresh variables never satisfy
/// any comparison predicate, not even equality with themselves.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : rep_(NullTag{}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  /// A fresh variable with identifier `id` (see ValueKind::kFresh).
  static Value Fresh(int64_t id) { return Value(Rep(FreshVar{id})); }
  static Value Null() { return Value(); }

  ValueKind kind() const {
    switch (rep_.index()) {
      case 0: return ValueKind::kNull;
      case 1: return ValueKind::kInt;
      case 2: return ValueKind::kDouble;
      case 3: return ValueKind::kString;
      default: return ValueKind::kFresh;
    }
  }

  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_fresh() const { return kind() == ValueKind::kFresh; }
  bool is_numeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  /// Integer payload; only valid when kind() == kInt.
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  /// Double payload; only valid when kind() == kDouble.
  double as_double() const { return std::get<double>(rep_); }
  /// String payload; only valid when kind() == kString.
  const std::string& as_string() const { return std::get<std::string>(rep_); }
  /// Fresh-variable id; only valid when kind() == kFresh.
  int64_t fresh_id() const { return std::get<FreshVar>(rep_).id; }

  /// Numeric payload widened to double (kInt or kDouble only).
  double numeric() const {
    return kind() == ValueKind::kInt ? static_cast<double>(as_int())
                                     : as_double();
  }

  /// Exact representational equality (NULL == NULL, fv_i == fv_i). This is
  /// *storage* equality used by containers and repair bookkeeping; predicate
  /// semantics (where fv never satisfies "=") live in EvalOp (dc/op.h).
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order for use in ordered containers; orders first by kind, then
  /// by payload. Not a semantic comparison.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) return a.rep_.index() < b.rep_.index();
    return a.rep_ < b.rep_;
  }

  /// Human-readable rendering ("NULL", "fv_3", "42", "3.14", "abc").
  std::string ToString() const;

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  struct NullTag {
    friend bool operator==(const NullTag&, const NullTag&) { return true; }
    friend bool operator<(const NullTag&, const NullTag&) { return false; }
  };
  struct FreshVar {
    int64_t id = 0;
    friend bool operator==(const FreshVar& a, const FreshVar& b) {
      return a.id == b.id;
    }
    friend bool operator<(const FreshVar& a, const FreshVar& b) {
      return a.id < b.id;
    }
  };
  using Rep = std::variant<NullTag, int64_t, double, std::string, FreshVar>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_VALUE_H_
