#include "relation/schema_parser.h"

#include <sstream>
#include <vector>

namespace cvrepair {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool ParseType(const std::string& token, AttrType* out) {
  if (token == "string" || token == "str" || token == "text") {
    *out = AttrType::kString;
  } else if (token == "int" || token == "integer") {
    *out = AttrType::kInt;
  } else if (token == "double" || token == "float" || token == "real" ||
             token == "number") {
    *out = AttrType::kDouble;
  } else {
    return false;
  }
  return true;
}

}  // namespace

ParseSchemaResult ParseSchema(const std::string& text) {
  ParseSchemaResult result;
  Schema schema;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string s = Trim(line);
    if (s.empty() || s[0] == '#') continue;
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
      if (c == ':') {
        parts.push_back(Trim(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    parts.push_back(Trim(cur));
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      result.error = "line " + std::to_string(lineno) +
                     ": expected '<Name>:<type>[:key]', got '" + s + "'";
      return result;
    }
    AttrType type;
    if (!ParseType(parts[1], &type)) {
      result.error = "line " + std::to_string(lineno) + ": unknown type '" +
                     parts[1] + "'";
      return result;
    }
    bool is_key = false;
    if (parts.size() == 3) {
      if (parts[2] != "key") {
        result.error = "line " + std::to_string(lineno) +
                       ": expected 'key', got '" + parts[2] + "'";
        return result;
      }
      is_key = true;
    }
    if (schema.Find(parts[0]).has_value()) {
      result.error = "line " + std::to_string(lineno) +
                     ": duplicate attribute '" + parts[0] + "'";
      return result;
    }
    schema.AddAttribute(parts[0], type, is_key);
  }
  if (schema.num_attributes() == 0) {
    result.error = "schema has no attributes";
    return result;
  }
  result.schema = std::move(schema);
  return result;
}

std::string SchemaToString(const Schema& schema) {
  std::ostringstream os;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    os << schema.name(a) << ":";
    switch (schema.type(a)) {
      case AttrType::kString: os << "string"; break;
      case AttrType::kInt: os << "int"; break;
      case AttrType::kDouble: os << "double"; break;
    }
    if (schema.is_key(a)) os << ":key";
    os << "\n";
  }
  return os.str();
}

}  // namespace cvrepair
