#ifndef CVREPAIR_RELATION_SCHEMA_PARSER_H_
#define CVREPAIR_RELATION_SCHEMA_PARSER_H_

#include <optional>
#include <string>

#include "relation/schema.h"

namespace cvrepair {

/// Result of parsing a schema description.
struct ParseSchemaResult {
  std::optional<Schema> schema;
  std::string error;

  bool ok() const { return schema.has_value(); }
};

/// Parses a textual schema description: one attribute per line in the form
///
///   <Name>:<type>[:key]
///
/// with type one of `string`, `int`, `double` (aliases: `str`, `text`,
/// `integer`, `float`, `real`, `number`). Empty lines and lines starting
/// with '#' are skipped. Example:
///
///   # HOSP subset
///   ProviderID:int:key
///   HospitalName:string
///   Score:double
ParseSchemaResult ParseSchema(const std::string& text);

/// Renders a schema back into the textual form accepted by ParseSchema.
std::string SchemaToString(const Schema& schema);

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_SCHEMA_PARSER_H_
