#ifndef CVREPAIR_RELATION_DOMAIN_STATS_H_
#define CVREPAIR_RELATION_DOMAIN_STATS_H_

#include <unordered_map>
#include <vector>

#include "relation/relation.h"
#include "relation/value.h"

namespace cvrepair {

/// Per-attribute statistics over the active domain of one attribute:
/// value frequencies (the "value frequency map" used by the categorical
/// context solver), and numeric min/max/range for MNAD normalization and
/// interval solving.
struct AttrStats {
  /// Distinct values with occurrence counts, most frequent first.
  std::vector<std::pair<Value, int>> frequencies;
  /// Numeric attributes only.
  double min = 0.0;
  double max = 0.0;
  bool has_numeric_range = false;

  double range() const { return has_numeric_range ? max - min : 0.0; }
};

/// Statistics for every attribute of an instance, computed once and shared
/// by solvers, metrics, and weighted predicate costs.
class DomainStats {
 public:
  DomainStats() = default;
  /// Scans `relation` once; NULL and fresh values are excluded.
  explicit DomainStats(const Relation& relation);

  const AttrStats& attr(AttrId a) const { return stats_[a]; }
  int num_attributes() const { return static_cast<int>(stats_.size()); }

  /// Occurrence count of `v` in attribute `a` (0 if unseen).
  int Frequency(AttrId a, const Value& v) const;

 private:
  std::vector<AttrStats> stats_;
  std::vector<std::unordered_map<Value, int, ValueHash>> counts_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_RELATION_DOMAIN_STATS_H_
