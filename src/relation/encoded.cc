#include "relation/encoded.h"

#include <algorithm>
#include <cmath>

#include "dc/constraint.h"
#include "dc/eval_index.h"
#include "dc/predicate.h"

namespace cvrepair {

namespace {

bool IsNanDouble(const Value& v) {
  return v.kind() == ValueKind::kDouble && std::isnan(v.as_double());
}

}  // namespace

int Dictionary::Compare(const Value& a, const Value& b) {
  if (a.kind() == ValueKind::kString) {
    int cmp = a.as_string().compare(b.as_string());
    return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  double x = a.numeric();
  double y = b.numeric();
  return x < y ? -1 : (y < x ? 1 : 0);
}

size_t Dictionary::SortedPos(int32_t cls, const Value& v, bool* found) const {
  const std::vector<Code>& order = sorted_[cls];
  size_t lo = 0;
  size_t hi = order.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (Compare(values_[static_cast<size_t>(order[mid])], v) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo < order.size() &&
           Compare(values_[static_cast<size_t>(order[lo])], v) == 0;
  return lo;
}

Code Dictionary::EncodeInsert(const Value& v) {
  if (v.is_null()) return kNullCode;
  if (v.is_fresh()) return kFreshCode;
  // EvalOp gives NaN != NaN — no total order can encode that; the
  // generators and CSV loader never produce NaN (see header).
  assert(!IsNanDouble(v));
  int32_t cls = ClassOf(v);
  bool found = false;
  size_t pos = SortedPos(cls, v, &found);
  if (found) return sorted_[cls][pos];
  Code code = static_cast<Code>(values_.size());
  values_.push_back(v);
  rank_of_.push_back(0);  // patched below
  std::vector<Code>& order = sorted_[cls];
  order.insert(order.begin() + static_cast<ptrdiff_t>(pos), code);
  // Rank recovery: every entry ordered at or after the insertion point
  // shifts up by one; codes stay put.
  for (size_t i = pos; i < order.size(); ++i) {
    rank_of_[static_cast<size_t>(order[i])] =
        (cls << kRankBits) | static_cast<int32_t>(i);
  }
  return code;
}

Code Dictionary::Lookup(const Value& v) const {
  if (v.is_null()) return kNullCode;
  if (v.is_fresh()) return kFreshCode;
  if (IsNanDouble(v)) return kAbsentCode;
  int32_t cls = ClassOf(v);
  bool found = false;
  size_t pos = SortedPos(cls, v, &found);
  return found ? sorted_[cls][pos] : kAbsentCode;
}

Dictionary::ConstantBounds Dictionary::BoundsOf(const Value& c) const {
  ConstantBounds b;
  if (c.is_null() || c.is_fresh() || IsNanDouble(c)) return b;  // cls = -1
  b.cls = ClassOf(c);
  bool found = false;
  size_t pos = SortedPos(b.cls, c, &found);
  b.lower = static_cast<int32_t>(pos);
  b.upper = static_cast<int32_t>(pos) + (found ? 1 : 0);
  b.eq = found ? sorted_[b.cls][pos] : kAbsentCode;
  return b;
}

Code* EncodedRelation::AllocateSegment() {
  if (arena_used_ == kSegmentsPerChunk) {
    arena_.push_back(std::make_unique<Code[]>(
        static_cast<size_t>(kSegmentsPerChunk) * kBlockSize));
    arena_used_ = 0;
  }
  Code* seg = arena_.back().get() +
              static_cast<size_t>(arena_used_) * kBlockSize;
  ++arena_used_;
  // Unused tail lanes stay kNullCode: deterministic, and a stray read of
  // an unfilled lane behaves like a sentinel instead of garbage.
  std::fill_n(seg, kBlockSize, kNullCode);
  return seg;
}

void EncodedRelation::AppendSegmentToColumn(AttrId a) {
  col_segs_[static_cast<size_t>(a)].push_back(AllocateSegment());
  metas_[static_cast<size_t>(a)].emplace_back();
}

void EncodedRelation::RecomputeBlockMeta(AttrId a, int b) {
  BlockMeta m;
  m.dirty_epoch = epoch_;
  const Code* seg = block_codes(a, b);
  const Dictionary& d = dicts_[static_cast<size_t>(a)];
  int rows = block_rows(b);
  for (int i = 0; i < rows; ++i) {
    Code v = seg[i];
    if (v < 0) {
      m.has_sentinel = true;
      continue;
    }
    int32_t r = d.rank(v);
    m.min_rank = std::min(m.min_rank, r);
    m.max_rank = std::max(m.max_rank, r);
  }
  metas_[static_cast<size_t>(a)][static_cast<size_t>(b)] = m;
}

void EncodedRelation::RecomputeColumnMetas(AttrId a) {
  int blocks = num_blocks();
  for (int b = 0; b < blocks; ++b) RecomputeBlockMeta(a, b);
}

EncodedRelation::EncodedRelation(const Relation& I)
    : I_(&I),
      n_(I.num_rows()),
      dicts_(static_cast<size_t>(I.num_attributes())),
      col_segs_(static_cast<size_t>(I.num_attributes())),
      metas_(static_cast<size_t>(I.num_attributes())),
      attr_epochs_(static_cast<size_t>(I.num_attributes()), 0),
      synced_version_(I.version()) {
  int blocks = num_blocks();
  for (AttrId a = 0; a < I.num_attributes(); ++a) {
    Dictionary& dict = dicts_[static_cast<size_t>(a)];
    col_segs_[static_cast<size_t>(a)].reserve(static_cast<size_t>(blocks));
    for (int b = 0; b < blocks; ++b) {
      AppendSegmentToColumn(a);
      Code* seg = col_segs_[static_cast<size_t>(a)].back();
      int begin = b << kBlockShift;
      int rows = block_rows(b);
      for (int i = 0; i < rows; ++i) {
        seg[i] = dict.EncodeInsert(I.Get(begin + i, a));
      }
    }
    // One pass after all inserts: building meta per insert would be
    // quadratic while the dictionary is still growing.
    RecomputeColumnMetas(a);
  }
}

void EncodedRelation::ApplyChange(int row, AttrId attr) {
  assert(I_->num_rows() == n_);
  Dictionary& dict = dicts_[static_cast<size_t>(attr)];
  int before = dict.size();
  col_segs_[static_cast<size_t>(attr)]
           [static_cast<size_t>(row >> kBlockShift)][row & kBlockMask] =
      dict.EncodeInsert(I_->Get(row, attr));
  if (dict.size() != before) {
    ++attr_epochs_[static_cast<size_t>(attr)];
    ++epoch_;
    // The insert shifted the ranks of every entry ordered after the new
    // value; all of this column's zone maps may be stale.
    RecomputeColumnMetas(attr);
  } else {
    RecomputeBlockMeta(attr, row >> kBlockShift);
  }
  synced_version_ = I_->version();
}

void EncodedRelation::AppendRow() {
  assert(I_->num_rows() == n_ + 1);
  int row = n_;
  int b = row >> kBlockShift;
  std::vector<bool> grew(static_cast<size_t>(num_attributes()), false);
  for (AttrId a = 0; a < I_->num_attributes(); ++a) {
    if ((row & kBlockMask) == 0) AppendSegmentToColumn(a);
    Dictionary& dict = dicts_[static_cast<size_t>(a)];
    int before = dict.size();
    col_segs_[static_cast<size_t>(a)][static_cast<size_t>(b)]
             [row & kBlockMask] = dict.EncodeInsert(I_->Get(row, a));
    if (dict.size() != before) {
      grew[static_cast<size_t>(a)] = true;
      ++attr_epochs_[static_cast<size_t>(a)];
    }
  }
  ++n_;
  // Unconditional: push_back may have reallocated a segment table, and
  // compiled evaluators hold raw table pointers (see header).
  ++structural_epoch_;
  ++epoch_;
  for (AttrId a = 0; a < I_->num_attributes(); ++a) {
    if (grew[static_cast<size_t>(a)]) {
      RecomputeColumnMetas(a);  // ranks shifted under this column
    } else {
      RecomputeBlockMeta(a, b);
    }
  }
  synced_version_ = I_->version();
}

EncodedPredicateEval::EncodedPredicateEval(const EncodedRelation& E,
                                           const Predicate& p)
    : op_(p.op()),
      p_(&p),
      I_(&E.relation()),
      structural_epoch_(E.structural_epoch()) {
  lt_ = p.lhs().tuple;
  lattr_ = p.lhs().attr;
  lsegs_ = E.segments(lattr_);
  ranks_ = E.dict(lattr_).rank_data();
  attr_epoch_ = E.attr_epoch(lattr_);
  if (p.has_constant()) {
    mode_ = Mode::kConstant;
    bounds_ = E.dict(lattr_).BoundsOf(p.constant());
  } else if (p.rhs_cell().attr == p.lhs().attr) {
    mode_ = Mode::kSameAttr;
    rt_ = p.rhs_cell().tuple;
    rsegs_ = lsegs_;
  } else {
    // Cross-attribute operands live in different dictionaries; codes are
    // not comparable across them, so evaluate on values.
    mode_ = Mode::kFallback;
  }
}

bool EncodedPredicateEval::Eval(const std::vector<int>& rows) const {
  switch (mode_) {
    case Mode::kSameAttr: {
      Code a = at(lsegs_, rows[static_cast<size_t>(lt_)]);
      Code b = at(rsegs_, rows[static_cast<size_t>(rt_)]);
      if ((a | b) < 0) return false;  // NULL/fresh satisfies nothing
      if (op_ == Op::kEq) return a == b;
      int32_t ra = ranks_[a];
      int32_t rb = ranks_[b];
      // Comparison classes must match (type-mismatched operands satisfy
      // nothing, '!=' included); within a class the packed rank compare
      // is the semantic compare.
      if ((ra ^ rb) >> Dictionary::kRankBits) return false;
      switch (op_) {
        case Op::kNeq: return a != b;
        case Op::kGt: return ra > rb;
        case Op::kLt: return ra < rb;
        case Op::kGeq: return ra >= rb;
        case Op::kLeq: return ra <= rb;
        default: return false;
      }
    }
    case Mode::kConstant: {
      Code a = at(lsegs_, rows[static_cast<size_t>(lt_)]);
      if (a < 0 || bounds_.cls < 0) return false;
      int32_t ra = ranks_[a];
      if ((ra >> Dictionary::kRankBits) != bounds_.cls) return false;
      if (op_ == Op::kEq) return a == bounds_.eq;
      if (op_ == Op::kNeq) return a != bounds_.eq;
      int32_t r = ra & Dictionary::kRankMask;
      switch (op_) {
        case Op::kLt: return r < bounds_.lower;
        case Op::kLeq: return r < bounds_.upper;
        case Op::kGt: return r >= bounds_.upper;
        case Op::kGeq: return r >= bounds_.lower;
        default: return false;
      }
    }
    case Mode::kFallback:
      return p_->Eval(*I_, rows);
  }
  return false;
}

EncodedConstraintEval::EncodedConstraintEval(const EncodedRelation& E,
                                             const DenialConstraint& c)
    : c_(&c) {
  evals_.reserve(c.predicates().size());
  for (const Predicate& p : c.predicates()) evals_.emplace_back(E, p);
}

bool EncodedConstraintEval::IsViolated(const std::vector<int>& rows) const {
  for (const EncodedPredicateEval& ev : evals_) {
    if (!ev.Eval(rows)) return false;
  }
  return !evals_.empty();
}

bool EncodedConstraintEval::IsViolated(const std::vector<int>& rows,
                                       EvalCounters* local) const {
  for (const EncodedPredicateEval& ev : evals_) {
    if (ev.on_codes()) {
      ++local->code_predicate_evals;
    } else {
      ++local->predicate_evals;
    }
    if (!ev.Eval(rows)) return false;
  }
  return !evals_.empty();
}

}  // namespace cvrepair
