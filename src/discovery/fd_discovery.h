#ifndef CVREPAIR_DISCOVERY_FD_DISCOVERY_H_
#define CVREPAIR_DISCOVERY_FD_DISCOVERY_H_

#include <vector>

#include "dc/constraint.h"
#include "relation/relation.h"
#include "repair/vrepair.h"

namespace cvrepair {

/// Options for approximate FD discovery.
struct FdDiscoveryOptions {
  /// Maximum left-hand-side size explored by the levelwise search.
  int max_lhs_size = 3;
  /// Minimum confidence: 1 − (minority RHS cells / rows in multi-row
  /// groups). 1.0 discovers exact FDs; lower values tolerate dirty data
  /// (Kivinen & Mannila-style approximate inference, the paper's [13]).
  double min_confidence = 1.0;
  /// Groups with at least two rows must cover this fraction of the rows,
  /// or the FD is considered unsupported (key-like LHS) and discarded —
  /// unsupported FDs are exactly the overrefined discoveries App. C.3 of
  /// the paper warns about.
  double min_support = 0.05;
  /// Attributes never used (e.g., declared keys are excluded anyway).
  std::vector<AttrId> excluded_attrs;
  int max_results = 64;
};

/// One discovered dependency with its quality measures.
struct DiscoveredFd {
  FdView fd;
  double confidence = 0.0;  ///< 1 − minority fraction
  double support = 0.0;     ///< fraction of rows in multi-row LHS groups
  /// DC encoding of the FD.
  DenialConstraint AsConstraint() const {
    return DenialConstraint::FromFd(fd.lhs, fd.rhs);
  }
};

/// Levelwise (TANE-style) discovery of minimal approximate FDs: for each
/// RHS attribute, LHS candidate sets are explored by increasing size;
/// once an FD meets the confidence threshold, its supersets are pruned
/// (minimality). Results are sorted by (smaller LHS, higher confidence).
///
/// Note the interplay with the paper: discovery on *noisy* data either
/// rejects the true FD (confidence just below 1) or — run with
/// min_confidence = 1 — escalates to overrefined supersets that happen to
/// hold exactly, reproducing the overfitting phenomenon of Appendix C.3.
std::vector<DiscoveredFd> DiscoverFds(const Relation& I,
                                      const FdDiscoveryOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DISCOVERY_FD_DISCOVERY_H_
