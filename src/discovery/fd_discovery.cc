#include "discovery/fd_discovery.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace cvrepair {

namespace {

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0xd15c;
    for (const Value& v : vs) seed = seed * 1000003 ^ v.Hash();
    return seed;
  }
};

// Confidence/support of lhs -> rhs by hash partitioning.
struct FdQuality {
  double confidence = 0.0;
  double support = 0.0;
};

FdQuality Measure(const Relation& I, const std::vector<AttrId>& lhs,
                  AttrId rhs) {
  std::unordered_map<std::vector<Value>,
                     std::unordered_map<Value, int, ValueHash>, ValueVecHash>
      groups;
  for (int i = 0; i < I.num_rows(); ++i) {
    std::vector<Value> key;
    key.reserve(lhs.size());
    bool usable = true;
    for (AttrId a : lhs) {
      const Value& v = I.Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (!usable) continue;
    const Value& r = I.Get(i, rhs);
    if (r.is_null() || r.is_fresh()) continue;
    ++groups[std::move(key)][r];
  }
  int64_t multi_rows = 0;
  int64_t minority = 0;
  for (const auto& [key, counts] : groups) {
    (void)key;
    int total = 0;
    int best = 0;
    for (const auto& [v, n] : counts) {
      (void)v;
      total += n;
      best = std::max(best, n);
    }
    if (total >= 2) {
      multi_rows += total;
      minority += total - best;
    }
  }
  FdQuality q;
  q.support = I.num_rows() > 0
                  ? static_cast<double>(multi_rows) / I.num_rows()
                  : 0.0;
  q.confidence =
      multi_rows > 0 ? 1.0 - static_cast<double>(minority) / multi_rows : 0.0;
  return q;
}

}  // namespace

std::vector<DiscoveredFd> DiscoverFds(const Relation& I,
                                      const FdDiscoveryOptions& options) {
  const Schema& schema = I.schema();
  std::vector<AttrId> attrs;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (schema.is_key(a)) continue;
    if (std::find(options.excluded_attrs.begin(),
                  options.excluded_attrs.end(),
                  a) != options.excluded_attrs.end()) {
      continue;
    }
    attrs.push_back(a);
  }

  std::vector<DiscoveredFd> out;
  for (AttrId rhs : attrs) {
    // Minimality: once some LHS works, none of its supersets is reported.
    std::vector<std::vector<AttrId>> found_lhs;
    auto covered = [&](const std::vector<AttrId>& lhs) {
      for (const auto& f : found_lhs) {
        if (std::includes(lhs.begin(), lhs.end(), f.begin(), f.end())) {
          return true;
        }
      }
      return false;
    };

    std::vector<std::vector<AttrId>> level;
    for (AttrId a : attrs) {
      if (a != rhs) level.push_back({a});
    }
    for (int size = 1; size <= options.max_lhs_size && !level.empty();
         ++size) {
      std::vector<std::vector<AttrId>> next;
      for (const std::vector<AttrId>& lhs : level) {
        if (covered(lhs)) continue;
        FdQuality q = Measure(I, lhs, rhs);
        if (q.support >= options.min_support &&
            q.confidence >= options.min_confidence) {
          DiscoveredFd d;
          d.fd.lhs = lhs;
          d.fd.rhs = rhs;
          d.confidence = q.confidence;
          d.support = q.support;
          out.push_back(std::move(d));
          found_lhs.push_back(lhs);
          continue;  // minimal: do not extend
        }
        // Extend with attributes larger than the last one (apriori-style
        // candidate generation without duplicates).
        for (AttrId a : attrs) {
          if (a == rhs || a <= lhs.back()) continue;
          std::vector<AttrId> extended = lhs;
          extended.push_back(a);
          next.push_back(std::move(extended));
        }
      }
      level = std::move(next);
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const DiscoveredFd& a, const DiscoveredFd& b) {
                     if (a.fd.lhs.size() != b.fd.lhs.size()) {
                       return a.fd.lhs.size() < b.fd.lhs.size();
                     }
                     return a.confidence > b.confidence;
                   });
  if (static_cast<int>(out.size()) > options.max_results) {
    out.resize(options.max_results);
  }
  return out;
}

}  // namespace cvrepair
