#ifndef CVREPAIR_DISCOVERY_DC_DISCOVERY_H_
#define CVREPAIR_DISCOVERY_DC_DISCOVERY_H_

#include <vector>

#include "dc/constraint.h"
#include "relation/relation.h"

namespace cvrepair {

/// Options for order-DC discovery over numeric attribute pairs.
struct DcDiscoveryOptions {
  /// Candidate DCs must be satisfied by at least this fraction of the
  /// sampled tuple pairs.
  double min_confidence = 0.995;
  /// A candidate must *deny something real*: the fraction of sampled pairs
  /// satisfying the first predicate alone must be at least this, or the
  /// candidate is trivially satisfied on the data and skipped.
  double min_activation = 0.05;
  int sample_pairs = 20000;
  uint64_t seed = 0xdc;
  std::vector<AttrId> excluded_attrs;
  int max_results = 32;
};

/// One discovered denial constraint with its empirical confidence.
struct DiscoveredDc {
  DenialConstraint constraint;
  double confidence = 0.0;
  double activation = 0.0;  ///< fraction of pairs where the guard holds
};

/// Discovers two-tuple order DCs of the monotone-correlation shape
///   not(t0.A > t1.A & t0.B < t1.B)
/// over numeric attribute pairs (A != B), the class of constraints the
/// paper's CENSUS experiments use (e.g., Income/Tax). Candidates are
/// evaluated on a deterministic sample of ordered tuple pairs; only the
/// highest-confidence, non-redundant candidates are returned.
std::vector<DiscoveredDc> DiscoverOrderDcs(
    const Relation& I, const DcDiscoveryOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_DISCOVERY_DC_DISCOVERY_H_
