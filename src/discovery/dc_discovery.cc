#include "discovery/dc_discovery.h"

#include <algorithm>
#include <random>

namespace cvrepair {

std::vector<DiscoveredDc> DiscoverOrderDcs(const Relation& I,
                                           const DcDiscoveryOptions& options) {
  const Schema& schema = I.schema();
  std::vector<AttrId> numeric;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (!schema.is_numeric(a) || schema.is_key(a)) continue;
    if (std::find(options.excluded_attrs.begin(),
                  options.excluded_attrs.end(),
                  a) != options.excluded_attrs.end()) {
      continue;
    }
    numeric.push_back(a);
  }

  // Deterministic pair sample.
  int n = I.num_rows();
  std::vector<std::pair<int, int>> pairs;
  if (n >= 2) {
    std::mt19937_64 rng(options.seed);
    std::uniform_int_distribution<int> pick(0, n - 1);
    int64_t all = static_cast<int64_t>(n) * (n - 1);
    if (all <= options.sample_pairs) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (i != j) pairs.push_back({i, j});
        }
      }
    } else {
      while (static_cast<int>(pairs.size()) < options.sample_pairs) {
        int i = pick(rng);
        int j = pick(rng);
        if (i != j) pairs.push_back({i, j});
      }
    }
  }

  std::vector<DiscoveredDc> out;
  std::vector<int> rows(2);
  for (AttrId a : numeric) {
    for (AttrId b : numeric) {
      if (a == b) continue;
      // Candidate: not(t0.a > t1.a & t0.b < t1.b) — "b grows with a".
      DenialConstraint candidate(
          {Predicate::TwoCell(0, a, Op::kGt, 1, a),
           Predicate::TwoCell(0, b, Op::kLt, 1, b)},
          schema.name(b) + "_monotone_in_" + schema.name(a));
      int64_t guard = 0;
      int64_t violations = 0;
      const Predicate& first = candidate.predicates()[0];
      for (const auto& [i, j] : pairs) {
        rows[0] = i;
        rows[1] = j;
        if (first.Eval(I, rows)) ++guard;
        if (candidate.IsViolated(I, rows)) ++violations;
      }
      if (pairs.empty()) continue;
      double activation = static_cast<double>(guard) / pairs.size();
      double confidence =
          1.0 - static_cast<double>(violations) / pairs.size();
      if (activation < options.min_activation) continue;
      if (confidence < options.min_confidence) continue;
      DiscoveredDc d;
      d.constraint = std::move(candidate);
      d.confidence = confidence;
      d.activation = activation;
      out.push_back(std::move(d));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const DiscoveredDc& x, const DiscoveredDc& y) {
                     return x.confidence > y.confidence;
                   });
  if (static_cast<int>(out.size()) > options.max_results) {
    out.resize(options.max_results);
  }
  return out;
}

}  // namespace cvrepair
