#ifndef CVREPAIR_EVAL_EXPERIMENT_H_
#define CVREPAIR_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

namespace cvrepair {

/// Minimal aligned-table printer for the figure benches: one header, then
/// rows of numeric/string cells. Mirrors the series the paper plots, one
/// row per x-axis point.
class ExperimentTable {
 public:
  /// `title` is printed above the table; `columns` is the header.
  ExperimentTable(std::string title, std::vector<std::string> columns);

  /// Starts a new row.
  void BeginRow();
  void Add(const std::string& value);
  void Add(double value, int precision = 3);
  void Add(int value);

  /// Renders the table (title, header, rows) to stdout.
  void Print() const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_EVAL_EXPERIMENT_H_
