#ifndef CVREPAIR_EVAL_METRICS_H_
#define CVREPAIR_EVAL_METRICS_H_

#include <vector>

#include "dc/violation.h"
#include "relation/relation.h"

namespace cvrepair {

/// Cell-level repair accuracy (Appendix D.1): `truth` is the set of cells
/// changed when introducing noise, `repair` the set of cells the
/// algorithm modified. A repaired cell scores 1 when it restores the
/// original value, 0.5 when it is a fresh variable on a truly dirty cell,
/// 0 otherwise.
struct AccuracyResult {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  int repaired_cells = 0;
  int truth_cells = 0;
  double hits = 0.0;
};

/// Computes precision / recall / f-measure between `clean` (pre-noise
/// truth), `dirty` (the repaired algorithm's input), and `repaired` (its
/// output). Empty repair sets give precision 1 by convention.
AccuracyResult CellAccuracy(const Relation& clean, const Relation& dirty,
                            const Relation& repaired);

/// Mean normalized absolute distance (Li et al. [15], used by the DC
/// experiments): for numeric cells |repaired − truth| / range(attr),
/// clamped to 1; mismatched categorical / fresh / NULL cells count 1.
/// `attrs` restricts the evaluation (empty = all attributes); ranges come
/// from the clean instance.
double Mnad(const Relation& clean, const Relation& repaired,
            const std::vector<AttrId>& attrs = {});

/// Relative repair accuracy [19]:
///   1 − Δ(repair, truth) / (Δ(repair, noise) + Δ(truth, noise))
/// with Δ the same normalized distance sum as Mnad. 1 = perfect repair,
/// 0 = worst case. If no noise was introduced on `attrs`, returns 1 when
/// the repair equals the truth there and 0 otherwise.
double RelativeAccuracy(const Relation& clean, const Relation& dirty,
                        const Relation& repaired,
                        const std::vector<AttrId>& attrs = {});

}  // namespace cvrepair

#endif  // CVREPAIR_EVAL_METRICS_H_
