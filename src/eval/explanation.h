#ifndef CVREPAIR_EVAL_EXPLANATION_H_
#define CVREPAIR_EVAL_EXPLANATION_H_

#include <string>
#include <vector>

#include "dc/violation.h"
#include "relation/relation.h"

namespace cvrepair {

/// Why a repaired cell was changed, reconstructed post hoc from the input
/// instance, the repair, and the constraint set it satisfies. Data
/// curators review suggested repairs (Appendix C.1 of the paper); this
/// report gives each change its evidence.
struct CellExplanation {
  Cell cell;
  Value before;
  Value after;
  /// Names (or rendered text) of the constraints whose violations the
  /// original value participated in.
  std::vector<std::string> violated_constraints;
  /// Rows that conflicted with this cell in the input instance.
  std::vector<int> conflicting_rows;
  /// How the new value relates to the evidence.
  enum class Kind {
    /// Took a value that agrees with its conflict partners (majority /
    /// equality context).
    kAlignedWithPartners,
    /// Moved inside the numeric window implied by its partners.
    kMovedIntoBounds,
    /// No consistent in-domain value existed: fresh variable.
    kFreshVariable,
    /// Changed without a direct violation of its own (cover side effect).
    kCollateral,
  };
  Kind kind = Kind::kCollateral;

  /// One-line rendering, e.g.
  /// "t4.Tax: 3.0 -> 0.0  [moved into bounds; violated dc_tax with rows 5,6,7]".
  std::string ToString(const Schema& schema) const;
};

/// Per-repair report: one entry per changed cell, ordered by (row, attr).
struct RepairExplanation {
  std::vector<CellExplanation> cells;

  int fresh_count() const;
  /// Multi-line human-readable report (used by the CLI's --explain).
  std::string ToString(const Schema& schema, int max_cells = 50) const;
};

/// Reconstructs explanations for every cell that differs between `before`
/// and `after`, using the violations of `sigma` on `before` as evidence.
RepairExplanation ExplainRepair(const Relation& before, const Relation& after,
                                const ConstraintSet& sigma);

}  // namespace cvrepair

#endif  // CVREPAIR_EVAL_EXPLANATION_H_
