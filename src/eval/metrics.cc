#include "eval/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "relation/domain_stats.h"

namespace cvrepair {

AccuracyResult CellAccuracy(const Relation& clean, const Relation& dirty,
                            const Relation& repaired) {
  assert(clean.num_rows() == dirty.num_rows());
  assert(clean.num_rows() == repaired.num_rows());
  AccuracyResult r;
  for (int i = 0; i < clean.num_rows(); ++i) {
    for (AttrId a = 0; a < clean.num_attributes(); ++a) {
      const Value& truth = clean.Get(i, a);
      const Value& noisy = dirty.Get(i, a);
      const Value& fixed = repaired.Get(i, a);
      bool in_truth = !(truth == noisy);
      bool in_repair = !(fixed == noisy);
      if (in_truth) ++r.truth_cells;
      if (in_repair) ++r.repaired_cells;
      if (in_truth && in_repair) {
        if (fixed == truth) {
          r.hits += 1.0;
        } else if (fixed.is_fresh()) {
          // Fresh variables flag the cell as dirty without recovering the
          // value: half credit (Appendix D.1, following [8]).
          r.hits += 0.5;
        }
      }
    }
  }
  r.precision = r.repaired_cells == 0 ? 1.0 : r.hits / r.repaired_cells;
  r.recall = r.truth_cells == 0 ? 1.0 : r.hits / r.truth_cells;
  r.f_measure = (r.precision + r.recall) == 0
                    ? 0.0
                    : 2.0 * r.precision * r.recall / (r.precision + r.recall);
  return r;
}

namespace {

// Normalized per-cell distance in [0, 1].
double CellDistance(const Value& a, const Value& b, double range) {
  if (a == b) return 0.0;
  if (a.is_numeric() && b.is_numeric() && range > 0.0) {
    return std::min(1.0, std::abs(a.numeric() - b.numeric()) / range);
  }
  return 1.0;
}

// Sum of normalized distances over the selected attributes.
double DistanceSum(const Relation& x, const Relation& y,
                   const std::vector<AttrId>& attrs,
                   const std::vector<double>& range) {
  double total = 0.0;
  for (int i = 0; i < x.num_rows(); ++i) {
    for (AttrId a : attrs) {
      total += CellDistance(x.Get(i, a), y.Get(i, a), range[a]);
    }
  }
  return total;
}

std::vector<AttrId> ResolveAttrs(const Relation& rel,
                                 const std::vector<AttrId>& attrs) {
  if (!attrs.empty()) return attrs;
  std::vector<AttrId> all(rel.num_attributes());
  for (AttrId a = 0; a < rel.num_attributes(); ++a) all[a] = a;
  return all;
}

std::vector<double> AttrRanges(const Relation& clean) {
  DomainStats stats(clean);
  std::vector<double> range(clean.num_attributes(), 0.0);
  for (AttrId a = 0; a < clean.num_attributes(); ++a) {
    range[a] = stats.attr(a).range();
  }
  return range;
}

}  // namespace

double Mnad(const Relation& clean, const Relation& repaired,
            const std::vector<AttrId>& attrs_in) {
  assert(clean.num_rows() == repaired.num_rows());
  std::vector<AttrId> attrs = ResolveAttrs(clean, attrs_in);
  std::vector<double> range = AttrRanges(clean);
  int64_t cells = static_cast<int64_t>(clean.num_rows()) * attrs.size();
  if (cells == 0) return 0.0;
  return DistanceSum(clean, repaired, attrs, range) / cells;
}

double RelativeAccuracy(const Relation& clean, const Relation& dirty,
                        const Relation& repaired,
                        const std::vector<AttrId>& attrs_in) {
  std::vector<AttrId> attrs = ResolveAttrs(clean, attrs_in);
  std::vector<double> range = AttrRanges(clean);
  double rep_truth = DistanceSum(repaired, clean, attrs, range);
  double rep_noise = DistanceSum(repaired, dirty, attrs, range);
  double truth_noise = DistanceSum(clean, dirty, attrs, range);
  double denom = rep_noise + truth_noise;
  if (denom <= 0.0) return rep_truth <= 0.0 ? 1.0 : 0.0;
  return 1.0 - rep_truth / denom;
}

}  // namespace cvrepair
