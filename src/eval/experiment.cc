#include "eval/experiment.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace cvrepair {

ExperimentTable::ExperimentTable(std::string title,
                                 std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ExperimentTable::BeginRow() { rows_.emplace_back(); }

void ExperimentTable::Add(const std::string& value) {
  rows_.back().push_back(value);
}

void ExperimentTable::Add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  rows_.back().push_back(buf);
}

void ExperimentTable::Add(int value) {
  rows_.back().push_back(std::to_string(value));
}

std::string ExperimentTable::ToString() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "  " : "") << columns_[c]
       << std::string(width[c] - columns_[c].size(), ' ');
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(c < width.size() ? width[c] - row[c].size() : 0, ' ');
    }
    os << "\n";
  }
  return os.str();
}

void ExperimentTable::Print() const { std::cout << ToString() << std::endl; }

}  // namespace cvrepair
