#include "eval/json_report.h"

#include <cstdio>
#include <sstream>

namespace cvrepair {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RepairResultToJson(const RepairResult& result,
                               const Schema& schema,
                               const std::string& algorithm,
                               const RepairExplanation* explanation) {
  const RepairStats& s = result.stats;
  std::ostringstream os;
  os << "{\n";
  os << "  \"algorithm\": \"" << JsonEscape(algorithm) << "\",\n";
  os << "  \"stats\": {\n"
     << "    \"initial_violations\": " << s.initial_violations << ",\n"
     << "    \"changed_cells\": " << s.changed_cells << ",\n"
     << "    \"fresh_variables\": " << s.fresh_assignments << ",\n"
     << "    \"repair_cost\": " << Num(s.repair_cost) << ",\n"
     << "    \"rounds\": " << s.rounds << ",\n"
     << "    \"solver_calls\": " << s.solver_calls << ",\n"
     << "    \"cache_hits\": " << s.cache_hits << ",\n"
     << "    \"variants_enumerated\": " << s.variants_enumerated << ",\n"
     << "    \"variants_pruned_bounds\": " << s.variants_pruned_bounds
     << ",\n"
     << "    \"datarepair_calls\": " << s.datarepair_calls << ",\n"
     << "    \"elapsed_seconds\": " << Num(s.elapsed_seconds) << "\n"
     << "  },\n";
  os << "  \"satisfied_constraints\": [";
  for (size_t i = 0; i < result.satisfied_constraints.size(); ++i) {
    os << (i ? ", " : "") << "\""
       << JsonEscape(result.satisfied_constraints[i].ToString(schema))
       << "\"";
  }
  os << "]";
  if (explanation != nullptr) {
    os << ",\n  \"changes\": [\n";
    for (size_t i = 0; i < explanation->cells.size(); ++i) {
      const CellExplanation& c = explanation->cells[i];
      os << "    {\"row\": " << c.cell.row << ", \"attribute\": \""
         << JsonEscape(schema.name(c.cell.attr)) << "\", \"before\": \""
         << JsonEscape(c.before.ToString()) << "\", \"after\": \""
         << JsonEscape(c.after.ToString()) << "\", \"kind\": \"";
      switch (c.kind) {
        case CellExplanation::Kind::kAlignedWithPartners:
          os << "aligned_with_partners";
          break;
        case CellExplanation::Kind::kMovedIntoBounds:
          os << "moved_into_bounds";
          break;
        case CellExplanation::Kind::kFreshVariable:
          os << "fresh_variable";
          break;
        case CellExplanation::Kind::kCollateral:
          os << "collateral";
          break;
      }
      os << "\"}" << (i + 1 < explanation->cells.size() ? "," : "") << "\n";
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

std::string AccuracyToJson(const AccuracyResult& accuracy) {
  std::ostringstream os;
  os << "{\"precision\": " << Num(accuracy.precision)
     << ", \"recall\": " << Num(accuracy.recall)
     << ", \"f_measure\": " << Num(accuracy.f_measure)
     << ", \"repaired_cells\": " << accuracy.repaired_cells
     << ", \"truth_cells\": " << accuracy.truth_cells << "}";
  return os.str();
}

}  // namespace cvrepair
