#ifndef CVREPAIR_EVAL_JSON_REPORT_H_
#define CVREPAIR_EVAL_JSON_REPORT_H_

#include <string>

#include "eval/explanation.h"
#include "eval/metrics.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// Escapes a string for inclusion in a JSON document.
std::string JsonEscape(const std::string& s);

/// Serializes a repair run as a self-contained JSON document:
/// counters, the satisfied constraint set (rendered), and — when an
/// explanation is supplied — per-cell provenance. Written for machine
/// consumption of CLI runs; stable key names.
///
/// {
///   "algorithm": "cvtolerant",
///   "stats": { "changed_cells": 1, ... },
///   "satisfied_constraints": ["not(...)", ...],
///   "changes": [ {"row":3,"attribute":"Tax","before":"3.0", ...}, ... ]
/// }
std::string RepairResultToJson(const RepairResult& result,
                               const Schema& schema,
                               const std::string& algorithm,
                               const RepairExplanation* explanation = nullptr);

/// Serializes an accuracy evaluation (used when ground truth is known).
std::string AccuracyToJson(const AccuracyResult& accuracy);

}  // namespace cvrepair

#endif  // CVREPAIR_EVAL_JSON_REPORT_H_
