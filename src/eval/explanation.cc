#include "eval/explanation.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace cvrepair {

std::string CellExplanation::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "t" << cell.row + 1 << "." << schema.name(cell.attr) << ": "
     << before.ToString() << " -> " << after.ToString() << "  [";
  switch (kind) {
    case Kind::kAlignedWithPartners: os << "aligned with partners"; break;
    case Kind::kMovedIntoBounds: os << "moved into bounds"; break;
    case Kind::kFreshVariable: os << "fresh variable (no consistent value)";
      break;
    case Kind::kCollateral: os << "collateral change"; break;
  }
  if (!violated_constraints.empty()) {
    os << "; violated ";
    for (size_t i = 0; i < violated_constraints.size(); ++i) {
      os << (i ? ", " : "") << violated_constraints[i];
    }
  }
  if (!conflicting_rows.empty()) {
    os << " with row" << (conflicting_rows.size() > 1 ? "s" : "") << " ";
    for (size_t i = 0; i < conflicting_rows.size() && i < 6; ++i) {
      os << (i ? "," : "") << conflicting_rows[i] + 1;
    }
    if (conflicting_rows.size() > 6) os << ",...";
  }
  os << "]";
  return os.str();
}

int RepairExplanation::fresh_count() const {
  int n = 0;
  for (const CellExplanation& c : cells) {
    if (c.kind == CellExplanation::Kind::kFreshVariable) ++n;
  }
  return n;
}

std::string RepairExplanation::ToString(const Schema& schema,
                                        int max_cells) const {
  std::ostringstream os;
  os << cells.size() << " cell(s) changed";
  if (fresh_count() > 0) os << ", " << fresh_count() << " fresh";
  os << "\n";
  int shown = 0;
  for (const CellExplanation& c : cells) {
    if (shown++ >= max_cells) {
      os << "... (" << cells.size() - max_cells << " more)\n";
      break;
    }
    os << "  " << c.ToString(schema) << "\n";
  }
  return os.str();
}

RepairExplanation ExplainRepair(const Relation& before, const Relation& after,
                                const ConstraintSet& sigma) {
  // Evidence: violations of the *input* under the satisfied constraints.
  std::vector<Violation> violations = FindViolations(before, sigma);
  std::map<Cell, std::set<std::string>> constraints_of;
  std::map<Cell, std::set<int>> partners_of;
  for (const Violation& v : violations) {
    const DenialConstraint& c = sigma[v.constraint_index];
    std::string name =
        c.name().empty() ? c.ToString(before.schema()) : c.name();
    for (const Cell& cell : ViolationCells(c, v.rows)) {
      constraints_of[cell].insert(name);
      for (int row : v.rows) {
        if (row != cell.row) partners_of[cell].insert(row);
      }
    }
  }

  RepairExplanation out;
  for (int i = 0; i < before.num_rows(); ++i) {
    for (AttrId a = 0; a < before.num_attributes(); ++a) {
      const Value& b = before.Get(i, a);
      const Value& f = after.Get(i, a);
      if (b == f) continue;
      CellExplanation e;
      e.cell = {i, a};
      e.before = b;
      e.after = f;
      auto cit = constraints_of.find(e.cell);
      if (cit != constraints_of.end()) {
        e.violated_constraints.assign(cit->second.begin(), cit->second.end());
      }
      auto pit = partners_of.find(e.cell);
      if (pit != partners_of.end()) {
        e.conflicting_rows.assign(pit->second.begin(), pit->second.end());
      }
      if (f.is_fresh()) {
        e.kind = CellExplanation::Kind::kFreshVariable;
      } else if (e.violated_constraints.empty()) {
        e.kind = CellExplanation::Kind::kCollateral;
      } else {
        // Does the new value agree with some conflict partner's value?
        bool aligned = false;
        for (int row : e.conflicting_rows) {
          if (after.Get(row, a) == f) {
            aligned = true;
            break;
          }
        }
        e.kind = aligned ? CellExplanation::Kind::kAlignedWithPartners
                         : (f.is_numeric()
                                ? CellExplanation::Kind::kMovedIntoBounds
                                : CellExplanation::Kind::kCollateral);
      }
      out.cells.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace cvrepair
