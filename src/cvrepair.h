#ifndef CVREPAIR_CVREPAIR_H_
#define CVREPAIR_CVREPAIR_H_

/// \file
/// Umbrella header for the cvrepair library — constraint-variance tolerant
/// data repairing (Song, Zhu, Wang; SIGMOD 2016).
///
/// Typical flow:
///
///   #include "cvrepair.h"
///   using namespace cvrepair;
///
///   Schema schema = *ParseSchema("Name:string\nIncome:double\n...").schema;
///   Relation data = *ReadCsvFile(schema, "dirty.csv").relation;
///   ConstraintSet sigma =
///       *ParseConstraintSet(schema, "Name,Birthday -> CP\n").constraints;
///
///   CVTolerantOptions options;
///   options.variants.theta = 1.0;
///   RepairResult result = CVTolerantRepair(data, sigma, options);
///
/// See README.md for the full tour and DESIGN.md for the architecture.

// Relation model.
#include "relation/csv.h"            // IWYU pragma: export
#include "relation/domain_stats.h"   // IWYU pragma: export
#include "relation/relation.h"       // IWYU pragma: export
#include "relation/schema.h"         // IWYU pragma: export
#include "relation/schema_parser.h"  // IWYU pragma: export
#include "relation/value.h"          // IWYU pragma: export

// Denial constraints.
#include "dc/constraint.h"       // IWYU pragma: export
#include "dc/incremental.h"      // IWYU pragma: export
#include "dc/op.h"               // IWYU pragma: export
#include "dc/parser.h"           // IWYU pragma: export
#include "dc/predicate.h"        // IWYU pragma: export
#include "dc/predicate_space.h"  // IWYU pragma: export
#include "dc/violation.h"        // IWYU pragma: export

// Constraint variation.
#include "variation/edit_cost.h"          // IWYU pragma: export
#include "variation/predicate_weights.h"  // IWYU pragma: export
#include "variation/variant_generator.h"  // IWYU pragma: export

// Repair algorithms.
#include "repair/cell_weights.h"   // IWYU pragma: export
#include "repair/costs.h"          // IWYU pragma: export
#include "repair/cvtolerant.h"     // IWYU pragma: export
#include "repair/exact.h"          // IWYU pragma: export
#include "repair/greedy.h"         // IWYU pragma: export
#include "repair/holistic.h"       // IWYU pragma: export
#include "repair/relative.h"       // IWYU pragma: export
#include "repair/repair_result.h"  // IWYU pragma: export
#include "repair/unified.h"        // IWYU pragma: export
#include "repair/vfree.h"          // IWYU pragma: export
#include "repair/vrepair.h"        // IWYU pragma: export

// Constraint discovery.
#include "discovery/dc_discovery.h"  // IWYU pragma: export
#include "discovery/fd_discovery.h"  // IWYU pragma: export

// Evaluation.
#include "eval/explanation.h"  // IWYU pragma: export
#include "eval/json_report.h"  // IWYU pragma: export
#include "eval/metrics.h"      // IWYU pragma: export

#endif  // CVREPAIR_CVREPAIR_H_
