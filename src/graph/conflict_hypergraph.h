#ifndef CVREPAIR_GRAPH_CONFLICT_HYPERGRAPH_H_
#define CVREPAIR_GRAPH_CONFLICT_HYPERGRAPH_H_

#include <unordered_map>
#include <vector>

#include "dc/violation.h"
#include "relation/relation.h"
#include "repair/costs.h"

namespace cvrepair {

/// The conflict hypergraph G of Section 3.2.1: one vertex per cell that
/// appears in some violation, one hyperedge per violation (the set
/// cell(t_i, t_j, ...; φ)). Structurally identical hyperedges (e.g., the
/// two orientations of a symmetric FD violation) are deduplicated.
class ConflictHypergraph {
 public:
  /// Builds the hypergraph from violations of `sigma` over `I`. Vertex
  /// weights are min_{a in dom(A)} dist(I(t.A), a) (Section 3.2.2) under
  /// `cost`; an attribute with fewer than two domain values has no
  /// in-domain alternative, so its weight is the fresh-variable cost.
  static ConflictHypergraph Build(const Relation& I,
                                  const ConstraintSet& sigma,
                                  const std::vector<Violation>& violations,
                                  const CostModel& cost = {});

  int num_vertices() const { return static_cast<int>(cells_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const Cell& cell(int v) const { return cells_[v]; }
  double weight(int v) const { return weights_[v]; }
  /// Occurrences of the cell's current value within its attribute — rare
  /// values are more suspicious and make better repair targets.
  int value_frequency(int v) const { return freq_[v]; }
  /// Distinct active-domain values of the cell's attribute.
  int domain_size(int v) const { return domain_size_[v]; }
  /// True when some violation reaches this cell through a non-equality
  /// predicate (the "consequent" side of FDs, the compared sides of order
  /// DCs). Such cells are preferred repair targets: changing them can
  /// merge conflicting values, while changing equality-side cells only
  /// splits groups and degenerates to fresh variables.
  bool on_inequality_predicate(int v) const { return ineq_[v]; }
  /// Vertex ids of one hyperedge, sorted ascending.
  const std::vector<int>& edge(int e) const { return edges_[e]; }
  /// Edge ids incident to vertex v.
  const std::vector<int>& incident_edges(int v) const { return incident_[v]; }

  /// Max number of vertices in any edge (the approximation factor f).
  int MaxEdgeSize() const;

 private:
  std::vector<Cell> cells_;
  std::vector<double> weights_;
  std::vector<int> freq_;
  std::vector<int> domain_size_;
  std::vector<bool> ineq_;
  std::vector<std::vector<int>> edges_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_GRAPH_CONFLICT_HYPERGRAPH_H_
