#include "graph/bounds.h"

#include <algorithm>

namespace cvrepair {

RepairCostBounds ComputeBounds(const ConflictHypergraph& g, int degree,
                               const CostModel& cost,
                               CoverHeuristic heuristic,
                               const DomainStats* stats) {
  RepairCostBounds bounds;
  if (g.num_edges() == 0) return bounds;

  // delta_l needs the factor-f guarantee, so it always uses local ratio.
  VertexCover lr = ApproximateVertexCover(g, CoverHeuristic::kLocalRatio);
  bounds.lower = lr.weight / std::max(degree, 1);

  VertexCover cover = (heuristic == CoverHeuristic::kLocalRatio)
                          ? lr
                          : ApproximateVertexCover(g, heuristic, stats);
  bounds.cover = cover;
  bounds.cover_cells = cover.Cells(g);
  // Assigning every cover cell to fv eliminates all hyperedges, hence a
  // valid repair: delta_u = sum of fresh-variable costs.
  bounds.upper = cost.fresh_cost * static_cast<double>(cover.vertices.size());
  return bounds;
}

RepairCostBounds ComputeBounds(const Relation& I, const ConstraintSet& sigma,
                               const CostModel& cost,
                               CoverHeuristic heuristic,
                               const DomainStats* stats) {
  std::vector<Violation> violations = FindViolations(I, sigma);
  ConflictHypergraph g = ConflictHypergraph::Build(I, sigma, violations, cost);
  return ComputeBounds(g, Degree(sigma), cost, heuristic, stats);
}

}  // namespace cvrepair
