#include "graph/conflict_hypergraph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cvrepair {

namespace {

struct IntVecHash {
  size_t operator()(const std::vector<int>& v) const {
    size_t seed = v.size();
    for (int x : v) seed = seed * 1000003 ^ static_cast<size_t>(x + 0x9e37);
    return seed;
  }
};

}  // namespace

ConflictHypergraph ConflictHypergraph::Build(
    const Relation& I, const ConstraintSet& sigma,
    const std::vector<Violation>& violations, const CostModel& cost) {
  ConflictHypergraph g;
  std::unordered_map<Cell, int, CellHash> vertex_of;

  // Per-attribute value frequencies, built lazily: they give vertex
  // weights (is there an in-domain alternative?) and the suspicion
  // tie-breaks used by the greedy cover.
  std::vector<std::unordered_map<Value, int, ValueHash>> freq(
      I.num_attributes());
  std::vector<bool> freq_ready(I.num_attributes(), false);
  auto attr_freq = [&](AttrId a) -> const auto& {
    if (!freq_ready[a]) {
      for (int i = 0; i < I.num_rows(); ++i) {
        const Value& v = I.Get(i, a);
        if (!v.is_null() && !v.is_fresh()) ++freq[a][v];
      }
      freq_ready[a] = true;
    }
    return freq[a];
  };

  std::unordered_set<std::vector<int>, IntVecHash> seen_edges;
  for (const Violation& viol : violations) {
    const DenialConstraint& c = sigma[viol.constraint_index];
    std::vector<int> edge;
    for (const Cell& cell : ViolationCells(c, viol.rows)) {
      auto [it, inserted] =
          vertex_of.emplace(cell, static_cast<int>(g.cells_.size()));
      if (inserted) {
        const auto& counts = attr_freq(cell.attr);
        const Value& cur = I.Get(cell);
        auto fit = counts.find(cur);
        int own = fit == counts.end() ? 0 : fit->second;
        bool has_alternative =
            counts.size() > (own > 0 ? 1u : 0u);  // another value exists
        g.cells_.push_back(cell);
        g.weights_.push_back(cost.CellWeight(cell) *
                             cost.MinChangeCost(has_alternative));
        g.freq_.push_back(own);
        g.domain_size_.push_back(static_cast<int>(counts.size()));
        g.ineq_.push_back(false);
      }
      edge.push_back(it->second);
    }
    for (const Predicate& p : c.predicates()) {
      if (p.op() == Op::kEq) continue;
      for (const Cell& cell : p.Cells(viol.rows)) {
        auto it = vertex_of.find(cell);
        if (it != vertex_of.end()) g.ineq_[it->second] = true;
      }
    }
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
    if (edge.empty()) continue;
    if (seen_edges.insert(edge).second) g.edges_.push_back(std::move(edge));
  }
  g.incident_.resize(g.cells_.size());
  for (int e = 0; e < g.num_edges(); ++e) {
    for (int v : g.edges_[e]) g.incident_[v].push_back(e);
  }
  return g;
}

int ConflictHypergraph::MaxEdgeSize() const {
  int f = 0;
  for (const auto& e : edges_) f = std::max(f, static_cast<int>(e.size()));
  return f;
}

}  // namespace cvrepair
