#ifndef CVREPAIR_GRAPH_DECOMPOSE_H_
#define CVREPAIR_GRAPH_DECOMPOSE_H_

// Topology-aware decomposition of giant conflict components (DESIGN.md
// §12). On dense error patterns the conflict hypergraph collapses into one
// huge component and the per-component parallelism degenerates to a single
// serial CSP solve. This layer sits between hypergraph construction and
// component solving: per-vertex entropy/density scores order the
// vertex-cover seed (CoverHeuristic::kEntropyDensity), and SplitComponent
// cuts an oversized component at low-density articulation vertices into
// independently solvable parts plus the boundary atoms that straddle them.
// The solver stitches the parts back together (repair/vfree.cc): parts are
// solved independently, boundary-straddling atoms re-verified on the
// combined assignment, and still-conflicting regions merged and re-solved.

#include <vector>

#include "graph/conflict_hypergraph.h"
#include "relation/domain_stats.h"
#include "solver/components.h"

namespace cvrepair {

/// Per-vertex topology scores over a conflict hypergraph. Both scores are
/// normalized to [0, 1].
struct VertexScores {
  /// Edge density of the cell's closed neighborhood: hyperedges fully
  /// contained in N[v] over the pair count |N[v]|·(|N[v]|−1)/2, clamped to
  /// 1. High density marks clique-like conflict cores; low density marks
  /// chain-like regions where cuts are cheap.
  std::vector<double> density;
  /// Shannon entropy of the cell's attribute value distribution (from
  /// DomainStats when given, else approximated from the hypergraph's
  /// frequency/domain annotations), normalized by log(domain size). Low
  /// entropy means a skewed distribution where a rare value is strong
  /// evidence of an error.
  std::vector<double> entropy;
};

/// Computes the scores for every vertex of `g`. `stats` supplies exact
/// value distributions; pass nullptr to fall back to the hypergraph's own
/// per-vertex frequency/domain-size annotations.
VertexScores ComputeVertexScores(const ConflictHypergraph& g,
                                 const DomainStats* stats = nullptr);

/// Knobs for SplitComponent.
struct DecomposeOptions {
  /// Components with more cells than this are candidates for splitting.
  int max_component = 24;
  /// A cut vertex is only removed while its degree in the remaining
  /// variable graph is at most this — the "low-density" criterion. Dense
  /// hubs (clique-like regions) are never cut, so a clique component never
  /// splits no matter how large it is.
  int max_cut_degree = 8;
};

/// The outcome of splitting one component. Parts follow the Component
/// contract (cells sorted ascending, atoms over part-local var ids, sorted
/// and deduplicated), so they hash and cache exactly like components that
/// came straight out of DecomposeComponents. `cross_atoms` keep the
/// *input* component's local var ids: they are the boundary-straddling
/// constraints the stitching check re-verifies on the combined assignment.
struct SplitPlan {
  std::vector<Component> parts;
  /// Binary atoms whose endpoints landed in different parts, over the
  /// input component's var ids.
  std::vector<RcAtom> cross_atoms;
  /// Input var id -> index into `parts`.
  std::vector<int> part_of;
  /// Input var id -> local var id within its part.
  std::vector<int> local_of;
  /// The removed low-density cut vertices (input var ids), in removal
  /// order. Each is re-attached to the part of its smallest non-boundary
  /// neighbor (or the smallest part among its neighbors).
  std::vector<int> boundary;

  bool split() const { return parts.size() > 1; }
};

/// Splits `comp` at low-density articulation vertices until every part has
/// at most `opts.max_component` cells or no eligible cut vertex remains.
/// Deterministic in `comp`: candidates are articulation points of the
/// variable graph with remaining degree <= max_cut_degree, removed in
/// ascending (degree, var id) order. A component already within the size
/// budget — or one with no sparse separator, e.g. a clique — comes back as
/// a single part identical to the input.
SplitPlan SplitComponent(const Component& comp, const DecomposeOptions& opts);

/// Rebuilds one Component from a subset of `comp`'s variables: cells of
/// `vars` (which must be sorted ascending) plus every atom of `comp` whose
/// variables all lie in the subset, re-indexed to subset-local ids. Used
/// by SplitComponent for the parts and by the stitching fallback for the
/// merged still-conflicting region.
Component RestrictComponent(const Component& comp,
                            const std::vector<int>& vars);

}  // namespace cvrepair

#endif  // CVREPAIR_GRAPH_DECOMPOSE_H_
