#include "graph/decompose.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace cvrepair {

VertexScores ComputeVertexScores(const ConflictHypergraph& g,
                                 const DomainStats* stats) {
  const int n = g.num_vertices();
  VertexScores scores;
  scores.density.assign(n, 0.0);
  scores.entropy.assign(n, 0.0);

  // Flattened neighbor lists: u ~ v iff some hyperedge contains both.
  std::vector<std::vector<int>> nbr(n);
  for (int e = 0; e < g.num_edges(); ++e) {
    const std::vector<int>& edge = g.edge(e);
    for (int v : edge) {
      for (int u : edge) {
        if (u != v) nbr[v].push_back(u);
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    std::sort(nbr[v].begin(), nbr[v].end());
    nbr[v].erase(std::unique(nbr[v].begin(), nbr[v].end()), nbr[v].end());
  }

  // density(v) = hyperedges inside N[v] over the closed neighborhood's
  // pair count. A vertex inside a clique-like conflict core scores near 1;
  // a link in a chain scores low.
  std::vector<int> stamp(n, -1);
  for (int v = 0; v < n; ++v) {
    stamp[v] = v;
    for (int u : nbr[v]) stamp[u] = v;
    int64_t contained = 0;
    auto count_at = [&](int u) {
      for (int e : g.incident_edges(u)) {
        const std::vector<int>& edge = g.edge(e);
        if (edge[0] != u) continue;  // count each edge once, at its min vertex
        bool inside = true;
        for (int w : edge) {
          if (stamp[w] != v) {
            inside = false;
            break;
          }
        }
        if (inside) ++contained;
      }
    };
    count_at(v);
    for (int u : nbr[v]) count_at(u);
    const double s = static_cast<double>(nbr[v].size()) + 1.0;
    const double pairs = s * (s - 1.0) / 2.0;
    if (pairs > 0.0) {
      scores.density[v] = std::min(1.0, static_cast<double>(contained) / pairs);
    }
  }

  // entropy(v): Shannon entropy of the attribute's value distribution,
  // normalized by log(#distinct) so that uniform = 1 and a point mass = 0.
  // Per-attribute, so compute once per attribute id seen.
  if (stats != nullptr) {
    std::vector<double> attr_entropy(stats->num_attributes(), -1.0);
    for (int v = 0; v < n; ++v) {
      const AttrId a = g.cell(v).attr;
      if (a < 0 || a >= stats->num_attributes()) continue;
      if (attr_entropy[a] < 0.0) {
        const AttrStats& as = stats->attr(a);
        double total = 0.0;
        for (const auto& [value, count] : as.frequencies) {
          (void)value;
          total += count;
        }
        double h = 0.0;
        if (total > 0.0 && as.frequencies.size() > 1) {
          for (const auto& [value, count] : as.frequencies) {
            (void)value;
            if (count <= 0) continue;
            const double p = count / total;
            h -= p * std::log(p);
          }
          h /= std::log(static_cast<double>(as.frequencies.size()));
        }
        attr_entropy[a] = std::min(1.0, std::max(0.0, h));
      }
      scores.entropy[v] = attr_entropy[a];
    }
  } else {
    // Fallback without DomainStats: a wide active domain behaves like a
    // high-entropy (uniform-ish) attribute, a one-value domain like a
    // point mass.
    for (int v = 0; v < n; ++v) {
      const int dom = std::max(1, g.domain_size(v));
      scores.entropy[v] = 1.0 - 1.0 / static_cast<double>(dom);
    }
  }
  return scores;
}

Component RestrictComponent(const Component& comp,
                            const std::vector<int>& vars) {
  Component out;
  std::vector<int> local(comp.cells.size(), -1);
  out.cells.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    local[vars[i]] = static_cast<int>(i);
    out.cells.push_back(comp.cells[vars[i]]);
  }
  for (const RcAtom& a : comp.atoms) {
    if (local[a.lhs_var] < 0) continue;
    if (a.rhs_is_var && local[a.rhs_var] < 0) continue;
    RcAtom la = a;
    la.lhs_var = local[a.lhs_var];
    if (a.rhs_is_var) la.rhs_var = local[a.rhs_var];
    out.atoms.push_back(std::move(la));
  }
  std::sort(out.atoms.begin(), out.atoms.end());
  out.atoms.erase(std::unique(out.atoms.begin(), out.atoms.end()),
                  out.atoms.end());
  return out;
}

namespace {

// Articulation points of the subgraph induced by !removed, via an
// iterative Tarjan DFS (giant components would overflow a recursive one).
std::vector<bool> ArticulationPoints(const std::vector<std::vector<int>>& adj,
                                     const std::vector<bool>& removed) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> disc(n, -1), low(n, 0), parent(n, -1), children(n, 0);
  std::vector<bool> art(n, false);
  int timer = 0;
  struct Frame {
    int v;
    size_t ei;
  };
  std::vector<Frame> stack;
  for (int root = 0; root < n; ++root) {
    if (removed[root] || disc[root] >= 0) continue;
    disc[root] = low[root] = timer++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const int v = f.v;
      if (f.ei < adj[v].size()) {
        const int u = adj[v][f.ei++];
        if (removed[u]) continue;
        if (disc[u] < 0) {
          parent[u] = v;
          ++children[v];
          disc[u] = low[u] = timer++;
          stack.push_back({u, 0});
        } else if (u != parent[v]) {
          low[v] = std::min(low[v], disc[u]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const int p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (parent[p] != -1 && low[v] >= disc[p]) art[p] = true;
        }
      }
    }
    art[root] = children[root] >= 2;
  }
  return art;
}

// Connected-component labels over !removed, numbered by smallest member.
// Returns the number of components; sizes[k] = size of component k.
int LabelComponents(const std::vector<std::vector<int>>& adj,
                    const std::vector<bool>& removed, std::vector<int>* label,
                    std::vector<int>* sizes) {
  const int n = static_cast<int>(adj.size());
  label->assign(n, -1);
  sizes->clear();
  std::vector<int> queue;
  for (int s = 0; s < n; ++s) {
    if (removed[s] || (*label)[s] >= 0) continue;
    const int k = static_cast<int>(sizes->size());
    sizes->push_back(0);
    queue.assign(1, s);
    (*label)[s] = k;
    while (!queue.empty()) {
      const int v = queue.back();
      queue.pop_back();
      ++(*sizes)[k];
      for (int u : adj[v]) {
        if (removed[u] || (*label)[u] >= 0) continue;
        (*label)[u] = k;
        queue.push_back(u);
      }
    }
  }
  return static_cast<int>(sizes->size());
}

}  // namespace

SplitPlan SplitComponent(const Component& comp, const DecomposeOptions& opts) {
  const int n = static_cast<int>(comp.cells.size());
  SplitPlan plan;
  plan.part_of.assign(n, 0);
  plan.local_of.assign(n, 0);
  auto unsplit = [&]() {
    plan.parts.assign(1, comp);
    for (int v = 0; v < n; ++v) {
      plan.part_of[v] = 0;
      plan.local_of[v] = v;
    }
    plan.cross_atoms.clear();
    plan.boundary.clear();
    return plan;
  };
  if (n <= opts.max_component) return unsplit();

  // Variable graph: u ~ v per binary atom, deduplicated.
  std::vector<std::vector<int>> adj(n);
  for (const RcAtom& a : comp.atoms) {
    if (!a.rhs_is_var || a.lhs_var == a.rhs_var) continue;
    adj[a.lhs_var].push_back(a.rhs_var);
    adj[a.rhs_var].push_back(a.lhs_var);
  }
  for (int v = 0; v < n; ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    adj[v].erase(std::unique(adj[v].begin(), adj[v].end()), adj[v].end());
  }

  // Peel low-density cut vertices: each round, in every still-oversized
  // region, remove the articulation vertex with the smallest remaining
  // degree (<= max_cut_degree; ties on var id). Cliques have no
  // articulation points and are left whole.
  std::vector<bool> removed(n, false);
  std::vector<int> label;
  std::vector<int> sizes;
  auto remaining_degree = [&](int v) {
    int d = 0;
    for (int u : adj[v]) {
      if (!removed[u]) ++d;
    }
    return d;
  };
  while (true) {
    LabelComponents(adj, removed, &label, &sizes);
    std::vector<int> best(sizes.size(), -1);
    std::vector<int> best_deg(sizes.size(), 0);
    bool any_oversized = false;
    for (size_t k = 0; k < sizes.size(); ++k) {
      any_oversized |= sizes[k] > opts.max_component;
    }
    if (!any_oversized) break;
    std::vector<bool> art = ArticulationPoints(adj, removed);
    for (int v = 0; v < n; ++v) {
      if (removed[v] || !art[v]) continue;
      const int k = label[v];
      if (sizes[k] <= opts.max_component) continue;
      const int d = remaining_degree(v);
      if (d > opts.max_cut_degree) continue;
      if (best[k] < 0 || d < best_deg[k] ||
          (d == best_deg[k] && v < best[k])) {
        best[k] = v;
        best_deg[k] = d;
      }
    }
    bool removed_any = false;
    for (size_t k = 0; k < sizes.size(); ++k) {
      if (best[k] < 0) continue;
      removed[best[k]] = true;
      plan.boundary.push_back(best[k]);
      removed_any = true;
    }
    if (!removed_any) break;  // no sparse separator left
  }
  if (plan.boundary.empty()) return unsplit();

  // Parts = connected regions of the peeled graph, numbered by smallest
  // member var id.
  const int num_parts = LabelComponents(adj, removed, &label, &sizes);

  // Re-attach each boundary vertex to the part of its smallest non-removed
  // neighbor; a vertex whose neighbors are all boundary takes the part an
  // earlier pass gave the smallest of them. Anything still isolated after
  // the passes becomes its own part.
  std::vector<int> part_of(label);
  std::vector<int> pending(plan.boundary);
  std::sort(pending.begin(), pending.end());
  bool progressed = true;
  while (!pending.empty() && progressed) {
    progressed = false;
    std::vector<int> next;
    for (int v : pending) {
      int chosen = -1;
      for (int u : adj[v]) {
        if (part_of[u] >= 0) {
          chosen = part_of[u];
          break;  // adj is sorted: first hit = smallest neighbor id
        }
      }
      if (chosen >= 0) {
        part_of[v] = chosen;
        progressed = true;
      } else {
        next.push_back(v);
      }
    }
    pending = std::move(next);
  }
  int total_parts = num_parts;
  for (int v : pending) part_of[v] = total_parts++;

  // Materialize the parts (cells sorted because var id order is cell
  // order) and the var maps.
  std::vector<std::vector<int>> members(total_parts);
  for (int v = 0; v < n; ++v) members[part_of[v]].push_back(v);
  // Drop empty part slots (a boundary-only part id may be unused) while
  // renumbering by smallest member.
  std::vector<std::vector<int>> packed;
  for (int k = 0; k < total_parts; ++k) {
    if (!members[k].empty()) packed.push_back(std::move(members[k]));
  }
  std::sort(packed.begin(), packed.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
  if (packed.size() <= 1) return unsplit();
  plan.parts.reserve(packed.size());
  for (size_t k = 0; k < packed.size(); ++k) {
    const std::vector<int>& vars = packed[k];  // ascending by construction
    for (size_t i = 0; i < vars.size(); ++i) {
      plan.part_of[vars[i]] = static_cast<int>(k);
      plan.local_of[vars[i]] = static_cast<int>(i);
    }
    plan.parts.push_back(RestrictComponent(comp, vars));
  }
  for (const RcAtom& a : comp.atoms) {
    if (!a.rhs_is_var) continue;
    if (plan.part_of[a.lhs_var] != plan.part_of[a.rhs_var]) {
      plan.cross_atoms.push_back(a);
    }
  }
  return plan;
}

}  // namespace cvrepair
