#ifndef CVREPAIR_GRAPH_BOUNDS_H_
#define CVREPAIR_GRAPH_BOUNDS_H_

#include <vector>

#include "dc/violation.h"
#include "graph/conflict_hypergraph.h"
#include "graph/vertex_cover.h"
#include "repair/costs.h"

namespace cvrepair {

/// Lower and upper bounds on the minimum data-repair cost of an instance
/// w.r.t. one constraint set (Section 3.2.2), plus the cover they came
/// from so that DataRepair can reuse it as the changing set C.
struct RepairCostBounds {
  double lower = 0.0;  ///< delta_l = ||V(G)|| / Deg(Sigma)
  double upper = 0.0;  ///< delta_u = sum over cover of dist(., fv)
  VertexCover cover;
  std::vector<Cell> cover_cells;
};

/// Computes delta_l / delta_u from an already-built conflict hypergraph.
/// `degree` is Deg(Sigma); the lower bound uses the cover produced by the
/// kLocalRatio heuristic (the one carrying the factor-f guarantee of
/// Lemma 3) while `cover_for_repair` — returned in `cover`/`cover_cells` —
/// uses `heuristic`. `stats` feeds kEntropyDensity's entropy term
/// (optional).
RepairCostBounds ComputeBounds(
    const ConflictHypergraph& g, int degree, const CostModel& cost = {},
    CoverHeuristic heuristic = CoverHeuristic::kGreedyDegree,
    const DomainStats* stats = nullptr);

/// Convenience overload: detects violations, builds the hypergraph, and
/// computes the bounds for (I, sigma).
RepairCostBounds ComputeBounds(
    const Relation& I, const ConstraintSet& sigma, const CostModel& cost = {},
    CoverHeuristic heuristic = CoverHeuristic::kGreedyDegree,
    const DomainStats* stats = nullptr);

}  // namespace cvrepair

#endif  // CVREPAIR_GRAPH_BOUNDS_H_
