#include "graph/vertex_cover.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <utility>

#include "graph/decompose.h"

namespace cvrepair {

std::vector<Cell> VertexCover::Cells(const ConflictHypergraph& g) const {
  std::vector<Cell> cells;
  cells.reserve(vertices.size());
  for (int v : vertices) cells.push_back(g.cell(v));
  return cells;
}

namespace {

// Drops cover vertices that are redundant (every incident edge has another
// cover vertex), most expensive first, and recomputes the weight.
void Minimalize(const ConflictHypergraph& g, std::vector<bool>* in_cover) {
  // edge_cover_count[e] = number of cover vertices in edge e.
  std::vector<int> edge_cover_count(g.num_edges(), 0);
  for (int e = 0; e < g.num_edges(); ++e) {
    for (int v : g.edge(e)) {
      if ((*in_cover)[v]) ++edge_cover_count[e];
    }
  }
  std::vector<int> members;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if ((*in_cover)[v]) members.push_back(v);
  }
  // Drop the least suspicious members first (frequent values, wide
  // domains), so that rare — likely dirty — cells stay in the cover.
  std::sort(members.begin(), members.end(), [&](int a, int b) {
    bool ia = g.on_inequality_predicate(a);
    bool ib = g.on_inequality_predicate(b);
    if (ia != ib) return ib;  // equality-side cells dropped first
    if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
    if (g.value_frequency(a) != g.value_frequency(b)) {
      return g.value_frequency(a) > g.value_frequency(b);
    }
    if (g.domain_size(a) != g.domain_size(b)) {
      return g.domain_size(a) > g.domain_size(b);
    }
    // Final tie on the cell's (row, attr) order, not the vertex id: vertex
    // ids depend on violation discovery order, cells do not.
    return g.cell(b) < g.cell(a);
  });
  for (int v : members) {
    bool removable = true;
    for (int e : g.incident_edges(v)) {
      if (edge_cover_count[e] <= 1) {
        removable = false;
        break;
      }
    }
    if (removable) {
      (*in_cover)[v] = false;
      for (int e : g.incident_edges(v)) --edge_cover_count[e];
    }
  }
}

VertexCover Collect(const ConflictHypergraph& g,
                    const std::vector<bool>& in_cover) {
  VertexCover cover;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (in_cover[v]) {
      cover.vertices.push_back(v);
      cover.weight += g.weight(v);
    }
  }
  return cover;
}

VertexCover LocalRatioCover(const ConflictHypergraph& g) {
  std::vector<double> residual(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) residual[v] = g.weight(v);
  std::vector<bool> in_cover(g.num_vertices(), false);
  for (int e = 0; e < g.num_edges(); ++e) {
    const std::vector<int>& edge = g.edge(e);
    bool covered = false;
    for (int v : edge) {
      if (in_cover[v]) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    double eps = residual[edge[0]];
    for (int v : edge) eps = std::min(eps, residual[v]);
    for (int v : edge) {
      residual[v] -= eps;
      if (residual[v] <= 1e-12) in_cover[v] = true;
    }
  }
  Minimalize(g, &in_cover);
  return Collect(g, in_cover);
}

// Greedy max-coverage-per-weight cover. With `bias` (one multiplier per
// vertex, from the entropy/density scores of graph/decompose.h) the score
// is tilted toward dense, low-entropy conflict cores — the kEntropyDensity
// seed ordering; nullptr gives the classic kGreedyDegree behavior.
VertexCover GreedyDegreeCover(const ConflictHypergraph& g,
                              const std::vector<double>* bias) {
  std::vector<bool> edge_covered(g.num_edges(), false);
  std::vector<int> uncovered_degree(g.num_vertices(), 0);
  // Equality-side (group-key) cells are corroborated by every agreeing
  // partner in their group: breaking the group by changing the key is a
  // legal minimum repair but almost never the intended one, so their
  // score is discounted. Inequality-side cells keep full score.
  constexpr double kEqualitySidePenalty = 8.0;
  auto score_of = [&](int v) {
    double w = std::max(g.weight(v), 1e-9);
    if (!g.on_inequality_predicate(v)) w *= kEqualitySidePenalty;
    double s = uncovered_degree[v] / w;
    if (bias) s *= (*bias)[v];
    return s;
  };
  // Equal-score ties break toward the most suspicious cell: rare value
  // first, then denser (smaller) domain, then the smaller (row, attr) —
  // the value-frequency heuristic of Holistic [8]. The final (row, attr)
  // tie makes the pick a pure function of the cells involved; vertex ids
  // (violation discovery order) never decide.
  std::vector<int64_t> tie_rank(g.num_vertices());
  {
    std::vector<int> pref(g.num_vertices());
    std::iota(pref.begin(), pref.end(), 0);
    std::sort(pref.begin(), pref.end(), [&](int a, int b) {
      bool ia = g.on_inequality_predicate(a);
      bool ib = g.on_inequality_predicate(b);
      if (ia != ib) return ia;  // inequality-side cells preferred
      if (g.value_frequency(a) != g.value_frequency(b)) {
        return g.value_frequency(a) < g.value_frequency(b);
      }
      if (g.domain_size(a) != g.domain_size(b)) {
        return g.domain_size(a) < g.domain_size(b);
      }
      return g.cell(a) < g.cell(b);
    });
    for (size_t i = 0; i < pref.size(); ++i) {
      tie_rank[pref[i]] = static_cast<int64_t>(i);
    }
  }
  auto tie_key = [&](int v) -> int64_t { return -tie_rank[v]; };
  // Lazy max-heap of (score, tie_key): stale entries revalidated on pop.
  std::priority_queue<std::pair<double, std::pair<int64_t, int>>> heap;
  for (int v = 0; v < g.num_vertices(); ++v) {
    uncovered_degree[v] = static_cast<int>(g.incident_edges(v).size());
    heap.push({score_of(v), {tie_key(v), v}});
  }
  int remaining = g.num_edges();
  std::vector<bool> in_cover(g.num_vertices(), false);
  while (remaining > 0 && !heap.empty()) {
    auto [score, keyed] = heap.top();
    heap.pop();
    int v = keyed.second;
    if (in_cover[v] || uncovered_degree[v] == 0) continue;
    if (score > score_of(v) + 1e-12) {
      heap.push({score_of(v), keyed});  // stale: reinsert with fresh score
      continue;
    }
    in_cover[v] = true;
    for (int e : g.incident_edges(v)) {
      if (edge_covered[e]) continue;
      edge_covered[e] = true;
      --remaining;
      for (int u : g.edge(e)) --uncovered_degree[u];
    }
  }
  Minimalize(g, &in_cover);
  return Collect(g, in_cover);
}

}  // namespace

VertexCover ApproximateVertexCover(const ConflictHypergraph& g,
                                   CoverHeuristic heuristic,
                                   const DomainStats* stats) {
  switch (heuristic) {
    case CoverHeuristic::kLocalRatio:
      return LocalRatioCover(g);
    case CoverHeuristic::kGreedyDegree:
      return GreedyDegreeCover(g, nullptr);
    case CoverHeuristic::kEntropyDensity: {
      VertexScores scores = ComputeVertexScores(g, stats);
      std::vector<double> bias(g.num_vertices());
      for (int v = 0; v < g.num_vertices(); ++v) {
        bias[v] = 1.0 + scores.density[v] + (1.0 - scores.entropy[v]);
      }
      return GreedyDegreeCover(g, &bias);
    }
  }
  return LocalRatioCover(g);
}

}  // namespace cvrepair
