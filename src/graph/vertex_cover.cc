#include "graph/vertex_cover.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>

namespace cvrepair {

std::vector<Cell> VertexCover::Cells(const ConflictHypergraph& g) const {
  std::vector<Cell> cells;
  cells.reserve(vertices.size());
  for (int v : vertices) cells.push_back(g.cell(v));
  return cells;
}

namespace {

// Drops cover vertices that are redundant (every incident edge has another
// cover vertex), most expensive first, and recomputes the weight.
void Minimalize(const ConflictHypergraph& g, std::vector<bool>* in_cover) {
  // edge_cover_count[e] = number of cover vertices in edge e.
  std::vector<int> edge_cover_count(g.num_edges(), 0);
  for (int e = 0; e < g.num_edges(); ++e) {
    for (int v : g.edge(e)) {
      if ((*in_cover)[v]) ++edge_cover_count[e];
    }
  }
  std::vector<int> members;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if ((*in_cover)[v]) members.push_back(v);
  }
  // Drop the least suspicious members first (frequent values, wide
  // domains), so that rare — likely dirty — cells stay in the cover.
  std::sort(members.begin(), members.end(), [&](int a, int b) {
    bool ia = g.on_inequality_predicate(a);
    bool ib = g.on_inequality_predicate(b);
    if (ia != ib) return ib;  // equality-side cells dropped first
    if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
    if (g.value_frequency(a) != g.value_frequency(b)) {
      return g.value_frequency(a) > g.value_frequency(b);
    }
    if (g.domain_size(a) != g.domain_size(b)) {
      return g.domain_size(a) > g.domain_size(b);
    }
    return a > b;
  });
  for (int v : members) {
    bool removable = true;
    for (int e : g.incident_edges(v)) {
      if (edge_cover_count[e] <= 1) {
        removable = false;
        break;
      }
    }
    if (removable) {
      (*in_cover)[v] = false;
      for (int e : g.incident_edges(v)) --edge_cover_count[e];
    }
  }
}

VertexCover Collect(const ConflictHypergraph& g,
                    const std::vector<bool>& in_cover) {
  VertexCover cover;
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (in_cover[v]) {
      cover.vertices.push_back(v);
      cover.weight += g.weight(v);
    }
  }
  return cover;
}

VertexCover LocalRatioCover(const ConflictHypergraph& g) {
  std::vector<double> residual(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) residual[v] = g.weight(v);
  std::vector<bool> in_cover(g.num_vertices(), false);
  for (int e = 0; e < g.num_edges(); ++e) {
    const std::vector<int>& edge = g.edge(e);
    bool covered = false;
    for (int v : edge) {
      if (in_cover[v]) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    double eps = residual[edge[0]];
    for (int v : edge) eps = std::min(eps, residual[v]);
    for (int v : edge) {
      residual[v] -= eps;
      if (residual[v] <= 1e-12) in_cover[v] = true;
    }
  }
  Minimalize(g, &in_cover);
  return Collect(g, in_cover);
}

VertexCover GreedyDegreeCover(const ConflictHypergraph& g) {
  std::vector<bool> edge_covered(g.num_edges(), false);
  std::vector<int> uncovered_degree(g.num_vertices(), 0);
  // Equality-side (group-key) cells are corroborated by every agreeing
  // partner in their group: breaking the group by changing the key is a
  // legal minimum repair but almost never the intended one, so their
  // score is discounted. Inequality-side cells keep full score.
  constexpr double kEqualitySidePenalty = 8.0;
  auto score_of = [&](int v) {
    double w = std::max(g.weight(v), 1e-9);
    if (!g.on_inequality_predicate(v)) w *= kEqualitySidePenalty;
    return uncovered_degree[v] / w;
  };
  // Equal-score ties break toward the most suspicious cell: rare value
  // first, then denser (smaller) domain, then the smaller vertex id —
  // the value-frequency heuristic of Holistic [8].
  auto tie_key = [&](int v) -> int64_t {
    int64_t eq_side = g.on_inequality_predicate(v) ? 0 : 1;
    int64_t freq = std::min<int64_t>(g.value_frequency(v), (1 << 20) - 1);
    int64_t dom = std::min<int64_t>(g.domain_size(v), (1 << 20) - 1);
    return -((eq_side << 62) | (freq << 42) | (dom << 22) | v);
  };
  // Lazy max-heap of (score, tie_key): stale entries revalidated on pop.
  std::priority_queue<std::pair<double, std::pair<int64_t, int>>> heap;
  for (int v = 0; v < g.num_vertices(); ++v) {
    uncovered_degree[v] = static_cast<int>(g.incident_edges(v).size());
    heap.push({score_of(v), {tie_key(v), v}});
  }
  int remaining = g.num_edges();
  std::vector<bool> in_cover(g.num_vertices(), false);
  while (remaining > 0 && !heap.empty()) {
    auto [score, keyed] = heap.top();
    heap.pop();
    int v = keyed.second;
    if (in_cover[v] || uncovered_degree[v] == 0) continue;
    if (score > score_of(v) + 1e-12) {
      heap.push({score_of(v), keyed});  // stale: reinsert with fresh score
      continue;
    }
    in_cover[v] = true;
    for (int e : g.incident_edges(v)) {
      if (edge_covered[e]) continue;
      edge_covered[e] = true;
      --remaining;
      for (int u : g.edge(e)) --uncovered_degree[u];
    }
  }
  Minimalize(g, &in_cover);
  return Collect(g, in_cover);
}

}  // namespace

VertexCover ApproximateVertexCover(const ConflictHypergraph& g,
                                   CoverHeuristic heuristic) {
  switch (heuristic) {
    case CoverHeuristic::kLocalRatio:
      return LocalRatioCover(g);
    case CoverHeuristic::kGreedyDegree:
      return GreedyDegreeCover(g);
  }
  return LocalRatioCover(g);
}

}  // namespace cvrepair
