#ifndef CVREPAIR_GRAPH_VERTEX_COVER_H_
#define CVREPAIR_GRAPH_VERTEX_COVER_H_

#include <vector>

#include "graph/conflict_hypergraph.h"
#include "relation/domain_stats.h"
#include "relation/relation.h"

namespace cvrepair {

/// Heuristic used to approximate the minimum weighted vertex cover V(G).
enum class CoverHeuristic {
  /// Local-ratio / primal-dual: for each uncovered edge, lower every
  /// incident vertex's residual weight by the edge minimum and take
  /// zero-residual vertices. Guarantees ||V|| <= f * ||V*|| with f the
  /// maximum edge size — the factor required by the lower bound delta_l
  /// (Section 3.2.2, [20]).
  kLocalRatio,
  /// Classic greedy: repeatedly pick the vertex covering the most
  /// still-uncovered edges per unit weight. No factor-f guarantee, but
  /// selects high-conflict cells first, which is the cell-selection
  /// heuristic of Holistic [8].
  kGreedyDegree,
  /// Entropy/density-guided greedy (DESIGN.md §12): the greedy score is
  /// biased by the per-vertex topology scores of graph/decompose.h —
  /// vertices in dense conflict neighborhoods whose attribute has a
  /// skewed (low-entropy) value distribution are seeded into the cover
  /// first, so the changing set concentrates on clique-like error cores
  /// and the residual components stay sparse and splittable.
  kEntropyDensity,
};

/// An approximate minimum weighted vertex cover with its total weight.
struct VertexCover {
  std::vector<int> vertices;  ///< vertex ids into the hypergraph
  double weight = 0.0;

  /// Cover cells resolved against the hypergraph.
  std::vector<Cell> Cells(const ConflictHypergraph& g) const;
};

/// Approximates the minimum weighted vertex cover of `g`. The returned
/// cover is always minimal-ized: vertices whose removal keeps all edges
/// covered are dropped (in descending weight order). All heuristics break
/// score ties on the cell's (row, attr) order, so the cover is a pure
/// function of the hypergraph — stable run-to-run and across thread
/// counts. `stats` feeds the entropy term of kEntropyDensity (optional:
/// without it the hypergraph's own domain annotations approximate it).
VertexCover ApproximateVertexCover(
    const ConflictHypergraph& g,
    CoverHeuristic heuristic = CoverHeuristic::kGreedyDegree,
    const DomainStats* stats = nullptr);

}  // namespace cvrepair

#endif  // CVREPAIR_GRAPH_VERTEX_COVER_H_
