#include "util/metrics.h"

#include <fstream>
#include <sstream>

namespace cvrepair {

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: counters may be bumped from pool helper threads that
  // outlive static destruction (same rationale as the thread pool).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<MetricCounter>(
                                new MetricCounter(name, kind)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->value());
  }
  return out;
}

MetricsSnapshot MetricsRegistry::SnapshotWork() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    if (counter->kind() == MetricKind::kWork) {
      out.emplace(name, counter->value());
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [name, value] : snapshot) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << name << "\": " << value;
  }
  os << "\n}\n";
  return os.str();
}

bool WriteMetricsJsonFile(const std::string& path,
                          const MetricsSnapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << MetricsToJson(snapshot);
  return static_cast<bool>(out);
}

MetricsSnapshot MetricsDiff(const MetricsSnapshot& after,
                            const MetricsSnapshot& before) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    out.emplace(name, value - (it == before.end() ? 0 : it->second));
  }
  for (const auto& [name, value] : before) {
    if (!after.count(name)) out.emplace(name, -value);
  }
  return out;
}

}  // namespace cvrepair
