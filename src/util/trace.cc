#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <mutex>

namespace cvrepair {
namespace {

std::atomic<bool> g_enabled{false};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread span state. Completed events accumulate in `events`; `depth`
// tracks the live nesting level; `counters` is the running per-thread
// counter-delta tally that open spans diff against (TraceSpan snapshots it
// at entry, subtracts at exit). Buffers are registered once in a leaked
// global list (the pool's worker threads outlive static destruction, same
// rationale as PoolImpl) and are only read under g_registry_mu while the
// owning thread is between spans — CollectEvents is documented for
// quiescent use.
struct ThreadLog {
  std::vector<Tracer::Event> events;
  std::vector<std::pair<std::string, int64_t>> counters;
  int depth = 0;
  int tid = 0;
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadLog*>& Registry() {
  static std::vector<ThreadLog*>* logs = new std::vector<ThreadLog*>();
  return *logs;
}

ThreadLog& LocalLog() {
  thread_local ThreadLog* log = [] {
    ThreadLog* fresh = new ThreadLog();  // leaked with the registry
    std::lock_guard<std::mutex> lock(RegistryMutex());
    fresh->tid = static_cast<int>(Registry().size());
    Registry().push_back(fresh);
    return fresh;
  }();
  return *log;
}

void BumpLocalCounter(ThreadLog& log, const char* key, int64_t value) {
  for (auto& [name, total] : log.counters) {
    if (name == key) {
      total += value;
      return;
    }
  }
  log.counters.emplace_back(key, value);
}

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

void Tracer::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Tracer::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (ThreadLog* log : Registry()) {
    log->events.clear();
    log->counters.clear();
  }
}

std::vector<Tracer::Event> Tracer::CollectEvents() {
  std::vector<Event> out;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const ThreadLog* log : Registry()) {
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  std::vector<Event> events = CollectEvents();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  std::string body;
  body += "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& event : events) {
    if (!first) body += ",\n";
    first = false;
    body += "{\"name\":\"";
    AppendJsonEscaped(body, event.name);
    body += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    body += std::to_string(event.tid);
    body += ",\"ts\":";
    body += std::to_string(event.start_us);
    body += ",\"dur\":";
    body += std::to_string(event.dur_us);
    body += ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : event.args) {
      if (!first_arg) body += ",";
      first_arg = false;
      body += "\"";
      AppendJsonEscaped(body, key);
      body += "\":";
      body += std::to_string(value);
    }
    body += "}}";
  }
  body += "\n]}\n";
  out << body;
  return static_cast<bool>(out);
}

void Tracer::AddCounterDelta(const char* key, int64_t value) {
  if (!enabled() || value == 0) return;
  ThreadLog& log = LocalLog();
  if (log.depth == 0) return;  // no span open on this thread
  BumpLocalCounter(log, key, value);
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracer::enabled()) return;  // the only cost when tracing is off
  active_ = true;
  name_ = name;
  ThreadLog& log = LocalLog();
  depth_ = log.depth++;
  counter_base_ = log.counters;
  start_us_ = NowUs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  double end_us = NowUs();
  ThreadLog& log = LocalLog();
  log.depth--;
  Tracer::Event event;
  event.name = name_;
  event.start_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = log.tid;
  event.depth = depth_;
  event.args = std::move(args_);
  // Attach the counter deltas credited to this thread while the span was
  // open (the span's own work plus any nested spans').
  for (const auto& [key, total] : log.counters) {
    int64_t base = 0;
    for (const auto& [base_key, base_total] : counter_base_) {
      if (base_key == key) {
        base = base_total;
        break;
      }
    }
    if (total != base) event.args.emplace_back(key, total - base);
  }
  if (log.depth == 0) log.counters.clear();
  log.events.push_back(std::move(event));
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

}  // namespace cvrepair
