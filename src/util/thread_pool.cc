#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "util/metrics.h"

namespace cvrepair {

namespace {

// Set while a thread executes ParallelFor iterations (helpers and the
// calling thread alike); nested parallel calls then run serially inline.
thread_local bool tls_in_parallel = false;

// Scheduling counters, registered as kRuntime: how a loop splits into
// chunks depends on the thread budget and claim races, so these are
// observability for humans and are excluded from the deterministic
// metrics.json contract (see util/metrics.h).
struct PoolMetrics {
  MetricCounter* loops;
  MetricCounter* chunks;
  MetricCounter* helper_dispatches;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics* m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    PoolMetrics* fresh = new PoolMetrics();
    fresh->loops = r.GetCounter("pool.parallel_loops", MetricKind::kRuntime);
    fresh->chunks = r.GetCounter("pool.chunks_claimed", MetricKind::kRuntime);
    fresh->helper_dispatches =
        r.GetCounter("pool.helper_dispatches", MetricKind::kRuntime);
    return fresh;
  }();
  return *m;
}

// One ParallelFor invocation. Helpers and the caller claim chunks of the
// index range from `next` until it passes `n`.
struct LoopContext {
  int64_t n = 0;
  int64_t chunk = 1;
  const std::function<void(int64_t)>* fn = nullptr;
  std::atomic<int64_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done;
  int pending_helpers = 0;  // guarded by mu
  std::exception_ptr error;  // guarded by mu; first failure wins

  void RunChunks() {
    bool saved = tls_in_parallel;
    tls_in_parallel = true;
    int64_t claimed = 0;
    while (!failed.load(std::memory_order_relaxed)) {
      int64_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      ++claimed;
      int64_t end = std::min(n, begin + chunk);
      try {
        for (int64_t i = begin; i < end; ++i) (*fn)(i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    }
    if (claimed) Metrics().chunks->Add(claimed);
    tls_in_parallel = saved;
  }
};

class PoolImpl {
 public:
  static PoolImpl& Get() {
    // Leaked singleton: helper threads may outlive static destruction, so
    // the pool (and its synchronization state) must never be destroyed.
    static PoolImpl* pool = new PoolImpl();
    return *pool;
  }

  void SetBudget(int n) {
    if (n == 0) {
      n = static_cast<int>(std::thread::hardware_concurrency());
    }
    budget_.store(std::max(1, n), std::memory_order_relaxed);
  }

  int Budget() const { return budget_.load(std::memory_order_relaxed); }

  void Run(int64_t n, const std::function<void(int64_t)>& fn, int threads) {
    Metrics().loops->Increment();
    auto context = std::make_shared<LoopContext>();
    context->n = n;
    context->fn = &fn;
    // ~8 chunks per thread: coarse enough to amortize the atomic claim,
    // fine enough that one slow chunk cannot serialize the tail.
    context->chunk = std::max<int64_t>(1, n / (static_cast<int64_t>(threads) * 8));
    int helpers = static_cast<int>(
        std::min<int64_t>(threads - 1, std::max<int64_t>(0, n - 1)));
    context->pending_helpers = helpers;
    if (helpers > 0) {
      Metrics().helper_dispatches->Add(helpers);
      std::lock_guard<std::mutex> lock(queue_mu_);
      EnsureWorkersLocked(helpers);
      for (int i = 0; i < helpers; ++i) queue_.push_back(context);
    }
    if (helpers > 0) queue_cv_.notify_all();

    context->RunChunks();

    std::unique_lock<std::mutex> lock(context->mu);
    context->done.wait(lock, [&] { return context->pending_helpers == 0; });
    if (context->error) std::rethrow_exception(context->error);
  }

 private:
  void EnsureWorkersLocked(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<LoopContext> context;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return !queue_.empty(); });
        context = std::move(queue_.front());
        queue_.pop_front();
      }
      context->RunChunks();
      {
        std::lock_guard<std::mutex> lock(context->mu);
        --context->pending_helpers;
      }
      context->done.notify_all();
    }
  }

  std::atomic<int> budget_{
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()))};
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<LoopContext>> queue_;
  std::vector<std::thread> workers_;  // grow-only, detached at process exit
};

}  // namespace

void ThreadPool::SetNumThreads(int n) { PoolImpl::Get().SetBudget(n); }

int ThreadPool::num_threads() { return PoolImpl::Get().Budget(); }

bool ThreadPool::InWorker() { return tls_in_parallel; }

int ThreadPool::EffectiveThreads(int max_threads) {
  if (tls_in_parallel) return 1;
  int threads = max_threads > 0 ? max_threads : PoolImpl::Get().Budget();
  return std::max(1, threads);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn,
                             int max_threads) {
  if (n <= 0) return;
  int threads = EffectiveThreads(max_threads);
  if (threads <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  PoolImpl::Get().Run(n, fn, threads);
}

void ThreadPool::ParallelForRanges(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn,
    int max_threads) {
  if (n <= 0) return;
  int threads = EffectiveThreads(max_threads);
  int64_t shards = std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
  int64_t per = n / shards;
  int64_t extra = n % shards;  // first `extra` shards get one more index
  ParallelFor(
      shards,
      [&](int64_t s) {
        int64_t begin = s * per + std::min(s, extra);
        int64_t end = begin + per + (s < extra ? 1 : 0);
        fn(begin, end);
      },
      max_threads);
}

}  // namespace cvrepair
