#ifndef CVREPAIR_UTIL_THREAD_POOL_H_
#define CVREPAIR_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace cvrepair {

/// A small dependency-free thread pool behind the repair engine's three
/// data-parallel hot paths (variant fact evaluation, violation detection,
/// component solving).
///
/// Model: one process-wide pool of helper threads plus the calling thread.
/// ParallelFor(n, fn) splits the index range [0, n) into chunks that the
/// calling thread and the helpers claim from a shared atomic cursor
/// (work-stealing-lite: idle threads keep grabbing the next chunk, so
/// uneven iterations balance without per-task queues).
///
/// Determinism contract: iterations must write only to disjoint,
/// preallocated slots (out[i] = f(i)); callers merge slots in index order
/// afterwards. Under that discipline every parallel path in this codebase
/// produces bit-identical results to its serial path, so `--threads N` never
/// changes a RepairResult, only wall-clock time.
///
/// Nesting: a ParallelFor issued from inside a worker (or from the calling
/// thread while it participates in an outer loop) runs serially inline —
/// the outer loop already saturates the pool, and inline execution keeps
/// the iteration order of nested scans exactly serial.
class ThreadPool {
 public:
  /// Sets the global thread budget. 0 = auto (hardware_concurrency),
  /// 1 = serial (the exact legacy code path), N = up to N threads.
  /// Helper threads are spawned lazily on first use and kept for the
  /// process lifetime; lowering the budget only narrows future splits.
  static void SetNumThreads(int n);

  /// The current global thread budget (>= 1).
  static int num_threads();

  /// True when called from a thread currently executing ParallelFor
  /// iterations; nested parallel calls degrade to serial inline loops.
  static bool InWorker();

  /// The number of threads a ParallelFor issued here and now would use:
  /// min(budget, n is not considered) — 1 when inside a worker or when the
  /// budget is serial. `max_threads` > 0 overrides the global budget for
  /// this query (the per-repair `threads` option).
  static int EffectiveThreads(int max_threads = 0);

  /// Runs fn(i) for every i in [0, n), possibly concurrently. Returns when
  /// all iterations finished. The first exception thrown by an iteration
  /// is rethrown on the calling thread (remaining iterations are
  /// abandoned). `max_threads` > 0 bounds the parallelism of this call
  /// only (1 = force the serial loop).
  static void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                          int max_threads = 0);

  /// ParallelFor over ~4 chunks per thread: fn(begin, end) receives
  /// contiguous, in-order subranges of [0, n). Lets callers keep per-shard
  /// buffers and merge them in range order (deterministic output).
  static void ParallelForRanges(
      int64_t n, const std::function<void(int64_t, int64_t)>& fn,
      int max_threads = 0);

  /// out[i] = fn(i) for i in [0, n), evaluated through ParallelFor.
  template <typename T, typename Fn>
  static std::vector<T> ParallelMap(int64_t n, Fn&& fn, int max_threads = 0) {
    std::vector<T> out(static_cast<size_t>(n));
    ParallelFor(
        n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); },
        max_threads);
    return out;
  }
};

}  // namespace cvrepair

#endif  // CVREPAIR_UTIL_THREAD_POOL_H_
