#ifndef CVREPAIR_UTIL_TRACE_H_
#define CVREPAIR_UTIL_TRACE_H_

// Hierarchical phase tracer. A TraceSpan marks one pipeline phase (variant
// generation, an index build, a violation scan, a component solve); spans
// nest naturally through scoping, may run on pool worker threads, and
// record wall time plus any counter deltas flushed on their thread while
// they were open.
//
// Cost model: tracing is off by default and the disabled path is one
// relaxed atomic load per span — no clock reads, no allocation, no
// buffering (tests/trace_test.cc pins that contract). When enabled, each
// thread appends completed spans to its own buffer (registered once, under
// a mutex), so concurrent spans never contend; buffers are merged only at
// export time.
//
// Export is the Chrome trace-event format ("X" complete events, one per
// span), loadable in chrome://tracing or Perfetto. trace.json carries
// wall-clock durations and is for humans; the deterministic CI contract
// lives in metrics.json (util/metrics.h) — see DESIGN.md §8.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cvrepair {

class Tracer {
 public:
  /// One completed span, in export form. `depth` is the span's nesting
  /// level on its thread (0 = top-level); `tid` is a small stable id
  /// assigned in thread-registration order.
  struct Event {
    std::string name;
    double start_us = 0.0;
    double dur_us = 0.0;
    int tid = 0;
    int depth = 0;
    std::vector<std::pair<std::string, int64_t>> args;
  };

  /// Turns span recording on or off (off by default). Enable before the
  /// run being traced; events survive until Clear().
  static void SetEnabled(bool enabled);
  static bool enabled();

  /// Drops all buffered events. Call only between runs (no spans open).
  static void Clear();

  /// All completed spans, merged across thread buffers and sorted by
  /// (start time, tid, depth) — parents before their children.
  static std::vector<Event> CollectEvents();

  /// Writes CollectEvents() as a Chrome trace-event JSON file. Returns
  /// false when the file cannot be written.
  static bool WriteChromeTrace(const std::string& path);

  /// Credits a counter delta to the open spans of the calling thread
  /// (util/metrics.h flush sites call this). No-op while disabled.
  static void AddCounterDelta(const char* key, int64_t value);
};

/// RAII span. Construct at phase entry; the destructor stamps the
/// duration, attaches counter deltas accumulated on this thread since
/// construction, and appends the event to the thread's buffer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a named integer to the span (shard counts, block counts,
  /// variant indexes). No-op while tracing is disabled.
  void AddArg(const char* key, int64_t value);

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  int depth_ = 0;
  std::vector<std::pair<std::string, int64_t>> args_;
  std::vector<std::pair<std::string, int64_t>> counter_base_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_UTIL_TRACE_H_
