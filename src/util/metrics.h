#ifndef CVREPAIR_UTIL_METRICS_H_
#define CVREPAIR_UTIL_METRICS_H_

// Unified metrics registry: every subsystem counter (scan work, index
// reuse, solver cache traffic, streaming ingest, thread-pool scheduling)
// lives behind one named handle so a whole run can be snapshotted, diffed,
// and exported as machine-readable JSON. Current namespaces: "eval.*"
// (shared evaluation index + block scans: predicate/code evals, partition
// work, and the zone-map pair blocks_scanned/blocks_skipped — consults
// that ran vs. pruned a column block), "cache.*" (materialized component
// cache),
// "repair.*" (per-run outcome, PublishRepairStats), "stream.*" (streaming
// batch repair: batches/edits/rows_ingested/rows_rechecked/
// components_resolved/cells_changed), "serve.*" (repair-as-a-service:
// admission batches_admitted/batches_rejected/sessions_opened, sharded
// engine batches_applied/shard_local_components/cross_shard_components/
// rows_migrated/cells_changed), "pool.*" (runtime-only scheduling).
// Counters are relaxed atomics — hot loops keep bulk-flushing local
// tallies exactly as before; the registry only changes where the totals
// live.
//
// The export contract (see DESIGN.md §8): *work* counters are functions of
// the workload alone — the same repair produces the same values at any
// --threads setting — and make up metrics.json, the file CI diffs against
// checked-in baselines. *Runtime* counters (pool chunk claims and the
// like) depend on scheduling, never enter metrics.json, and exist for
// humans reading full snapshots or traces.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace cvrepair {

/// Determinism class of a counter; only kWork counters are exported to
/// metrics.json and gated by CI.
enum class MetricKind {
  kWork,     ///< same workload => same value at any thread count
  kRuntime,  ///< scheduling-dependent (pool chunks, helper wakeups)
};

/// A named monotonically increasing int64 counter. Handles are stable for
/// the process lifetime; increments are relaxed atomics (statistics, not
/// synchronization — totals are exact once the measured code has joined).
class MetricCounter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  MetricKind kind() const { return kind_; }

 private:
  friend class MetricsRegistry;
  MetricCounter(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}

  std::string name_;
  MetricKind kind_;
  std::atomic<int64_t> value_{0};
};

/// Flat name → value view of a registry (std::map: deterministic order).
using MetricsSnapshot = std::map<std::string, int64_t>;

/// The central registry. `Global()` is the process-wide instance every
/// subsystem publishes into; separate instances exist only for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Returns the handle registered under `name`, creating it on first use.
  /// The kind is fixed by the first registration. Thread-safe; the handle
  /// stays valid for the registry's lifetime, so callers cache it and
  /// never pay the lookup on a hot path.
  MetricCounter* GetCounter(const std::string& name,
                            MetricKind kind = MetricKind::kWork);

  /// Every registered counter, including runtime ones.
  MetricsSnapshot SnapshotAll() const;

  /// Only the deterministic work counters — the metrics.json content.
  MetricsSnapshot SnapshotWork() const;

  /// Zeroes every counter (handles stay valid). Call between runs when a
  /// snapshot should describe one run, not the process history.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
};

/// Renders a snapshot as the stable metrics.json format: one flat JSON
/// object, keys sorted (the map order), one "name": value pair per line,
/// no timestamps or floats — byte-identical across runs of the same
/// workload.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// MetricsToJson to a file. Returns false when the file cannot be written.
bool WriteMetricsJsonFile(const std::string& path,
                          const MetricsSnapshot& snapshot);

/// Per-key `after - before` (keys missing from `before` count as 0; keys
/// only in `before` are kept negated). Use around a run to report its
/// delta against a registry that was not reset.
MetricsSnapshot MetricsDiff(const MetricsSnapshot& after,
                            const MetricsSnapshot& before);

}  // namespace cvrepair

#endif  // CVREPAIR_UTIL_METRICS_H_
