#include "dc/constraint.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cvrepair {

DenialConstraint::DenialConstraint(std::vector<Predicate> predicates,
                                   std::string name)
    : preds_(std::move(predicates)), name_(std::move(name)) {
  Canonicalize();
}

void DenialConstraint::Canonicalize() {
  std::sort(preds_.begin(), preds_.end());
  preds_.erase(std::unique(preds_.begin(), preds_.end()), preds_.end());
  num_tuple_vars_ = 1;
  for (const Predicate& p : preds_) {
    num_tuple_vars_ = std::max(num_tuple_vars_, p.MaxTupleVar() + 1);
  }
}

DenialConstraint DenialConstraint::FromFd(const std::vector<AttrId>& lhs,
                                          AttrId rhs, std::string name) {
  std::vector<Predicate> preds;
  preds.reserve(lhs.size() + 1);
  for (AttrId x : lhs) {
    preds.push_back(Predicate::TwoCell(0, x, Op::kEq, 1, x));
  }
  preds.push_back(Predicate::TwoCell(0, rhs, Op::kNeq, 1, rhs));
  return DenialConstraint(std::move(preds), std::move(name));
}

int DenialConstraint::Degree() const {
  std::set<CellRef> refs;
  for (const Predicate& p : preds_) {
    refs.insert(p.lhs());
    if (!p.has_constant()) refs.insert(p.rhs_cell());
  }
  return static_cast<int>(refs.size());
}

bool DenialConstraint::IsTrivial() const {
  for (size_t i = 0; i < preds_.size(); ++i) {
    const Predicate& a = preds_[i];
    // t.A op t.A with an irreflexive operator can never hold.
    if (!a.has_constant() && a.rhs_cell() == a.lhs() &&
        (a.op() == Op::kNeq || a.op() == Op::kLt || a.op() == Op::kGt)) {
      return true;
    }
    for (size_t j = i + 1; j < preds_.size(); ++j) {
      const Predicate& b = preds_[j];
      if (a.SameOperands(b) && Contradicts(a.op(), b.op())) return true;
    }
  }
  return false;
}

bool DenialConstraint::Contains(const Predicate& p) const {
  return std::find(preds_.begin(), preds_.end(), p) != preds_.end();
}

bool DenialConstraint::ContainsOperands(const Predicate& p) const {
  for (const Predicate& q : preds_) {
    if (q.SameOperands(p)) return true;
  }
  return false;
}

DenialConstraint DenialConstraint::WithPredicate(const Predicate& p) const {
  std::vector<Predicate> preds = preds_;
  preds.push_back(p);
  return DenialConstraint(std::move(preds), name_);
}

DenialConstraint DenialConstraint::WithoutPredicate(int index) const {
  std::vector<Predicate> preds = preds_;
  preds.erase(preds.begin() + index);
  return DenialConstraint(std::move(preds), name_);
}

bool DenialConstraint::IsRefinedBy(const DenialConstraint& refined) const {
  for (const Predicate& p : preds_) {
    bool covered = false;
    for (const Predicate& q : refined.preds_) {
      if (p.SameOperands(q) && Implies(q.op(), p.op())) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::ostringstream os;
  if (!name_.empty()) os << name_ << ": ";
  os << "not(";
  for (size_t i = 0; i < preds_.size(); ++i) {
    if (i) os << " & ";
    os << preds_[i].ToString(schema);
  }
  os << ")";
  return os.str();
}

int Degree(const ConstraintSet& sigma) {
  int deg = 0;
  for (const DenialConstraint& c : sigma) deg = std::max(deg, c.Degree());
  return deg;
}

int MaxTupleVars(const ConstraintSet& sigma) {
  int ell = 1;
  for (const DenialConstraint& c : sigma) {
    ell = std::max(ell, c.NumTupleVars());
  }
  return ell;
}

bool IsRefinedBy(const ConstraintSet& sigma1, const ConstraintSet& sigma2) {
  for (const DenialConstraint& c2 : sigma2) {
    bool found = false;
    for (const DenialConstraint& c1 : sigma1) {
      if (c1.IsRefinedBy(c2)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::string ToString(const ConstraintSet& sigma, const Schema& schema) {
  std::ostringstream os;
  for (const DenialConstraint& c : sigma) os << c.ToString(schema) << "\n";
  return os.str();
}

}  // namespace cvrepair
