#include "dc/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace cvrepair {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

// Finds the operator token in a predicate string, preferring two-character
// operators, and skipping quoted sections. Handles the UTF-8 operators
// ≠ / ≥ / ≤ (three-byte sequences starting with 0xE2 0x89).
bool FindOperator(const std::string& s, size_t* pos, size_t* len, Op* op) {
  bool quoted = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\'') quoted = !quoted;
    if (quoted) continue;
    if (static_cast<unsigned char>(c) == 0xE2 && i + 2 < s.size() &&
        static_cast<unsigned char>(s[i + 1]) == 0x89) {
      std::string token = s.substr(i, 3);
      if (ParseOp(token, op)) {
        *pos = i;
        *len = 3;
        return true;
      }
      return false;
    }
    if (c == '!' || c == '<' || c == '>' || c == '=') {
      size_t l = 1;
      if (i + 1 < s.size() && (s[i + 1] == '=' || (c == '<' && s[i + 1] == '>'))) {
        l = 2;
      }
      std::string token = s.substr(i, l);
      if (token == "!") return false;  // "!" alone is not an operator
      if (ParseOp(token, op)) {
        *pos = i;
        *len = l;
        return true;
      }
      return false;
    }
  }
  return false;
}

// Parses "t0.Name" into a CellRef. Returns false if not of that shape.
bool ParseCellRef(const Schema& schema, const std::string& text, CellRef* ref,
                  std::string* error) {
  std::string s = Trim(text);
  if (s.size() < 4 || s[0] != 't' || !std::isdigit(s[1])) return false;
  size_t dot = s.find('.');
  if (dot == std::string::npos) return false;
  int tuple = std::atoi(s.substr(1, dot - 1).c_str());
  if (tuple < 0 || tuple > 1) {
    *error = "tuple variable out of range in '" + s + "' (only t0/t1)";
    return false;
  }
  std::string attr = s.substr(dot + 1);
  std::optional<AttrId> id = schema.Find(attr);
  if (!id) {
    *error = "unknown attribute '" + attr + "'";
    return false;
  }
  ref->tuple = tuple;
  ref->attr = *id;
  return true;
}

bool ParseConstant(const Schema& schema, AttrId lhs_attr,
                   const std::string& text, Value* out, std::string* error) {
  std::string s = Trim(text);
  if (s.empty()) {
    *error = "empty operand";
    return false;
  }
  if (s.front() == '\'' && s.back() == '\'' && s.size() >= 2) {
    *out = Value::String(s.substr(1, s.size() - 2));
    return true;
  }
  switch (schema.type(lhs_attr)) {
    case AttrType::kString:
      *out = Value::String(s);
      return true;
    case AttrType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        *error = "cannot parse integer constant '" + s + "'";
        return false;
      }
      *out = Value::Int(v);
      return true;
    }
    case AttrType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(s.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        *error = "cannot parse numeric constant '" + s + "'";
        return false;
      }
      *out = Value::Double(v);
      return true;
    }
  }
  *error = "unsupported attribute type";
  return false;
}

bool ParsePredicate(const Schema& schema, const std::string& text,
                    Predicate* out, std::string* error) {
  std::string s = Trim(text);
  size_t pos = 0, len = 0;
  Op op = Op::kEq;
  if (!FindOperator(s, &pos, &len, &op)) {
    *error = "no comparison operator in predicate '" + s + "'";
    return false;
  }
  std::string left = Trim(s.substr(0, pos));
  std::string right = Trim(s.substr(pos + len));
  CellRef lhs;
  if (!ParseCellRef(schema, left, &lhs, error)) {
    if (error->empty()) *error = "left operand must be t<k>.<Attr> in '" + s + "'";
    return false;
  }
  CellRef rhs;
  std::string rhs_err;
  if (ParseCellRef(schema, right, &rhs, &rhs_err)) {
    *out = Predicate::TwoCell(lhs.tuple, lhs.attr, op, rhs.tuple, rhs.attr);
    return true;
  }
  if (!rhs_err.empty()) {
    *error = rhs_err;
    return false;
  }
  Value c;
  if (!ParseConstant(schema, lhs.attr, right, &c, error)) return false;
  *out = Predicate::WithConstant(lhs.tuple, lhs.attr, op, std::move(c));
  return true;
}

ParseConstraintResult ParseFdForm(const Schema& schema, const std::string& text,
                                  const std::string& name) {
  ParseConstraintResult result;
  size_t arrow = text.find("->");
  std::string lhs_text = text.substr(0, arrow);
  std::string rhs_text = Trim(text.substr(arrow + 2));
  std::vector<AttrId> lhs;
  for (const std::string& part : Split(lhs_text, ',')) {
    std::string attr = Trim(part);
    if (attr.empty()) continue;
    std::optional<AttrId> id = schema.Find(attr);
    if (!id) {
      result.error = "unknown attribute '" + attr + "' in FD";
      return result;
    }
    lhs.push_back(*id);
  }
  if (lhs.empty()) {
    result.error = "FD has empty left-hand side";
    return result;
  }
  std::optional<AttrId> rhs = schema.Find(rhs_text);
  if (!rhs) {
    result.error = "unknown attribute '" + rhs_text + "' in FD";
    return result;
  }
  result.constraint = DenialConstraint::FromFd(lhs, *rhs, name);
  return result;
}

}  // namespace

ParseConstraintResult ParseConstraint(const Schema& schema,
                                      const std::string& text) {
  ParseConstraintResult result;
  std::string s = Trim(text);

  // Optional "name:" prefix (the name must not contain parens or '.').
  std::string name;
  size_t colon = s.find(':');
  if (colon != std::string::npos) {
    std::string prefix = s.substr(0, colon);
    if (prefix.find('(') == std::string::npos &&
        prefix.find('.') == std::string::npos) {
      name = Trim(prefix);
      s = Trim(s.substr(colon + 1));
    }
  }

  if (s.find("->") != std::string::npos && s.find("not(") == std::string::npos) {
    return ParseFdForm(schema, s, name);
  }

  if (s.rfind("not(", 0) != 0 || s.back() != ')') {
    result.error = "constraint must be 'not(...)' or an FD 'A,B -> C'";
    return result;
  }
  std::string body = s.substr(4, s.size() - 5);
  std::vector<Predicate> preds;
  for (const std::string& part : Split(body, '&')) {
    std::string ptext = Trim(part);
    if (ptext.empty()) {
      result.error = "empty predicate in '" + text + "'";
      return result;
    }
    Predicate p;
    std::string error;
    if (!ParsePredicate(schema, ptext, &p, &error)) {
      result.error = error;
      return result;
    }
    preds.push_back(p);
  }
  if (preds.empty()) {
    result.error = "denial constraint requires at least one predicate";
    return result;
  }
  result.constraint = DenialConstraint(std::move(preds), name);
  return result;
}

ParseSetResult ParseConstraintSet(const Schema& schema,
                                  const std::string& text) {
  ParseSetResult result;
  ConstraintSet set;
  std::string norm = text;
  for (char& c : norm) {
    if (c == ';') c = '\n';
  }
  for (const std::string& rawline : Split(norm, '\n')) {
    std::string line = Trim(rawline);
    if (line.empty() || line[0] == '#') continue;
    ParseConstraintResult one = ParseConstraint(schema, line);
    if (!one.ok()) {
      result.error = "in '" + line + "': " + one.error;
      return result;
    }
    set.push_back(std::move(*one.constraint));
  }
  result.constraints = std::move(set);
  return result;
}

}  // namespace cvrepair
