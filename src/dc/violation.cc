#include "dc/violation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "dc/eval_index.h"
#include "dc/predicate_space.h"
#include "dc/scan_internal.h"
#include "relation/encoded.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

using scan_internal::CodeVecHash;
using scan_internal::kMinParallelWork;
using scan_internal::LocalCap;
using scan_internal::MergeShards;
using scan_internal::ShardResult;
using scan_internal::ValueVecHash;

// The scans below are templated on an evaluator with
//   bool IsViolated(const std::vector<int>& rows, EvalCounters* local);
// counting each predicate evaluation (same short-circuit order as
// DenialConstraint::IsViolated) so indexed, encoded, and plain scans of
// the same workload stay comparable. PlainEval counts boxed-Value evals;
// EncodedConstraintEval (relation/encoded.h) counts code evals.
struct PlainEval {
  const Relation* I;
  const DenialConstraint* c;

  bool IsViolated(const std::vector<int>& rows, EvalCounters* local) const {
    for (const Predicate& p : c->predicates()) {
      ++local->predicate_evals;
      if (!p.Eval(*I, rows)) return false;
    }
    return !c->predicates().empty();
  }
};

// Enumerates the violating ordered pairs within one hash-partition block,
// in the same (i, j) order as the serial scan. Returns false once `cap`
// violations have been collected (caller stops).
template <typename Eval>
bool EnumerateBlockPairs(const Eval& ev, int index,
                         const std::vector<int>& members, int64_t cap,
                         std::vector<int>* rows, std::vector<Violation>* out,
                         EvalCounters* local) {
  for (int i : members) {
    for (int j : members) {
      if (i == j) continue;
      (*rows)[0] = i;
      (*rows)[1] = j;
      if (ev.IsViolated(*rows, local)) {
        if (static_cast<int64_t>(out->size()) >= cap) return false;
        out->push_back({index, *rows});
      }
    }
  }
  return true;
}

// Scans the >=2-member blocks of a join partition in canonical order
// (blocks sorted by first member, members ascending), sharding contiguous
// block ranges balanced by pair count when the pool and the work size
// warrant it.
template <typename Eval>
void ScanJoinBlocks(std::vector<std::vector<int>>& all_blocks, const Eval& ev,
                    int index, std::vector<Violation>* out, int64_t cap,
                    bool* truncated) {
  std::vector<const std::vector<int>*> blocks;
  int64_t work = 0;
  for (const std::vector<int>& members : all_blocks) {
    if (members.size() < 2) continue;
    blocks.push_back(&members);
    work += static_cast<int64_t>(members.size()) * members.size();
  }
  // Blocks sorted by first member — a canonical scan order that any
  // other producer of the same partition (e.g. the shared EvalIndex,
  // which derives partitions instead of hashing, or the encoded scan,
  // which buckets on codes instead of values) reproduces exactly.
  // Members are ascending within a block, so first-member order is
  // well-defined and unique.
  std::sort(blocks.begin(), blocks.end(),
            [](const std::vector<int>* a, const std::vector<int>* b) {
              return a->front() < b->front();
            });
  TraceSpan span("scan/join_blocks");
  span.AddArg("blocks", static_cast<int64_t>(blocks.size()));
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && blocks.size() > 1 && work >= kMinParallelWork) {
    // Contiguous block ranges balanced by pair count, so one giant block
    // does not serialize the scan.
    int64_t num_shards = std::min<int64_t>(
        static_cast<int64_t>(blocks.size()), static_cast<int64_t>(threads) * 4);
    std::vector<size_t> shard_begin;
    int64_t per_shard = (work + num_shards - 1) / num_shards;
    int64_t acc = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (shard_begin.empty() || acc >= per_shard) {
        shard_begin.push_back(b);
        acc = 0;
      }
      acc += static_cast<int64_t>(blocks[b]->size()) * blocks[b]->size();
    }
    shard_begin.push_back(blocks.size());
    size_t shards = shard_begin.size() - 1;
    span.AddArg("shards", static_cast<int64_t>(shards));
    std::vector<ShardResult> results(shards);
    int64_t local_cap = LocalCap(cap);
    ThreadPool::ParallelFor(static_cast<int64_t>(shards), [&](int64_t s) {
      std::vector<int> rows(2);
      for (size_t b = shard_begin[s]; b < shard_begin[s + 1]; ++b) {
        if (!EnumerateBlockPairs(ev, index, *blocks[b], local_cap, &rows,
                                 &results[s].found, &results[s].counters)) {
          break;
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  EvalCounters local;
  for (const std::vector<int>* members : blocks) {
    if (!EnumerateBlockPairs(ev, index, *members, cap, &rows, out, &local)) {
      if (truncated) *truncated = true;
      eval_counters::AddScan(local, /*truncated=*/true);
      return;
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// The full O(n²) ordered-pair scan (constraints with no equality join),
// split into contiguous ranges of the outer row.
template <typename Eval>
void ScanAllPairs(int n, const Eval& ev, int index,
                  std::vector<Violation>* out, int64_t cap, bool* truncated) {
  TraceSpan span("scan/all_pairs");
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && static_cast<int64_t>(n) * n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(2);
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          rows[0] = i;
          rows[1] = j;
          if (ev.IsViolated(rows, &result.counters)) {
            if (static_cast<int64_t>(result.found.size()) >= local_cap) {
              return;
            }
            result.found.push_back({index, rows});
          }
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  EvalCounters local;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      rows[0] = i;
      rows[1] = j;
      if (ev.IsViolated(rows, &local)) {
        if (static_cast<int64_t>(out->size()) >= cap) {
          if (truncated) *truncated = true;
          eval_counters::AddScan(local, /*truncated=*/true);
          return;
        }
        out->push_back({index, rows});
      }
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// Row scan for 1-tuple constraints.
template <typename Eval>
void ScanRowsCapped(int n, const Eval& ev, int index,
                    std::vector<Violation>* out, int64_t cap,
                    bool* truncated) {
  TraceSpan span("scan/rows");
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(1);
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        rows[0] = i;
        if (ev.IsViolated(rows, &result.counters)) {
          if (static_cast<int64_t>(result.found.size()) >= local_cap) {
            return;
          }
          result.found.push_back({index, rows});
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(1);
  EvalCounters local;
  for (int i = 0; i < n; ++i) {
    rows[0] = i;
    if (ev.IsViolated(rows, &local)) {
      if (static_cast<int64_t>(out->size()) >= cap) {
        if (truncated) *truncated = true;
        eval_counters::AddScan(local, /*truncated=*/true);
        return;
      }
      out->push_back({index, rows});
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// Hash-partition blocks on the join attributes, keyed by boxed Values.
// Rows NULL/fresh on a join attribute never satisfy '=' and are excluded.
std::vector<std::vector<int>> BuildJoinBlocks(const Relation& I,
                                              const std::vector<AttrId>& join) {
  TraceSpan span("scan/build_join_blocks");
  {
    EvalCounters delta;
    delta.partition_builds = 1;
    eval_counters::Add(delta);
  }
  int n = I.num_rows();
  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
      buckets;
  for (int i = 0; i < n; ++i) {
    std::vector<Value> key;
    key.reserve(join.size());
    bool usable = true;
    for (AttrId a : join) {
      const Value& v = I.Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (usable) buckets[std::move(key)].push_back(i);
  }
  std::vector<std::vector<int>> blocks;
  blocks.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    (void)key;
    blocks.push_back(std::move(members));
  }
  return blocks;
}

// Same partition, built from integer codes. A single join attribute
// buckets densely by code (codes are 0..dict.size()-1); multi-attribute
// joins hash the code vector. Codes identify exactly the EvalOp equality
// classes the Value-keyed build groups by, so the resulting blocks are
// identical (the canonical sort by first member erases any bucket-order
// difference).
std::vector<std::vector<int>> BuildJoinBlocks(const EncodedRelation& E,
                                              const std::vector<AttrId>& join) {
  TraceSpan span("scan/build_join_blocks");
  {
    EvalCounters delta;
    delta.partition_builds = 1;
    eval_counters::Add(delta);
  }
  int n = E.num_rows();
  std::vector<std::vector<int>> blocks;
  if (join.size() == 1) {
    const std::vector<Code>& col = E.column(join[0]);
    std::vector<std::vector<int>> by_code(
        static_cast<size_t>(E.dict(join[0]).size()));
    for (int i = 0; i < n; ++i) {
      Code a = col[static_cast<size_t>(i)];
      if (a >= 0) by_code[static_cast<size_t>(a)].push_back(i);
    }
    for (std::vector<int>& members : by_code) {
      if (!members.empty()) blocks.push_back(std::move(members));
    }
    return blocks;
  }
  std::unordered_map<std::vector<Code>, std::vector<int>, CodeVecHash> buckets;
  for (int i = 0; i < n; ++i) {
    std::vector<Code> key;
    key.reserve(join.size());
    bool usable = true;
    for (AttrId a : join) {
      Code v = E.code(i, a);
      if (v < 0) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (usable) buckets[std::move(key)].push_back(i);
  }
  blocks.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    (void)key;
    blocks.push_back(std::move(members));
  }
  return blocks;
}

template <typename Source, typename Eval>
std::vector<Violation> FindViolationsOfCappedImpl(
    const Source& src, const Eval& ev, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (constraint.predicates().empty()) return out;
  if (constraint.NumTupleVars() == 1) {
    ScanRowsCapped(src.num_rows(), ev, constraint_index, &out, max_violations,
                   truncated);
    return out;
  }
  std::vector<AttrId> join = EqualityJoinAttrs(constraint.predicates());
  if (!join.empty()) {
    std::vector<std::vector<int>> blocks = BuildJoinBlocks(src, join);
    ScanJoinBlocks(blocks, ev, constraint_index, &out, max_violations,
                   truncated);
    return out;
  }
  ScanAllPairs(src.num_rows(), ev, constraint_index, &out, max_violations,
               truncated);
  return out;
}

}  // namespace

std::vector<Cell> ViolationCells(const DenialConstraint& constraint,
                                 const std::vector<int>& rows) {
  std::vector<Cell> cells;
  for (const Predicate& p : constraint.predicates()) {
    for (const Cell& c : p.Cells(rows)) {
      if (std::find(cells.begin(), cells.end(), c) == cells.end()) {
        cells.push_back(c);
      }
    }
  }
  return cells;
}

std::vector<Violation> FindViolationsOf(const Relation& I,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(I, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const Relation& I, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  return FindViolationsOfCappedImpl(I, PlainEval{&I, &constraint}, constraint,
                                    constraint_index, max_violations,
                                    truncated);
}

std::vector<Violation> FindViolations(const Relation& I,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(I, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const Relation& I, const ConstraintSet& sigma) {
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int i = 0; i < I.num_rows(); ++i) {
        rows[0] = i;
        if (c.IsViolated(I, rows)) return false;
      }
    } else {
      // Reuse the bucketed enumerator; one violation suffices.
      bool truncated = false;
      std::vector<Violation> part =
          FindViolationsOfCapped(I, c, static_cast<int>(k), 1, &truncated);
      if (!part.empty()) return false;
    }
  }
  return true;
}

std::vector<Violation> FindViolationsOf(const EncodedRelation& E,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(E, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const EncodedRelation& E, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  assert(E.in_sync());
  EncodedConstraintEval ev(E, constraint);
  return FindViolationsOfCappedImpl(E, ev, constraint, constraint_index,
                                    max_violations, truncated);
}

std::vector<Violation> FindViolations(const EncodedRelation& E,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(E, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const EncodedRelation& E, const ConstraintSet& sigma) {
  assert(E.in_sync());
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      EncodedConstraintEval ev(E, c);
      std::vector<int> rows(1);
      for (int i = 0; i < E.num_rows(); ++i) {
        rows[0] = i;
        if (ev.IsViolated(rows)) return false;
      }
    } else {
      bool truncated = false;
      std::vector<Violation> part =
          FindViolationsOfCapped(E, c, static_cast<int>(k), 1, &truncated);
      if (!part.empty()) return false;
    }
  }
  return true;
}

namespace {

// The suspect scans for the plain and encoded paths share their entire
// structure (rows-with-changing filter, equality groups, partner
// enumeration, dedup); only the predicate evaluation and the group-key
// representation differ, supplied by an Ops policy:
//   void SetConstraint(size_t k)           — compile/point at sigma[k]
//   bool Condition(rows, touches)          — sc(rows; φ) w.r.t. changing
//   Key KeyOf(row, attrs, usable), KeyHash — group keys on eq attributes
// Both policies produce identical groups (codes are EvalOp equality
// classes) and identical conditions, so the outputs match exactly.
struct PlainSuspectOps {
  using Key = std::vector<Value>;
  using KeyHash = ValueVecHash;

  const Relation* I;
  const ConstraintSet* sigma;
  const CellSet* changing;
  const DenialConstraint* c = nullptr;

  void SetConstraint(size_t k) { c = &(*sigma)[k]; }

  // Evaluates the suspect condition sc(rows; φ) w.r.t. `changing` and
  // reports whether any predicate involves a changing cell.
  bool Condition(const std::vector<int>& rows, bool* touches_changing) const {
    *touches_changing = false;
    for (const Predicate& p : c->predicates()) {
      bool on_changing = false;
      for (const Cell& cell : p.Cells(rows)) {
        if (changing->count(cell)) {
          on_changing = true;
          break;
        }
      }
      if (on_changing) {
        *touches_changing = true;
        continue;  // predicate on C: excluded from the suspect condition
      }
      if (!p.Eval(*I, rows)) return false;
    }
    return true;
  }

  Key KeyOf(int i, const std::vector<AttrId>& attrs, bool* usable) const {
    Key key;
    key.reserve(attrs.size());
    *usable = true;
    for (AttrId a : attrs) {
      const Value& v = I->Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        *usable = false;
        return key;
      }
      key.push_back(v);
    }
    return key;
  }
};

struct EncodedSuspectOps {
  using Key = std::vector<Code>;
  using KeyHash = CodeVecHash;

  const EncodedRelation* E;
  const ConstraintSet* sigma;
  const CellSet* changing;
  const DenialConstraint* c = nullptr;
  std::vector<EncodedPredicateEval> evals{};

  void SetConstraint(size_t k) {
    c = &(*sigma)[k];
    evals.clear();
    evals.reserve(c->predicates().size());
    for (const Predicate& p : c->predicates()) evals.emplace_back(*E, p);
  }

  bool Condition(const std::vector<int>& rows, bool* touches_changing) const {
    *touches_changing = false;
    const std::vector<Predicate>& preds = c->predicates();
    for (size_t pi = 0; pi < preds.size(); ++pi) {
      bool on_changing = false;
      for (const Cell& cell : preds[pi].Cells(rows)) {
        if (changing->count(cell)) {
          on_changing = true;
          break;
        }
      }
      if (on_changing) {
        *touches_changing = true;
        continue;
      }
      if (!evals[pi].Eval(rows)) return false;
    }
    return true;
  }

  Key KeyOf(int i, const std::vector<AttrId>& attrs, bool* usable) const {
    Key key;
    key.reserve(attrs.size());
    *usable = true;
    for (AttrId a : attrs) {
      Code v = E->code(i, a);
      if (v < 0) {
        *usable = false;
        return key;
      }
      key.push_back(v);
    }
    return key;
  }
};

template <typename Ops>
std::vector<Violation> FindSuspectsImpl(Ops& ops, int n, int num_attributes,
                                        const ConstraintSet& sigma,
                                        const CellSet& changing) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    ops.SetConstraint(k);

    // Attributes the constraint's predicates can instantiate.
    std::vector<bool> used_attr(num_attributes, false);
    for (const Predicate& p : c.predicates()) {
      used_attr[p.lhs().attr] = true;
      if (!p.has_constant()) used_attr[p.rhs_cell().attr] = true;
    }
    // Rows owning a changing cell on a used attribute.
    std::vector<bool> in_rwc(n, false);
    std::vector<int> rwc;
    for (const Cell& cell : changing) {
      if (cell.attr < num_attributes && used_attr[cell.attr] &&
          !in_rwc[cell.row]) {
        in_rwc[cell.row] = true;
        rwc.push_back(cell.row);
      }
    }
    if (rwc.empty()) continue;
    std::sort(rwc.begin(), rwc.end());

    bool touches = false;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int r : rwc) {
        rows[0] = r;
        if (ops.Condition(rows, &touches) && touches) {
          out.push_back({static_cast<int>(k), rows});
        }
      }
      continue;
    }

    // Fast path for constraints with equality-join predicates: a suspect
    // pair must agree on every equality attribute whose cells are outside
    // C, so partner candidates shrink to the row's hash group plus the
    // rows owning a changing cell on a join attribute.
    std::vector<AttrId> eq_attrs;
    for (const Predicate& p : c.predicates()) {
      if (!p.has_constant() && p.op() == Op::kEq &&
          p.IsSameAttributeAcrossTuples()) {
        eq_attrs.push_back(p.lhs().attr);
      }
    }
    std::sort(eq_attrs.begin(), eq_attrs.end());
    eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                   eq_attrs.end());

    std::vector<int> rows(2);
    auto check_pair = [&](int r, int j) {
      rows[0] = r;
      rows[1] = j;
      if (ops.Condition(rows, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
      rows[0] = j;
      rows[1] = r;
      if (ops.Condition(rows, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
    };

    if (eq_attrs.empty()) {
      for (int r : rwc) {
        for (int j = 0; j < n; ++j) {
          if (j == r) continue;
          // Pairs with both rows in rwc are produced from the smaller
          // row's iteration only, to avoid duplicates.
          if (in_rwc[j] && j < r) continue;
          check_pair(r, j);
        }
      }
      continue;
    }

    // Hash groups on the equality attributes.
    std::unordered_map<typename Ops::Key, std::vector<int>,
                       typename Ops::KeyHash>
        groups;
    for (int i = 0; i < n; ++i) {
      bool usable = false;
      typename Ops::Key key = ops.KeyOf(i, eq_attrs, &usable);
      if (usable) groups[std::move(key)].push_back(i);
    }
    // Rows whose equality-attribute cells are in C: their join values may
    // change, so they pair with anything.
    std::vector<int> eq_changing_rows;
    std::vector<bool> eq_cell_changing(n, false);
    for (const Cell& cell : changing) {
      if (cell.row >= n || eq_cell_changing[cell.row]) continue;
      if (std::find(eq_attrs.begin(), eq_attrs.end(), cell.attr) !=
          eq_attrs.end()) {
        eq_cell_changing[cell.row] = true;
        eq_changing_rows.push_back(cell.row);
      }
    }
    // Ascending, so partner (and therefore suspect) order never depends
    // on the changing set's hash iteration order.
    std::sort(eq_changing_rows.begin(), eq_changing_rows.end());

    std::vector<bool> seen_partner(n, false);
    for (int r : rwc) {
      // Collect candidate partners (deduplicated via seen_partner).
      std::vector<int> partners;
      auto add_partner = [&](int j) {
        if (j == r || seen_partner[j]) return;
        if (in_rwc[j] && j < r) return;  // produced from j's iteration
        seen_partner[j] = true;
        partners.push_back(j);
      };
      if (eq_cell_changing[r]) {
        // This row's join cells change: every row is a candidate.
        for (int j = 0; j < n; ++j) add_partner(j);
      } else {
        bool usable = false;
        typename Ops::Key key = ops.KeyOf(r, eq_attrs, &usable);
        if (usable) {
          auto it = groups.find(key);
          if (it != groups.end()) {
            for (int j : it->second) add_partner(j);
          }
        }
        for (int j : eq_changing_rows) add_partner(j);
      }
      for (int j : partners) check_pair(r, j);
      for (int j : partners) seen_partner[j] = false;
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> FindSuspects(const Relation& I,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  PlainSuspectOps ops{&I, &sigma, &changing};
  return FindSuspectsImpl(ops, I.num_rows(), I.num_attributes(), sigma,
                          changing);
}

std::vector<Violation> FindSuspects(const EncodedRelation& E,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  assert(E.in_sync());
  EncodedSuspectOps ops{&E, &sigma, &changing};
  return FindSuspectsImpl(ops, E.num_rows(), E.num_attributes(), sigma,
                          changing);
}

}  // namespace cvrepair
