#include "dc/violation.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace cvrepair {

namespace {

// Attributes joined with equality across the two tuple variables
// (predicates of the form t0.A = t1.A). Used for hash partitioning.
std::vector<AttrId> EqualityJoinAttrs(const DenialConstraint& c) {
  std::vector<AttrId> attrs;
  for (const Predicate& p : c.predicates()) {
    if (!p.has_constant() && p.op() == Op::kEq &&
        p.IsSameAttributeAcrossTuples()) {
      attrs.push_back(p.lhs().attr);
    }
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0x345678;
    for (const Value& v : vs) {
      seed = seed * 1000003 ^ v.Hash();
    }
    return seed;
  }
};

void FindPairViolations(const Relation& I, const DenialConstraint& c,
                        int index, std::vector<Violation>* out,
                        int64_t cap, bool* truncated) {
  int n = I.num_rows();
  auto full = [&]() {
    if (static_cast<int64_t>(out->size()) < cap) return false;
    if (truncated) *truncated = true;
    return true;
  };
  std::vector<AttrId> join = EqualityJoinAttrs(c);
  std::vector<int> rows(2);
  if (!join.empty()) {
    std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
        buckets;
    for (int i = 0; i < n; ++i) {
      std::vector<Value> key;
      key.reserve(join.size());
      bool usable = true;
      for (AttrId a : join) {
        const Value& v = I.Get(i, a);
        // NULL / fv never satisfy '=', so such rows cannot violate.
        if (v.is_null() || v.is_fresh()) {
          usable = false;
          break;
        }
        key.push_back(v);
      }
      if (usable) buckets[std::move(key)].push_back(i);
    }
    for (const auto& [key, members] : buckets) {
      (void)key;
      if (members.size() < 2) continue;
      for (int i : members) {
        for (int j : members) {
          if (i == j) continue;
          rows[0] = i;
          rows[1] = j;
          if (c.IsViolated(I, rows)) {
            if (full()) return;
            out->push_back({index, rows});
          }
        }
      }
    }
    return;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      rows[0] = i;
      rows[1] = j;
      if (c.IsViolated(I, rows)) {
        if (full()) return;
        out->push_back({index, rows});
      }
    }
  }
}

}  // namespace

std::vector<Cell> ViolationCells(const DenialConstraint& constraint,
                                 const std::vector<int>& rows) {
  std::vector<Cell> cells;
  for (const Predicate& p : constraint.predicates()) {
    for (const Cell& c : p.Cells(rows)) {
      if (std::find(cells.begin(), cells.end(), c) == cells.end()) {
        cells.push_back(c);
      }
    }
  }
  return cells;
}

std::vector<Violation> FindViolationsOf(const Relation& I,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(I, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const Relation& I, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (constraint.predicates().empty()) return out;
  if (constraint.NumTupleVars() == 1) {
    std::vector<int> rows(1);
    for (int i = 0; i < I.num_rows(); ++i) {
      rows[0] = i;
      if (constraint.IsViolated(I, rows)) {
        if (static_cast<int64_t>(out.size()) >= max_violations) {
          if (truncated) *truncated = true;
          return out;
        }
        out.push_back({constraint_index, rows});
      }
    }
    return out;
  }
  FindPairViolations(I, constraint, constraint_index, &out, max_violations,
                     truncated);
  return out;
}

std::vector<Violation> FindViolations(const Relation& I,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(I, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const Relation& I, const ConstraintSet& sigma) {
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int i = 0; i < I.num_rows(); ++i) {
        rows[0] = i;
        if (c.IsViolated(I, rows)) return false;
      }
    } else {
      // Reuse the bucketed enumerator; stop at the first hit.
      std::vector<Violation> part = FindViolationsOf(I, c, static_cast<int>(k));
      if (!part.empty()) return false;
    }
  }
  return true;
}

namespace {

// Evaluates the suspect condition sc(rows; φ) w.r.t. `changing` and reports
// whether any predicate involves a changing cell.
bool SuspectCondition(const Relation& I, const DenialConstraint& c,
                      const std::vector<int>& rows, const CellSet& changing,
                      bool* touches_changing) {
  *touches_changing = false;
  for (const Predicate& p : c.predicates()) {
    bool on_changing = false;
    for (const Cell& cell : p.Cells(rows)) {
      if (changing.count(cell)) {
        on_changing = true;
        break;
      }
    }
    if (on_changing) {
      *touches_changing = true;
      continue;  // predicate on C: excluded from the suspect condition
    }
    if (!p.Eval(I, rows)) return false;
  }
  return true;
}

}  // namespace

std::vector<Violation> FindSuspects(const Relation& I,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  std::vector<Violation> out;
  int n = I.num_rows();
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;

    // Attributes the constraint's predicates can instantiate.
    std::vector<bool> used_attr(I.num_attributes(), false);
    for (const Predicate& p : c.predicates()) {
      used_attr[p.lhs().attr] = true;
      if (!p.has_constant()) used_attr[p.rhs_cell().attr] = true;
    }
    // Rows owning a changing cell on a used attribute.
    std::vector<bool> in_rwc(n, false);
    std::vector<int> rwc;
    for (const Cell& cell : changing) {
      if (cell.attr < I.num_attributes() && used_attr[cell.attr] &&
          !in_rwc[cell.row]) {
        in_rwc[cell.row] = true;
        rwc.push_back(cell.row);
      }
    }
    if (rwc.empty()) continue;
    std::sort(rwc.begin(), rwc.end());

    bool touches = false;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int r : rwc) {
        rows[0] = r;
        if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
          out.push_back({static_cast<int>(k), rows});
        }
      }
      continue;
    }

    // Fast path for constraints with equality-join predicates: a suspect
    // pair must agree on every equality attribute whose cells are outside
    // C, so partner candidates shrink to the row's hash group plus the
    // rows owning a changing cell on a join attribute.
    std::vector<AttrId> eq_attrs;
    for (const Predicate& p : c.predicates()) {
      if (!p.has_constant() && p.op() == Op::kEq &&
          p.IsSameAttributeAcrossTuples()) {
        eq_attrs.push_back(p.lhs().attr);
      }
    }
    std::sort(eq_attrs.begin(), eq_attrs.end());
    eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                   eq_attrs.end());

    std::vector<int> rows(2);
    auto check_pair = [&](int r, int j) {
      rows[0] = r;
      rows[1] = j;
      if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
      rows[0] = j;
      rows[1] = r;
      if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
    };

    if (eq_attrs.empty()) {
      for (int r : rwc) {
        for (int j = 0; j < n; ++j) {
          if (j == r) continue;
          // Pairs with both rows in rwc are produced from the smaller
          // row's iteration only, to avoid duplicates.
          if (in_rwc[j] && j < r) continue;
          check_pair(r, j);
        }
      }
      continue;
    }

    // Hash groups on the equality attributes.
    std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
        groups;
    auto key_of = [&](int i, bool* usable) {
      std::vector<Value> key;
      key.reserve(eq_attrs.size());
      *usable = true;
      for (AttrId a : eq_attrs) {
        const Value& v = I.Get(i, a);
        if (v.is_null() || v.is_fresh()) {
          *usable = false;
          return key;
        }
        key.push_back(v);
      }
      return key;
    };
    for (int i = 0; i < n; ++i) {
      bool usable = false;
      std::vector<Value> key = key_of(i, &usable);
      if (usable) groups[std::move(key)].push_back(i);
    }
    // Rows whose equality-attribute cells are in C: their join values may
    // change, so they pair with anything.
    std::vector<int> eq_changing_rows;
    std::vector<bool> eq_cell_changing(n, false);
    for (const Cell& cell : changing) {
      if (cell.row >= n || eq_cell_changing[cell.row]) continue;
      if (std::find(eq_attrs.begin(), eq_attrs.end(), cell.attr) !=
          eq_attrs.end()) {
        eq_cell_changing[cell.row] = true;
        eq_changing_rows.push_back(cell.row);
      }
    }

    std::vector<bool> seen_partner(n, false);
    for (int r : rwc) {
      // Collect candidate partners (deduplicated via seen_partner).
      std::vector<int> partners;
      auto add_partner = [&](int j) {
        if (j == r || seen_partner[j]) return;
        if (in_rwc[j] && j < r) return;  // produced from j's iteration
        seen_partner[j] = true;
        partners.push_back(j);
      };
      if (eq_cell_changing[r]) {
        // This row's join cells change: every row is a candidate.
        for (int j = 0; j < n; ++j) add_partner(j);
      } else {
        bool usable = false;
        std::vector<Value> key = key_of(r, &usable);
        if (usable) {
          auto it = groups.find(key);
          if (it != groups.end()) {
            for (int j : it->second) add_partner(j);
          }
        }
        for (int j : eq_changing_rows) add_partner(j);
      }
      for (int j : partners) check_pair(r, j);
      for (int j : partners) seen_partner[j] = false;
    }
  }
  return out;
}

}  // namespace cvrepair
