#include "dc/violation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "dc/eval_index.h"
#include "dc/predicate_space.h"
#include "dc/scan_internal.h"
#include "dc/scan_kernels.h"
#include "relation/encoded.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace {

using scan_internal::CodeVecHash;
using scan_internal::kMinParallelWork;
using scan_internal::LocalCap;
using scan_internal::MergeShards;
using scan_internal::ShardResult;
using scan_internal::ValueVecHash;

// The scans below are templated on an evaluator with
//   bool IsViolated(const std::vector<int>& rows, EvalCounters* local);
// counting each predicate evaluation (same short-circuit order as
// DenialConstraint::IsViolated) so indexed, encoded, and plain scans of
// the same workload stay comparable. PlainEval counts boxed-Value evals;
// EncodedConstraintEval (relation/encoded.h) counts code evals.
struct PlainEval {
  const Relation* I;
  const DenialConstraint* c;

  bool IsViolated(const std::vector<int>& rows, EvalCounters* local) const {
    for (const Predicate& p : c->predicates()) {
      ++local->predicate_evals;
      if (!p.Eval(*I, rows)) return false;
    }
    return !c->predicates().empty();
  }
};

// Enumerates the violating ordered pairs within one hash-partition block,
// in the same (i, j) order as the serial scan. Returns false once `cap`
// violations have been collected (caller stops).
template <typename Eval>
bool EnumerateBlockPairs(const Eval& ev, int index,
                         const std::vector<int>& members, int64_t cap,
                         std::vector<int>* rows, std::vector<Violation>* out,
                         EvalCounters* local) {
  for (int i : members) {
    for (int j : members) {
      if (i == j) continue;
      (*rows)[0] = i;
      (*rows)[1] = j;
      if (ev.IsViolated(*rows, local)) {
        if (static_cast<int64_t>(out->size()) >= cap) return false;
        out->push_back({index, *rows});
      }
    }
  }
  return true;
}

// Scans the >=2-member blocks of a join partition in canonical order
// (blocks sorted by first member, members ascending), sharding contiguous
// block ranges balanced by pair count when the pool and the work size
// warrant it. `enumerate(members, cap, rows, out, local)` must emit the
// block's violations in (i, j) member order and return false once `cap`
// of them have been collected — both the row-at-a-time and the
// block-kernel enumerators below satisfy that contract.
template <typename Enumerate>
void ScanJoinBlocksWith(std::vector<std::vector<int>>& all_blocks,
                        const Enumerate& enumerate,
                        std::vector<Violation>* out, int64_t cap,
                        bool* truncated) {
  std::vector<const std::vector<int>*> blocks;
  int64_t work = 0;
  for (const std::vector<int>& members : all_blocks) {
    if (members.size() < 2) continue;
    blocks.push_back(&members);
    work += static_cast<int64_t>(members.size()) * members.size();
  }
  // Blocks sorted by first member — a canonical scan order that any
  // other producer of the same partition (e.g. the shared EvalIndex,
  // which derives partitions instead of hashing, or the encoded scan,
  // which buckets on codes instead of values) reproduces exactly.
  // Members are ascending within a block, so first-member order is
  // well-defined and unique.
  std::sort(blocks.begin(), blocks.end(),
            [](const std::vector<int>* a, const std::vector<int>* b) {
              return a->front() < b->front();
            });
  TraceSpan span("scan/join_blocks");
  span.AddArg("blocks", static_cast<int64_t>(blocks.size()));
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && blocks.size() > 1 && work >= kMinParallelWork) {
    // Contiguous block ranges balanced by pair count, so one giant block
    // does not serialize the scan.
    int64_t num_shards = std::min<int64_t>(
        static_cast<int64_t>(blocks.size()), static_cast<int64_t>(threads) * 4);
    std::vector<size_t> shard_begin;
    int64_t per_shard = (work + num_shards - 1) / num_shards;
    int64_t acc = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (shard_begin.empty() || acc >= per_shard) {
        shard_begin.push_back(b);
        acc = 0;
      }
      acc += static_cast<int64_t>(blocks[b]->size()) * blocks[b]->size();
    }
    shard_begin.push_back(blocks.size());
    size_t shards = shard_begin.size() - 1;
    span.AddArg("shards", static_cast<int64_t>(shards));
    std::vector<ShardResult> results(shards);
    int64_t local_cap = LocalCap(cap);
    ThreadPool::ParallelFor(static_cast<int64_t>(shards), [&](int64_t s) {
      std::vector<int> rows(2);
      for (size_t b = shard_begin[s]; b < shard_begin[s + 1]; ++b) {
        if (!enumerate(*blocks[b], local_cap, &rows, &results[s].found,
                       &results[s].counters)) {
          break;
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  EvalCounters local;
  for (const std::vector<int>* members : blocks) {
    if (!enumerate(*members, cap, &rows, out, &local)) {
      if (truncated) *truncated = true;
      eval_counters::AddScan(local, /*truncated=*/true);
      return;
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

template <typename Eval>
void ScanJoinBlocks(std::vector<std::vector<int>>& all_blocks, const Eval& ev,
                    int index, std::vector<Violation>* out, int64_t cap,
                    bool* truncated) {
  ScanJoinBlocksWith(
      all_blocks,
      [&](const std::vector<int>& members, int64_t block_cap,
          std::vector<int>* rows, std::vector<Violation>* found,
          EvalCounters* local) {
        return EnumerateBlockPairs(ev, index, members, block_cap, rows, found,
                                   local);
      },
      out, cap, truncated);
}

// The full O(n²) ordered-pair scan (constraints with no equality join),
// split into contiguous ranges of the outer row.
template <typename Eval>
void ScanAllPairs(int n, const Eval& ev, int index,
                  std::vector<Violation>* out, int64_t cap, bool* truncated) {
  TraceSpan span("scan/all_pairs");
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && static_cast<int64_t>(n) * n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(2);
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          rows[0] = i;
          rows[1] = j;
          if (ev.IsViolated(rows, &result.counters)) {
            if (static_cast<int64_t>(result.found.size()) >= local_cap) {
              return;
            }
            result.found.push_back({index, rows});
          }
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  EvalCounters local;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      rows[0] = i;
      rows[1] = j;
      if (ev.IsViolated(rows, &local)) {
        if (static_cast<int64_t>(out->size()) >= cap) {
          if (truncated) *truncated = true;
          eval_counters::AddScan(local, /*truncated=*/true);
          return;
        }
        out->push_back({index, rows});
      }
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// Row scan for 1-tuple constraints.
template <typename Eval>
void ScanRowsCapped(int n, const Eval& ev, int index,
                    std::vector<Violation>* out, int64_t cap,
                    bool* truncated) {
  TraceSpan span("scan/rows");
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(1);
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        rows[0] = i;
        if (ev.IsViolated(rows, &result.counters)) {
          if (static_cast<int64_t>(result.found.size()) >= local_cap) {
            return;
          }
          result.found.push_back({index, rows});
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(1);
  EvalCounters local;
  for (int i = 0; i < n; ++i) {
    rows[0] = i;
    if (ev.IsViolated(rows, &local)) {
      if (static_cast<int64_t>(out->size()) >= cap) {
        if (truncated) *truncated = true;
        eval_counters::AddScan(local, /*truncated=*/true);
        return;
      }
      out->push_back({index, rows});
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// =====================================================================
// Block-vectorized encoded scans (dc/scan_kernels.h). Identical results,
// order, and capped semantics to the row-at-a-time templates above —
// tests/scan_kernel_test.cc proves it bit-for-bit — with three levers:
//   * zone-map skips: blocks no constant predicate (or per-row probe)
//     can match are never entered (blocks_scanned / blocks_skipped);
//   * a lead kernel: the first predicate the kernels can evaluate with
//     the scanned tuple varying runs branchless over the whole block,
//     and only surviving lanes reach the scalar short-circuit tail;
//   * per-row lifting: 2-tuple predicates binding only the fixed tuple
//     are evaluated once per outer row instead of once per pair.
// Counter discipline: upfront zone consults (skip vectors computed
// before sharding) flush immediately — they are thread-invariant by
// construction; in-shard consults and kernel lane counts ride the
// ShardResult through the AddScan truncation gate like every other
// scan counter, so totals never depend on --threads.
// =====================================================================

// Counted scalar evaluation of one compiled predicate.
inline bool EvalPredCounted(const EncodedPredicateEval& p,
                            const std::vector<int>& rows,
                            EvalCounters* local) {
  if (p.on_codes()) {
    ++local->code_predicate_evals;
  } else {
    ++local->predicate_evals;
  }
  return p.Eval(rows);
}

inline bool TestBit(const uint64_t* bitmap, int i) {
  return (bitmap[i >> 6] >> (i & 63)) & 1;
}

// A constant predicate prepared for zone consults / kernel runs.
struct ZonePred {
  scan_kernels::BlockPredicate bp;
  const int32_t* ranks;
  AttrId attr;
};

ZonePred MakeZonePred(const EncodedPredicateEval& p) {
  return {scan_kernels::CompileConstant(p.op(), p.bounds()), p.ranks(),
          p.lhs_attr()};
}

// Per-storage-block skip vector from constant zone predicates; one
// consult is counted per block.
void FillBlockSkips(const EncodedRelation& E, const std::vector<ZonePred>& zs,
                    std::vector<char>* skip, EvalCounters* zc) {
  int nb = E.num_blocks();
  skip->assign(static_cast<size_t>(nb), 0);
  for (int b = 0; b < nb; ++b) {
    bool may = true;
    for (const ZonePred& z : zs) {
      if (!scan_kernels::MayMatch(z.bp, E.block_meta(z.attr, b), z.ranks)) {
        may = false;
        break;
      }
    }
    (*skip)[static_cast<size_t>(b)] = !may;
    if (may) {
      ++zc->blocks_scanned;
    } else {
      ++zc->blocks_skipped;
    }
  }
}

// 1-tuple constraints, blocked: an upfront skip vector from every
// constant predicate, then per block a lead kernel (the first predicate,
// when constant-compiled) whose surviving lanes run the remaining
// predicates in the usual short-circuit order.
void ScanRowsBlocked(const EncodedRelation& E, const EncodedConstraintEval& ev,
                     int index, std::vector<Violation>* out, int64_t cap,
                     bool* truncated) {
  TraceSpan span("scan/rows");
  const std::vector<EncodedPredicateEval>& preds = ev.predicate_evals();
  int n = E.num_rows();
  int nb = E.num_blocks();

  std::vector<ZonePred> zone;
  for (const EncodedPredicateEval& p : preds) {
    if (p.is_constant()) zone.push_back(MakeZonePred(p));
  }
  std::vector<char> skip(static_cast<size_t>(nb), 0);
  if (!zone.empty()) {
    EvalCounters zc;
    FillBlockSkips(E, zone, &skip, &zc);
    eval_counters::Add(zc);
  }

  bool lead = !preds.empty() && preds[0].is_constant();
  scan_kernels::BlockPredicate lead_bp;
  if (lead) {
    lead_bp = scan_kernels::CompileConstant(preds[0].op(), preds[0].bounds());
  }

  // Returns false when `found` hit `block_cap` (the caller stops).
  auto scan_block = [&](int b, int64_t block_cap, std::vector<int>* rows,
                        std::vector<Violation>* found, EvalCounters* local,
                        uint64_t* bitmap) {
    if (skip[static_cast<size_t>(b)]) return true;
    int begin = b << EncodedRelation::kBlockShift;
    int rows_in = E.block_rows(b);
    const uint64_t* sel = nullptr;
    if (lead) {
      scan_kernels::EvalBlock(lead_bp, E.block_codes(preds[0].lhs_attr(), b),
                              rows_in, preds[0].ranks(), bitmap);
      local->code_predicate_evals += rows_in;
      sel = bitmap;
    }
    for (int x = 0; x < rows_in; ++x) {
      if (sel && !TestBit(sel, x)) continue;
      (*rows)[0] = begin + x;
      bool violated = true;
      for (size_t pi = lead ? 1 : 0; pi < preds.size(); ++pi) {
        if (!EvalPredCounted(preds[pi], *rows, local)) {
          violated = false;
          break;
        }
      }
      if (violated) {
        if (static_cast<int64_t>(found->size()) >= block_cap) return false;
        found->push_back({index, *rows});
      }
    }
    return true;
  };

  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && n >= kMinParallelWork && nb > 1) {
    int64_t num_shards =
        std::min<int64_t>(nb, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = nb / num_shards;
    int64_t extra = nb % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(1);
      uint64_t bitmap[EncodedRelation::kBlockSize / 64];
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int b = static_cast<int>(begin); b < static_cast<int>(end); ++b) {
        if (!scan_block(b, local_cap, &rows, &result.found, &result.counters,
                        bitmap)) {
          return;
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(1);
  uint64_t bitmap[EncodedRelation::kBlockSize / 64];
  EvalCounters local;
  for (int b = 0; b < nb; ++b) {
    if (!scan_block(b, cap, &rows, out, &local, bitmap)) {
      if (truncated) *truncated = true;
      eval_counters::AddScan(local, /*truncated=*/true);
      return;
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// The O(n²) scan, blocked: upfront skip vectors over the outer (t0
// constants) and inner (t1 constants) blocks, a per-(outer row, inner
// block) probe consult for same-attribute predicates, and a lead kernel
// over each surviving inner block. Outer sharding is identical to
// ScanAllPairs (contiguous ranges of i), so the merge semantics carry
// over unchanged.
void ScanAllPairsBlocked(const EncodedRelation& E,
                         const EncodedConstraintEval& ev, int index,
                         std::vector<Violation>* out, int64_t cap,
                         bool* truncated) {
  TraceSpan span("scan/all_pairs");
  const std::vector<EncodedPredicateEval>& preds = ev.predicate_evals();
  int n = E.num_rows();
  int nb = E.num_blocks();

  struct Probe {
    size_t pi;
    AttrId attr;
    Op op;
    bool fixed_is_lhs;  // the outer row i binds the lhs operand
    const int32_t* ranks;
  };
  std::vector<ZonePred> z0, z1;  // constants on t0 (outer) / t1 (inner)
  std::vector<size_t> lift;      // t0-constants: once per outer row
  std::vector<Probe> probes;
  std::vector<size_t> body;      // predicate order minus the lifted ones
  for (size_t pi = 0; pi < preds.size(); ++pi) {
    const EncodedPredicateEval& p = preds[pi];
    if (p.is_constant()) {
      if (p.lhs_tuple() == 0) {
        z0.push_back(MakeZonePred(p));
        lift.push_back(pi);
        continue;
      }
      z1.push_back(MakeZonePred(p));
    } else if (p.is_same_attr() && p.lhs_tuple() != p.rhs_tuple()) {
      probes.push_back(
          {pi, p.lhs_attr(), p.op(), p.lhs_tuple() == 0, p.ranks()});
    }
    body.push_back(pi);
  }
  // Lead: the first non-lifted predicate, when the kernels can evaluate
  // it with the inner tuple varying.
  int64_t lead = -1;
  if (!body.empty()) {
    const EncodedPredicateEval& p0 = preds[body.front()];
    if ((p0.is_constant() && p0.lhs_tuple() == 1) ||
        (p0.is_same_attr() && p0.lhs_tuple() != p0.rhs_tuple())) {
      lead = static_cast<int64_t>(body.front());
    }
  }
  std::vector<size_t> rest;
  for (size_t pi : body) {
    if (static_cast<int64_t>(pi) != lead) rest.push_back(pi);
  }

  std::vector<char> skip_i(static_cast<size_t>(nb), 0);
  std::vector<char> skip_j(static_cast<size_t>(nb), 0);
  if (!z0.empty() || !z1.empty()) {
    EvalCounters zc;
    if (!z0.empty()) FillBlockSkips(E, z0, &skip_i, &zc);
    if (!z1.empty()) FillBlockSkips(E, z1, &skip_j, &zc);
    eval_counters::Add(zc);
  }

  scan_kernels::BlockPredicate lead_const;
  if (lead >= 0 && preds[static_cast<size_t>(lead)].is_constant()) {
    const EncodedPredicateEval& lp = preds[static_cast<size_t>(lead)];
    lead_const = scan_kernels::CompileConstant(lp.op(), lp.bounds());
  }

  // One outer row against every inner block. Returns false when `found`
  // hit `local_cap`.
  auto scan_outer = [&](int i, int64_t local_cap, std::vector<int>* rows,
                        std::vector<Violation>* found, EvalCounters* local,
                        std::vector<scan_kernels::BlockPredicate>* pbuf,
                        uint64_t* bitmap) {
    if (skip_i[static_cast<size_t>(i >> EncodedRelation::kBlockShift)]) {
      return true;
    }
    (*rows)[0] = i;
    for (size_t pi : lift) {
      if (!EvalPredCounted(preds[pi], *rows, local)) return true;
    }
    pbuf->clear();
    for (const Probe& pr : probes) {
      pbuf->push_back(scan_kernels::CompileProbe(
          pr.op, pr.fixed_is_lhs, E.code(i, pr.attr), pr.ranks));
    }
    const scan_kernels::BlockPredicate* lead_bp = nullptr;
    if (lead >= 0) {
      if (preds[static_cast<size_t>(lead)].is_constant()) {
        lead_bp = &lead_const;
      } else {
        for (size_t s = 0; s < probes.size(); ++s) {
          if (probes[s].pi == static_cast<size_t>(lead)) {
            lead_bp = &(*pbuf)[s];
            break;
          }
        }
      }
    }
    for (int b = 0; b < nb; ++b) {
      if (skip_j[static_cast<size_t>(b)]) continue;
      int rows_in = E.block_rows(b);
      if (!probes.empty()) {
        bool may = true;
        for (size_t s = 0; s < probes.size(); ++s) {
          if (!scan_kernels::MayMatch((*pbuf)[s],
                                      E.block_meta(probes[s].attr, b),
                                      probes[s].ranks)) {
            may = false;
            break;
          }
        }
        if (may) {
          ++local->blocks_scanned;
        } else {
          ++local->blocks_skipped;
          continue;
        }
      }
      const uint64_t* sel = nullptr;
      if (lead_bp) {
        const EncodedPredicateEval& lp = preds[static_cast<size_t>(lead)];
        scan_kernels::EvalBlock(*lead_bp, E.block_codes(lp.lhs_attr(), b),
                                rows_in, lp.ranks(), bitmap);
        local->code_predicate_evals += rows_in;
        sel = bitmap;
      }
      int begin = b << EncodedRelation::kBlockShift;
      for (int x = 0; x < rows_in; ++x) {
        if (sel && !TestBit(sel, x)) continue;
        int j = begin + x;
        if (j == i) continue;
        (*rows)[1] = j;
        bool v = true;
        for (size_t pi : rest) {
          if (!EvalPredCounted(preds[pi], *rows, local)) {
            v = false;
            break;
          }
        }
        if (v) {
          if (static_cast<int64_t>(found->size()) >= local_cap) return false;
          found->push_back({index, *rows});
        }
      }
    }
    return true;
  };

  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && static_cast<int64_t>(n) * n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    span.AddArg("shards", num_shards);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(2);
      std::vector<scan_kernels::BlockPredicate> pbuf;
      uint64_t bitmap[EncodedRelation::kBlockSize / 64];
      ShardResult& result = results[static_cast<size_t>(s)];
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        if (!scan_outer(i, local_cap, &rows, &result.found, &result.counters,
                        &pbuf, bitmap)) {
          return;
        }
      }
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  std::vector<scan_kernels::BlockPredicate> pbuf;
  uint64_t bitmap[EncodedRelation::kBlockSize / 64];
  EvalCounters local;
  for (int i = 0; i < n; ++i) {
    if (!scan_outer(i, cap, &rows, out, &local, &pbuf, bitmap)) {
      if (truncated) *truncated = true;
      eval_counters::AddScan(local, /*truncated=*/true);
      return;
    }
  }
  eval_counters::AddScan(local, /*truncated=*/false);
}

// Blocked enumerator for one hash-partition block of an equality-join
// constraint. The partition equality predicates are proven true by block
// membership and skipped outright; the rest split into t0-bound
// constants (lifted to once per left member), zone-checkable predicates
// (constants and same-attribute probes, consulted against per-attribute
// rank zones computed over the gathered member codes), a lead kernel
// over the gathered codes, and the scalar tail in predicate order.
class BlockedJoinEnumerator {
 public:
  BlockedJoinEnumerator(const EncodedRelation& E,
                        const EncodedConstraintEval& ev, int index)
      : E_(&E), preds_(&ev.predicate_evals()), index_(index) {
    const std::vector<EncodedPredicateEval>& preds = *preds_;
    for (size_t pi = 0; pi < preds.size(); ++pi) {
      const EncodedPredicateEval& p = preds[pi];
      bool cross_same_attr =
          p.is_same_attr() && p.lhs_tuple() != p.rhs_tuple();
      if (cross_same_attr && p.op() == Op::kEq) continue;  // partition pred
      if (p.is_constant()) {
        consts_.push_back({pi, scan_kernels::CompileConstant(p.op(),
                                                             p.bounds()),
                           GatherSlot(p.lhs_attr())});
        if (p.lhs_tuple() == 0) {
          lift_.push_back(pi);
          continue;
        }
      } else if (cross_same_attr) {
        probes_.push_back(
            {pi, p.op(), p.lhs_tuple() == 0, GatherSlot(p.lhs_attr())});
      }
      body_.push_back(pi);
    }
    if (!body_.empty()) {
      const EncodedPredicateEval& p0 = preds[body_.front()];
      if ((p0.is_constant() && p0.lhs_tuple() == 1) ||
          (p0.is_same_attr() && p0.lhs_tuple() != p0.rhs_tuple())) {
        lead_ = static_cast<int64_t>(body_.front());
      }
    }
    for (size_t pi : body_) {
      if (static_cast<int64_t>(pi) != lead_) rest_.push_back(pi);
    }
    if (lead_ >= 0 && preds[static_cast<size_t>(lead_)].is_constant()) {
      const EncodedPredicateEval& lp = preds[static_cast<size_t>(lead_)];
      lead_const_ = scan_kernels::CompileConstant(lp.op(), lp.bounds());
      lead_slot_ = GatherSlot(lp.lhs_attr());
    }
  }

  bool operator()(const std::vector<int>& members, int64_t cap,
                  std::vector<int>* rows, std::vector<Violation>* out,
                  EvalCounters* local) const {
    const std::vector<EncodedPredicateEval>& preds = *preds_;
    int m = static_cast<int>(members.size());
    // Gather member codes per referenced attribute, plus their zones.
    std::vector<std::vector<Code>> g(attrs_.size());
    std::vector<int32_t> zmin(attrs_.size()), zmax(attrs_.size());
    for (size_t s = 0; s < attrs_.size(); ++s) {
      g[s].resize(static_cast<size_t>(m));
      for (int x = 0; x < m; ++x) {
        g[s][static_cast<size_t>(x)] =
            E_->code(members[static_cast<size_t>(x)], attrs_[s]);
      }
      scan_kernels::ComputeZone(g[s].data(), m,
                                E_->dict(attrs_[s]).rank_data(), &zmin[s],
                                &zmax[s]);
    }
    // One consult for all constant predicates: no member satisfying one
    // (whichever tuple it binds) means no violating pair in this block.
    if (!consts_.empty()) {
      bool may = true;
      for (const ConstPred& cp : consts_) {
        if (!scan_kernels::MayMatch(cp.bp, zmin[cp.slot], zmax[cp.slot],
                                    preds[cp.pi].ranks())) {
          may = false;
          break;
        }
      }
      if (!may) {
        ++local->blocks_skipped;
        return true;
      }
      ++local->blocks_scanned;
    }
    std::vector<uint64_t> bitmap((static_cast<size_t>(m) + 63) / 64);
    std::vector<scan_kernels::BlockPredicate> pbuf(probes_.size());
    for (int xi = 0; xi < m; ++xi) {
      int i = members[static_cast<size_t>(xi)];
      (*rows)[0] = i;
      bool alive = true;
      for (size_t pi : lift_) {
        if (!EvalPredCounted(preds[pi], *rows, local)) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      if (!probes_.empty()) {
        bool may = true;
        for (size_t s = 0; s < probes_.size(); ++s) {
          const Probe& pr = probes_[s];
          pbuf[s] = scan_kernels::CompileProbe(pr.op, pr.fixed_is_lhs,
                                               E_->code(i, attrs_[pr.slot]),
                                               preds[pr.pi].ranks());
          if (may && !scan_kernels::MayMatch(pbuf[s], zmin[pr.slot],
                                             zmax[pr.slot],
                                             preds[pr.pi].ranks())) {
            may = false;
          }
        }
        if (!may) {
          ++local->blocks_skipped;
          continue;
        }
        ++local->blocks_scanned;
      }
      const uint64_t* sel = nullptr;
      if (lead_ >= 0) {
        const EncodedPredicateEval& lp = preds[static_cast<size_t>(lead_)];
        const scan_kernels::BlockPredicate* lead_bp = &lead_const_;
        size_t slot = lead_slot_;
        if (!lp.is_constant()) {
          for (size_t s = 0; s < probes_.size(); ++s) {
            if (probes_[s].pi == static_cast<size_t>(lead_)) {
              lead_bp = &pbuf[s];
              slot = probes_[s].slot;
              break;
            }
          }
        }
        scan_kernels::EvalBlock(*lead_bp, g[slot].data(), m, lp.ranks(),
                                bitmap.data());
        local->code_predicate_evals += m;
        sel = bitmap.data();
      }
      for (int xj = 0; xj < m; ++xj) {
        if (sel && !TestBit(sel, xj)) continue;
        int j = members[static_cast<size_t>(xj)];
        if (j == i) continue;
        (*rows)[1] = j;
        bool v = true;
        for (size_t pi : rest_) {
          if (!EvalPredCounted(preds[pi], *rows, local)) {
            v = false;
            break;
          }
        }
        if (v) {
          if (static_cast<int64_t>(out->size()) >= cap) return false;
          out->push_back({index_, *rows});
        }
      }
    }
    return true;
  }

 private:
  struct ConstPred {
    size_t pi;
    scan_kernels::BlockPredicate bp;
    size_t slot;
  };
  struct Probe {
    size_t pi;
    Op op;
    bool fixed_is_lhs;  // the left member binds the lhs operand
    size_t slot;
  };

  size_t GatherSlot(AttrId a) {
    for (size_t s = 0; s < attrs_.size(); ++s) {
      if (attrs_[s] == a) return s;
    }
    attrs_.push_back(a);
    return attrs_.size() - 1;
  }

  const EncodedRelation* E_;
  const std::vector<EncodedPredicateEval>* preds_;
  int index_;
  std::vector<AttrId> attrs_;  // attributes gathered per block
  std::vector<ConstPred> consts_;
  std::vector<Probe> probes_;
  std::vector<size_t> lift_, body_, rest_;
  int64_t lead_ = -1;
  scan_kernels::BlockPredicate lead_const_;
  size_t lead_slot_ = 0;
};

// Hash-partition blocks on the join attributes, keyed by boxed Values.
// Rows NULL/fresh on a join attribute never satisfy '=' and are excluded.
std::vector<std::vector<int>> BuildJoinBlocks(const Relation& I,
                                              const std::vector<AttrId>& join) {
  TraceSpan span("scan/build_join_blocks");
  {
    EvalCounters delta;
    delta.partition_builds = 1;
    eval_counters::Add(delta);
  }
  int n = I.num_rows();
  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
      buckets;
  for (int i = 0; i < n; ++i) {
    std::vector<Value> key;
    key.reserve(join.size());
    bool usable = true;
    for (AttrId a : join) {
      const Value& v = I.Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (usable) buckets[std::move(key)].push_back(i);
  }
  std::vector<std::vector<int>> blocks;
  blocks.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    (void)key;
    blocks.push_back(std::move(members));
  }
  return blocks;
}

// Same partition, built from integer codes. A single join attribute
// buckets densely by code (codes are 0..dict.size()-1); multi-attribute
// joins hash the code vector. Codes identify exactly the EvalOp equality
// classes the Value-keyed build groups by, so the resulting blocks are
// identical (the canonical sort by first member erases any bucket-order
// difference).
std::vector<std::vector<int>> BuildJoinBlocks(const EncodedRelation& E,
                                              const std::vector<AttrId>& join) {
  TraceSpan span("scan/build_join_blocks");
  {
    EvalCounters delta;
    delta.partition_builds = 1;
    eval_counters::Add(delta);
  }
  int n = E.num_rows();
  std::vector<std::vector<int>> blocks;
  if (join.size() == 1) {
    std::vector<std::vector<int>> by_code(
        static_cast<size_t>(E.dict(join[0]).size()));
    int nb = E.num_blocks();
    for (int b = 0; b < nb; ++b) {
      const Code* seg = E.block_codes(join[0], b);
      int rows_in = E.block_rows(b);
      int begin = b << EncodedRelation::kBlockShift;
      for (int x = 0; x < rows_in; ++x) {
        Code a = seg[x];
        if (a >= 0) by_code[static_cast<size_t>(a)].push_back(begin + x);
      }
    }
    for (std::vector<int>& members : by_code) {
      if (!members.empty()) blocks.push_back(std::move(members));
    }
    return blocks;
  }
  std::unordered_map<std::vector<Code>, std::vector<int>, CodeVecHash> buckets;
  for (int i = 0; i < n; ++i) {
    std::vector<Code> key;
    key.reserve(join.size());
    bool usable = true;
    for (AttrId a : join) {
      Code v = E.code(i, a);
      if (v < 0) {
        usable = false;
        break;
      }
      key.push_back(v);
    }
    if (usable) buckets[std::move(key)].push_back(i);
  }
  blocks.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    (void)key;
    blocks.push_back(std::move(members));
  }
  return blocks;
}

template <typename Source, typename Eval>
std::vector<Violation> FindViolationsOfCappedImpl(
    const Source& src, const Eval& ev, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (constraint.predicates().empty()) return out;
  if (constraint.NumTupleVars() == 1) {
    ScanRowsCapped(src.num_rows(), ev, constraint_index, &out, max_violations,
                   truncated);
    return out;
  }
  std::vector<AttrId> join = EqualityJoinAttrs(constraint.predicates());
  if (!join.empty()) {
    std::vector<std::vector<int>> blocks = BuildJoinBlocks(src, join);
    ScanJoinBlocks(blocks, ev, constraint_index, &out, max_violations,
                   truncated);
    return out;
  }
  ScanAllPairs(src.num_rows(), ev, constraint_index, &out, max_violations,
               truncated);
  return out;
}

}  // namespace

std::vector<Cell> ViolationCells(const DenialConstraint& constraint,
                                 const std::vector<int>& rows) {
  std::vector<Cell> cells;
  for (const Predicate& p : constraint.predicates()) {
    for (const Cell& c : p.Cells(rows)) {
      if (std::find(cells.begin(), cells.end(), c) == cells.end()) {
        cells.push_back(c);
      }
    }
  }
  return cells;
}

std::vector<Violation> FindViolationsOf(const Relation& I,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(I, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const Relation& I, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  return FindViolationsOfCappedImpl(I, PlainEval{&I, &constraint}, constraint,
                                    constraint_index, max_violations,
                                    truncated);
}

std::vector<Violation> FindViolations(const Relation& I,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(I, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const Relation& I, const ConstraintSet& sigma) {
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int i = 0; i < I.num_rows(); ++i) {
        rows[0] = i;
        if (c.IsViolated(I, rows)) return false;
      }
    } else {
      // Reuse the bucketed enumerator; one violation suffices.
      bool truncated = false;
      std::vector<Violation> part =
          FindViolationsOfCapped(I, c, static_cast<int>(k), 1, &truncated);
      if (!part.empty()) return false;
    }
  }
  return true;
}

std::vector<Violation> FindViolationsOf(const EncodedRelation& E,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(E, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const EncodedRelation& E, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  assert(E.in_sync());
  EncodedConstraintEval ev(E, constraint);
  if (!scan_kernels::BlockScanEnabled()) {
    return FindViolationsOfCappedImpl(E, ev, constraint, constraint_index,
                                      max_violations, truncated);
  }
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (constraint.predicates().empty()) return out;
  if (constraint.NumTupleVars() == 1) {
    ScanRowsBlocked(E, ev, constraint_index, &out, max_violations, truncated);
    return out;
  }
  std::vector<AttrId> join = EqualityJoinAttrs(constraint.predicates());
  if (!join.empty()) {
    std::vector<std::vector<int>> blocks = BuildJoinBlocks(E, join);
    BlockedJoinEnumerator enumerate(E, ev, constraint_index);
    ScanJoinBlocksWith(blocks, enumerate, &out, max_violations, truncated);
    return out;
  }
  ScanAllPairsBlocked(E, ev, constraint_index, &out, max_violations,
                      truncated);
  return out;
}

std::vector<Violation> FindViolations(const EncodedRelation& E,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(E, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const EncodedRelation& E, const ConstraintSet& sigma) {
  assert(E.in_sync());
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      EncodedConstraintEval ev(E, c);
      std::vector<int> rows(1);
      for (int i = 0; i < E.num_rows(); ++i) {
        rows[0] = i;
        if (ev.IsViolated(rows)) return false;
      }
    } else {
      bool truncated = false;
      std::vector<Violation> part =
          FindViolationsOfCapped(E, c, static_cast<int>(k), 1, &truncated);
      if (!part.empty()) return false;
    }
  }
  return true;
}

namespace {

// The suspect scans for the plain and encoded paths share their entire
// structure (rows-with-changing filter, equality groups, partner
// enumeration, dedup); only the predicate evaluation and the group-key
// representation differ, supplied by an Ops policy:
//   void SetConstraint(size_t k)           — compile/point at sigma[k]
//   bool Condition(rows, touches)          — sc(rows; φ) w.r.t. changing
//   Key KeyOf(row, attrs, usable), KeyHash — group keys on eq attributes
// Both policies produce identical groups (codes are EvalOp equality
// classes) and identical conditions, so the outputs match exactly.
struct PlainSuspectOps {
  using Key = std::vector<Value>;
  using KeyHash = ValueVecHash;

  const Relation* I;
  const ConstraintSet* sigma;
  const CellSet* changing;
  const DenialConstraint* c = nullptr;

  void SetConstraint(size_t k) { c = &(*sigma)[k]; }

  // Evaluates the suspect condition sc(rows; φ) w.r.t. `changing` and
  // reports whether any predicate involves a changing cell.
  bool Condition(const std::vector<int>& rows, bool* touches_changing) const {
    *touches_changing = false;
    for (const Predicate& p : c->predicates()) {
      bool on_changing = false;
      for (const Cell& cell : p.Cells(rows)) {
        if (changing->count(cell)) {
          on_changing = true;
          break;
        }
      }
      if (on_changing) {
        *touches_changing = true;
        continue;  // predicate on C: excluded from the suspect condition
      }
      if (!p.Eval(*I, rows)) return false;
    }
    return true;
  }

  Key KeyOf(int i, const std::vector<AttrId>& attrs, bool* usable) const {
    Key key;
    key.reserve(attrs.size());
    *usable = true;
    for (AttrId a : attrs) {
      const Value& v = I->Get(i, a);
      if (v.is_null() || v.is_fresh()) {
        *usable = false;
        return key;
      }
      key.push_back(v);
    }
    return key;
  }

  // Block-level partner pruning for the no-equality-join loop; the boxed
  // path has no zone maps, so no pruning (skip stays empty).
  void PartnerBlockSkips(int /*r*/, std::vector<char>* skip) const {
    skip->clear();
  }
};

struct EncodedSuspectOps {
  using Key = std::vector<Code>;
  using KeyHash = CodeVecHash;

  const EncodedRelation* E;
  const ConstraintSet* sigma;
  const CellSet* changing;
  const DenialConstraint* c = nullptr;
  std::vector<EncodedPredicateEval> evals{};
  std::vector<char> attr_changing{};  // attrs owning any changing cell

  void SetConstraint(size_t k) {
    c = &(*sigma)[k];
    evals.clear();
    evals.reserve(c->predicates().size());
    for (const Predicate& p : c->predicates()) evals.emplace_back(*E, p);
    if (attr_changing.empty() && E->num_attributes() > 0) {
      attr_changing.assign(static_cast<size_t>(E->num_attributes()), 0);
      for (const Cell& cell : *changing) {
        if (cell.attr >= 0 && cell.attr < E->num_attributes()) {
          attr_changing[static_cast<size_t>(cell.attr)] = 1;
        }
      }
    }
  }

  bool Condition(const std::vector<int>& rows, bool* touches_changing) const {
    *touches_changing = false;
    const std::vector<Predicate>& preds = c->predicates();
    for (size_t pi = 0; pi < preds.size(); ++pi) {
      bool on_changing = false;
      for (const Cell& cell : preds[pi].Cells(rows)) {
        if (changing->count(cell)) {
          on_changing = true;
          break;
        }
      }
      if (on_changing) {
        *touches_changing = true;
        continue;
      }
      if (!evals[pi].Eval(rows)) return false;
    }
    return true;
  }

  Key KeyOf(int i, const std::vector<AttrId>& attrs, bool* usable) const {
    Key key;
    key.reserve(attrs.size());
    *usable = true;
    for (AttrId a : attrs) {
      Code v = E->code(i, a);
      if (v < 0) {
        *usable = false;
        return key;
      }
      key.push_back(v);
    }
    return key;
  }

  // Zone-prunes partner storage blocks against r. Only predicates on
  // attributes without any changing cell participate: those can never be
  // excluded from the suspect condition, so a block they rule out for
  // *both* pair orientations holds no suspect partner of r. One consult
  // is counted per block.
  void PartnerBlockSkips(int r, std::vector<char>* skip) const {
    skip->clear();
    if (!scan_kernels::BlockScanEnabled() || attr_changing.empty()) return;
    // fwd prunes orientation (r, j) — the partner binds t1; rev prunes
    // (j, r) — the partner binds t0.
    std::vector<ZonePred> fwd, rev;
    for (const EncodedPredicateEval& pe : evals) {
      if (!pe.on_codes() ||
          attr_changing[static_cast<size_t>(pe.lhs_attr())]) {
        continue;
      }
      if (pe.is_constant()) {
        (pe.lhs_tuple() == 1 ? fwd : rev).push_back(MakeZonePred(pe));
      } else if (pe.is_same_attr() && pe.lhs_tuple() != pe.rhs_tuple()) {
        Code fixed = E->code(r, pe.lhs_attr());
        fwd.push_back({scan_kernels::CompileProbe(pe.op(),
                                                  pe.lhs_tuple() == 0, fixed,
                                                  pe.ranks()),
                       pe.ranks(), pe.lhs_attr()});
        rev.push_back({scan_kernels::CompileProbe(pe.op(),
                                                  pe.lhs_tuple() == 1, fixed,
                                                  pe.ranks()),
                       pe.ranks(), pe.lhs_attr()});
      }
    }
    // A block is skippable only when both orientations are ruled out;
    // an orientation with no pruning predicates is never ruled out.
    if (fwd.empty() || rev.empty()) return;
    int nb = E->num_blocks();
    skip->assign(static_cast<size_t>(nb), 0);
    auto may_all = [&](const std::vector<ZonePred>& zs, int b) {
      for (const ZonePred& z : zs) {
        if (!scan_kernels::MayMatch(z.bp, E->block_meta(z.attr, b),
                                    z.ranks)) {
          return false;
        }
      }
      return true;
    };
    EvalCounters zc;
    for (int b = 0; b < nb; ++b) {
      bool may = may_all(fwd, b) || may_all(rev, b);
      (*skip)[static_cast<size_t>(b)] = !may;
      if (may) {
        ++zc.blocks_scanned;
      } else {
        ++zc.blocks_skipped;
      }
    }
    eval_counters::Add(zc);
  }
};

template <typename Ops>
std::vector<Violation> FindSuspectsImpl(Ops& ops, int n, int num_attributes,
                                        const ConstraintSet& sigma,
                                        const CellSet& changing) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    ops.SetConstraint(k);

    // Attributes the constraint's predicates can instantiate.
    std::vector<bool> used_attr(num_attributes, false);
    for (const Predicate& p : c.predicates()) {
      used_attr[p.lhs().attr] = true;
      if (!p.has_constant()) used_attr[p.rhs_cell().attr] = true;
    }
    // Rows owning a changing cell on a used attribute.
    std::vector<bool> in_rwc(n, false);
    std::vector<int> rwc;
    for (const Cell& cell : changing) {
      if (cell.attr < num_attributes && used_attr[cell.attr] &&
          !in_rwc[cell.row]) {
        in_rwc[cell.row] = true;
        rwc.push_back(cell.row);
      }
    }
    if (rwc.empty()) continue;
    std::sort(rwc.begin(), rwc.end());

    bool touches = false;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int r : rwc) {
        rows[0] = r;
        if (ops.Condition(rows, &touches) && touches) {
          out.push_back({static_cast<int>(k), rows});
        }
      }
      continue;
    }

    // Fast path for constraints with equality-join predicates: a suspect
    // pair must agree on every equality attribute whose cells are outside
    // C, so partner candidates shrink to the row's hash group plus the
    // rows owning a changing cell on a join attribute.
    std::vector<AttrId> eq_attrs;
    for (const Predicate& p : c.predicates()) {
      if (!p.has_constant() && p.op() == Op::kEq &&
          p.IsSameAttributeAcrossTuples()) {
        eq_attrs.push_back(p.lhs().attr);
      }
    }
    std::sort(eq_attrs.begin(), eq_attrs.end());
    eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                   eq_attrs.end());

    std::vector<int> rows(2);
    auto check_pair = [&](int r, int j) {
      rows[0] = r;
      rows[1] = j;
      if (ops.Condition(rows, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
      rows[0] = j;
      rows[1] = r;
      if (ops.Condition(rows, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
    };

    if (eq_attrs.empty()) {
      std::vector<char> pskip;
      for (int r : rwc) {
        ops.PartnerBlockSkips(r, &pskip);
        for (int j = 0; j < n; ++j) {
          if (!pskip.empty() &&
              pskip[static_cast<size_t>(j >> EncodedRelation::kBlockShift)]) {
            continue;
          }
          if (j == r) continue;
          // Pairs with both rows in rwc are produced from the smaller
          // row's iteration only, to avoid duplicates.
          if (in_rwc[j] && j < r) continue;
          check_pair(r, j);
        }
      }
      continue;
    }

    // Hash groups on the equality attributes.
    std::unordered_map<typename Ops::Key, std::vector<int>,
                       typename Ops::KeyHash>
        groups;
    for (int i = 0; i < n; ++i) {
      bool usable = false;
      typename Ops::Key key = ops.KeyOf(i, eq_attrs, &usable);
      if (usable) groups[std::move(key)].push_back(i);
    }
    // Rows whose equality-attribute cells are in C: their join values may
    // change, so they pair with anything.
    std::vector<int> eq_changing_rows;
    std::vector<bool> eq_cell_changing(n, false);
    for (const Cell& cell : changing) {
      if (cell.row >= n || eq_cell_changing[cell.row]) continue;
      if (std::find(eq_attrs.begin(), eq_attrs.end(), cell.attr) !=
          eq_attrs.end()) {
        eq_cell_changing[cell.row] = true;
        eq_changing_rows.push_back(cell.row);
      }
    }
    // Ascending, so partner (and therefore suspect) order never depends
    // on the changing set's hash iteration order.
    std::sort(eq_changing_rows.begin(), eq_changing_rows.end());

    std::vector<bool> seen_partner(n, false);
    for (int r : rwc) {
      // Collect candidate partners (deduplicated via seen_partner).
      std::vector<int> partners;
      auto add_partner = [&](int j) {
        if (j == r || seen_partner[j]) return;
        if (in_rwc[j] && j < r) return;  // produced from j's iteration
        seen_partner[j] = true;
        partners.push_back(j);
      };
      if (eq_cell_changing[r]) {
        // This row's join cells change: every row is a candidate.
        for (int j = 0; j < n; ++j) add_partner(j);
      } else {
        bool usable = false;
        typename Ops::Key key = ops.KeyOf(r, eq_attrs, &usable);
        if (usable) {
          auto it = groups.find(key);
          if (it != groups.end()) {
            for (int j : it->second) add_partner(j);
          }
        }
        for (int j : eq_changing_rows) add_partner(j);
      }
      for (int j : partners) check_pair(r, j);
      for (int j : partners) seen_partner[j] = false;
    }
  }
  return out;
}

}  // namespace

std::vector<Violation> FindSuspects(const Relation& I,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  PlainSuspectOps ops{&I, &sigma, &changing};
  return FindSuspectsImpl(ops, I.num_rows(), I.num_attributes(), sigma,
                          changing);
}

std::vector<Violation> FindSuspects(const EncodedRelation& E,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  assert(E.in_sync());
  EncodedSuspectOps ops{&E, &sigma, &changing};
  return FindSuspectsImpl(ops, E.num_rows(), E.num_attributes(), sigma,
                          changing);
}

}  // namespace cvrepair
