#include "dc/violation.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "dc/eval_index.h"
#include "dc/predicate_space.h"
#include "dc/scan_internal.h"
#include "util/thread_pool.h"

namespace cvrepair {

namespace {

using scan_internal::kMinParallelWork;
using scan_internal::LocalCap;
using scan_internal::MergeShards;
using scan_internal::ShardResult;
using scan_internal::ValueVecHash;

// IsViolated with the predicate evaluations counted (same short-circuit
// order), so indexed and plain scans of the same workload are comparable.
bool IsViolatedCounted(const Relation& I, const DenialConstraint& c,
                       const std::vector<int>& rows, int64_t* evals) {
  for (const Predicate& p : c.predicates()) {
    ++*evals;
    if (!p.Eval(I, rows)) return false;
  }
  return !c.predicates().empty();
}

void FlushEvalCount(int64_t evals) {
  if (evals == 0) return;
  EvalCounters delta;
  delta.predicate_evals = evals;
  eval_counters::Add(delta);
}

// Enumerates the violating ordered pairs within one hash-partition block,
// in the same (i, j) order as the serial scan. Returns false once `cap`
// violations have been collected (caller stops).
bool EnumerateBlockPairs(const Relation& I, const DenialConstraint& c,
                         int index, const std::vector<int>& members,
                         int64_t cap, std::vector<int>* rows,
                         std::vector<Violation>* out, int64_t* evals) {
  for (int i : members) {
    for (int j : members) {
      if (i == j) continue;
      (*rows)[0] = i;
      (*rows)[1] = j;
      if (IsViolatedCounted(I, c, *rows, evals)) {
        if (static_cast<int64_t>(out->size()) >= cap) return false;
        out->push_back({index, *rows});
      }
    }
  }
  return true;
}

void FindPairViolations(const Relation& I, const DenialConstraint& c,
                        int index, std::vector<Violation>* out,
                        int64_t cap, bool* truncated) {
  int n = I.num_rows();
  std::vector<AttrId> join = EqualityJoinAttrs(c.predicates());
  if (!join.empty()) {
    {
      EvalCounters delta;
      delta.partition_builds = 1;
      eval_counters::Add(delta);
    }
    std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
        buckets;
    for (int i = 0; i < n; ++i) {
      std::vector<Value> key;
      key.reserve(join.size());
      bool usable = true;
      for (AttrId a : join) {
        const Value& v = I.Get(i, a);
        // NULL / fv never satisfy '=', so such rows cannot violate.
        if (v.is_null() || v.is_fresh()) {
          usable = false;
          break;
        }
        key.push_back(v);
      }
      if (usable) buckets[std::move(key)].push_back(i);
    }
    // Blocks sorted by first member — a canonical scan order that any
    // other producer of the same partition (e.g. the shared EvalIndex,
    // which derives partitions instead of hashing) reproduces exactly.
    // Members are ascending within a block, so first-member order is
    // well-defined and unique.
    std::vector<const std::vector<int>*> blocks;
    int64_t work = 0;
    for (const auto& [key, members] : buckets) {
      (void)key;
      if (members.size() < 2) continue;
      blocks.push_back(&members);
      work += static_cast<int64_t>(members.size()) * members.size();
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const std::vector<int>* a, const std::vector<int>* b) {
                return a->front() < b->front();
              });
    int threads = ThreadPool::EffectiveThreads();
    if (threads > 1 && blocks.size() > 1 && work >= kMinParallelWork) {
      // Contiguous block ranges balanced by pair count, so one giant block
      // does not serialize the scan.
      int64_t num_shards = std::min<int64_t>(
          static_cast<int64_t>(blocks.size()), static_cast<int64_t>(threads) * 4);
      std::vector<size_t> shard_begin;
      int64_t per_shard = (work + num_shards - 1) / num_shards;
      int64_t acc = 0;
      for (size_t b = 0; b < blocks.size(); ++b) {
        if (shard_begin.empty() || acc >= per_shard) {
          shard_begin.push_back(b);
          acc = 0;
        }
        acc += static_cast<int64_t>(blocks[b]->size()) * blocks[b]->size();
      }
      shard_begin.push_back(blocks.size());
      size_t shards = shard_begin.size() - 1;
      std::vector<ShardResult> results(shards);
      int64_t local_cap = LocalCap(cap);
      ThreadPool::ParallelFor(static_cast<int64_t>(shards), [&](int64_t s) {
        std::vector<int> rows(2);
        int64_t evals = 0;
        for (size_t b = shard_begin[s]; b < shard_begin[s + 1]; ++b) {
          if (!EnumerateBlockPairs(I, c, index, *blocks[b], local_cap, &rows,
                                   &results[s].found, &evals)) {
            break;
          }
        }
        FlushEvalCount(evals);
      });
      MergeShards(results, cap, out, truncated);
      return;
    }
    std::vector<int> rows(2);
    int64_t evals = 0;
    for (const std::vector<int>* members : blocks) {
      if (!EnumerateBlockPairs(I, c, index, *members, cap, &rows, out,
                               &evals)) {
        if (truncated) *truncated = true;
        FlushEvalCount(evals);
        return;
      }
    }
    FlushEvalCount(evals);
    return;
  }
  // No equality join: the full O(n²) ordered-pair scan, split into
  // contiguous ranges of the outer row.
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && static_cast<int64_t>(n) * n >= kMinParallelWork) {
    int64_t num_shards =
        std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
    std::vector<ShardResult> results(static_cast<size_t>(num_shards));
    int64_t local_cap = LocalCap(cap);
    int64_t per = n / num_shards;
    int64_t extra = n % num_shards;
    ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
      int64_t begin = s * per + std::min(s, extra);
      int64_t end = begin + per + (s < extra ? 1 : 0);
      std::vector<int> rows(2);
      int64_t evals = 0;
      std::vector<Violation>& found = results[static_cast<size_t>(s)].found;
      for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          rows[0] = i;
          rows[1] = j;
          if (IsViolatedCounted(I, c, rows, &evals)) {
            if (static_cast<int64_t>(found.size()) >= local_cap) {
              FlushEvalCount(evals);
              return;
            }
            found.push_back({index, rows});
          }
        }
      }
      FlushEvalCount(evals);
    });
    MergeShards(results, cap, out, truncated);
    return;
  }
  std::vector<int> rows(2);
  int64_t evals = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      rows[0] = i;
      rows[1] = j;
      if (IsViolatedCounted(I, c, rows, &evals)) {
        if (static_cast<int64_t>(out->size()) >= cap) {
          if (truncated) *truncated = true;
          FlushEvalCount(evals);
          return;
        }
        out->push_back({index, rows});
      }
    }
  }
  FlushEvalCount(evals);
}

}  // namespace

std::vector<Cell> ViolationCells(const DenialConstraint& constraint,
                                 const std::vector<int>& rows) {
  std::vector<Cell> cells;
  for (const Predicate& p : constraint.predicates()) {
    for (const Cell& c : p.Cells(rows)) {
      if (std::find(cells.begin(), cells.end(), c) == cells.end()) {
        cells.push_back(c);
      }
    }
  }
  return cells;
}

std::vector<Violation> FindViolationsOf(const Relation& I,
                                        const DenialConstraint& constraint,
                                        int constraint_index) {
  return FindViolationsOfCapped(I, constraint, constraint_index,
                                std::numeric_limits<int64_t>::max(), nullptr);
}

std::vector<Violation> FindViolationsOfCapped(
    const Relation& I, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated) {
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (constraint.predicates().empty()) return out;
  int n = I.num_rows();
  if (constraint.NumTupleVars() == 1) {
    int threads = ThreadPool::EffectiveThreads();
    if (threads > 1 && n >= kMinParallelWork) {
      int64_t num_shards =
          std::min<int64_t>(n, static_cast<int64_t>(threads) * 4);
      std::vector<ShardResult> results(static_cast<size_t>(num_shards));
      int64_t local_cap = LocalCap(max_violations);
      int64_t per = n / num_shards;
      int64_t extra = n % num_shards;
      ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
        int64_t begin = s * per + std::min(s, extra);
        int64_t end = begin + per + (s < extra ? 1 : 0);
        std::vector<int> rows(1);
        int64_t evals = 0;
        std::vector<Violation>& found = results[static_cast<size_t>(s)].found;
        for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
          rows[0] = i;
          if (IsViolatedCounted(I, constraint, rows, &evals)) {
            if (static_cast<int64_t>(found.size()) >= local_cap) {
              FlushEvalCount(evals);
              return;
            }
            found.push_back({constraint_index, rows});
          }
        }
        FlushEvalCount(evals);
      });
      MergeShards(results, max_violations, &out, truncated);
      return out;
    }
    std::vector<int> rows(1);
    int64_t evals = 0;
    for (int i = 0; i < n; ++i) {
      rows[0] = i;
      if (IsViolatedCounted(I, constraint, rows, &evals)) {
        if (static_cast<int64_t>(out.size()) >= max_violations) {
          if (truncated) *truncated = true;
          FlushEvalCount(evals);
          return out;
        }
        out.push_back({constraint_index, rows});
      }
    }
    FlushEvalCount(evals);
    return out;
  }
  FindPairViolations(I, constraint, constraint_index, &out, max_violations,
                     truncated);
  return out;
}

std::vector<Violation> FindViolations(const Relation& I,
                                      const ConstraintSet& sigma) {
  std::vector<Violation> out;
  for (size_t k = 0; k < sigma.size(); ++k) {
    std::vector<Violation> part =
        FindViolationsOf(I, sigma[k], static_cast<int>(k));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool Satisfies(const Relation& I, const ConstraintSet& sigma) {
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int i = 0; i < I.num_rows(); ++i) {
        rows[0] = i;
        if (c.IsViolated(I, rows)) return false;
      }
    } else {
      // Reuse the bucketed enumerator; one violation suffices.
      bool truncated = false;
      std::vector<Violation> part =
          FindViolationsOfCapped(I, c, static_cast<int>(k), 1, &truncated);
      if (!part.empty()) return false;
    }
  }
  return true;
}

namespace {

// Evaluates the suspect condition sc(rows; φ) w.r.t. `changing` and reports
// whether any predicate involves a changing cell.
bool SuspectCondition(const Relation& I, const DenialConstraint& c,
                      const std::vector<int>& rows, const CellSet& changing,
                      bool* touches_changing) {
  *touches_changing = false;
  for (const Predicate& p : c.predicates()) {
    bool on_changing = false;
    for (const Cell& cell : p.Cells(rows)) {
      if (changing.count(cell)) {
        on_changing = true;
        break;
      }
    }
    if (on_changing) {
      *touches_changing = true;
      continue;  // predicate on C: excluded from the suspect condition
    }
    if (!p.Eval(I, rows)) return false;
  }
  return true;
}

}  // namespace

std::vector<Violation> FindSuspects(const Relation& I,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing) {
  std::vector<Violation> out;
  int n = I.num_rows();
  for (size_t k = 0; k < sigma.size(); ++k) {
    const DenialConstraint& c = sigma[k];
    if (c.predicates().empty()) continue;

    // Attributes the constraint's predicates can instantiate.
    std::vector<bool> used_attr(I.num_attributes(), false);
    for (const Predicate& p : c.predicates()) {
      used_attr[p.lhs().attr] = true;
      if (!p.has_constant()) used_attr[p.rhs_cell().attr] = true;
    }
    // Rows owning a changing cell on a used attribute.
    std::vector<bool> in_rwc(n, false);
    std::vector<int> rwc;
    for (const Cell& cell : changing) {
      if (cell.attr < I.num_attributes() && used_attr[cell.attr] &&
          !in_rwc[cell.row]) {
        in_rwc[cell.row] = true;
        rwc.push_back(cell.row);
      }
    }
    if (rwc.empty()) continue;
    std::sort(rwc.begin(), rwc.end());

    bool touches = false;
    if (c.NumTupleVars() == 1) {
      std::vector<int> rows(1);
      for (int r : rwc) {
        rows[0] = r;
        if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
          out.push_back({static_cast<int>(k), rows});
        }
      }
      continue;
    }

    // Fast path for constraints with equality-join predicates: a suspect
    // pair must agree on every equality attribute whose cells are outside
    // C, so partner candidates shrink to the row's hash group plus the
    // rows owning a changing cell on a join attribute.
    std::vector<AttrId> eq_attrs;
    for (const Predicate& p : c.predicates()) {
      if (!p.has_constant() && p.op() == Op::kEq &&
          p.IsSameAttributeAcrossTuples()) {
        eq_attrs.push_back(p.lhs().attr);
      }
    }
    std::sort(eq_attrs.begin(), eq_attrs.end());
    eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                   eq_attrs.end());

    std::vector<int> rows(2);
    auto check_pair = [&](int r, int j) {
      rows[0] = r;
      rows[1] = j;
      if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
      rows[0] = j;
      rows[1] = r;
      if (SuspectCondition(I, c, rows, changing, &touches) && touches) {
        out.push_back({static_cast<int>(k), rows});
      }
    };

    if (eq_attrs.empty()) {
      for (int r : rwc) {
        for (int j = 0; j < n; ++j) {
          if (j == r) continue;
          // Pairs with both rows in rwc are produced from the smaller
          // row's iteration only, to avoid duplicates.
          if (in_rwc[j] && j < r) continue;
          check_pair(r, j);
        }
      }
      continue;
    }

    // Hash groups on the equality attributes.
    std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
        groups;
    auto key_of = [&](int i, bool* usable) {
      std::vector<Value> key;
      key.reserve(eq_attrs.size());
      *usable = true;
      for (AttrId a : eq_attrs) {
        const Value& v = I.Get(i, a);
        if (v.is_null() || v.is_fresh()) {
          *usable = false;
          return key;
        }
        key.push_back(v);
      }
      return key;
    };
    for (int i = 0; i < n; ++i) {
      bool usable = false;
      std::vector<Value> key = key_of(i, &usable);
      if (usable) groups[std::move(key)].push_back(i);
    }
    // Rows whose equality-attribute cells are in C: their join values may
    // change, so they pair with anything.
    std::vector<int> eq_changing_rows;
    std::vector<bool> eq_cell_changing(n, false);
    for (const Cell& cell : changing) {
      if (cell.row >= n || eq_cell_changing[cell.row]) continue;
      if (std::find(eq_attrs.begin(), eq_attrs.end(), cell.attr) !=
          eq_attrs.end()) {
        eq_cell_changing[cell.row] = true;
        eq_changing_rows.push_back(cell.row);
      }
    }

    std::vector<bool> seen_partner(n, false);
    for (int r : rwc) {
      // Collect candidate partners (deduplicated via seen_partner).
      std::vector<int> partners;
      auto add_partner = [&](int j) {
        if (j == r || seen_partner[j]) return;
        if (in_rwc[j] && j < r) return;  // produced from j's iteration
        seen_partner[j] = true;
        partners.push_back(j);
      };
      if (eq_cell_changing[r]) {
        // This row's join cells change: every row is a candidate.
        for (int j = 0; j < n; ++j) add_partner(j);
      } else {
        bool usable = false;
        std::vector<Value> key = key_of(r, &usable);
        if (usable) {
          auto it = groups.find(key);
          if (it != groups.end()) {
            for (int j : it->second) add_partner(j);
          }
        }
        for (int j : eq_changing_rows) add_partner(j);
      }
      for (int j : partners) check_pair(r, j);
      for (int j : partners) seen_partner[j] = false;
    }
  }
  return out;
}

}  // namespace cvrepair
