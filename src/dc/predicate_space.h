#ifndef CVREPAIR_DC_PREDICATE_SPACE_H_
#define CVREPAIR_DC_PREDICATE_SPACE_H_

#include <vector>

#include "dc/predicate.h"
#include "relation/schema.h"

namespace cvrepair {

/// Options controlling which predicates may be proposed for insertion.
struct PredicateSpaceOptions {
  /// Restrict insertable operators to {<, >, =} (Proposition 2: variants
  /// inserting <=, >=, != are never maximal). Turn off only for tests and
  /// ablations.
  bool maximal_ops_only = true;
  /// Skip attributes whose ids appear here (e.g., attributes known to be
  /// identifiers beyond declared keys).
  std::vector<AttrId> excluded_attrs;
};

/// The predicate space P of *insertable* predicates over a schema
/// (Section 2.2.1). Only same-attribute two-tuple predicates
/// t0.A op t1.A are proposed: predicates with constants would trivialize
/// DCs over the active data, and joins across unrelated attributes are the
/// province of DC discovery [7], not repair. Declared key attributes are
/// excluded (t0.K = t1.K makes every two-tuple DC trivially satisfied).
/// Categorical attributes contribute only '=', numeric attributes
/// contribute '=', '<', '>' (plus the dominated operators when
/// maximal_ops_only is false).
std::vector<Predicate> BuildPredicateSpace(
    const Schema& schema, const PredicateSpaceOptions& options = {});

/// The sorted, deduplicated attributes joined with equality across the two
/// tuple variables (predicates of the form t0.A = t1.A). This is the
/// grouping structure shared by hash-partitioned violation detection
/// (dc/violation.cc, dc/eval_index.cc) and the variant generator's
/// conditional-support sampling: two rows can only instantiate a violation
/// of the constraint if they agree on every one of these attributes.
std::vector<AttrId> EqualityJoinAttrs(const std::vector<Predicate>& preds);

}  // namespace cvrepair

#endif  // CVREPAIR_DC_PREDICATE_SPACE_H_
