#include "dc/incremental.h"

#include <algorithm>

#include "dc/eval_index.h"
#include "dc/scan_kernels.h"

namespace cvrepair {

namespace {

size_t HashValues(const Relation& I, int row, const std::vector<AttrId>& attrs,
                  bool* usable) {
  *usable = true;
  size_t seed = 0x9e3779b97f4a7c15ULL;
  for (AttrId a : attrs) {
    const Value& v = I.Get(row, a);
    if (v.is_null() || v.is_fresh()) {
      *usable = false;
      return 0;
    }
    seed = seed * 1000003 ^ v.Hash();
  }
  return seed;
}

// Code twin of HashValues: sentinel codes are negative, and codes are
// stable under dictionary growth, so a row's group hash only changes when
// one of its keyed cells changes.
size_t HashCodes(const EncodedRelation& E, int row,
                 const std::vector<AttrId>& attrs, bool* usable) {
  *usable = true;
  size_t seed = 0x9e3779b97f4a7c15ULL;
  for (AttrId a : attrs) {
    Code c = E.code(row, a);
    if (c < 0) {
      *usable = false;
      return 0;
    }
    seed = seed * 1000003 ^ static_cast<size_t>(static_cast<uint32_t>(c));
  }
  return seed;
}

}  // namespace

ViolationIndex::ViolationIndex(const Relation& I, const ConstraintSet& sigma,
                               bool use_encoded)
    : relation_(I), sigma_(sigma) {
  if (use_encoded) encoded_.emplace(relation_);
  groups_.resize(sigma_.size());
  alive_by_constraint_.assign(sigma_.size(), 0);
  violation_epochs_.assign(sigma_.size(), 0);
  for (size_t k = 0; k < sigma_.size(); ++k) {
    if (sigma_[k].NumTupleVars() < 2) continue;
    for (const Predicate& p : sigma_[k].predicates()) {
      if (!p.has_constant() && p.op() == Op::kEq &&
          p.IsSameAttributeAcrossTuples()) {
        groups_[k].attrs.push_back(p.lhs().attr);
      }
    }
    std::sort(groups_[k].attrs.begin(), groups_[k].attrs.end());
    groups_[k].attrs.erase(
        std::unique(groups_[k].attrs.begin(), groups_[k].attrs.end()),
        groups_[k].attrs.end());
    for (int i = 0; i < relation_.num_rows(); ++i) GroupInsert(k, i);
  }
  for (size_t k = 0; k < sigma_.size(); ++k) {
    std::vector<Violation> initial =
        encoded_ ? FindViolationsOf(*encoded_, sigma_[k], static_cast<int>(k))
                 : FindViolationsOf(relation_, sigma_[k], static_cast<int>(k));
    for (Violation& v : initial) AddViolation(std::move(v));
  }
  EnsureEvalsCurrent();
}

size_t ViolationIndex::GroupHash(size_t k, int row, bool* usable) const {
  if (encoded_) return HashCodes(*encoded_, row, groups_[k].attrs, usable);
  return HashValues(relation_, row, groups_[k].attrs, usable);
}

void ViolationIndex::EnsureEvalsCurrent() {
  if (!encoded_) return;
  if (!evals_built_) {
    evals_.clear();
    evals_.reserve(sigma_.size());
    for (size_t k = 0; k < sigma_.size(); ++k) {
      evals_.emplace_back(*encoded_, sigma_[k]);
    }
    evals_recompiled_ += static_cast<int64_t>(sigma_.size());
    evals_built_ = true;
    return;
  }
  // Recompile per constraint, keyed on the epochs each evaluator actually
  // cached: growth in a dictionary none of a constraint's predicates read
  // leaves that evaluator untouched.
  for (size_t k = 0; k < sigma_.size(); ++k) {
    if (evals_[k].valid_for(*encoded_)) continue;
    evals_[k] = EncodedConstraintEval(*encoded_, sigma_[k]);
    ++evals_recompiled_;
  }
}

void ViolationIndex::GroupInsert(size_t k, int row) {
  if (groups_[k].attrs.empty()) return;
  bool usable = false;
  size_t h = GroupHash(k, row, &usable);
  if (usable) groups_[k].rows_by_hash[h].push_back(row);
}

void ViolationIndex::GroupErase(size_t k, int row) {
  if (groups_[k].attrs.empty()) return;
  bool usable = false;
  size_t h = GroupHash(k, row, &usable);
  if (!usable) return;
  auto it = groups_[k].rows_by_hash.find(h);
  if (it == groups_[k].rows_by_hash.end()) return;
  auto& rows = it->second;
  rows.erase(std::remove(rows.begin(), rows.end(), row), rows.end());
  if (rows.empty()) groups_[k].rows_by_hash.erase(it);
}

void ViolationIndex::AddViolation(Violation v) {
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    store_[slot] = {std::move(v), true};
  } else {
    slot = static_cast<int>(store_.size());
    store_.push_back({std::move(v), true});
  }
  for (int row : store_[slot].violation.rows) {
    auto& ids = by_row_[row];
    if (ids.empty() || ids.back() != slot) ids.push_back(slot);
  }
  ++alive_count_;
  ++alive_by_constraint_[store_[slot].violation.constraint_index];
  ++violation_epochs_[store_[slot].violation.constraint_index];
}

void ViolationIndex::RemoveViolationsOfRow(int row) {
  auto it = by_row_.find(row);
  if (it == by_row_.end()) return;
  for (int slot : it->second) {
    StoredViolation& sv = store_[slot];
    if (!sv.alive) continue;
    bool involves = std::find(sv.violation.rows.begin(),
                              sv.violation.rows.end(),
                              row) != sv.violation.rows.end();
    if (!involves) continue;  // slot reused for another violation
    sv.alive = false;
    --alive_count_;
    --alive_by_constraint_[sv.violation.constraint_index];
    ++violation_epochs_[sv.violation.constraint_index];
    free_slots_.push_back(slot);
  }
  it->second.clear();
}

void ViolationIndex::ScanRow(size_t k, int row,
                             const std::vector<char>* skip_partner) {
  const DenialConstraint& c = sigma_[k];
  const EncodedConstraintEval* ev = encoded_ ? &evals_[k] : nullptr;
  ++rows_rechecked_;
  auto violated = [&](const std::vector<int>& rows) {
    return ev ? ev->IsViolated(rows) : c.IsViolated(relation_, rows);
  };
  if (c.NumTupleVars() < 2) {
    std::vector<int> rows = {row};
    if (violated(rows)) {
      AddViolation({static_cast<int>(k), rows});
    }
    return;
  }
  std::vector<int> rows(2);
  auto check = [&](int j) {
    if (j == row) return;
    if (skip_partner != nullptr && (*skip_partner)[static_cast<size_t>(j)]) {
      return;  // j's own scan already covered both orientations
    }
    rows[0] = row;
    rows[1] = j;
    if (violated(rows)) {
      AddViolation({static_cast<int>(k), rows});
    }
    rows[0] = j;
    rows[1] = row;
    if (violated(rows)) {
      AddViolation({static_cast<int>(k), rows});
    }
  };
  if (!groups_[k].attrs.empty()) {
    bool usable = false;
    size_t h = GroupHash(k, row, &usable);
    if (!usable) return;  // NULL/fv join key: cannot violate
    auto it = groups_[k].rows_by_hash.find(h);
    if (it == groups_[k].rows_by_hash.end()) return;
    // Hash collisions only add candidates; IsViolated validates.
    for (int j : it->second) check(j);
    return;
  }
  if (!encoded_ || !scan_kernels::BlockScanEnabled()) {
    for (int j = 0; j < relation_.num_rows(); ++j) check(j);
    return;
  }
  // Blocked partner loop (no equality join to narrow the candidates):
  // per pair orientation, the predicates the kernels can evaluate with
  // the partner varying — constants binding the partner's tuple variable
  // and same-attribute probes against this row's codes — first rule
  // whole partner blocks out through the zone maps (a block is skipped
  // only when *both* orientations are impossible); a surviving block
  // then runs one lead kernel per orientation so only matching lanes
  // reach the full re-check. Results and order match the plain loop:
  // ascending j, (row, j) before (j, row).
  const EncodedRelation& E = *encoded_;
  const std::vector<EncodedPredicateEval>& preds = ev->predicate_evals();
  struct Zone {
    scan_kernels::BlockPredicate bp;
    const int32_t* ranks;
    AttrId attr;
  };
  std::vector<Zone> fwd, rev;  // partner binds t1 / t0
  for (const EncodedPredicateEval& pe : preds) {
    if (pe.is_constant()) {
      Zone z{scan_kernels::CompileConstant(pe.op(), pe.bounds()), pe.ranks(),
             pe.lhs_attr()};
      (pe.lhs_tuple() == 1 ? fwd : rev).push_back(z);
    } else if (pe.is_same_attr() && pe.lhs_tuple() != pe.rhs_tuple()) {
      Code fixed = E.code(row, pe.lhs_attr());
      fwd.push_back({scan_kernels::CompileProbe(pe.op(), pe.lhs_tuple() == 0,
                                                fixed, pe.ranks()),
                     pe.ranks(), pe.lhs_attr()});
      rev.push_back({scan_kernels::CompileProbe(pe.op(), pe.lhs_tuple() == 1,
                                                fixed, pe.ranks()),
                     pe.ranks(), pe.lhs_attr()});
    }
  }
  auto may_all = [&](const std::vector<Zone>& zs, int b) {
    for (const Zone& z : zs) {
      if (!scan_kernels::MayMatch(z.bp, E.block_meta(z.attr, b), z.ranks)) {
        return false;
      }
    }
    return true;
  };
  EvalCounters zc;
  uint64_t bm_fwd[EncodedRelation::kBlockSize / 64];
  uint64_t bm_rev[EncodedRelation::kBlockSize / 64];
  int nb = E.num_blocks();
  for (int b = 0; b < nb; ++b) {
    bool may_fwd = may_all(fwd, b);
    bool may_rev = may_all(rev, b);
    if (!fwd.empty() || !rev.empty()) {
      if (may_fwd || may_rev) {
        ++zc.blocks_scanned;
      } else {
        ++zc.blocks_skipped;
      }
    }
    if (!may_fwd && !may_rev) continue;
    int rows_in = E.block_rows(b);
    int begin = b << EncodedRelation::kBlockShift;
    const uint64_t* sel_fwd = nullptr;
    const uint64_t* sel_rev = nullptr;
    if (may_fwd && !fwd.empty()) {
      scan_kernels::EvalBlock(fwd.front().bp, E.block_codes(fwd.front().attr, b),
                              rows_in, fwd.front().ranks, bm_fwd);
      sel_fwd = bm_fwd;
    }
    if (may_rev && !rev.empty()) {
      scan_kernels::EvalBlock(rev.front().bp, E.block_codes(rev.front().attr, b),
                              rows_in, rev.front().ranks, bm_rev);
      sel_rev = bm_rev;
    }
    for (int x = 0; x < rows_in; ++x) {
      int j = begin + x;
      if (j == row) continue;
      if (skip_partner != nullptr &&
          (*skip_partner)[static_cast<size_t>(j)]) {
        continue;
      }
      if (may_fwd && (!sel_fwd || ((sel_fwd[x >> 6] >> (x & 63)) & 1))) {
        rows[0] = row;
        rows[1] = j;
        if (violated(rows)) AddViolation({static_cast<int>(k), rows});
      }
      if (may_rev && (!sel_rev || ((sel_rev[x >> 6] >> (x & 63)) & 1))) {
        rows[0] = j;
        rows[1] = row;
        if (violated(rows)) AddViolation({static_cast<int>(k), rows});
      }
    }
  }
  if (zc.blocks_scanned || zc.blocks_skipped) eval_counters::Add(zc);
}

void ViolationIndex::AddViolationsOfRow(int row) {
  for (size_t k = 0; k < sigma_.size(); ++k) ScanRow(k, row, nullptr);
}

void ViolationIndex::ApplyChange(const Cell& cell, Value value) {
  int row = cell.row;
  RemoveViolationsOfRow(row);
  for (size_t k = 0; k < sigma_.size(); ++k) {
    if (std::find(groups_[k].attrs.begin(), groups_[k].attrs.end(),
                  cell.attr) != groups_[k].attrs.end()) {
      GroupErase(k, row);
    }
  }
  relation_.SetValue(cell, std::move(value));
  if (encoded_) {
    encoded_->ApplyChange(row, cell.attr);
    EnsureEvalsCurrent();
  }
  for (size_t k = 0; k < sigma_.size(); ++k) {
    if (std::find(groups_[k].attrs.begin(), groups_[k].attrs.end(),
                  cell.attr) != groups_[k].attrs.end()) {
      GroupInsert(k, row);
    }
  }
  AddViolationsOfRow(row);
}

int ViolationIndex::AppendRowInternal(std::vector<Value> values) {
  int row = relation_.AddRow(std::move(values));
  if (encoded_) encoded_->AppendRow();
  for (size_t k = 0; k < sigma_.size(); ++k) GroupInsert(k, row);
  return row;
}

std::vector<int> ViolationIndex::ApplyBatch(const std::vector<RowEdit>& edits) {
  // Phase 1 — mutate. Every edit updates the working copy, the coded
  // mirror, and the equality-join groups immediately (group keys must be
  // erased under the pre-edit values), but violation re-detection is
  // deferred: a row edited five times is re-scanned once.
  std::vector<int> touched;
  std::vector<char> is_touched(static_cast<size_t>(relation_.num_rows()), 0);
  auto mark = [&](int row) {
    if (row < static_cast<int>(is_touched.size()) &&
        is_touched[static_cast<size_t>(row)]) {
      return;
    }
    if (row >= static_cast<int>(is_touched.size())) {
      is_touched.resize(static_cast<size_t>(row) + 1, 0);
    }
    is_touched[static_cast<size_t>(row)] = 1;
    touched.push_back(row);
    RemoveViolationsOfRow(row);
  };
  for (const RowEdit& e : edits) {
    if (e.insert) {
      mark(AppendRowInternal(e.values));
      continue;
    }
    mark(e.row);
    for (size_t k = 0; k < sigma_.size(); ++k) {
      if (std::find(groups_[k].attrs.begin(), groups_[k].attrs.end(),
                    e.attr) != groups_[k].attrs.end()) {
        GroupErase(k, e.row);
      }
    }
    relation_.SetValue(e.row, e.attr, e.value);
    if (encoded_) encoded_->ApplyChange(e.row, e.attr);
    for (size_t k = 0; k < sigma_.size(); ++k) {
      if (std::find(groups_[k].attrs.begin(), groups_[k].attrs.end(),
                    e.attr) != groups_[k].attrs.end()) {
        GroupInsert(k, e.row);
      }
    }
  }
  // Phase 2 — re-detect. Each touched row is scanned once against the
  // final state; a pair of touched rows is fully covered (both
  // orientations) by whichever of them scans first, so the second skips
  // it instead of duplicating the violation.
  EnsureEvalsCurrent();
  std::sort(touched.begin(), touched.end());
  std::vector<char> scanned(static_cast<size_t>(relation_.num_rows()), 0);
  for (int row : touched) {
    for (size_t k = 0; k < sigma_.size(); ++k) ScanRow(k, row, &scanned);
    scanned[static_cast<size_t>(row)] = 1;
  }
  return touched;
}

std::vector<int> ViolationIndex::RowsWithViolations() const {
  std::vector<int> rows;
  for (const StoredViolation& sv : store_) {
    if (!sv.alive) continue;
    rows.insert(rows.end(), sv.violation.rows.begin(), sv.violation.rows.end());
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

std::vector<Violation> ViolationIndex::CurrentViolations() {
  std::vector<Violation> out;
  out.reserve(alive_count_);
  for (const StoredViolation& sv : store_) {
    if (sv.alive) out.push_back(sv.violation);
  }
  // Deterministic order regardless of maintenance history.
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.constraint_index != b.constraint_index) {
                return a.constraint_index < b.constraint_index;
              }
              return a.rows < b.rows;
            });
  return out;
}

std::vector<Violation> ViolationIndex::ViolationsOf(int k) const {
  std::vector<Violation> out;
  out.reserve(static_cast<size_t>(alive_by_constraint_[k]));
  for (const StoredViolation& sv : store_) {
    if (sv.alive && sv.violation.constraint_index == k) {
      out.push_back(sv.violation);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return a.rows < b.rows;
            });
  return out;
}

bool ViolationIndex::HasViolations() { return alive_count_ > 0; }

}  // namespace cvrepair
