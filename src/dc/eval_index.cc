#include "dc/eval_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <utility>

#include "dc/predicate_space.h"
#include "dc/scan_internal.h"
#include "dc/scan_kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace cvrepair {

namespace eval_counters {
namespace {

// Process-wide totals, registered in the MetricsRegistry under the "eval."
// prefix so metrics.json carries them. Handles are resolved once; the
// relaxed-atomic bulk-add discipline (scans flush local counts, readers
// only look after the scans they measure have returned) is unchanged.
struct Handles {
  MetricCounter* partition_builds;
  MetricCounter* partition_refines;
  MetricCounter* partition_merges;
  MetricCounter* partition_hits;
  MetricCounter* predicate_evals;
  MetricCounter* code_predicate_evals;
  MetricCounter* memo_hits;
  MetricCounter* truncated_scans;
  MetricCounter* blocks_scanned;
  MetricCounter* blocks_skipped;
};

const Handles& H() {
  static const Handles* h = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    Handles* fresh = new Handles();
    fresh->partition_builds = r.GetCounter("eval.partition_builds");
    fresh->partition_refines = r.GetCounter("eval.partition_refines");
    fresh->partition_merges = r.GetCounter("eval.partition_merges");
    fresh->partition_hits = r.GetCounter("eval.partition_hits");
    fresh->predicate_evals = r.GetCounter("eval.predicate_evals");
    fresh->code_predicate_evals = r.GetCounter("eval.code_predicate_evals");
    fresh->memo_hits = r.GetCounter("eval.memo_hits");
    fresh->truncated_scans = r.GetCounter("eval.truncated_scans");
    fresh->blocks_scanned = r.GetCounter("eval.blocks_scanned");
    fresh->blocks_skipped = r.GetCounter("eval.blocks_skipped");
    return fresh;
  }();
  return *h;
}

}  // namespace

EvalCounters Snapshot() {
  const Handles& h = H();
  EvalCounters c;
  c.partition_builds = h.partition_builds->value();
  c.partition_refines = h.partition_refines->value();
  c.partition_merges = h.partition_merges->value();
  c.partition_hits = h.partition_hits->value();
  c.predicate_evals = h.predicate_evals->value();
  c.code_predicate_evals = h.code_predicate_evals->value();
  c.memo_hits = h.memo_hits->value();
  c.truncated_scans = h.truncated_scans->value();
  c.blocks_scanned = h.blocks_scanned->value();
  c.blocks_skipped = h.blocks_skipped->value();
  return c;
}

void Reset() {
  const Handles& h = H();
  h.partition_builds->Reset();
  h.partition_refines->Reset();
  h.partition_merges->Reset();
  h.partition_hits->Reset();
  h.predicate_evals->Reset();
  h.code_predicate_evals->Reset();
  h.memo_hits->Reset();
  h.truncated_scans->Reset();
  h.blocks_scanned->Reset();
  h.blocks_skipped->Reset();
}

void Add(const EvalCounters& d) {
  const Handles& h = H();
  if (d.partition_builds) h.partition_builds->Add(d.partition_builds);
  if (d.partition_refines) h.partition_refines->Add(d.partition_refines);
  if (d.partition_merges) h.partition_merges->Add(d.partition_merges);
  if (d.partition_hits) h.partition_hits->Add(d.partition_hits);
  if (d.predicate_evals) h.predicate_evals->Add(d.predicate_evals);
  if (d.code_predicate_evals)
    h.code_predicate_evals->Add(d.code_predicate_evals);
  if (d.memo_hits) h.memo_hits->Add(d.memo_hits);
  if (d.truncated_scans) h.truncated_scans->Add(d.truncated_scans);
  if (d.blocks_scanned) h.blocks_scanned->Add(d.blocks_scanned);
  if (d.blocks_skipped) h.blocks_skipped->Add(d.blocks_skipped);
  if (Tracer::enabled()) {
    Tracer::AddCounterDelta("eval.partition_builds", d.partition_builds);
    Tracer::AddCounterDelta("eval.partition_refines", d.partition_refines);
    Tracer::AddCounterDelta("eval.partition_merges", d.partition_merges);
    Tracer::AddCounterDelta("eval.partition_hits", d.partition_hits);
    Tracer::AddCounterDelta("eval.predicate_evals", d.predicate_evals);
    Tracer::AddCounterDelta("eval.code_predicate_evals",
                            d.code_predicate_evals);
    Tracer::AddCounterDelta("eval.memo_hits", d.memo_hits);
    Tracer::AddCounterDelta("eval.truncated_scans", d.truncated_scans);
    Tracer::AddCounterDelta("eval.blocks_scanned", d.blocks_scanned);
    Tracer::AddCounterDelta("eval.blocks_skipped", d.blocks_skipped);
  }
}

void AddScan(const EvalCounters& delta, bool truncated) {
  if (!truncated) {
    Add(delta);
    return;
  }
  EvalCounters only_truncation;
  only_truncation.truncated_scans = 1;
  Add(only_truncation);
}

}  // namespace eval_counters

namespace {

using scan_internal::CodeVecHash;
using scan_internal::kMinParallelWork;
using scan_internal::LocalCap;
using scan_internal::MergeShards;
using scan_internal::ShardResult;
using scan_internal::ValueVecHash;

bool IsPartitionPredicate(const Predicate& p) {
  return !p.has_constant() && p.op() == Op::kEq &&
         p.IsSameAttributeAcrossTuples();
}

// The row's key on `attrs`; *usable is false when any value is NULL/fresh
// (such rows never satisfy '=' and are excluded from partitions).
std::vector<Value> KeyOf(const Relation& I, int row,
                         const std::vector<AttrId>& attrs, bool* usable) {
  std::vector<Value> key;
  key.reserve(attrs.size());
  *usable = true;
  for (AttrId a : attrs) {
    const Value& v = I.Get(row, a);
    if (v.is_null() || v.is_fresh()) {
      *usable = false;
      return key;
    }
    key.push_back(v);
  }
  return key;
}

// Code twin of KeyOf: dictionary codes identify exactly the EvalOp
// equality classes, and sentinel codes are negative, so the produced
// groups match the Value-keyed ones block for block.
std::vector<Code> CodeKeyOf(const EncodedRelation& E, int row,
                            const std::vector<AttrId>& attrs, bool* usable) {
  std::vector<Code> key;
  key.reserve(attrs.size());
  *usable = true;
  for (AttrId a : attrs) {
    Code v = E.code(row, a);
    if (v < 0) {
      *usable = false;
      return key;
    }
    key.push_back(v);
  }
  return key;
}

// Counted single-predicate evaluation on the coded columns, attributed to
// the counter matching the evaluator's kind.
bool EvalCounted(const EncodedPredicateEval& ev, const std::vector<int>& rows,
                 EvalCounters* local) {
  if (ev.on_codes()) {
    ++local->code_predicate_evals;
  } else {
    ++local->predicate_evals;
  }
  return ev.Eval(rows);
}

void CanonicalizeBlocks(std::vector<std::vector<int>>* blocks) {
  std::sort(blocks->begin(), blocks->end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.front() < b.front();
            });
}

}  // namespace

EvalIndex::EvalIndex(const Relation& I, const DenialConstraint& base,
                     int64_t memo_budget, const EncodedRelation* encoded)
    : I_(&I),
      E_(encoded),
      base_(base),
      n_(I.num_rows()),
      memo_budget_(memo_budget) {
  assert(!E_ || (&E_->relation() == I_ && E_->in_sync()));
  if (base_.predicates().empty()) return;
  if (base_.NumTupleVars() == 2) {
    base_eq_ = EqualityJoinAttrs(base_.predicates());
    for (const Predicate& p : base_.predicates()) {
      if (!IsPartitionPredicate(p)) memo_preds_.push_back(p);
    }
  } else {
    memo_preds_ = base_.predicates();
  }
  GetOrDerive(base_eq_);
  BuildMemo();
}

void EvalIndex::BuildMemo() {
  if (memo_preds_.empty() ||
      memo_preds_.size() > 32) {
    return;
  }
  TraceSpan span("index/build_memo");
  span.AddArg("memo_preds", static_cast<int64_t>(memo_preds_.size()));
  EvalCounters local;
  std::vector<EncodedPredicateEval> enc;
  if (E_) {
    enc.reserve(memo_preds_.size());
    for (const Predicate& p : memo_preds_) enc.emplace_back(*E_, p);
  }
  // All predicates are evaluated (no short-circuit): the memo answers
  // any subset of them, and the build cost is deterministic.
  auto bits_of = [&](const std::vector<int>& rows) {
    uint32_t bits = 0;
    for (size_t p = 0; p < memo_preds_.size(); ++p) {
      bool holds;
      if (E_) {
        holds = EvalCounted(enc[p], rows, &local);
      } else {
        ++local.predicate_evals;
        holds = memo_preds_[p].Eval(*I_, rows);
      }
      if (holds) bits |= uint32_t{1} << p;
    }
    return bits;
  };
  std::vector<int> rows;
  if (base_.NumTupleVars() == 1) {
    if (static_cast<int64_t>(n_) > memo_budget_) return;
    row_memo_.assign(static_cast<size_t>(n_), 0);
    if (E_ && scan_kernels::BlockScanEnabled()) {
      // Kernel path: constant predicates fill their memo bit one block
      // at a time (zone-skipped blocks keep the bit 0 — the predicate
      // provably holds for no row there); other predicates fall back to
      // the row loop. Bit assignments match bits_of exactly.
      int nb = E_->num_blocks();
      std::vector<uint64_t> bitmap(
          static_cast<size_t>(EncodedRelation::kBlockSize) / 64);
      rows.assign(1, 0);
      for (size_t p = 0; p < memo_preds_.size(); ++p) {
        if (enc[p].is_constant()) {
          scan_kernels::BlockPredicate bp =
              scan_kernels::CompileConstant(enc[p].op(), enc[p].bounds());
          for (int b = 0; b < nb; ++b) {
            if (!scan_kernels::MayMatch(bp, E_->block_meta(enc[p].lhs_attr(), b),
                                        enc[p].ranks())) {
              ++local.blocks_skipped;
              continue;
            }
            ++local.blocks_scanned;
            int rows_in = E_->block_rows(b);
            int begin = b << EncodedRelation::kBlockShift;
            scan_kernels::EvalBlock(bp, E_->block_codes(enc[p].lhs_attr(), b),
                                    rows_in, enc[p].ranks(), bitmap.data());
            local.code_predicate_evals += rows_in;
            for (int x = 0; x < rows_in; ++x) {
              row_memo_[static_cast<size_t>(begin + x)] |=
                  static_cast<uint32_t>((bitmap[x >> 6] >> (x & 63)) & 1)
                  << p;
            }
          }
          continue;
        }
        for (int i = 0; i < n_; ++i) {
          rows[0] = i;
          if (EvalCounted(enc[p], rows, &local)) {
            row_memo_[static_cast<size_t>(i)] |= uint32_t{1} << p;
          }
        }
      }
      row_memo_built_ = true;
      eval_counters::Add(local);
      return;
    }
    rows.assign(1, 0);
    for (int i = 0; i < n_; ++i) {
      rows[0] = i;
      row_memo_[static_cast<size_t>(i)] = bits_of(rows);
    }
    row_memo_built_ = true;
    eval_counters::Add(local);
    return;
  }
  const Partition& base_part = partitions_.at(base_eq_);
  int64_t pairs = 0;
  for (const std::vector<int>& b : base_part.blocks) {
    if (b.size() < 2) continue;
    pairs += static_cast<int64_t>(b.size()) * (static_cast<int64_t>(b.size()) - 1);
  }
  if (pairs > memo_budget_) return;
  pair_memo_.reserve(static_cast<size_t>(pairs));
  rows.assign(2, 0);
  for (const std::vector<int>& b : base_part.blocks) {
    if (b.size() < 2) continue;
    for (int i : b) {
      for (int j : b) {
        if (i == j) continue;
        rows[0] = i;
        rows[1] = j;
        pair_memo_.emplace(PairKey(i, j), bits_of(rows));
      }
    }
  }
  pair_memo_built_ = true;
  eval_counters::Add(local);
}

const std::vector<int>& EvalIndex::NullRows(AttrId attr) {
  auto it = null_rows_.find(attr);
  if (it != null_rows_.end()) return it->second;
  std::vector<int>& rows = null_rows_[attr];
  if (E_) {
    // Blocks whose zone map reports no sentinel hold no NULL/fresh row;
    // the bit is exact (eagerly maintained), not merely conservative.
    int nb = E_->num_blocks();
    for (int b = 0; b < nb; ++b) {
      if (!E_->block_meta(attr, b).has_sentinel) continue;
      const Code* seg = E_->block_codes(attr, b);
      int rows_in = E_->block_rows(b);
      int begin = b << EncodedRelation::kBlockShift;
      for (int x = 0; x < rows_in; ++x) {
        if (seg[x] < 0) rows.push_back(begin + x);
      }
    }
    return rows;
  }
  for (int i = 0; i < n_; ++i) {
    const Value& v = I_->Get(i, attr);
    if (v.is_null() || v.is_fresh()) rows.push_back(i);
  }
  return rows;
}

EvalIndex::Partition EvalIndex::BuildByScan(const std::vector<AttrId>& attrs,
                                            EvalCounters* local) const {
  Partition out;
  if (attrs.empty()) {
    // Trivial partition: one block of every row. Not counted as a build —
    // the plain scan builds no hash partition for join-free constraints
    // either.
    std::vector<int> all(static_cast<size_t>(n_));
    for (int i = 0; i < n_; ++i) all[static_cast<size_t>(i)] = i;
    out.blocks.push_back(std::move(all));
    return out;
  }
  ++local->partition_builds;
  if (E_) {
    if (attrs.size() == 1) {
      // Single-attribute build: bucket densely by code, one storage
      // block's segment at a time (same layout the violation scans use).
      // Codes are 0..dict.size()-1, rows ascend, and the canonical sort
      // erases the bucket-order difference from the hashed build.
      std::vector<std::vector<int>> by_code(
          static_cast<size_t>(E_->dict(attrs[0]).size()));
      int nb = E_->num_blocks();
      for (int b = 0; b < nb; ++b) {
        const Code* seg = E_->block_codes(attrs[0], b);
        int rows_in = E_->block_rows(b);
        int begin = b << EncodedRelation::kBlockShift;
        for (int x = 0; x < rows_in; ++x) {
          if (seg[x] >= 0) {
            by_code[static_cast<size_t>(seg[x])].push_back(begin + x);
          }
        }
      }
      for (std::vector<int>& members : by_code) {
        if (!members.empty()) out.blocks.push_back(std::move(members));
      }
      CanonicalizeBlocks(&out.blocks);
      return out;
    }
    std::unordered_map<std::vector<Code>, std::vector<int>, CodeVecHash>
        buckets;
    for (int i = 0; i < n_; ++i) {
      bool usable = false;
      std::vector<Code> key = CodeKeyOf(*E_, i, attrs, &usable);
      if (usable) buckets[std::move(key)].push_back(i);
    }
    out.blocks.reserve(buckets.size());
    for (auto& [key, members] : buckets) {
      (void)key;
      out.blocks.push_back(std::move(members));
    }
    CanonicalizeBlocks(&out.blocks);
    return out;
  }
  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
      buckets;
  for (int i = 0; i < n_; ++i) {
    bool usable = false;
    std::vector<Value> key = KeyOf(*I_, i, attrs, &usable);
    if (usable) buckets[std::move(key)].push_back(i);
  }
  out.blocks.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    (void)key;
    out.blocks.push_back(std::move(members));
  }
  CanonicalizeBlocks(&out.blocks);
  return out;
}

EvalIndex::Partition EvalIndex::RefineFrom(const Partition& src,
                                           const std::vector<AttrId>& src_attrs,
                                           const std::vector<AttrId>& target) const {
  std::vector<AttrId> added;
  std::set_difference(target.begin(), target.end(), src_attrs.begin(),
                      src_attrs.end(), std::back_inserter(added));
  Partition out;
  if (E_) {
    std::unordered_map<std::vector<Code>, std::vector<int>, CodeVecHash> sub;
    for (const std::vector<int>& block : src.blocks) {
      sub.clear();
      for (int i : block) {
        bool usable = false;
        std::vector<Code> key = CodeKeyOf(*E_, i, added, &usable);
        if (usable) sub[std::move(key)].push_back(i);
      }
      for (auto& [key, members] : sub) {
        (void)key;
        out.blocks.push_back(std::move(members));
      }
    }
    CanonicalizeBlocks(&out.blocks);
    return out;
  }
  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash> sub;
  for (const std::vector<int>& block : src.blocks) {
    sub.clear();
    for (int i : block) {
      bool usable = false;
      std::vector<Value> key = KeyOf(*I_, i, added, &usable);
      // Rows NULL/fresh on an added attribute drop out of the refined
      // partition entirely, exactly as a fresh scan would exclude them.
      if (usable) sub[std::move(key)].push_back(i);
    }
    for (auto& [key, members] : sub) {
      (void)key;
      out.blocks.push_back(std::move(members));
    }
  }
  CanonicalizeBlocks(&out.blocks);
  return out;
}

EvalIndex::Partition EvalIndex::MergeFrom(const Partition& src,
                                          const std::vector<AttrId>& src_attrs,
                                          const std::vector<AttrId>& target) {
  std::vector<AttrId> dropped;
  std::set_difference(src_attrs.begin(), src_attrs.end(), target.begin(),
                      target.end(), std::back_inserter(dropped));
  if (E_) {
    std::unordered_map<std::vector<Code>, std::vector<int>, CodeVecHash>
        groups;
    for (const std::vector<int>& block : src.blocks) {
      bool usable = false;
      std::vector<Code> key = CodeKeyOf(*E_, block.front(), target, &usable);
      std::vector<int>& g = groups[std::move(key)];
      g.insert(g.end(), block.begin(), block.end());
      (void)usable;
    }
    std::vector<bool> recovered(static_cast<size_t>(n_), false);
    for (AttrId a : dropped) {
      for (int r : NullRows(a)) recovered[static_cast<size_t>(r)] = true;
    }
    for (int r = 0; r < n_; ++r) {
      if (!recovered[static_cast<size_t>(r)]) continue;
      bool usable = false;
      std::vector<Code> key = CodeKeyOf(*E_, r, target, &usable);
      if (usable) groups[std::move(key)].push_back(r);
    }
    Partition out;
    out.blocks.reserve(groups.size());
    for (auto& [key, members] : groups) {
      (void)key;
      std::sort(members.begin(), members.end());
      out.blocks.push_back(std::move(members));
    }
    CanonicalizeBlocks(&out.blocks);
    return out;
  }
  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash>
      groups;
  for (const std::vector<int>& block : src.blocks) {
    bool usable = false;
    std::vector<Value> key = KeyOf(*I_, block.front(), target, &usable);
    // Members agree (and are non-NULL) on every src attribute, and
    // target ⊆ src, so the front row's key is the block's key.
    std::vector<int>& g = groups[std::move(key)];
    g.insert(g.end(), block.begin(), block.end());
    (void)usable;
  }
  // Rows absent from src because they are NULL/fresh on a *dropped*
  // attribute may still be valid under the coarser key: recover them.
  std::vector<bool> recovered(static_cast<size_t>(n_), false);
  for (AttrId a : dropped) {
    for (int r : NullRows(a)) recovered[static_cast<size_t>(r)] = true;
  }
  for (int r = 0; r < n_; ++r) {
    if (!recovered[static_cast<size_t>(r)]) continue;
    bool usable = false;
    std::vector<Value> key = KeyOf(*I_, r, target, &usable);
    if (usable) groups[std::move(key)].push_back(r);
  }
  Partition out;
  out.blocks.reserve(groups.size());
  for (auto& [key, members] : groups) {
    (void)key;
    std::sort(members.begin(), members.end());
    out.blocks.push_back(std::move(members));
  }
  CanonicalizeBlocks(&out.blocks);
  return out;
}

const EvalIndex::Partition& EvalIndex::GetOrDerive(
    const std::vector<AttrId>& attrs) {
  auto it = partitions_.find(attrs);
  EvalCounters local;
  if (it != partitions_.end()) {
    ++local.partition_hits;
    eval_counters::Add(local);
    return it->second;
  }
  TraceSpan span("index/derive_partition");
  span.AddArg("attrs", static_cast<int64_t>(attrs.size()));
  if (attrs.empty()) {
    return partitions_.emplace(attrs, BuildByScan(attrs, &local))
        .first->second;
  }
  // Prefer merging from the smallest cached superset (fewest dropped
  // attributes, cheapest NULL recovery); partitions_ is an ordered map, so
  // ties resolve deterministically.
  const std::vector<AttrId>* super_attrs = nullptr;
  const Partition* super = nullptr;
  for (const auto& [cached_attrs, part] : partitions_) {
    if (cached_attrs.size() <= attrs.size()) continue;
    if (std::includes(cached_attrs.begin(), cached_attrs.end(), attrs.begin(),
                      attrs.end())) {
      if (!super_attrs || cached_attrs.size() < super_attrs->size()) {
        super_attrs = &cached_attrs;
        super = &part;
      }
    }
  }
  if (super) {
    ++local.partition_merges;
    Partition merged = MergeFrom(*super, *super_attrs, attrs);
    eval_counters::Add(local);
    return partitions_.emplace(attrs, std::move(merged)).first->second;
  }
  // No cached superset: refine from the partition on attrs ∩ base_eq
  // (derived recursively — it is the base partition, a merge of it, or the
  // trivial partition). Refining from the trivial partition is a full
  // grouping scan and is counted as a build.
  std::vector<AttrId> shared;
  std::set_intersection(attrs.begin(), attrs.end(), base_eq_.begin(),
                        base_eq_.end(), std::back_inserter(shared));
  if (shared.size() == attrs.size()) {
    // attrs ⊆ base_eq with no cached superset: only possible for the very
    // first request (the base partition itself) — a genuine scan.
    Partition built = BuildByScan(attrs, &local);
    eval_counters::Add(local);
    return partitions_.emplace(attrs, std::move(built)).first->second;
  }
  const Partition& coarse = GetOrDerive(shared);
  if (shared.empty()) {
    ++local.partition_builds;
  } else {
    ++local.partition_refines;
  }
  Partition refined = RefineFrom(coarse, shared, attrs);
  eval_counters::Add(local);
  return partitions_.emplace(attrs, std::move(refined)).first->second;
}

void EvalIndex::Prepare(const DenialConstraint& variant) {
  if (variant.predicates().empty()) return;
  if (variant.NumTupleVars() != base_.NumTupleVars()) return;  // fallback path
  if (variant.NumTupleVars() == 1) return;  // row memo needs no per-variant prep
  GetOrDerive(EqualityJoinAttrs(variant.predicates()));
}

void EvalIndex::SplitPredicates(const DenialConstraint& variant,
                                uint32_t* shared_mask,
                                std::vector<const Predicate*>* shared,
                                std::vector<const Predicate*>* delta) const {
  *shared_mask = 0;
  bool two_tuple = base_.NumTupleVars() == 2;
  for (const Predicate& p : variant.predicates()) {
    if (two_tuple && IsPartitionPredicate(p)) continue;  // partition-handled
    auto it = std::find(memo_preds_.begin(), memo_preds_.end(), p);
    if (it != memo_preds_.end()) {
      *shared_mask |= uint32_t{1} << (it - memo_preds_.begin());
      shared->push_back(&p);
    } else {
      delta->push_back(&p);
    }
  }
}

bool EvalIndex::ViolatedViaIndex(
    const std::vector<int>& rows, uint32_t shared_mask,
    const std::vector<const Predicate*>& shared,
    const std::vector<const Predicate*>& delta,
    const std::vector<EncodedPredicateEval>* shared_enc,
    const std::vector<EncodedPredicateEval>* delta_enc,
    EvalCounters* local) const {
  if (shared_mask != 0) {
    bool answered = false;
    if (base_.NumTupleVars() == 1) {
      if (row_memo_built_) {
        ++local->memo_hits;
        if ((row_memo_[static_cast<size_t>(rows[0])] & shared_mask) !=
            shared_mask) {
          return false;
        }
        answered = true;
      }
    } else if (pair_memo_built_) {
      auto it = pair_memo_.find(PairKey(rows[0], rows[1]));
      if (it != pair_memo_.end()) {
        ++local->memo_hits;
        if ((it->second & shared_mask) != shared_mask) return false;
        answered = true;
      }
    }
    if (!answered) {
      if (shared_enc) {
        for (size_t k = 0; k < shared.size(); ++k) {
          if (!EvalCounted((*shared_enc)[k], rows, local)) return false;
        }
      } else {
        for (const Predicate* p : shared) {
          ++local->predicate_evals;
          if (!p->Eval(*I_, rows)) return false;
        }
      }
    }
  }
  if (delta_enc) {
    for (size_t k = 0; k < delta.size(); ++k) {
      if (!EvalCounted((*delta_enc)[k], rows, local)) return false;
    }
  } else {
    for (const Predicate* p : delta) {
      ++local->predicate_evals;
      if (!p->Eval(*I_, rows)) return false;
    }
  }
  return true;
}

std::vector<Violation> EvalIndex::FindViolationsCapped(
    const DenialConstraint& variant, int constraint_index, int64_t cap,
    bool* truncated) const {
  std::vector<Violation> out;
  if (truncated) *truncated = false;
  if (variant.predicates().empty()) return out;
  if (variant.NumTupleVars() != base_.NumTupleVars()) {
    // A variant that dropped to a different arity (e.g. every remaining
    // predicate references one tuple variable) shares no scan structure
    // with the base; defer to the plain detector.
    if (E_) {
      return FindViolationsOfCapped(*E_, variant, constraint_index, cap,
                                    truncated);
    }
    return FindViolationsOfCapped(*I_, variant, constraint_index, cap,
                                  truncated);
  }
  uint32_t shared_mask = 0;
  std::vector<const Predicate*> shared;
  std::vector<const Predicate*> delta;
  SplitPredicates(variant, &shared_mask, &shared, &delta);
  // Code-compiled twins, aligned index-for-index with shared/delta. The
  // evaluators only read the coded columns, so compiling per call (not per
  // pair) keeps this scan valid across concurrent use.
  std::vector<EncodedPredicateEval> shared_enc_store;
  std::vector<EncodedPredicateEval> delta_enc_store;
  const std::vector<EncodedPredicateEval>* shared_enc = nullptr;
  const std::vector<EncodedPredicateEval>* delta_enc = nullptr;
  if (E_) {
    shared_enc_store.reserve(shared.size());
    for (const Predicate* p : shared) shared_enc_store.emplace_back(*E_, *p);
    delta_enc_store.reserve(delta.size());
    for (const Predicate* p : delta) delta_enc_store.emplace_back(*E_, *p);
    shared_enc = &shared_enc_store;
    delta_enc = &delta_enc_store;
  }

  if (variant.NumTupleVars() == 1) {
    TraceSpan span("index/scan_rows");
    // Upfront zone skips from every constant predicate, shared or delta:
    // a block one of them cannot match holds no violating row (sound even
    // for memo-answered predicates — the memo would return the same
    // verdict). Consults are counted here, before sharding, so the totals
    // stay thread-invariant.
    std::vector<char> skip_block;
    if (E_ && scan_kernels::BlockScanEnabled()) {
      struct Zone {
        scan_kernels::BlockPredicate bp;
        const int32_t* ranks;
        AttrId attr;
      };
      std::vector<Zone> zs;
      auto collect = [&](const std::vector<EncodedPredicateEval>& v) {
        for (const EncodedPredicateEval& pe : v) {
          if (pe.is_constant()) {
            zs.push_back({scan_kernels::CompileConstant(pe.op(), pe.bounds()),
                          pe.ranks(), pe.lhs_attr()});
          }
        }
      };
      collect(shared_enc_store);
      collect(delta_enc_store);
      if (!zs.empty()) {
        int nb = E_->num_blocks();
        skip_block.assign(static_cast<size_t>(nb), 0);
        EvalCounters zc;
        for (int b = 0; b < nb; ++b) {
          bool may = true;
          for (const Zone& z : zs) {
            if (!scan_kernels::MayMatch(z.bp, E_->block_meta(z.attr, b),
                                        z.ranks)) {
              may = false;
              break;
            }
          }
          skip_block[static_cast<size_t>(b)] = !may;
          if (may) {
            ++zc.blocks_scanned;
          } else {
            ++zc.blocks_skipped;
          }
        }
        eval_counters::Add(zc);
      }
    }
    auto row_skipped = [&](int i) {
      return !skip_block.empty() &&
             skip_block[static_cast<size_t>(i >> EncodedRelation::kBlockShift)];
    };
    int threads = ThreadPool::EffectiveThreads();
    if (threads > 1 && n_ >= kMinParallelWork) {
      int64_t num_shards =
          std::min<int64_t>(n_, static_cast<int64_t>(threads) * 4);
      span.AddArg("shards", num_shards);
      std::vector<ShardResult> results(static_cast<size_t>(num_shards));
      int64_t local_cap = LocalCap(cap);
      int64_t per = n_ / num_shards;
      int64_t extra = n_ % num_shards;
      ThreadPool::ParallelFor(num_shards, [&](int64_t s) {
        int64_t begin = s * per + std::min(s, extra);
        int64_t end = begin + per + (s < extra ? 1 : 0);
        std::vector<int> rows(1);
        ShardResult& result = results[static_cast<size_t>(s)];
        for (int i = static_cast<int>(begin); i < static_cast<int>(end); ++i) {
          if (row_skipped(i)) continue;
          rows[0] = i;
          if (ViolatedViaIndex(rows, shared_mask, shared, delta, shared_enc,
                               delta_enc, &result.counters)) {
            if (static_cast<int64_t>(result.found.size()) >= local_cap) break;
            result.found.push_back({constraint_index, rows});
          }
        }
      });
      MergeShards(results, cap, &out, truncated);
      return out;
    }
    std::vector<int> rows(1);
    EvalCounters local;
    bool hit_cap = false;
    for (int i = 0; i < n_; ++i) {
      if (row_skipped(i)) continue;
      rows[0] = i;
      if (ViolatedViaIndex(rows, shared_mask, shared, delta, shared_enc,
                           delta_enc, &local)) {
        if (static_cast<int64_t>(out.size()) >= cap) {
          if (truncated) *truncated = true;
          hit_cap = true;
          break;
        }
        out.push_back({constraint_index, rows});
      }
    }
    eval_counters::AddScan(local, hit_cap);
    return out;
  }

  std::vector<AttrId> eq = EqualityJoinAttrs(variant.predicates());
  auto part_it = partitions_.find(eq);
  if (part_it == partitions_.end()) {
    // Prepare() was not called for this signature; stay correct.
    if (E_) {
      return FindViolationsOfCapped(*E_, variant, constraint_index, cap,
                                    truncated);
    }
    return FindViolationsOfCapped(*I_, variant, constraint_index, cap,
                                  truncated);
  }
  const Partition& part = part_it->second;

  // From here on the scan mirrors FindPairViolations block for block: same
  // block order (sorted by first member), same shard split, same local
  // caps, same merge — only the per-pair verdict comes from the index.
  std::vector<const std::vector<int>*> blocks;
  int64_t work = 0;
  for (const std::vector<int>& members : part.blocks) {
    if (members.size() < 2) continue;
    blocks.push_back(&members);
    work += static_cast<int64_t>(members.size()) * members.size();
  }
  auto enumerate_block = [&](const std::vector<int>& members, int64_t block_cap,
                             std::vector<int>* rows,
                             std::vector<Violation>* found,
                             EvalCounters* local) {
    for (int i : members) {
      for (int j : members) {
        if (i == j) continue;
        (*rows)[0] = i;
        (*rows)[1] = j;
        if (ViolatedViaIndex(*rows, shared_mask, shared, delta, shared_enc,
                             delta_enc, local)) {
          if (static_cast<int64_t>(found->size()) >= block_cap) return false;
          found->push_back({constraint_index, *rows});
        }
      }
    }
    return true;
  };
  TraceSpan span("index/scan_join_blocks");
  span.AddArg("blocks", static_cast<int64_t>(blocks.size()));
  int threads = ThreadPool::EffectiveThreads();
  if (threads > 1 && blocks.size() > 1 && work >= kMinParallelWork) {
    int64_t num_shards = std::min<int64_t>(
        static_cast<int64_t>(blocks.size()), static_cast<int64_t>(threads) * 4);
    std::vector<size_t> shard_begin;
    int64_t per_shard = (work + num_shards - 1) / num_shards;
    int64_t acc = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
      if (shard_begin.empty() || acc >= per_shard) {
        shard_begin.push_back(b);
        acc = 0;
      }
      acc += static_cast<int64_t>(blocks[b]->size()) * blocks[b]->size();
    }
    shard_begin.push_back(blocks.size());
    size_t shards = shard_begin.size() - 1;
    span.AddArg("shards", static_cast<int64_t>(shards));
    std::vector<ShardResult> results(shards);
    int64_t local_cap = LocalCap(cap);
    ThreadPool::ParallelFor(static_cast<int64_t>(shards), [&](int64_t s) {
      std::vector<int> rows(2);
      for (size_t b = shard_begin[s]; b < shard_begin[s + 1]; ++b) {
        if (!enumerate_block(*blocks[b], local_cap, &rows, &results[s].found,
                             &results[s].counters)) {
          break;
        }
      }
    });
    MergeShards(results, cap, &out, truncated);
    return out;
  }
  std::vector<int> rows(2);
  EvalCounters local;
  bool hit_cap = false;
  for (const std::vector<int>* members : blocks) {
    if (!enumerate_block(*members, cap, &rows, &out, &local)) {
      if (truncated) *truncated = true;
      hit_cap = true;
      break;
    }
  }
  eval_counters::AddScan(local, hit_cap);
  return out;
}

}  // namespace cvrepair
