#ifndef CVREPAIR_DC_INCREMENTAL_H_
#define CVREPAIR_DC_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dc/violation.h"
#include "relation/encoded.h"

namespace cvrepair {

/// One edit of a streaming batch (repair/streaming.h): either an update
/// of one existing cell or the insertion of a whole new tuple. Updates
/// address rows by their index in the instance *at apply time* — inserts
/// earlier in the same batch extend the index space, so an update may
/// target a row inserted by the same batch.
struct RowEdit {
  static RowEdit Update(int row, AttrId attr, Value value) {
    RowEdit e;
    e.row = row;
    e.attr = attr;
    e.value = std::move(value);
    return e;
  }
  static RowEdit Insert(std::vector<Value> values) {
    RowEdit e;
    e.insert = true;
    e.values = std::move(values);
    return e;
  }

  bool insert = false;
  // Update fields.
  int row = 0;
  AttrId attr = 0;
  Value value;
  // Insert fields: one value per attribute.
  std::vector<Value> values;
};

/// Incrementally maintained violation set: instead of re-scanning the
/// instance after every repair round (O(|I|^ell)), only the tuple lists
/// touching a changed row are re-evaluated. Used by the multi-round
/// baselines (Holistic, Greedy), where each round changes a small set of
/// cells.
///
/// The index owns a working copy of the instance; all modifications must
/// go through ApplyChange so the equality-join groups and the violation
/// lists stay consistent.
class ViolationIndex {
 public:
  /// Builds the initial violation set for (I, sigma). With `use_encoded`
  /// (the default) the index keeps a dictionary-coded mirror of its
  /// working copy and re-checks rows through integer-code evaluators;
  /// violations are identical either way.
  ViolationIndex(const Relation& I, const ConstraintSet& sigma,
                 bool use_encoded = true);

  // The coded mirror points into relation_, so the index is pinned.
  ViolationIndex(const ViolationIndex&) = delete;
  ViolationIndex& operator=(const ViolationIndex&) = delete;

  const Relation& relation() const { return relation_; }
  const ConstraintSet& sigma() const { return sigma_; }

  /// The dictionary-coded mirror of the working copy, or nullptr when the
  /// index was built with use_encoded off. Always in_sync() outside of
  /// ApplyChange/ApplyBatch — consumers (suspect scans, component solves)
  /// may run encoded fast paths against it between mutations.
  const EncodedRelation* encoded() const {
    return encoded_ ? &*encoded_ : nullptr;
  }

  /// Applies one cell modification and delta-maintains the violations.
  void ApplyChange(const Cell& cell, Value value);

  /// Applies a whole batch of updates/inserts and delta-maintains the
  /// violations, returning the touched row ids (sorted, deduplicated;
  /// inserts report their new index). The final violation set is exactly
  /// what per-edit ApplyChange calls would produce, but each touched row
  /// is re-scanned once after all edits instead of once per edit, and a
  /// tuple list between two touched rows is re-checked from only one of
  /// them. Empty batches, repeated edits of one cell (last wins), and
  /// no-op edits are all legal.
  std::vector<int> ApplyBatch(const std::vector<RowEdit>& edits);

  /// Distinct rows involved in at least one live violation (sorted). With
  /// the instance violation-free before a batch, this is the closure of
  /// the batch's dirty region: touched rows plus every row sharing a
  /// violation with them.
  std::vector<int> RowsWithViolations() const;

  /// Current violations (compacted on demand).
  std::vector<Violation> CurrentViolations();

  /// Live violations of constraint `k`, sorted by rows (canonical order).
  std::vector<Violation> ViolationsOf(int k) const;

  bool HasViolations();

  /// Number of live violations of constraint `k`.
  int64_t ViolationCountOf(int k) const { return alive_by_constraint_[k]; }

  /// Mutation stamp of constraint `k`'s violation set: bumped whenever a
  /// violation of `k` is added or removed. Bound maintainers (streaming
  /// VariantTracker) recompute δ_l/δ_u for exactly the constraints whose
  /// stamp moved since they last looked.
  int64_t ViolationEpochOf(int k) const { return violation_epochs_[k]; }

  /// Rows re-evaluated since construction — the work metric that shows
  /// the incremental advantage over full re-detection.
  int64_t rows_rechecked() const { return rows_rechecked_; }

  /// Per-constraint evaluator (re)compilations since construction. Keyed
  /// on the per-attribute epochs the evaluators actually cache: a repair
  /// that grows attribute X's dictionary recompiles only the constraints
  /// reading X, not the whole set.
  int64_t evals_recompiled() const { return evals_recompiled_; }

 private:
  struct StoredViolation {
    Violation violation;
    bool alive = false;
  };

  void RemoveViolationsOfRow(int row);
  void AddViolationsOfRow(int row);
  void AddViolation(Violation v);
  // Re-evaluates all tuple lists involving `row` for constraint k and adds
  // the violating ones. `skip_partner`, when non-null, suppresses pairs
  // whose other row is marked — the batch path sets it for touched rows
  // already re-scanned, whose scan covered both orientations of the pair.
  void ScanRow(size_t k, int row, const std::vector<char>* skip_partner);
  // Appends one tuple (values.size() == num_attributes) to the working
  // copy and every derived structure except the violation lists; the
  // caller re-scans the new row. Returns the new row index.
  int AppendRowInternal(std::vector<Value> values);

  // Per-constraint equality-join group index (key values -> rows).
  struct GroupIndex {
    std::vector<AttrId> attrs;  // empty = no equality join (full scans)
    std::unordered_map<size_t, std::vector<int>> rows_by_hash;
  };
  size_t GroupHash(size_t k, int row, bool* usable) const;
  void GroupInsert(size_t k, int row);
  void GroupErase(size_t k, int row);
  // Recompiles exactly the per-constraint code evaluators whose cached
  // state went stale (valid_for: the structural epoch plus the epochs of
  // the attributes each predicate reads) — not all of them.
  void EnsureEvalsCurrent();

  Relation relation_;
  ConstraintSet sigma_;
  std::optional<EncodedRelation> encoded_;  // coded mirror of relation_
  std::vector<EncodedConstraintEval> evals_;
  bool evals_built_ = false;
  int64_t evals_recompiled_ = 0;
  std::vector<GroupIndex> groups_;
  std::vector<StoredViolation> store_;
  std::vector<int> free_slots_;
  std::unordered_map<int, std::vector<int>> by_row_;  // row -> store ids
  int alive_count_ = 0;
  std::vector<int64_t> alive_by_constraint_;   // per sigma_ index
  std::vector<int64_t> violation_epochs_;      // per sigma_ index
  int64_t rows_rechecked_ = 0;
};

}  // namespace cvrepair

#endif  // CVREPAIR_DC_INCREMENTAL_H_
