#ifndef CVREPAIR_DC_INCREMENTAL_H_
#define CVREPAIR_DC_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dc/violation.h"
#include "relation/encoded.h"

namespace cvrepair {

/// Incrementally maintained violation set: instead of re-scanning the
/// instance after every repair round (O(|I|^ell)), only the tuple lists
/// touching a changed row are re-evaluated. Used by the multi-round
/// baselines (Holistic, Greedy), where each round changes a small set of
/// cells.
///
/// The index owns a working copy of the instance; all modifications must
/// go through ApplyChange so the equality-join groups and the violation
/// lists stay consistent.
class ViolationIndex {
 public:
  /// Builds the initial violation set for (I, sigma). With `use_encoded`
  /// (the default) the index keeps a dictionary-coded mirror of its
  /// working copy and re-checks rows through integer-code evaluators;
  /// violations are identical either way.
  ViolationIndex(const Relation& I, const ConstraintSet& sigma,
                 bool use_encoded = true);

  // The coded mirror points into relation_, so the index is pinned.
  ViolationIndex(const ViolationIndex&) = delete;
  ViolationIndex& operator=(const ViolationIndex&) = delete;

  const Relation& relation() const { return relation_; }
  const ConstraintSet& sigma() const { return sigma_; }

  /// Applies one cell modification and delta-maintains the violations.
  void ApplyChange(const Cell& cell, Value value);

  /// Current violations (compacted on demand).
  std::vector<Violation> CurrentViolations();

  bool HasViolations();

  /// Rows re-evaluated since construction — the work metric that shows
  /// the incremental advantage over full re-detection.
  int64_t rows_rechecked() const { return rows_rechecked_; }

 private:
  struct StoredViolation {
    Violation violation;
    bool alive = false;
  };

  void RemoveViolationsOfRow(int row);
  void AddViolationsOfRow(int row);
  void AddViolation(Violation v);
  // Re-evaluates all tuple lists involving `row` for constraint k and adds
  // the violating ones.
  void ScanRow(size_t k, int row);

  // Per-constraint equality-join group index (key values -> rows).
  struct GroupIndex {
    std::vector<AttrId> attrs;  // empty = no equality join (full scans)
    std::unordered_map<size_t, std::vector<int>> rows_by_hash;
  };
  size_t GroupHash(size_t k, int row, bool* usable) const;
  void GroupInsert(size_t k, int row);
  void GroupErase(size_t k, int row);
  // Recompiles the per-constraint code evaluators if a dictionary grew
  // since they were built (growth can reallocate the rank arrays).
  void EnsureEvalsCurrent();

  Relation relation_;
  ConstraintSet sigma_;
  std::optional<EncodedRelation> encoded_;  // coded mirror of relation_
  std::vector<EncodedConstraintEval> evals_;
  bool evals_built_ = false;
  uint64_t evals_epoch_ = 0;
  std::vector<GroupIndex> groups_;
  std::vector<StoredViolation> store_;
  std::vector<int> free_slots_;
  std::unordered_map<int, std::vector<int>> by_row_;  // row -> store ids
  int alive_count_ = 0;
  int64_t rows_rechecked_ = 0;
};

}  // namespace cvrepair

#endif  // CVREPAIR_DC_INCREMENTAL_H_
