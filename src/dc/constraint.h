#ifndef CVREPAIR_DC_CONSTRAINT_H_
#define CVREPAIR_DC_CONSTRAINT_H_

#include <string>
#include <vector>

#include "dc/predicate.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace cvrepair {

/// A denial constraint φ: ∀ t_alpha, t_beta ∈ R, ¬(P_1 ∧ ... ∧ P_m).
///
/// A tuple list satisfies φ if at least one predicate is false; it is a
/// *violation* if every predicate is true (Section 2). Predicates are kept
/// in a sorted canonical order so that structural equality is order
/// independent.
class DenialConstraint {
 public:
  DenialConstraint() = default;
  explicit DenialConstraint(std::vector<Predicate> predicates,
                            std::string name = "");

  /// Builds the DC encoding of the FD lhs -> rhs:
  /// ¬(∧_{X in lhs} t0.X = t1.X  ∧  t0.rhs != t1.rhs).
  static DenialConstraint FromFd(const std::vector<AttrId>& lhs, AttrId rhs,
                                 std::string name = "");

  const std::vector<Predicate>& predicates() const { return preds_; }
  int size() const { return static_cast<int>(preds_.size()); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of tuple variables (1 for linear/single-tuple DCs, 2 for FDs
  /// and binary DCs).
  int NumTupleVars() const { return num_tuple_vars_; }

  /// Degree Deg(φ): the number of distinct symbolic cells t_x.A referenced
  /// by the predicates (Section 3.2.1).
  int Degree() const;

  /// True iff the tuple list (rows[i] instantiates t_i) satisfies φ.
  bool IsSatisfied(const Relation& I, const std::vector<int>& rows) const {
    return !IsViolated(I, rows);
  }

  /// True iff every predicate holds on the tuple list, i.e., the list is a
  /// violation of φ.
  bool IsViolated(const Relation& I, const std::vector<int>& rows) const {
    for (const Predicate& p : preds_) {
      if (!p.Eval(I, rows)) return false;
    }
    return !preds_.empty();
  }

  /// True iff φ can never be violated regardless of data: it contains two
  /// predicates on the same operands with contradicting operators, or a
  /// predicate comparing a cell with itself under an irreflexive operator
  /// (Section 2.2.1).
  bool IsTrivial() const;

  /// True iff `this` contains a predicate structurally equal to `p`.
  bool Contains(const Predicate& p) const;

  /// True iff `this` contains a predicate on the same operands as `p`
  /// (any operator).
  bool ContainsOperands(const Predicate& p) const;

  /// Returns a copy with `p` added (re-canonicalized).
  DenialConstraint WithPredicate(const Predicate& p) const;

  /// Returns a copy with the predicate at `index` removed.
  DenialConstraint WithoutPredicate(int index) const;

  /// Definition 3: true iff `refined` refines `this` (this ⪯ refined):
  /// every predicate P: x φ1 y of `this` has some Q: x φ2 y in `refined`
  /// on the same operands with φ1 ∈ Imp(φ2).
  bool IsRefinedBy(const DenialConstraint& refined) const;

  /// e.g. "not(t0.Name=t1.Name & t0.CP!=t1.CP)".
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const DenialConstraint& a, const DenialConstraint& b) {
    return a.preds_ == b.preds_;
  }
  friend bool operator!=(const DenialConstraint& a, const DenialConstraint& b) {
    return !(a == b);
  }
  friend bool operator<(const DenialConstraint& a, const DenialConstraint& b) {
    return a.preds_ < b.preds_;
  }

 private:
  void Canonicalize();

  std::vector<Predicate> preds_;
  std::string name_;
  int num_tuple_vars_ = 1;
};

/// A constraint set Σ.
using ConstraintSet = std::vector<DenialConstraint>;

/// Deg(Σ) = max over φ in Σ of Deg(φ) (Section 3.2.2).
int Degree(const ConstraintSet& sigma);

/// Max number of tuple variables ell over the set.
int MaxTupleVars(const ConstraintSet& sigma);

/// Definition 4: Σ1 ⪯ Σ2 — every φ2 in Σ2 refines some φ1 in Σ1.
bool IsRefinedBy(const ConstraintSet& sigma1, const ConstraintSet& sigma2);

/// Renders every constraint on its own line.
std::string ToString(const ConstraintSet& sigma, const Schema& schema);

}  // namespace cvrepair

#endif  // CVREPAIR_DC_CONSTRAINT_H_
