#ifndef CVREPAIR_DC_PREDICATE_H_
#define CVREPAIR_DC_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "dc/op.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace cvrepair {

/// Index of a tuple variable within a denial constraint: 0 = t_alpha,
/// 1 = t_beta. Constraints in this library involve at most two tuple
/// variables (ell <= 2, covering FDs, CFDs, and linear/binary DCs, the
/// classes the paper evaluates).
using TupleVar = int;

/// One side of a predicate that references a cell: t_x.A.
struct CellRef {
  TupleVar tuple = 0;
  AttrId attr = 0;

  friend bool operator==(const CellRef& a, const CellRef& b) {
    return a.tuple == b.tuple && a.attr == b.attr;
  }
  friend bool operator<(const CellRef& a, const CellRef& b) {
    return a.tuple != b.tuple ? a.tuple < b.tuple : a.attr < b.attr;
  }
};

/// A denial-constraint predicate P: either `t_x.A op t_y.B` (two-cell) or
/// `t_x.A op c` (cell-constant). Section 2 of the paper.
class Predicate {
 public:
  Predicate() = default;

  /// Builds a two-cell predicate t_{lt}.la op t_{rt}.ra.
  static Predicate TwoCell(TupleVar lt, AttrId la, Op op, TupleVar rt,
                           AttrId ra) {
    Predicate p;
    p.lhs_ = {lt, la};
    p.op_ = op;
    p.rhs_cell_ = CellRef{rt, ra};
    return p;
  }

  /// Builds a cell-constant predicate t_{lt}.la op c.
  static Predicate WithConstant(TupleVar lt, AttrId la, Op op, Value c) {
    Predicate p;
    p.lhs_ = {lt, la};
    p.op_ = op;
    p.constant_ = std::move(c);
    return p;
  }

  const CellRef& lhs() const { return lhs_; }
  Op op() const { return op_; }
  bool has_constant() const { return constant_.has_value(); }
  const Value& constant() const { return *constant_; }
  const CellRef& rhs_cell() const { return *rhs_cell_; }

  /// True for the common "binary DC" shape t_alpha.A op t_beta.A used by
  /// FDs and by every predicate the variant generator may insert.
  bool IsSameAttributeAcrossTuples() const {
    return rhs_cell_.has_value() && rhs_cell_->attr == lhs_.attr &&
           rhs_cell_->tuple != lhs_.tuple;
  }

  /// True if both sides refer to the same operand pair (same cells, or same
  /// cell and equal constant), irrespective of the operator. Predicates on
  /// the same operands are the ones Imp/Contradicts reason about.
  bool SameOperands(const Predicate& other) const;

  /// Evaluates the predicate on the tuple list (rows[0] = t_alpha,
  /// rows[1] = t_beta) over instance `I`.
  bool Eval(const Relation& I, const std::vector<int>& rows) const;

  /// The distinct cells this predicate touches when instantiated on `rows`.
  std::vector<Cell> Cells(const std::vector<int>& rows) const;

  /// Highest tuple-variable index used (0 or 1).
  TupleVar MaxTupleVar() const {
    TupleVar m = lhs_.tuple;
    if (rhs_cell_ && rhs_cell_->tuple > m) m = rhs_cell_->tuple;
    return m;
  }

  /// Returns a copy with the operator replaced.
  Predicate WithOp(Op op) const {
    Predicate p = *this;
    p.op_ = op;
    return p;
  }

  /// e.g. "t0.Income>t1.Income" or "t0.Age>=18".
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    if (!(a.lhs_ == b.lhs_) || a.op_ != b.op_) return false;
    if (a.constant_.has_value() != b.constant_.has_value()) return false;
    if (a.constant_ && !(*a.constant_ == *b.constant_)) return false;
    if (a.rhs_cell_.has_value() != b.rhs_cell_.has_value()) return false;
    if (a.rhs_cell_ && !(*a.rhs_cell_ == *b.rhs_cell_)) return false;
    return true;
  }
  friend bool operator!=(const Predicate& a, const Predicate& b) {
    return !(a == b);
  }
  friend bool operator<(const Predicate& a, const Predicate& b);

 private:
  CellRef lhs_;
  Op op_ = Op::kEq;
  std::optional<CellRef> rhs_cell_;
  std::optional<Value> constant_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_DC_PREDICATE_H_
