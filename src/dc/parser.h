#ifndef CVREPAIR_DC_PARSER_H_
#define CVREPAIR_DC_PARSER_H_

#include <optional>
#include <string>

#include "dc/constraint.h"
#include "relation/schema.h"

namespace cvrepair {

/// Result of parsing one constraint: the constraint or an error message.
struct ParseConstraintResult {
  std::optional<DenialConstraint> constraint;
  std::string error;

  bool ok() const { return constraint.has_value(); }
};

/// Parses a denial constraint in the textual form produced by
/// DenialConstraint::ToString, e.g.
///
///   not(t0.Name=t1.Name & t0.CP!=t1.CP)
///   not(t0.Income>t1.Income & t0.Tax<=t1.Tax)
///   not(t0.Age<18)
///
/// Operands are `t<k>.<AttrName>` or a constant (quoted string, or a
/// number matching the attribute's type). Operators: = != < > <= >= (and
/// their Unicode variants). An optional `name:` prefix names the DC.
///
/// Also accepts functional dependencies in the form
///
///   A,B -> C
///
/// which desugars to not(t0.A=t1.A & t0.B=t1.B & t0.C!=t1.C).
ParseConstraintResult ParseConstraint(const Schema& schema,
                                      const std::string& text);

/// Parses a newline- or semicolon-separated list of constraints; empty
/// lines and lines starting with '#' are skipped. On error, `error`
/// identifies the offending line.
struct ParseSetResult {
  std::optional<ConstraintSet> constraints;
  std::string error;

  bool ok() const { return constraints.has_value(); }
};
ParseSetResult ParseConstraintSet(const Schema& schema,
                                  const std::string& text);

}  // namespace cvrepair

#endif  // CVREPAIR_DC_PARSER_H_
