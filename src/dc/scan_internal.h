#ifndef CVREPAIR_DC_SCAN_INTERNAL_H_
#define CVREPAIR_DC_SCAN_INTERNAL_H_

// Shared plumbing of the capped violation scans, used by both the plain
// detector (dc/violation.cc) and the shared evaluation index
// (dc/eval_index.cc). Keeping the shard/merge mechanics in one place is
// what guarantees the two paths stay bit-identical: they split work and
// trim capped prefixes with literally the same code.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "dc/eval_index.h"
#include "dc/violation.h"
#include "relation/value.h"

namespace cvrepair {
namespace scan_internal {

// Minimum number of candidate checks (rows or pairs) before a scan fans
// out to the pool; below this the shard bookkeeping costs more than the
// scan.
constexpr int64_t kMinParallelWork = 1 << 13;

struct ValueVecHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t seed = 0x345678;
    for (const Value& v : vs) {
      seed = seed * 1000003 ^ v.Hash();
    }
    return seed;
  }
};

// Hash for dictionary-code join keys (the encoded scans' counterpart of
// ValueVecHash). Bucket contents are canonicalized before enumeration, so
// the two hashes producing different bucket orders cannot affect results.
struct CodeVecHash {
  size_t operator()(const std::vector<int32_t>& vs) const {
    size_t seed = 0x345678;
    for (int32_t v : vs) {
      seed = seed * 1000003 ^ static_cast<uint32_t>(v);
    }
    return seed;
  }
};

// Output of one shard of a partitioned scan. Shards collect at most
// cap + 1 violations each: the merge keeps the first `cap` in shard order,
// and any surplus anywhere proves the (cap+1)-th violation exists, which
// is exactly the serial `truncated` condition. Eval counters stay in the
// shard (not flushed from inside the ParallelFor body): whether they count
// at all depends on the truncation verdict, which only the merge knows.
struct ShardResult {
  std::vector<Violation> found;
  EvalCounters counters;
};

inline int64_t LocalCap(int64_t cap) {
  return cap == std::numeric_limits<int64_t>::max() ? cap : cap + 1;
}

// Concatenates shard outputs in shard order, trimming to `cap`. Produces
// bit-identical output to the serial scan the shards were split from: the
// shards cover the serial iteration order in contiguous, in-order pieces.
// `truncated` flips exactly when the serial scan would have flipped it —
// total > cap means a (cap+1)-th violation exists; total == cap means the
// scan finished exactly at the cap and is complete. Shard counters are
// flushed here through the same truncation gate as the serial scans
// (eval_counters::AddScan), so the process totals cannot depend on how
// far individual shards over-scanned.
inline void MergeShards(std::vector<ShardResult>& shards, int64_t cap,
                        std::vector<Violation>* out, bool* truncated) {
  int64_t total = 0;
  EvalCounters summed;
  for (const ShardResult& s : shards) {
    total += static_cast<int64_t>(s.found.size());
    summed += s.counters;
  }
  bool hit_cap = total > cap;
  eval_counters::AddScan(summed, hit_cap);
  if (truncated && hit_cap) *truncated = true;
  out->reserve(out->size() + static_cast<size_t>(std::min(total, cap)));
  for (ShardResult& s : shards) {
    for (Violation& v : s.found) {
      if (static_cast<int64_t>(out->size()) >= cap) return;
      out->push_back(std::move(v));
    }
  }
}

}  // namespace scan_internal
}  // namespace cvrepair

#endif  // CVREPAIR_DC_SCAN_INTERNAL_H_
