#ifndef CVREPAIR_DC_EVAL_INDEX_H_
#define CVREPAIR_DC_EVAL_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "dc/constraint.h"
#include "dc/violation.h"
#include "relation/encoded.h"
#include "relation/relation.h"

namespace cvrepair {

/// Process-wide evaluation counters, shared by the plain violation scans
/// (dc/violation.cc) and the shared evaluation index below. They exist to
/// make the index's savings *checkable*: tests and the CLI compare the
/// partition-build and predicate-evaluation totals of an indexed run
/// against the unshared run of the same workload.
struct EvalCounters {
  int64_t partition_builds = 0;   ///< hash partitions built by a full scan
  int64_t partition_refines = 0;  ///< partitions derived by splitting blocks
  int64_t partition_merges = 0;   ///< partitions derived by fusing blocks
  int64_t partition_hits = 0;     ///< partition requests answered from cache
  int64_t predicate_evals = 0;    ///< single-predicate evals on boxed Values
  int64_t code_predicate_evals = 0;  ///< single-predicate evals on int codes
  int64_t memo_hits = 0;          ///< tuple-list verdicts answered by a memo
  int64_t truncated_scans = 0;    ///< capped scans that hit their cap
  int64_t blocks_scanned = 0;     ///< zone-map consults that ran the block
  int64_t blocks_skipped = 0;     ///< zone-map consults that pruned it

  EvalCounters& operator+=(const EvalCounters& o) {
    partition_builds += o.partition_builds;
    partition_refines += o.partition_refines;
    partition_merges += o.partition_merges;
    partition_hits += o.partition_hits;
    predicate_evals += o.predicate_evals;
    code_predicate_evals += o.code_predicate_evals;
    memo_hits += o.memo_hits;
    truncated_scans += o.truncated_scans;
    blocks_scanned += o.blocks_scanned;
    blocks_skipped += o.blocks_skipped;
    return *this;
  }
  EvalCounters& operator-=(const EvalCounters& o) {
    partition_builds -= o.partition_builds;
    partition_refines -= o.partition_refines;
    partition_merges -= o.partition_merges;
    partition_hits -= o.partition_hits;
    predicate_evals -= o.predicate_evals;
    code_predicate_evals -= o.code_predicate_evals;
    memo_hits -= o.memo_hits;
    truncated_scans -= o.truncated_scans;
    blocks_scanned -= o.blocks_scanned;
    blocks_skipped -= o.blocks_skipped;
    return *this;
  }
  friend EvalCounters operator+(EvalCounters a, const EvalCounters& b) {
    a += b;
    return a;
  }
  friend EvalCounters operator-(EvalCounters a, const EvalCounters& b) {
    a -= b;
    return a;
  }
};

namespace eval_counters {

/// Current process-wide totals. Exact once the scans being measured have
/// returned (counters live in the MetricsRegistry as relaxed atomics,
/// bulk-flushed per scan, so the hot loops never touch an atomic).
EvalCounters Snapshot();

/// Zeroes the totals (tests only; scans never read them).
void Reset();

/// Bulk-adds a scan's locally accumulated counts.
void Add(const EvalCounters& delta);

/// Flushes a finished capped scan's counts. Truncated scans contribute
/// only `truncated_scans` (their eval counts are discarded): how much a
/// scan over-scans past its cap depends on how it was sharded, so keeping
/// those evals would make the totals vary with --threads. Whether the scan
/// truncates does *not* depend on sharding (the cap-th surplus violation
/// either exists or not), so what remains is a deterministic function of
/// the workload — the property the metrics.json CI contract rests on.
void AddScan(const EvalCounters& delta, bool truncated);

}  // namespace eval_counters

/// A shared evaluation index: built once per *base* constraint φ, reused
/// by every variant φ' of it (Algorithm 1 enumerates hundreds of variants
/// that differ from φ by a handful of predicates; re-running violation
/// detection from scratch on each re-pays work the base already paid —
/// the same sharing argument as the paper's §3.2 bound pruning and §4.2
/// materialized solutions, applied one level down, to detection itself).
///
/// Three memoized structures:
///
///  1. **Hash partitions keyed by the equality-join attribute set.** The
///     base's partition is built once; a variant that inserts equality
///     predicates gets its partition by *refining* blocks (splitting on
///     the new attributes), a variant that deletes them by *merging*
///     blocks (projecting keys and re-admitting rows that were excluded
///     for NULL/fresh values on the dropped attributes) — never by
///     re-scanning the relation.
///  2. **A per-tuple-list verdict memo** for the base's non-partition
///     predicates: each candidate pair (or row, for 1-tuple constraints)
///     stores one bit per predicate. A variant then only evaluates its
///     *delta* predicates — the ones not shared with the base.
///  3. The per-signature lower-bound memo lives one level up (the facts
///     cache in repair/cvtolerant.cc, keyed by the variant's canonical
///     predicate list): violations produced here feed it, and a bound is
///     computed at most once per distinct predicate signature.
///
/// Thread safety: construction and Prepare() are serial; afterwards every
/// method is const and the index may be shared read-only across pool
/// threads. FindViolationsCapped() is bit-identical — result order,
/// capped prefix, and truncated flag — to FindViolationsOfCapped() at any
/// thread count.
class EvalIndex {
 public:
  /// Candidate tuple lists are memoized only while their count stays
  /// within this budget (a no-equality-join base has |I|² candidate
  /// pairs; memoizing that would trade quadratic time for quadratic
  /// memory with no cap to stop it).
  static constexpr int64_t kDefaultMemoBudget = int64_t{1} << 22;

  /// `encoded`, when given, must mirror `I` (in_sync) and outlive the
  /// index; partitions are then keyed on dictionary codes and memo/delta
  /// predicates evaluate on codes (EvalCounters::code_predicate_evals)
  /// instead of boxed Values. Results are bit-identical either way.
  EvalIndex(const Relation& I, const DenialConstraint& base,
            int64_t memo_budget = kDefaultMemoBudget,
            const EncodedRelation* encoded = nullptr);

  /// Derives (and caches) the partition a variant with these predicates
  /// scans. Call serially for every variant before concurrent
  /// FindViolationsCapped use; afterwards the index is read-only.
  void Prepare(const DenialConstraint& variant);

  /// viol(I, variant) with exactly the semantics of
  /// FindViolationsOfCapped: same violation order, same capped prefix,
  /// same truncated flag, same thread-pool sharding thresholds.
  std::vector<Violation> FindViolationsCapped(const DenialConstraint& variant,
                                              int constraint_index,
                                              int64_t cap,
                                              bool* truncated) const;

  const DenialConstraint& base() const { return base_; }

  /// Introspection for tests: number of distinct partitions held.
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  bool pair_memo_built() const { return pair_memo_built_; }

 private:
  struct Partition {
    /// Row-id blocks, members ascending, blocks sorted by first member —
    /// the canonical enumeration order of dc/violation.cc. Singleton
    /// blocks are kept (they matter for refine/merge) and skipped by the
    /// pair enumeration. A block's key on the partition attributes is
    /// recoverable from any member row, so keys are not stored.
    std::vector<std::vector<int>> blocks;
  };

  int64_t PairKey(int i, int j) const {
    return static_cast<int64_t>(i) * n_ + j;
  }

  const Partition& GetOrDerive(const std::vector<AttrId>& attrs);
  Partition BuildByScan(const std::vector<AttrId>& attrs,
                        EvalCounters* local) const;
  Partition RefineFrom(const Partition& src,
                       const std::vector<AttrId>& src_attrs,
                       const std::vector<AttrId>& target) const;
  Partition MergeFrom(const Partition& src,
                      const std::vector<AttrId>& src_attrs,
                      const std::vector<AttrId>& target);
  const std::vector<int>& NullRows(AttrId attr);
  void BuildMemo();

  /// Splits the variant's predicates into the partition-handled equality
  /// joins, the base-shared memoized predicates (as a bitmask over
  /// memo_preds_), and the live delta predicates.
  void SplitPredicates(const DenialConstraint& variant, uint32_t* shared_mask,
                       std::vector<const Predicate*>* shared,
                       std::vector<const Predicate*>* delta) const;

  /// shared_enc/delta_enc are the code-compiled twins of shared/delta
  /// (null on the unencoded path).
  bool ViolatedViaIndex(const std::vector<int>& rows, uint32_t shared_mask,
                        const std::vector<const Predicate*>& shared,
                        const std::vector<const Predicate*>& delta,
                        const std::vector<EncodedPredicateEval>* shared_enc,
                        const std::vector<EncodedPredicateEval>* delta_enc,
                        EvalCounters* local) const;

  const Relation* I_;
  const EncodedRelation* E_ = nullptr;  // optional coded mirror of *I_
  DenialConstraint base_;
  int n_ = 0;
  int64_t memo_budget_ = 0;
  std::vector<AttrId> base_eq_;

  /// Base predicates not handled by the partition (all predicates for
  /// 1-tuple constraints); memo bit j corresponds to memo_preds_[j].
  std::vector<Predicate> memo_preds_;

  std::map<std::vector<AttrId>, Partition> partitions_;

  /// 2-tuple: verdict bits per candidate pair of the base partition.
  std::unordered_map<int64_t, uint32_t> pair_memo_;
  bool pair_memo_built_ = false;

  /// 1-tuple: verdict bits per row (always dense).
  std::vector<uint32_t> row_memo_;
  bool row_memo_built_ = false;

  std::map<AttrId, std::vector<int>> null_rows_;
};

}  // namespace cvrepair

#endif  // CVREPAIR_DC_EVAL_INDEX_H_
