#ifndef CVREPAIR_DC_SCAN_KERNELS_H_
#define CVREPAIR_DC_SCAN_KERNELS_H_

// Branchless block kernels for the encoded scans.
//
// Every code-evaluable predicate shape — equality against a constant's
// code, a rank threshold from Dictionary::BoundsOf, or an inequality-join
// probe against one fixed row's code — reduces to one of three primitive
// block predicates over int32 codes:
//
//   kEqCode     code == C                       (the only shape that
//                                                never reads ranks)
//   kNeqCode    class(rank[code]) == cls && code != C
//   kRankRange  lo <= rank[code] <= hi          (packed class|rank
//                                                interval; every order
//                                                threshold and probe
//                                                lands here)
//
// Sentinel codes (NULL/fresh, negative) fail all three — the gathered
// rank is forced to -1 and every interval/class test starts at >= 0 —
// reproducing the "NULL/fv satisfies no predicate" rule without a branch.
//
// Kernel dispatch contract: EvalBlock writes one selection bit per lane
// (bit i of word i/64; the (n+63)/64 output words are fully overwritten)
// and every implementation — the auto-vectorization-friendly scalar loop,
// the SSE2 path, and the AVX2 path picked at runtime — produces
// bit-identical output for the same inputs. The explicit SIMD paths exist
// only behind the CVREPAIR_SIMD build option (on x86-64), can be disabled
// at runtime with SetSimdEnabled(false), and the CI `simd-off` build runs
// the whole kernel-equivalence suite against the scalar fallback so it
// cannot rot.
//
// MayMatch is the zone-map test: given a block's min/max packed rank
// (EncodedRelation::BlockMeta, or ComputeZone over a gathered candidate
// list), it returns false only when *no* code in that range can satisfy
// the predicate — a sound skip, never required for correctness.
//
// SetBlockScanEnabled(false) reverts every consumer (dc/violation.cc,
// dc/eval_index.cc, dc/incremental.cc) to the row-at-a-time scan; the
// benches use it to compare work counters and the tests to prove result
// equality.

#include <cstdint>

#include "dc/op.h"
#include "relation/encoded.h"

namespace cvrepair {
namespace scan_kernels {

struct BlockPredicate {
  enum class Kind : uint8_t {
    kNever,      ///< statically unsatisfiable (absent constant, empty range)
    kEqCode,     ///< code == `code`
    kNeqCode,    ///< rank class == `cls` && code != `code`
    kRankRange,  ///< lo <= packed rank <= hi
  };

  Kind kind = Kind::kNever;
  Code code = kAbsentCode;  ///< kEqCode / kNeqCode
  int32_t cls = -1;         ///< kNeqCode
  int32_t lo = 0;           ///< kRankRange (packed, inclusive)
  int32_t hi = -1;          ///< kRankRange (packed, inclusive)
};

/// Compiles `cell op c` from the constant's precomputed bounds. Exactly
/// EncodedPredicateEval's kConstant semantics, vectorized.
BlockPredicate CompileConstant(Op op, const Dictionary::ConstantBounds& b);

/// Compiles a same-attribute two-cell predicate with one operand fixed to
/// a concrete row's code: the block ranges over the *other* operand.
/// `fixed_is_lhs` says which side of `op` the fixed code sits on (the
/// varying side is mirrored through FlipOperands). `ranks` is the shared
/// dictionary's packed rank array. A negative (sentinel) fixed code
/// compiles to kNever.
BlockPredicate CompileProbe(Op op, bool fixed_is_lhs, Code fixed,
                            const int32_t* ranks);

/// Zone-map test: can any code whose packed rank lies in
/// [block_min, block_max] satisfy `p`? block_min > block_max means the
/// block holds only sentinels (nothing matches). Conservative in the
/// may-match direction only: a false return is a proof.
bool MayMatch(const BlockPredicate& p, int32_t block_min, int32_t block_max,
              const int32_t* ranks);
inline bool MayMatch(const BlockPredicate& p,
                     const EncodedRelation::BlockMeta& m,
                     const int32_t* ranks) {
  return MayMatch(p, m.min_rank, m.max_rank, ranks);
}

/// Packed-rank extrema of an arbitrary gathered code list (the join-block
/// scans' zone map over partition members). Sentinels are skipped; an
/// all-sentinel list reports min > max.
void ComputeZone(const Code* codes, int n, const int32_t* ranks,
                 int32_t* min_rank, int32_t* max_rank);

/// Evaluates `p` over `codes[0..n)`, writing one selection bit per lane
/// into `bitmap` ((n + 63) / 64 words, fully overwritten). All
/// implementations are bit-identical; see the dispatch contract above.
void EvalBlock(const BlockPredicate& p, const Code* codes, int n,
               const int32_t* ranks, uint64_t* bitmap);

/// Whether explicit SIMD paths were compiled in (CVREPAIR_SIMD on an
/// x86-64 target).
bool SimdCompiledIn();
/// Runtime switch between the SIMD paths and the scalar fallback
/// (no-op when SIMD is not compiled in). Defaults to enabled.
void SetSimdEnabled(bool enabled);
bool SimdEnabled();

/// Runtime switch for the block-at-a-time consumers: disabled, every scan
/// takes its legacy row-at-a-time path (same results, no zone skips, no
/// blocks_scanned/blocks_skipped counters). Defaults to enabled.
void SetBlockScanEnabled(bool enabled);
bool BlockScanEnabled();

}  // namespace scan_kernels
}  // namespace cvrepair

#endif  // CVREPAIR_DC_SCAN_KERNELS_H_
