#ifndef CVREPAIR_DC_VIOLATION_H_
#define CVREPAIR_DC_VIOLATION_H_

#include <unordered_set>
#include <vector>

#include "dc/constraint.h"
#include "relation/relation.h"

namespace cvrepair {

class EncodedRelation;  // relation/encoded.h

/// A set of cell addresses (the changing set C, covers, truth sets, ...).
using CellSet = std::unordered_set<Cell, CellHash>;

/// One violating (or suspect) tuple list of a constraint: rows[i]
/// instantiates tuple variable t_i of sigma[constraint_index].
struct Violation {
  int constraint_index = 0;
  std::vector<int> rows;

  friend bool operator==(const Violation& a, const Violation& b) {
    return a.constraint_index == b.constraint_index && a.rows == b.rows;
  }
};

/// The distinct cells cell(t_i, t_j, ...; φ) involved in the predicates of
/// the constraint instantiated on `rows` (Section 3.2.1).
std::vector<Cell> ViolationCells(const DenialConstraint& constraint,
                                 const std::vector<int>& rows);

/// Computes viol(I, Σ): every tuple list (single rows for 1-tuple DCs,
/// ordered pairs of distinct rows for 2-tuple DCs) satisfying all
/// predicates of some φ ∈ Σ (Definition 5).
///
/// Two-tuple constraints with equality predicates t0.A = t1.A are
/// evaluated with hash partitioning on those attributes, so FD-style
/// constraints cost roughly O(|I| + Σ_blocks |block|²) instead of O(|I|²).
///
/// Large scans are sharded across the ThreadPool budget (row ranges for
/// 1-tuple DCs and the no-join pair scan, partition-block ranges for
/// FD-style DCs); shard results are merged in shard order, so the output
/// — order included — is bit-identical at any thread count.
std::vector<Violation> FindViolations(const Relation& I,
                                      const ConstraintSet& sigma);

/// Violations of one constraint (see FindViolations); constraint_index is
/// set to `constraint_index` in the result.
std::vector<Violation> FindViolationsOf(const Relation& I,
                                        const DenialConstraint& constraint,
                                        int constraint_index = 0);

/// Like FindViolationsOf, but stops once `max_violations` have been
/// collected, setting *truncated. Used to abandon hopeless constraint
/// variants early (a variant violated quadratically often can never carry
/// the minimum repair). Under sharding each shard collects up to cap+1
/// hits and the in-order merge trims to the cap, reproducing exactly the
/// serial prefix and truncated flag.
std::vector<Violation> FindViolationsOfCapped(
    const Relation& I, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated);

/// True iff I ⊨ Σ (no violations). Short-circuits on the first violation.
bool Satisfies(const Relation& I, const ConstraintSet& sigma);

/// Computes susp(C, φ) for every φ ∈ Σ (Definition 6): tuple lists that
/// satisfy all predicates *not* involving cells from C. Only suspects with
/// at least one predicate on a C cell are returned — tuple lists whose
/// predicates never touch C contribute no repair-context constraints and
/// cannot become violations when only C changes.
///
/// By Lemma 4, the result is a superset of the violations that involve C.
std::vector<Violation> FindSuspects(const Relation& I,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing);

/// Encoded counterparts of the scans above, consuming the dictionary-coded
/// column store (relation/encoded.h) instead of boxed Values: partitions
/// key on raw codes and predicates evaluate as integer code/rank compares
/// (counted as EvalCounters::code_predicate_evals; only cross-attribute
/// two-cell predicates still touch Values). Each is bit-identical —
/// violation order, capped prefix, truncated flag — to its unencoded
/// sibling on the backing relation, at any thread count; E must be
/// in_sync() with it.
std::vector<Violation> FindViolations(const EncodedRelation& E,
                                      const ConstraintSet& sigma);
std::vector<Violation> FindViolationsOf(const EncodedRelation& E,
                                        const DenialConstraint& constraint,
                                        int constraint_index = 0);
std::vector<Violation> FindViolationsOfCapped(
    const EncodedRelation& E, const DenialConstraint& constraint,
    int constraint_index, int64_t max_violations, bool* truncated);
bool Satisfies(const EncodedRelation& E, const ConstraintSet& sigma);
std::vector<Violation> FindSuspects(const EncodedRelation& E,
                                    const ConstraintSet& sigma,
                                    const CellSet& changing);

}  // namespace cvrepair

#endif  // CVREPAIR_DC_VIOLATION_H_
