#include "dc/predicate.h"

namespace cvrepair {

bool Predicate::SameOperands(const Predicate& other) const {
  if (!(lhs_ == other.lhs_)) return false;
  if (rhs_cell_.has_value() && other.rhs_cell_.has_value()) {
    return *rhs_cell_ == *other.rhs_cell_;
  }
  if (constant_.has_value() && other.constant_.has_value()) {
    return *constant_ == *other.constant_;
  }
  return false;
}

bool Predicate::Eval(const Relation& I, const std::vector<int>& rows) const {
  const Value& left = I.Get(rows[lhs_.tuple], lhs_.attr);
  if (constant_) return EvalOp(left, op_, *constant_);
  const Value& right = I.Get(rows[rhs_cell_->tuple], rhs_cell_->attr);
  return EvalOp(left, op_, right);
}

std::vector<Cell> Predicate::Cells(const std::vector<int>& rows) const {
  std::vector<Cell> cells;
  cells.push_back({rows[lhs_.tuple], lhs_.attr});
  if (rhs_cell_) {
    Cell rc{rows[rhs_cell_->tuple], rhs_cell_->attr};
    if (!(rc == cells[0])) cells.push_back(rc);
  }
  return cells;
}

std::string Predicate::ToString(const Schema& schema) const {
  std::string out = "t" + std::to_string(lhs_.tuple) + "." + schema.name(lhs_.attr);
  out += OpToString(op_);
  if (constant_) {
    out += constant_->ToString();
  } else {
    out += "t" + std::to_string(rhs_cell_->tuple) + "." +
           schema.name(rhs_cell_->attr);
  }
  return out;
}

bool operator<(const Predicate& a, const Predicate& b) {
  if (!(a.lhs_ == b.lhs_)) return a.lhs_ < b.lhs_;
  if (a.op_ != b.op_) return a.op_ < b.op_;
  bool ac = a.rhs_cell_.has_value();
  bool bc = b.rhs_cell_.has_value();
  if (ac != bc) return ac < bc;
  if (ac && bc && !(*a.rhs_cell_ == *b.rhs_cell_)) {
    return *a.rhs_cell_ < *b.rhs_cell_;
  }
  bool ak = a.constant_.has_value();
  bool bk = b.constant_.has_value();
  if (ak != bk) return ak < bk;
  if (ak && bk) return *a.constant_ < *b.constant_;
  return false;
}

}  // namespace cvrepair
