#ifndef CVREPAIR_DC_OP_H_
#define CVREPAIR_DC_OP_H_

#include <string>
#include <vector>

#include "relation/value.h"

namespace cvrepair {

/// The built-in comparison operators of denial-constraint predicates
/// (paper Section 2, Table 1).
enum class Op {
  kEq = 0,   // =
  kNeq = 1,  // !=
  kGt = 2,   // >
  kLt = 3,   // <
  kGeq = 4,  // >=
  kLeq = 5,  // <=
};

inline constexpr int kNumOps = 6;

/// All operators, in Table 1 order.
const std::vector<Op>& AllOps();

/// The inverse operator φ̄ from Table 1: a φ b is false iff a φ̄ b is true
/// (for concrete comparable values).
Op Inverse(Op op);

/// The implication set Imp(φ) from Table 1: ψ ∈ Imp(φ) iff a φ b always
/// implies a ψ b. Imp(φ) includes φ itself.
const std::vector<Op>& Imp(Op op);

/// True iff a φ1 b always implies a φ2 b (i.e., φ2 ∈ Imp(φ1)).
bool Implies(Op op1, Op op2);

/// The operator obtained by swapping operands: a φ b ⇔ b Flip(φ) a.
/// (= and != are symmetric; < swaps with >, <= with >=.)
Op FlipOperands(Op op);

/// True iff φ1 and φ2 can never hold simultaneously on the same operand
/// pair (e.g., = contradicts !=, < contradicts >=). Inserting a predicate
/// that contradicts an existing predicate on the same operands yields a
/// trivial DC (Section 2.2.1).
bool Contradicts(Op op1, Op op2);

/// Evaluates `a op b` with denial-constraint value semantics: NULL and
/// fresh variables satisfy *no* predicate (Section 2.1), numeric values of
/// different width compare numerically, strings compare lexicographically,
/// and type-mismatched operands never satisfy anything.
bool EvalOp(const Value& a, Op op, const Value& b);

/// "=", "!=", ">", "<", ">=", "<=".
std::string OpToString(Op op);

/// Parses the tokens accepted by OpToString plus the Unicode variants
/// "≠", "≥", "≤". Returns false on unknown token.
bool ParseOp(const std::string& token, Op* out);

}  // namespace cvrepair

#endif  // CVREPAIR_DC_OP_H_
