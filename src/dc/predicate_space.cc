#include "dc/predicate_space.h"

#include <algorithm>

namespace cvrepair {

std::vector<Predicate> BuildPredicateSpace(
    const Schema& schema, const PredicateSpaceOptions& options) {
  std::vector<Predicate> space;
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (schema.is_key(a)) continue;
    if (std::find(options.excluded_attrs.begin(), options.excluded_attrs.end(),
                  a) != options.excluded_attrs.end()) {
      continue;
    }
    space.push_back(Predicate::TwoCell(0, a, Op::kEq, 1, a));
    if (schema.is_numeric(a)) {
      space.push_back(Predicate::TwoCell(0, a, Op::kLt, 1, a));
      space.push_back(Predicate::TwoCell(0, a, Op::kGt, 1, a));
      if (!options.maximal_ops_only) {
        space.push_back(Predicate::TwoCell(0, a, Op::kLeq, 1, a));
        space.push_back(Predicate::TwoCell(0, a, Op::kGeq, 1, a));
        space.push_back(Predicate::TwoCell(0, a, Op::kNeq, 1, a));
      }
    } else if (!options.maximal_ops_only) {
      space.push_back(Predicate::TwoCell(0, a, Op::kNeq, 1, a));
    }
  }
  return space;
}

std::vector<AttrId> EqualityJoinAttrs(const std::vector<Predicate>& preds) {
  std::vector<AttrId> attrs;
  for (const Predicate& p : preds) {
    if (!p.has_constant() && p.op() == Op::kEq &&
        p.IsSameAttributeAcrossTuples()) {
      attrs.push_back(p.lhs().attr);
    }
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

}  // namespace cvrepair
