#include "dc/scan_kernels.h"

#include <algorithm>
#include <atomic>
#include <limits>

#if defined(CVREPAIR_SIMD_ENABLED) && \
    (defined(__x86_64__) || defined(_M_X64))
#define CVREPAIR_SIMD_X86 1
#include <immintrin.h>
#else
#define CVREPAIR_SIMD_X86 0
#endif

namespace cvrepair {
namespace scan_kernels {

namespace {

std::atomic<bool> g_simd_enabled{true};
std::atomic<bool> g_block_scan_enabled{true};

constexpr int32_t ClassBase(int32_t cls) {
  return cls << Dictionary::kRankBits;
}
constexpr int32_t ClassTop(int32_t cls) {
  return ClassBase(cls) | Dictionary::kRankMask;
}

BlockPredicate Never() { return BlockPredicate{}; }

BlockPredicate RankRange(int32_t lo, int32_t hi) {
  if (lo > hi) return Never();
  BlockPredicate p;
  p.kind = BlockPredicate::Kind::kRankRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

// ---------------------------------------------------------------------------
// Scalar reference implementation. Plain loops over a branch-free boolean,
// written so the compiler's auto-vectorizer can take them; the explicit
// SIMD paths below must match it bit for bit.
// ---------------------------------------------------------------------------

void EvalBlockScalar(const BlockPredicate& p, const Code* codes, int n,
                     const int32_t* ranks, uint64_t* bitmap) {
  switch (p.kind) {
    case BlockPredicate::Kind::kNever:
      return;
    case BlockPredicate::Kind::kEqCode: {
      Code target = p.code;
      for (int i = 0; i < n; ++i) {
        bitmap[i >> 6] |= static_cast<uint64_t>(codes[i] == target)
                          << (i & 63);
      }
      return;
    }
    case BlockPredicate::Kind::kNeqCode: {
      // Sentinels gather rank -1, whose class (-1) matches no cls >= 0.
      for (int i = 0; i < n; ++i) {
        Code v = codes[i];
        int32_t r = v >= 0 ? ranks[v] : -1;
        bool hit = ((r >> Dictionary::kRankBits) == p.cls) & (v != p.code);
        bitmap[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
      }
      return;
    }
    case BlockPredicate::Kind::kRankRange: {
      // lo >= 0 always, so the sentinel rank -1 fails the lower bound.
      for (int i = 0; i < n; ++i) {
        Code v = codes[i];
        int32_t r = v >= 0 ? ranks[v] : -1;
        bool hit = (r >= p.lo) & (r <= p.hi);
        bitmap[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
      }
      return;
    }
  }
}

#if CVREPAIR_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 (x86-64 baseline — always callable). 4 lanes per step; i stays a
// multiple of 4, so a 4-bit lane mask never straddles a bitmap word.
// Gathers are scalar (SSE2 has none); the compares are vector.
// ---------------------------------------------------------------------------

void EvalBlockSse2(const BlockPredicate& p, const Code* codes, int n,
                   const int32_t* ranks, uint64_t* bitmap) {
  int i = 0;
  switch (p.kind) {
    case BlockPredicate::Kind::kNever:
      return;
    case BlockPredicate::Kind::kEqCode: {
      const __m128i target = _mm_set1_epi32(p.code);
      for (; i + 4 <= n; i += 4) {
        __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
        uint64_t m = static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, target))));
        bitmap[i >> 6] |= m << (i & 63);
      }
      break;
    }
    case BlockPredicate::Kind::kNeqCode: {
      const __m128i vcls = _mm_set1_epi32(p.cls);
      const __m128i vcode = _mm_set1_epi32(p.code);
      alignas(16) int32_t rbuf[4];
      for (; i + 4 <= n; i += 4) {
        for (int k = 0; k < 4; ++k) {
          Code v = codes[i + k];
          rbuf[k] = v >= 0 ? ranks[v] : -1;
        }
        __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
        __m128i r = _mm_load_si128(reinterpret_cast<const __m128i*>(rbuf));
        __m128i cls_ok = _mm_cmpeq_epi32(
            _mm_srai_epi32(r, Dictionary::kRankBits), vcls);
        __m128i code_eq = _mm_cmpeq_epi32(v, vcode);
        __m128i hit = _mm_andnot_si128(code_eq, cls_ok);
        uint64_t m = static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(hit)));
        bitmap[i >> 6] |= m << (i & 63);
      }
      break;
    }
    case BlockPredicate::Kind::kRankRange: {
      const __m128i vlo = _mm_set1_epi32(p.lo);
      const __m128i vhi = _mm_set1_epi32(p.hi);
      alignas(16) int32_t rbuf[4];
      for (; i + 4 <= n; i += 4) {
        for (int k = 0; k < 4; ++k) {
          Code v = codes[i + k];
          rbuf[k] = v >= 0 ? ranks[v] : -1;
        }
        __m128i r = _mm_load_si128(reinterpret_cast<const __m128i*>(rbuf));
        __m128i below = _mm_cmplt_epi32(r, vlo);
        __m128i above = _mm_cmpgt_epi32(r, vhi);
        uint64_t bad = static_cast<unsigned>(_mm_movemask_ps(
            _mm_castsi128_ps(_mm_or_si128(below, above))));
        bitmap[i >> 6] |= (~bad & 0xFull) << (i & 63);
      }
      break;
    }
  }
  // Scalar tail (n % 4 lanes) — same booleans as the reference loop.
  for (; i < n; ++i) {
    Code v = codes[i];
    bool hit = false;
    switch (p.kind) {
      case BlockPredicate::Kind::kNever:
        break;
      case BlockPredicate::Kind::kEqCode:
        hit = v == p.code;
        break;
      case BlockPredicate::Kind::kNeqCode: {
        int32_t r = v >= 0 ? ranks[v] : -1;
        hit = ((r >> Dictionary::kRankBits) == p.cls) & (v != p.code);
        break;
      }
      case BlockPredicate::Kind::kRankRange: {
        int32_t r = v >= 0 ? ranks[v] : -1;
        hit = (r >= p.lo) & (r <= p.hi);
        break;
      }
    }
    bitmap[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
  }
}

// ---------------------------------------------------------------------------
// AVX2, selected at runtime via __builtin_cpu_supports (the binary stays
// runnable on SSE2-only hosts). 8 lanes per step with a masked hardware
// gather: sentinel lanes are masked off — they never touch memory (an
// all-NULL column has an empty rank array) — and read as rank -1.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

void EvalBlockAvx2(const BlockPredicate& p, const Code* codes, int n,
                   const int32_t* ranks, uint64_t* bitmap) {
  const __m256i minus1 = _mm256_set1_epi32(-1);
  auto gather_ranks = [&](__m256i v) {
    // mask lanes with v >= 0; masked-off lanes keep the -1 source.
    __m256i mask = _mm256_cmpgt_epi32(v, minus1);
    return _mm256_mask_i32gather_epi32(minus1, ranks, v, mask, 4);
  };
  int i = 0;
  switch (p.kind) {
    case BlockPredicate::Kind::kNever:
      return;
    case BlockPredicate::Kind::kEqCode: {
      const __m256i target = _mm256_set1_epi32(p.code);
      for (; i + 8 <= n; i += 8) {
        __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
        uint64_t m = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, target))));
        bitmap[i >> 6] |= m << (i & 63);
      }
      break;
    }
    case BlockPredicate::Kind::kNeqCode: {
      const __m256i vcls = _mm256_set1_epi32(p.cls);
      const __m256i vcode = _mm256_set1_epi32(p.code);
      for (; i + 8 <= n; i += 8) {
        __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
        __m256i r = gather_ranks(v);
        __m256i cls_ok = _mm256_cmpeq_epi32(
            _mm256_srai_epi32(r, Dictionary::kRankBits), vcls);
        __m256i code_eq = _mm256_cmpeq_epi32(v, vcode);
        __m256i hit = _mm256_andnot_si256(code_eq, cls_ok);
        uint64_t m = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
        bitmap[i >> 6] |= m << (i & 63);
      }
      break;
    }
    case BlockPredicate::Kind::kRankRange: {
      const __m256i vlo = _mm256_set1_epi32(p.lo);
      const __m256i vhi = _mm256_set1_epi32(p.hi);
      for (; i + 8 <= n; i += 8) {
        __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
        __m256i r = gather_ranks(v);
        __m256i below = _mm256_cmpgt_epi32(vlo, r);
        __m256i above = _mm256_cmpgt_epi32(r, vhi);
        uint64_t bad = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_or_si256(below, above))));
        bitmap[i >> 6] |= (~bad & 0xFFull) << (i & 63);
      }
      break;
    }
  }
  // Scalar tail (n % 8 lanes) — same booleans as the reference loop.
  for (; i < n; ++i) {
    Code v = codes[i];
    bool hit = false;
    switch (p.kind) {
      case BlockPredicate::Kind::kNever:
        break;
      case BlockPredicate::Kind::kEqCode:
        hit = v == p.code;
        break;
      case BlockPredicate::Kind::kNeqCode: {
        int32_t r = v >= 0 ? ranks[v] : -1;
        hit = ((r >> Dictionary::kRankBits) == p.cls) & (v != p.code);
        break;
      }
      case BlockPredicate::Kind::kRankRange: {
        int32_t r = v >= 0 ? ranks[v] : -1;
        hit = (r >= p.lo) & (r <= p.hi);
        break;
      }
    }
    bitmap[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
  }
}

#pragma GCC pop_options

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // CVREPAIR_SIMD_X86

}  // namespace

BlockPredicate CompileConstant(Op op, const Dictionary::ConstantBounds& b) {
  if (b.cls < 0) return Never();  // NULL/fresh constant satisfies nothing
  const int32_t base = ClassBase(b.cls);
  const int32_t top = ClassTop(b.cls);
  switch (op) {
    case Op::kEq: {
      if (b.eq == kAbsentCode) return Never();
      BlockPredicate p;
      p.kind = BlockPredicate::Kind::kEqCode;
      p.code = b.eq;
      return p;
    }
    case Op::kNeq: {
      if (b.eq == kAbsentCode) {
        // Constant not in the dictionary: every same-class code differs.
        return RankRange(base, top);
      }
      BlockPredicate p;
      p.kind = BlockPredicate::Kind::kNeqCode;
      p.code = b.eq;
      p.cls = b.cls;
      return p;
    }
    case Op::kLt:
      return RankRange(base, base + b.lower - 1);
    case Op::kLeq:
      return RankRange(base, base + b.upper - 1);
    case Op::kGt:
      return RankRange(base + b.upper, top);
    case Op::kGeq:
      return RankRange(base + b.lower, top);
  }
  return Never();
}

BlockPredicate CompileProbe(Op op, bool fixed_is_lhs, Code fixed,
                            const int32_t* ranks) {
  if (fixed < 0) return Never();  // sentinel operand satisfies nothing
  // The block ranges over v; rewrite `fixed op v` as `v op' fixed`.
  Op vop = fixed_is_lhs ? FlipOperands(op) : op;
  const int32_t pr = ranks[fixed];
  const int32_t cls = pr >> Dictionary::kRankBits;
  const int32_t base = ClassBase(cls);
  const int32_t top = ClassTop(cls);
  switch (vop) {
    case Op::kEq: {
      BlockPredicate p;
      p.kind = BlockPredicate::Kind::kEqCode;
      p.code = fixed;
      return p;
    }
    case Op::kNeq: {
      BlockPredicate p;
      p.kind = BlockPredicate::Kind::kNeqCode;
      p.code = fixed;
      p.cls = cls;
      return p;
    }
    case Op::kLt:
      return RankRange(base, pr - 1);
    case Op::kLeq:
      return RankRange(base, pr);
    case Op::kGt:
      return RankRange(pr + 1, top);
    case Op::kGeq:
      return RankRange(pr, top);
  }
  return Never();
}

bool MayMatch(const BlockPredicate& p, int32_t block_min, int32_t block_max,
              const int32_t* ranks) {
  if (block_min > block_max) return false;  // only sentinels in the block
  switch (p.kind) {
    case BlockPredicate::Kind::kNever:
      return false;
    case BlockPredicate::Kind::kEqCode: {
      int32_t pr = ranks[p.code];
      return block_min <= pr && pr <= block_max;
    }
    case BlockPredicate::Kind::kNeqCode: {
      if (block_max < ClassBase(p.cls) || block_min > ClassTop(p.cls)) {
        return false;  // no code of the constant's class in range
      }
      // A single-rank block equal to the constant itself cannot differ.
      return !(block_min == block_max && block_min == ranks[p.code]);
    }
    case BlockPredicate::Kind::kRankRange:
      return std::max(p.lo, block_min) <= std::min(p.hi, block_max);
  }
  return true;
}

void ComputeZone(const Code* codes, int n, const int32_t* ranks,
                 int32_t* min_rank, int32_t* max_rank) {
  int32_t lo = std::numeric_limits<int32_t>::max();
  int32_t hi = std::numeric_limits<int32_t>::min();
  for (int i = 0; i < n; ++i) {
    Code v = codes[i];
    if (v < 0) continue;
    int32_t r = ranks[v];
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  *min_rank = lo;
  *max_rank = hi;
}

void EvalBlock(const BlockPredicate& p, const Code* codes, int n,
               const int32_t* ranks, uint64_t* bitmap) {
  std::fill_n(bitmap, (n + 63) >> 6, uint64_t{0});
#if CVREPAIR_SIMD_X86
  if (g_simd_enabled.load(std::memory_order_relaxed)) {
    if (HasAvx2()) {
      EvalBlockAvx2(p, codes, n, ranks, bitmap);
    } else {
      EvalBlockSse2(p, codes, n, ranks, bitmap);
    }
    return;
  }
#endif
  EvalBlockScalar(p, codes, n, ranks, bitmap);
}

bool SimdCompiledIn() { return CVREPAIR_SIMD_X86 != 0; }

void SetSimdEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool SimdEnabled() {
  return SimdCompiledIn() && g_simd_enabled.load(std::memory_order_relaxed);
}

void SetBlockScanEnabled(bool enabled) {
  g_block_scan_enabled.store(enabled, std::memory_order_relaxed);
}

bool BlockScanEnabled() {
  return g_block_scan_enabled.load(std::memory_order_relaxed);
}

}  // namespace scan_kernels
}  // namespace cvrepair
