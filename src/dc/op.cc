#include "dc/op.h"

#include <algorithm>

namespace cvrepair {

const std::vector<Op>& AllOps() {
  static const std::vector<Op>& ops = *new std::vector<Op>{
      Op::kEq, Op::kNeq, Op::kGt, Op::kLt, Op::kGeq, Op::kLeq};
  return ops;
}

Op Inverse(Op op) {
  switch (op) {
    case Op::kEq: return Op::kNeq;
    case Op::kNeq: return Op::kEq;
    case Op::kGt: return Op::kLeq;
    case Op::kLt: return Op::kGeq;
    case Op::kGeq: return Op::kLt;
    case Op::kLeq: return Op::kGt;
  }
  return Op::kEq;
}

Op FlipOperands(Op op) {
  switch (op) {
    case Op::kEq: return Op::kEq;
    case Op::kNeq: return Op::kNeq;
    case Op::kGt: return Op::kLt;
    case Op::kLt: return Op::kGt;
    case Op::kGeq: return Op::kLeq;
    case Op::kLeq: return Op::kGeq;
  }
  return op;
}

const std::vector<Op>& Imp(Op op) {
  // Table 1 of the paper; Imp(φ) always contains φ.
  static const std::vector<Op>* kImp = [] {
    auto* t = new std::vector<Op>[kNumOps];
    t[static_cast<int>(Op::kEq)] = {Op::kEq, Op::kGeq, Op::kLeq};
    t[static_cast<int>(Op::kNeq)] = {Op::kNeq};
    t[static_cast<int>(Op::kGt)] = {Op::kGt, Op::kGeq, Op::kNeq};
    t[static_cast<int>(Op::kLt)] = {Op::kLt, Op::kLeq, Op::kNeq};
    t[static_cast<int>(Op::kGeq)] = {Op::kGeq};
    t[static_cast<int>(Op::kLeq)] = {Op::kLeq};
    return t;
  }();
  return kImp[static_cast<int>(op)];
}

bool Implies(Op op1, Op op2) {
  const std::vector<Op>& imp = Imp(op1);
  return std::find(imp.begin(), imp.end(), op2) != imp.end();
}

bool Contradicts(Op op1, Op op2) {
  // φ1 contradicts φ2 iff satisfying φ1 forces ¬φ2, i.e., φ1 implies the
  // inverse of φ2. The relation is symmetric.
  return Implies(op1, Inverse(op2));
}

bool EvalOp(const Value& a, Op op, const Value& b) {
  // Fresh variables and NULLs satisfy no predicate (Section 2.1).
  if (a.is_null() || b.is_null() || a.is_fresh() || b.is_fresh()) return false;

  if (a.is_numeric() && b.is_numeric()) {
    double x = a.numeric();
    double y = b.numeric();
    switch (op) {
      case Op::kEq: return x == y;
      case Op::kNeq: return x != y;
      case Op::kGt: return x > y;
      case Op::kLt: return x < y;
      case Op::kGeq: return x >= y;
      case Op::kLeq: return x <= y;
    }
    return false;
  }
  if (a.kind() == ValueKind::kString && b.kind() == ValueKind::kString) {
    int cmp = a.as_string().compare(b.as_string());
    switch (op) {
      case Op::kEq: return cmp == 0;
      case Op::kNeq: return cmp != 0;
      case Op::kGt: return cmp > 0;
      case Op::kLt: return cmp < 0;
      case Op::kGeq: return cmp >= 0;
      case Op::kLeq: return cmp <= 0;
    }
    return false;
  }
  // Type mismatch: no predicate is satisfied.
  return false;
}

std::string OpToString(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNeq: return "!=";
    case Op::kGt: return ">";
    case Op::kLt: return "<";
    case Op::kGeq: return ">=";
    case Op::kLeq: return "<=";
  }
  return "?";
}

bool ParseOp(const std::string& token, Op* out) {
  if (token == "=" || token == "==") *out = Op::kEq;
  else if (token == "!=" || token == "<>" || token == "≠") *out = Op::kNeq;
  else if (token == ">") *out = Op::kGt;
  else if (token == "<") *out = Op::kLt;
  else if (token == ">=" || token == "≥") *out = Op::kGeq;
  else if (token == "<=" || token == "≤") *out = Op::kLeq;
  else return false;
  return true;
}

}  // namespace cvrepair
