#ifndef CVREPAIR_REPAIR_SUBSET_H_
#define CVREPAIR_REPAIR_SUBSET_H_

#include <string>
#include <utility>
#include <vector>

#include "dc/violation.h"
#include "relation/domain_stats.h"
#include "relation/relation.h"
#include "repair/costs.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// How a repair round resolves violations (DESIGN.md §14).
///   kUpdate — the paper's cell-update model: change cell values
///             (Definition 1), fresh variables as last resort.
///   kDelete — subset repair: delete whole tuples (weighted vertex cover
///             over the conflict hypergraph's tuple projection, per Liu et
///             al., *The Cost of Representation by Subset Repairs*).
///   kHybrid — update first, then delete any tuple whose summed update
///             cost exceeds its deletion weight.
enum class RepairStrategy {
  kUpdate = 0,
  kDelete = 1,
  kHybrid = 2,
};

/// "update", "delete", "hybrid".
std::string RepairStrategyToString(RepairStrategy strategy);

/// Parses the tokens accepted by RepairStrategyToString. Returns false on
/// an unknown token.
bool ParseRepairStrategy(const std::string& token, RepairStrategy* out);

/// Knobs of the subset-repair strategy.
struct SubsetOptions {
  /// Grouping attribute for representation-cost accounting: tuples from
  /// rarer groups of this attribute cost more to delete, so minority
  /// groups are not disproportionately erased by the cover. -1 = uniform
  /// deletion weights.
  AttrId repr_attr = -1;
  /// Strength of the representation skew: a vanishing group's weight is
  /// delete_base * (1 + alpha); a group covering the whole instance pays
  /// delete_base.
  double alpha = 1.0;
  /// Base deletion weight of one tuple, in the same units as cell-update
  /// costs (count model: one changed cell costs 1). The hybrid rule
  /// deletes a tuple only when its summed update cost exceeds its
  /// deletion weight, so delete_base is the update-cost budget a tuple
  /// gets before deletion wins.
  double delete_base = 3.0;
};

/// The deletion weight of `row`: delete_base scaled by the representation
/// factor 1 + alpha * (1 - |group(row)| / |I|), where the group is the set
/// of rows sharing `row`'s value of repr_attr (frequencies from `stats`;
/// NULL/fresh group values count as a vanishing group). Uniform
/// (delete_base) when repr_attr is unset.
double RowDeletionWeight(const Relation& I, const DomainStats& stats, int row,
                         const SubsetOptions& options);

/// A tuple-deletion repair: tombstone assignments plus its cost. Deleted
/// rows are represented in place — every non-NULL cell of the row is
/// assigned NULL — so the instance keeps its row count and the tombstone
/// flows through the encoded backend (sentinel codes + zone-map refresh),
/// ViolationIndex delta maintenance, and the sharded serve path unchanged.
/// NULL satisfies no DC predicate, so a tombstoned tuple can never
/// participate in a violation again and deletions never create new ones.
struct SubsetRepair {
  std::vector<std::pair<Cell, Value>> assignments;
  double cost = 0.0;  ///< summed deletion weights
  int rows_deleted = 0;
};

/// Resolves `violations` by tuple deletion: a greedy weighted vertex cover
/// over the tuple projection of the conflict hypergraph (vertices = rows,
/// hyperedges = each violation's row set; repeatedly pick the row with the
/// highest uncovered-edges-per-weight ratio, ties to the smaller row id,
/// until every edge is covered). Deterministic for a given violation set.
/// Updates stats->rows_deleted when stats is given.
SubsetRepair SubsetCoverRepair(const Relation& I, const DomainStats& stats_of_I,
                               const std::vector<Violation>& violations,
                               const SubsetOptions& options,
                               RepairStats* stats);

/// True iff `row` is tombstoned in `after` but was not already all-NULL in
/// `before`.
bool RowDeleted(const Relation& before, const Relation& after, int row);

/// Total repair cost of `after` under `strategy`: deleted rows cost their
/// deletion weight, every other changed cell costs CellDist — which makes
/// kUpdate exactly RepairCost. `stats_of_before` supplies the group
/// frequencies for the deletion weights.
double StrategyRepairCost(const Relation& before, const Relation& after,
                          const CostModel& cost, RepairStrategy strategy,
                          const SubsetOptions& options,
                          const DomainStats& stats_of_before);

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_SUBSET_H_
