#ifndef CVREPAIR_REPAIR_RELATIVE_H_
#define CVREPAIR_REPAIR_RELATIVE_H_

#include "repair/costs.h"
#include "repair/repair_result.h"

namespace cvrepair {

/// Options for the Relative baseline.
struct RelativeOptions {
  CostModel cost;
  /// The relative-trust threshold τ: candidate constraint repairs whose
  /// minimum data-repair cost exceeds τ are rejected. τ < 0 selects the
  /// paper's default of 5% of |I| cells.
  double tau = -1.0;
  /// Maximum LHS attributes appended per FD when enumerating constraint
  /// repairs.
  int max_added_attrs = 2;
  /// Hard cap on enumerated candidate constraint-repair combinations.
  int max_candidates = 200000;
  /// Attributes never appended to an LHS (see UnifiedOptions).
  std::vector<AttrId> excluded_attrs;
};

/// Relative-trust repair (Beskales, Ilyas, Golab, Galiullin, ICDE 2013
/// [2]): enumerates FD repairs (all LHS attribute extensions up to
/// max_added_attrs, combined across the FDs of Σ), computes the minimum
/// data-repair cost of *every* candidate, discards candidates costing more
/// than τ, and among the survivors picks the minimal constraint change
/// with the cheapest data repair. The exhaustive candidate × repair-cost
/// evaluation — with a fixed τ instead of a dynamically tightened bound —
/// is what makes Relative orders of magnitude slower than CVtolerant
/// (Figure 10), and the fixed τ is why added FDs do not translate into
/// accuracy (Figure 18). Insertion-only, like Unified. Accepts FD-shaped
/// constraint sets only.
RepairResult RelativeRepair(const Relation& I, const ConstraintSet& sigma,
                            const RelativeOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_RELATIVE_H_
