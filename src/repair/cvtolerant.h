#ifndef CVREPAIR_REPAIR_CVTOLERANT_H_
#define CVREPAIR_REPAIR_CVTOLERANT_H_

#include <limits>
#include <optional>

#include "repair/holistic.h"
#include "repair/repair_result.h"
#include "repair/vfree.h"
#include "variation/variant_generator.h"

namespace cvrepair {

/// Options for the θ-tolerant repair (Algorithm 1).
struct CVTolerantOptions {
  /// Variant enumeration, including θ and the variation cost model.
  VariantGenOptions variants;
  /// Data-repair engine configuration (cost model, cover, solver).
  VfreeOptions vfree;
  /// When false, each candidate variant is repaired with the multi-round
  /// Holistic engine instead of Vfree (the "CVtolerant + Holistic"
  /// configuration of Figure 5). Sharing and cost-abort pruning are not
  /// available in that mode.
  bool use_vfree = true;
  HolisticOptions holistic;
  /// Share materialized component solutions across variants (Section 4.2).
  bool enable_sharing = true;
  /// Skip variants whose lower bound exceeds the best known repair cost
  /// (Section 3.2, Algorithm 1 line 3).
  bool enable_bound_pruning = true;
  /// Hard budget on DataRepair invocations. Candidates are processed in
  /// ascending-δ_l order (cheap variants first), so the budget cuts the
  /// long tail of near-tied candidates that bound pruning alone cannot
  /// separate; the paper reports most runs settle within 2 calls.
  int max_datarepair_calls = 64;
  /// Constraint variants violated more often than this factor times |I|
  /// are abandoned as hopeless (their minimum repair cannot win): their
  /// enumeration is cut short and their lower bound set to +inf. 0
  /// disables the cap.
  double max_violations_per_tuple = 50.0;
  /// Thread budget for this repair: 0 = the global ThreadPool setting,
  /// 1 = the exact legacy serial path, N = up to N threads. Propagated to
  /// the Vfree engine when `vfree.threads` is 0. Every thread count yields
  /// bit-identical RepairResults; only wall-clock time changes.
  int threads = 0;
  /// Share one evaluation index per base constraint across its variants:
  /// hash partitions are derived (refined/merged) instead of rebuilt, and
  /// predicate verdicts shared with the base come from a memo, so each
  /// variant only evaluates its delta predicates. The RepairResult is
  /// bit-identical with the index on or off, at any thread count; the
  /// stats.index_* counters record the work saved. Off = the plain
  /// per-variant scans (for A/B runs and debugging).
  bool reuse_index = true;
  /// Detect violations and suspects on the dictionary-encoded columnar
  /// backend (relation/encoded.h): one EncodedRelation of I is built up
  /// front and shared by the evaluation indexes, fallback scans, and the
  /// Vfree engine. Predicates then evaluate on integer codes
  /// (stats.index_code_evals) instead of boxed Values
  /// (stats.index_predicate_evals). The RepairResult is bit-identical
  /// either way, at any thread count.
  bool use_encoded = true;
};

/// The constraint-variance tolerant repair (Problem 1 / Algorithm 1):
/// enumerates θ-maximal constraint variants, prunes them with repair-cost
/// bounds, repairs the remaining candidates with the sharing-enabled
/// violation-free DataRepair, and returns the minimum-cost repair together
/// with the variant Σ' it satisfies.
///
/// θ may be negative (net predicate deletion, Appendix D.2); in that case
/// Σ itself is not a candidate and the bound seeding of Algorithm 1 line 1
/// is replaced by +∞.
RepairResult CVTolerantRepair(const Relation& I, const ConstraintSet& sigma,
                              const CVTolerantOptions& options = {});

/// Component-scoped θ-tolerant re-solve under a frozen variant: Algorithm 1
/// with |D| = 1 and detection already done. `frozen_variant` is the Σ' an
/// earlier CVTolerantRepair settled on (its satisfied_constraints);
/// `violations` is an externally detected violation set of the current
/// instance against that variant — typically the delta-maintained set of a
/// StreamingRepairer after a batch of edits. Only the components reachable
/// from those violations are repaired; `cache` and `fresh_counter` persist
/// across calls so component solutions are shared and fresh ids stay
/// globally unique. Derives the engine options (threads, encoded backend)
/// from `options` exactly as CVTolerantRepair does, so a scoped re-solve
/// is bit-identical to the candidate solve the full pipeline would run on
/// the same violations. Returns std::nullopt only on a delta_min abort
/// (never with the default +inf bound).
std::optional<ScopedRepair> CVTolerantResolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& frozen_variant, std::vector<Violation> violations,
    const CVTolerantOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr,
    double delta_min = std::numeric_limits<double>::infinity());

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_CVTOLERANT_H_
