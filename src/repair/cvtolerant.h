#ifndef CVREPAIR_REPAIR_CVTOLERANT_H_
#define CVREPAIR_REPAIR_CVTOLERANT_H_

#include <functional>
#include <limits>
#include <map>
#include <optional>

#include "repair/holistic.h"
#include "repair/repair_result.h"
#include "repair/vfree.h"
#include "variation/variant_generator.h"

namespace cvrepair {

/// Options for the θ-tolerant repair (Algorithm 1).
struct CVTolerantOptions {
  /// Variant enumeration, including θ and the variation cost model.
  VariantGenOptions variants;
  /// Data-repair engine configuration (cost model, cover, solver).
  VfreeOptions vfree;
  /// When false, each candidate variant is repaired with the multi-round
  /// Holistic engine instead of Vfree (the "CVtolerant + Holistic"
  /// configuration of Figure 5). Sharing and cost-abort pruning are not
  /// available in that mode.
  bool use_vfree = true;
  HolisticOptions holistic;
  /// Share materialized component solutions across variants (Section 4.2).
  bool enable_sharing = true;
  /// Skip variants whose lower bound exceeds the best known repair cost
  /// (Section 3.2, Algorithm 1 line 3).
  bool enable_bound_pruning = true;
  /// Hard budget on DataRepair invocations. Candidates are processed in
  /// ascending-δ_l order (cheap variants first), so the budget cuts the
  /// long tail of near-tied candidates that bound pruning alone cannot
  /// separate; the paper reports most runs settle within 2 calls.
  int max_datarepair_calls = 64;
  /// Constraint variants violated more often than this factor times |I|
  /// are abandoned as hopeless (their minimum repair cannot win): their
  /// enumeration is cut short and their lower bound set to +inf. 0
  /// disables the cap.
  double max_violations_per_tuple = 50.0;
  /// Thread budget for this repair: 0 = the global ThreadPool setting,
  /// 1 = the exact legacy serial path, N = up to N threads. Propagated to
  /// the Vfree engine when `vfree.threads` is 0. Every thread count yields
  /// bit-identical RepairResults; only wall-clock time changes.
  int threads = 0;
  /// Share one evaluation index per base constraint across its variants:
  /// hash partitions are derived (refined/merged) instead of rebuilt, and
  /// predicate verdicts shared with the base come from a memo, so each
  /// variant only evaluates its delta predicates. The RepairResult is
  /// bit-identical with the index on or off, at any thread count; the
  /// stats.index_* counters record the work saved. Off = the plain
  /// per-variant scans (for A/B runs and debugging).
  bool reuse_index = true;
  /// Detect violations and suspects on the dictionary-encoded columnar
  /// backend (relation/encoded.h): one EncodedRelation of I is built up
  /// front and shared by the evaluation indexes, fallback scans, and the
  /// Vfree engine. Predicates then evaluate on integer codes
  /// (stats.index_code_evals) instead of boxed Values
  /// (stats.index_predicate_evals). The RepairResult is bit-identical
  /// either way, at any thread count.
  bool use_encoded = true;
};

/// The constraint-variance tolerant repair (Problem 1 / Algorithm 1):
/// enumerates θ-maximal constraint variants, prunes them with repair-cost
/// bounds, repairs the remaining candidates with the sharing-enabled
/// violation-free DataRepair, and returns the minimum-cost repair together
/// with the variant Σ' it satisfies.
///
/// θ may be negative (net predicate deletion, Appendix D.2); in that case
/// Σ itself is not a candidate and the bound seeding of Algorithm 1 line 1
/// is replaced by +∞.
RepairResult CVTolerantRepair(const Relation& I, const ConstraintSet& sigma,
                              const CVTolerantOptions& options = {});

/// Component-scoped θ-tolerant re-solve under a frozen variant: Algorithm 1
/// with |D| = 1 and detection already done. `frozen_variant` is the Σ' an
/// earlier CVTolerantRepair settled on (its satisfied_constraints);
/// `violations` is an externally detected violation set of the current
/// instance against that variant — typically the delta-maintained set of a
/// StreamingRepairer after a batch of edits. Only the components reachable
/// from those violations are repaired; `cache` and `fresh_counter` persist
/// across calls so component solutions are shared and fresh ids stay
/// globally unique. Derives the engine options (threads, encoded backend)
/// from `options` exactly as CVTolerantRepair does, so a scoped re-solve
/// is bit-identical to the candidate solve the full pipeline would run on
/// the same violations. Returns std::nullopt only on a delta_min abort
/// (never with the default +inf bound).
std::optional<ScopedRepair> CVTolerantResolveComponents(
    const Relation& I, const DomainStats& stats_of_I,
    const ConstraintSet& frozen_variant, std::vector<Violation> violations,
    const CVTolerantOptions& options, MaterializedCache* cache,
    RepairStats* stats, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr,
    double delta_min = std::numeric_limits<double>::infinity());

/// Per-constraint detection facts consumed by the factored variant search
/// below: the constraint's violations over the instance (canonical rows
/// order, constraint_index 0 — the search re-stamps positions when it
/// assembles a candidate's union set) and the δ_l/δ_u bounds of its private
/// conflict hypergraph, or `hopeless` when the violation cap was hit.
struct VariantFacts {
  std::vector<Violation> violations;
  double delta_l = 0.0;
  double delta_u = 0.0;
  bool hopeless = false;
};

/// Facts provider: returns the facts of one constraint. The reference must
/// stay valid for the duration of the search call.
using VariantFactsFn =
    std::function<const VariantFacts&(const DenialConstraint&)>;

/// Outcome of one factored variant search.
struct VariantSearchResult {
  ConstraintSet variant;  ///< chosen Σ' (meaningful when have_result)
  Relation repaired;      ///< minimum-cost repair found
  double cost = std::numeric_limits<double>::infinity();
  bool have_result = false;
  int datarepair_calls = 0;
  int variants_pruned = 0;  ///< hopeless + bound-pruned candidates
  /// Aligned with the input `variants`: the realized repair cost where the
  /// search solved that candidate, NaN where it was pruned, aborted on the
  /// δ_min bound, or cut by the call budget. Bound maintainers use these to
  /// lift per-variant lower bounds to realized costs.
  std::vector<double> solved_costs;
  /// Aligned with the input `variants`: where a candidate's solve aborted
  /// on the δ_min bound, the threshold it was solving under — a proof that
  /// its true repair cost strictly exceeds this value (vfree aborts on
  /// cost > δ_min). NaN everywhere else. Bound maintainers use these to
  /// keep aborted candidates' lower bounds above the incumbent instead of
  /// letting them fall back to δ_l.
  std::vector<double> abort_bounds;
};

/// The candidate loop of Algorithm 1 over externally supplied per-constraint
/// facts: combines bounds per variant (δ_l = max, δ_u = sum), seeds δ_min
/// with δ_u(Σ) when θ >= 0, processes candidates in ascending-δ_l order
/// under bound pruning and the DataRepair budget, and repairs each survivor
/// through the canonicalized SolveDirtyComponents pipeline with one shared
/// MaterializedCache. Both the scratch path (facts from full scans, see
/// ScanVariantFacts) and the streaming reopen path (facts delta-maintained
/// by a VariantTracker) run this same function on the same variant family,
/// which is what makes streamed-vs-scratch equivalence exact: equal facts in,
/// bit-identical chosen variant and repair out (modulo fresh-id numbering
/// from `fresh_counter`). Unlike CVTolerantRepair it has no repair-of-Σ
/// fallback: `have_result` is false when every candidate was pruned or
/// aborted, and the caller decides (a streaming caller keeps its incumbent).
VariantSearchResult CVTolerantSearchWithFacts(
    const Relation& I, const ConstraintSet& sigma,
    const std::vector<SigmaVariant>& variants, const VariantFactsFn& facts_of,
    const CVTolerantOptions& options, int64_t* fresh_counter,
    const EncodedRelation* encoded = nullptr);

/// Computes VariantFacts for every distinct constraint of Σ and `variants`
/// by full capped detection scans on I — the from-scratch twin of a
/// VariantTracker's delta-maintained facts. Scans run on `encoded` when
/// given (and options.use_encoded), boxed otherwise; the facts are
/// identical either way.
std::map<DenialConstraint, VariantFacts> ScanVariantFacts(
    const Relation& I, const ConstraintSet& sigma,
    const std::vector<SigmaVariant>& variants,
    const CVTolerantOptions& options, const EncodedRelation* encoded = nullptr);

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_CVTOLERANT_H_
