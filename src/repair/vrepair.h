#ifndef CVREPAIR_REPAIR_VREPAIR_H_
#define CVREPAIR_REPAIR_VREPAIR_H_

#include <optional>
#include <vector>

#include "dc/constraint.h"
#include "repair/costs.h"
#include "repair/repair_result.h"
#include "relation/relation.h"

namespace cvrepair {

/// A functional dependency lhs -> rhs extracted from its DC encoding.
struct FdView {
  std::vector<AttrId> lhs;
  AttrId rhs = 0;
};

/// Recognizes the DC encoding of an FD (equality predicates t0.X = t1.X
/// plus exactly one inequality t0.A != t1.A, all same-attribute,
/// two-tuple); returns std::nullopt for any other shape.
std::optional<FdView> AsFd(const DenialConstraint& constraint);

/// Extracts FD views for a whole set; returns std::nullopt if any member
/// is not an FD.
std::optional<std::vector<FdView>> AsFdSet(const ConstraintSet& sigma);

/// Equivalence-class majority repair used by the FD-based baselines:
/// groups tuples by the FD's LHS and rewrites minority RHS values to the
/// weighted-majority value of the class. `passes` full sweeps are applied
/// (later FDs can re-violate earlier ones); `changed` (optional) receives
/// the number of modified cells.
Relation FdMajorityRepair(const Relation& I, const std::vector<FdView>& fds,
                          int passes = 3, int* changed = nullptr);

/// Options for the Vrepair baseline.
struct VrepairOptions {
  CostModel cost;
  int passes = 3;
};

/// Vrepair (Kolahi & Lakshmanan, ICDT 2009 [14]): approximate
/// minimum-cost FD repair via equivalence classes. Our implementation is
/// the standard majority-merge: tuples agreeing on the LHS form a class
/// whose RHS is settled by weighted majority; cells that still conflict
/// after the configured passes are set to fresh variables, so the result
/// always satisfies the FDs. Only accepts FD-shaped constraint sets.
RepairResult VrepairRepair(const Relation& I, const ConstraintSet& sigma,
                           const VrepairOptions& options = {});

}  // namespace cvrepair

#endif  // CVREPAIR_REPAIR_VREPAIR_H_
